"""Unit tests for repro.obs.metrics and CostLedger edge cases."""

import pytest

from repro.obs.metrics import (
    CounterMetric,
    GaugeMetric,
    Histogram,
    MetricsRegistry,
)
from repro.sim.tracing import CostLedger


class TestHistogram:
    def test_empty_histogram_reports_none(self):
        hist = Histogram("empty")
        assert hist.count == 0
        assert hist.mean is None
        assert hist.min is None
        assert hist.max is None
        assert hist.quantile(0.5) is None
        snap = hist.snapshot()
        assert snap["count"] == 0
        assert snap["p50"] is None and snap["p99"] is None

    def test_single_sample_is_every_quantile(self):
        hist = Histogram("one")
        hist.observe(42.0)
        for q in (0.0, 0.5, 0.9, 0.99, 1.0):
            assert hist.quantile(q) == 42.0
        assert hist.mean == 42.0
        assert hist.min == hist.max == 42.0

    def test_tied_samples(self):
        hist = Histogram("ties")
        for value in (5.0, 5.0, 5.0, 5.0, 9.0):
            hist.observe(value)
        assert hist.quantile(0.5) == 5.0
        assert hist.quantile(0.8) == 5.0
        assert hist.quantile(0.81) == 9.0
        assert hist.max == 9.0

    def test_nearest_rank_definition(self):
        hist = Histogram("ranks")
        for value in range(1, 11):  # 1..10
            hist.observe(float(value))
        assert hist.quantile(0.5) == 5.0
        assert hist.quantile(0.90) == 9.0
        assert hist.quantile(0.99) == 10.0
        assert hist.quantile(0.0) == 1.0
        assert hist.quantile(1.0) == 10.0

    def test_quantile_out_of_range(self):
        hist = Histogram("bad")
        with pytest.raises(ValueError):
            hist.quantile(1.5)
        with pytest.raises(ValueError):
            hist.quantile(-0.1)

    def test_observation_after_quantile_invalidates_cache(self):
        hist = Histogram("cache")
        hist.observe(10.0)
        assert hist.quantile(1.0) == 10.0
        hist.observe(20.0)
        assert hist.quantile(1.0) == 20.0


class TestRegistry:
    def test_get_or_create_and_type_conflict(self):
        reg = MetricsRegistry()
        counter = reg.counter("x")
        assert reg.counter("x") is counter
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_counter_rejects_negative(self):
        counter = CounterMetric("c")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_and_add(self):
        gauge = GaugeMetric("g")
        gauge.set(3.0)
        gauge.add(1.5)
        assert gauge.value == 4.5

    def test_snapshot_is_sorted_and_deterministic(self):
        def build():
            reg = MetricsRegistry()
            reg.counter("zeta").inc(3)
            reg.gauge("alpha").set(1.25)
            hist = reg.histogram("mid")
            for value in (4.0, 2.0, 8.0):
                hist.observe(value)
            return reg.snapshot()

        first, second = build(), build()
        assert first == second
        assert list(first) == sorted(first)

    def test_install_replaces_by_name(self):
        reg = MetricsRegistry()
        reg.histogram("h").observe(1.0)
        fresh = Histogram("h")
        fresh.observe(2.0)
        reg.install(fresh)
        assert reg.get("h") is fresh
        assert reg.get("h").count == 1


class TestCostLedger:
    def test_snapshot_of_empty_ledger(self):
        ledger = CostLedger()
        assert ledger.snapshot() == {}
        assert ledger.total() == 0.0

    def test_diff_against_empty_snapshot(self):
        ledger = CostLedger()
        before = ledger.snapshot()
        ledger.charge("protocol", 100.0)
        assert ledger.diff(before) == {"protocol": 100.0}

    def test_diff_skips_unchanged_categories(self):
        ledger = CostLedger()
        ledger.charge("protocol", 100.0)
        ledger.charge("transmission", 40.0)
        before = ledger.snapshot()
        ledger.charge("protocol", 7.0)
        assert ledger.diff(before) == {"protocol": 7.0}

    def test_snapshot_is_a_copy(self):
        ledger = CostLedger()
        ledger.charge("protocol", 10.0)
        snap = ledger.snapshot()
        ledger.charge("protocol", 5.0)
        assert snap == {"protocol": 10.0}

    def test_zero_charge_keeps_diff_empty(self):
        ledger = CostLedger()
        before = ledger.snapshot()
        ledger.charge("protocol", 0.0)
        assert ledger.diff(before) == {}

    def test_negative_charge_rejected(self):
        ledger = CostLedger()
        with pytest.raises(ValueError):
            ledger.charge("protocol", -1.0)


class TestHubFaultAndTransportMetrics:
    """The hub exports fault-plan accounting and per-message ACK-attempt
    histograms (fed by the chaos sweep, useful everywhere)."""

    def _report(self, loss=0.0):
        from repro.analysis.workloads import build_workload
        from repro.net.errors import FaultPlan
        from repro.obs.instrument import MetricsHub

        faults = FaultPlan(loss_probability=loss) if loss else None
        net = build_workload("echo", faults=faults).run()
        return MetricsHub().ingest(net)

    def test_fault_counters_surface_as_gauges(self):
        snap = self._report(loss=0.15).snapshot
        for name in (
            "faults.frames_lost",
            "faults.frames_corrupted",
            "faults.frames_scripted_drops",
            "faults.deliveries_predicate_dropped",
        ):
            assert snap[name]["type"] == "gauge", name
        assert snap["faults.frames_lost"]["value"] > 0
        assert snap["faults.frames_corrupted"]["value"] == 0

    def test_fault_gauges_zero_on_clean_run(self):
        snap = self._report().snapshot
        assert snap["faults.frames_lost"]["value"] == 0
        assert snap["faults.frames_scripted_drops"]["value"] == 0

    def test_attempts_to_ack_histogram(self):
        snap = self._report().snapshot
        hist = snap["transport.attempts_to_ack"]
        assert hist["type"] == "histogram"
        assert hist["count"] > 0
        # A clean bus ACKs everything on the first transmission.
        assert hist["min"] == 1 and hist["max"] == 1

    def test_attempts_to_ack_counts_retransmissions(self):
        snap = self._report(loss=0.15).snapshot
        hist = snap["transport.attempts_to_ack"]
        assert hist["count"] > 0
        # With 15% loss some message needed more than one transmission.
        assert hist["max"] > 1
        # Per-kind breakdown accompanies the aggregate.
        assert any(
            name.startswith("transport.attempts_to_ack.") for name in snap
        )
