"""Span reconstruction from real kernel traces: PUT, GET, EXCHANGE,
and a cancelled transaction."""

from repro.core import Buffer, ClientProgram, Network
from repro.obs.spans import build_spans, classify_verb, span_statistics
from tests.conftest import ECHO_PATTERN, EchoServer, make_pair


def _transaction_spans(net):
    """Non-DISCOVER spans, in request order."""
    return [
        span
        for span in build_spans(net.sim.trace.records)
        if not span.is_discover
    ]


def _run_single(body):
    net = Network(seed=33)
    make_pair(net, EchoServer(), body)
    net.run(until=5_000_000.0)
    return net


def test_classify_verb():
    assert classify_verb(0, 0) == "signal"
    assert classify_verb(8, 0) == "put"
    assert classify_verb(0, 8) == "get"
    assert classify_verb(8, 8) == "exchange"


def test_put_span():
    def body(api, self):
        server = yield from api.discover(ECHO_PATTERN)
        yield from api.b_put(server, put=b"payload")

    net = _run_single(body)
    spans = _transaction_spans(net)
    assert len(spans) == 1
    span = spans[0]
    assert span.verb == "put"
    assert span.put_bytes == 7 and span.get_bytes == 0
    assert span.requester_mid == 1 and span.server_mid == 0
    assert span.status == "completed" and span.completed
    # The timeline is ordered: issue -> delivery -> accept -> completion.
    assert span.request_us < span.delivered_us
    assert span.delivered_us <= span.accept_us
    assert span.accept_us < span.complete_us
    assert span.latency_us > 0
    assert span.delivery_us > 0
    assert span.service_us >= 0


def test_get_span():
    def body(api, self):
        server = yield from api.discover(ECHO_PATTERN)
        reply = Buffer(16)
        yield from api.b_get(server, get=reply)
        return reply.data

    net = _run_single(body)
    (span,) = _transaction_spans(net)
    assert span.verb == "get"
    assert span.put_bytes == 0 and span.get_bytes == 16
    assert span.completed
    assert span.latency_us > 0


def test_exchange_span():
    def body(api, self):
        server = yield from api.discover(ECHO_PATTERN)
        reply = Buffer(16)
        yield from api.b_exchange(server, put=b"ping", get=reply)

    net = _run_single(body)
    (span,) = _transaction_spans(net)
    assert span.verb == "exchange"
    assert span.put_bytes == 4 and span.get_bytes == 16
    assert span.completed
    stats = span_statistics([span])
    assert set(stats) == {"exchange"}
    assert stats["exchange"].count == 1
    assert stats["exchange"].quantile(0.5) == span.latency_us / 1000.0


def test_cancelled_span():
    class NeverAccepts(ClientProgram):
        def initialization(self, api, parent_mid):
            yield from api.advertise(ECHO_PATTERN)

        def handler(self, api, event):
            return
            yield  # pragma: no cover

    def body(api, self):
        server = yield from api.discover(ECHO_PATTERN)
        tid = yield from api.signal(server)
        yield api.compute(150_000.0)
        return (yield from api.cancel(tid))

    net = Network(seed=34)
    make_pair(net, NeverAccepts(), body)
    net.run(until=5_000_000.0)
    spans = _transaction_spans(net)
    assert len(spans) == 1
    span = spans[0]
    assert span.status == "cancelled"
    assert not span.completed
    assert span.delivered_us is not None  # it reached the server
    assert span.accept_us is None  # ... but was never ACCEPTed
    # Cancelled spans contribute nothing to latency statistics.
    assert span_statistics(spans) == {}


def test_discover_spans_are_flagged():
    def body(api, self):
        server = yield from api.discover(ECHO_PATTERN)
        yield from api.b_signal(server)

    net = _run_single(body)
    spans = build_spans(net.sim.trace.records)
    discovers = [span for span in spans if span.is_discover]
    assert discovers, "DISCOVER must open a span with is_discover=True"
    assert all(span.server_mid < 0 for span in discovers)


def test_spans_sorted_by_request_time():
    def body(api, self):
        server = yield from api.discover(ECHO_PATTERN)
        for i in range(3):
            yield from api.b_put(server, put=b"x" * (i + 1))

    net = _run_single(body)
    spans = _transaction_spans(net)
    assert len(spans) == 3
    times = [span.request_us for span in spans]
    assert times == sorted(times)
    assert [span.put_bytes for span in spans] == [1, 2, 3]
