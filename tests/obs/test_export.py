"""Exporter tests: snapshot envelope, JSONL, console rendering."""

import json

from repro.obs.export import (
    BENCH_SCHEMA,
    emit_snapshot,
    render_metrics,
    render_span_table,
    snapshot_payload,
    write_metrics_jsonl,
    write_snapshot,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import TransactionSpan


def _registry():
    reg = MetricsRegistry()
    reg.counter("kernel.tx_packets").inc(4)
    reg.gauge("bus.utilization").set(0.25)
    hist = reg.histogram("txn.latency_ms.put")
    for value in (1.0, 2.0, 3.0):
        hist.observe(value)
    return reg


def test_snapshot_envelope():
    payload = snapshot_payload("metrics", {"a": 1}, meta={"workload": "echo"})
    assert payload["schema"] == BENCH_SCHEMA
    assert payload["kind"] == "metrics"
    assert payload["meta"] == {"workload": "echo"}
    assert payload["body"] == {"a": 1}


def test_write_snapshot_round_trips(tmp_path):
    payload = snapshot_payload("metrics", _registry().snapshot())
    target = write_snapshot(tmp_path / "BENCH_test.json", payload)
    text = target.read_text()
    assert text.endswith("\n")
    parsed = json.loads(text)
    assert parsed == payload
    # Keys come out sorted, so serialization is deterministic.
    assert text == json.dumps(payload, sort_keys=True, indent=2) + "\n"


def test_emit_snapshot_envelopes_and_announces(tmp_path):
    """The one-call helper every BENCH_*.json emitter shares."""
    announced = []
    target = emit_snapshot(
        tmp_path / "BENCH_emit.json",
        "metrics",
        {"a": 1},
        meta={"workload": "echo"},
        out=announced.append,
    )
    assert announced == [f"wrote {target}"]
    parsed = json.loads(target.read_text())
    assert parsed == snapshot_payload(
        "metrics", {"a": 1}, meta={"workload": "echo"}
    )


def test_write_metrics_jsonl(tmp_path):
    snapshot = _registry().snapshot()
    target = write_metrics_jsonl(tmp_path / "metrics.jsonl", snapshot)
    lines = target.read_text().splitlines()
    assert len(lines) == len(snapshot)
    names = [json.loads(line)["name"] for line in lines]
    assert names == sorted(snapshot)
    parsed = json.loads(lines[0])
    assert parsed["name"] == "bus.utilization"
    assert parsed["type"] == "gauge"
    assert parsed["value"] == 0.25


def test_render_metrics_lists_all_metrics():
    text = render_metrics(_registry().snapshot())
    assert "kernel.tx_packets" in text
    assert "bus.utilization" in text
    assert "txn.latency_ms.put" in text
    assert "p99" in text


def test_render_span_table_limits_rows():
    spans = [
        TransactionSpan(
            requester_mid=1,
            tid=tid,
            server_mid=0,
            pattern=0,
            verb="signal",
            put_bytes=0,
            get_bytes=0,
            request_us=float(tid),
            complete_us=float(tid) + 100.0,
            status="completed",
        )
        for tid in range(30)
    ]
    text = render_span_table(spans, limit=5)
    assert "<1,#0>" in text
    assert "<1,#4>" in text
    assert "<1,#5>" not in text
