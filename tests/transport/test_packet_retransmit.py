"""Unit tests for packets and retransmission policy."""

import random

import pytest

from repro.transport.packet import NackCode, Packet, PacketType
from repro.transport.retransmit import RetransmitPolicy


def test_packet_data_bytes():
    assert Packet(PacketType.REQUEST).data_bytes == 0
    assert Packet(PacketType.REQUEST, data=b"abcd").data_bytes == 4


def test_packet_ids_unique():
    a, b = Packet(PacketType.ACK), Packet(PacketType.ACK)
    assert a.packet_id != b.packet_id


def test_describe_mentions_piggybacks():
    p = Packet(PacketType.ACCEPT, data=b"xy", ack=1, pull_data=True)
    desc = p.describe()
    assert "accept" in desc
    assert "+2B" in desc
    assert "+ack1" in desc
    assert "+pull" in desc


def test_describe_mentions_nack_code():
    p = Packet(PacketType.NACK, nack_code=NackCode.BUSY)
    assert "busy" in p.describe()


def test_wire_payload_only_counts_data():
    p = Packet(PacketType.ACCEPT, data=b"12345", arg=7, tid=3)
    assert p.wire_payload_bytes() == 5


# -- retransmission policy ----------------------------------------------------


def test_ack_retry_delay_has_jitter_within_bounds():
    policy = RetransmitPolicy(ack_timeout_us=1_000.0, ack_jitter_us=100.0)
    rng = random.Random(1)
    delays = [policy.ack_retry_delay(1, rng) for _ in range(50)]
    assert all(1_000.0 <= d <= 1_100.0 for d in delays)
    assert len(set(delays)) > 1


def test_busy_retry_decays_rate():
    policy = RetransmitPolicy(
        busy_retry_base_us=100.0, busy_retry_growth=2.0, busy_jitter_us=0.0
    )
    rng = random.Random(1)
    d1 = policy.busy_retry_delay(1, rng)
    d2 = policy.busy_retry_delay(2, rng)
    d3 = policy.busy_retry_delay(3, rng)
    assert d1 < d2 < d3
    assert d2 == pytest.approx(2 * d1)


def test_busy_retry_capped():
    policy = RetransmitPolicy(
        busy_retry_base_us=100.0,
        busy_retry_growth=10.0,
        busy_retry_max_us=500.0,
        busy_jitter_us=0.0,
    )
    rng = random.Random(1)
    assert policy.busy_retry_delay(10, rng) == 500.0


def test_exhaustion_bound():
    policy = RetransmitPolicy(max_ack_attempts=4)
    assert not policy.exhausted(3)
    assert policy.exhausted(4)


def test_attempts_are_one_based():
    policy = RetransmitPolicy()
    rng = random.Random(0)
    with pytest.raises(ValueError):
        policy.ack_retry_delay(0, rng)
    with pytest.raises(ValueError):
        policy.busy_retry_delay(0, rng)
