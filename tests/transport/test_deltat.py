"""Unit tests for Delta-t connection records (§5.2.2)."""

from repro.transport.deltat import DeltaTConfig, DeltaTRecord, DeltaTState


CFG = DeltaTConfig(mpl_us=100.0, r_us=400.0, a_us=50.0)


def test_derived_intervals():
    assert CFG.delta_t_us == 550.0
    assert CFG.take_any_after_us == 650.0          # MPL + delta-t
    assert CFG.crash_quiet_us == 750.0             # 2*MPL + delta-t


def test_take_any_accepts_any_first_seq():
    record = DeltaTRecord(CFG)
    assert record.current_state(0.0) is DeltaTState.TAKE_ANY
    assert record.classify(1, now_us=10.0) == "new"
    assert record.state is DeltaTState.SYNCHRONIZED


def test_alternation_enforced_once_synchronized():
    record = DeltaTRecord(CFG)
    assert record.classify(0, 1.0) == "new"
    assert record.classify(0, 2.0) == "duplicate"
    assert record.classify(1, 3.0) == "new"
    assert record.classify(1, 4.0) == "duplicate"
    assert record.classify(0, 5.0) == "new"


def test_silence_expires_record_to_take_any():
    record = DeltaTRecord(CFG)
    record.classify(0, 0.0)
    # Just under the bound: still synchronized, duplicate rejected.
    assert record.classify(0, CFG.take_any_after_us - 1.0) == "duplicate"
    # Quiet past the bound from that refresh: record destroyed.
    later = CFG.take_any_after_us - 1.0 + CFG.take_any_after_us + 1.0
    assert record.current_state(later) is DeltaTState.TAKE_ANY
    # Any sequence number (even the "duplicate" one) is now new.
    assert record.classify(0, later + 1.0) == "new"


def test_any_traffic_refreshes_timer():
    record = DeltaTRecord(CFG)
    record.classify(0, 0.0)
    record.heard(600.0)  # unsequenced traffic counts
    assert record.current_state(1_200.0) is DeltaTState.SYNCHRONIZED
    assert record.current_state(600.0 + CFG.take_any_after_us) is DeltaTState.TAKE_ANY


def test_destroy_resets_everything():
    record = DeltaTRecord(CFG)
    record.classify(1, 0.0)
    record.destroy()
    assert record.state is DeltaTState.TAKE_ANY
    assert record.expected_seq is None
    assert record.last_heard_us is None


def test_rollback_semantics_via_expected_seq():
    # The kernel rolls back a held sequence number by restoring
    # expected_seq; verify the classify contract supports that.
    record = DeltaTRecord(CFG)
    assert record.classify(1, 0.0) == "new"
    record.expected_seq = 1  # rollback: 1 becomes acceptable again
    assert record.classify(1, 1.0) == "new"


def test_default_config_matches_paper_structure():
    cfg = DeltaTConfig()
    assert cfg.delta_t_us == cfg.mpl_us + cfg.r_us + cfg.a_us
    assert cfg.crash_quiet_us > cfg.take_any_after_us
