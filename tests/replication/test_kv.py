"""Integration tests for the replicated KV store (repro.replication).

Each test runs a whole workload through the sim — replicas, supervisor,
client — under a scripted fault schedule, then judges the merged trace
with the same consistency checker the chaos harness and the netreal
runner use.
"""

import pytest

from repro.analysis.workloads import build_workload
from repro.chaos.runner import run_cell
from repro.chaos.scenario import (
    GRACE_US,
    DuplicateWindow,
    NodeCrash,
    Partition,
    Reboot,
    ReorderWindow,
    Scenario,
)
from repro.replication.consistency import check_kv_consistency, kv_summary


def _run(workload, scenario=None, seed=None):
    built = build_workload(workload, seed=seed)
    last = 0.0
    if scenario is not None:
        scenario.apply(built)
        last = scenario.last_action_us
    built.net.run(until=max(built.spec.until_us, last + 2 * GRACE_US))
    return built


def _client(built):
    return built.net.nodes[built.mid_of("client")].kernel.client.program


def _counts(built):
    counts = {}
    for rec in built.net.sim.trace.records:
        if rec.category.startswith("kv."):
            counts[rec.category] = counts.get(rec.category, 0) + 1
    return counts


def test_kvstore_happy_path_linearizable():
    built = _run("kvstore")
    records = built.net.sim.trace.records
    assert check_kv_consistency(records) == []
    outcomes = _client(built).outcomes
    assert len(outcomes) == 30
    assert set(outcomes.values()) == {"ok"}
    summary = kv_summary(records)
    assert summary["availability"] == 1.0
    # Cold boot elects exactly one primary.
    assert summary["promotions"] == 1
    # All three replicas applied the whole log.
    assert summary["entries_applied"] % 3 == 0


def test_supervised_failover_keeps_serving_through_primary_crash():
    scenario = Scenario(
        "primary_crash_load",
        (NodeCrash(200_000.0, role="replica0"),),
    )
    built = _run("kvstore_supervised", scenario)
    records = built.net.sim.trace.records
    assert check_kv_consistency(records) == []
    summary = kv_summary(records)
    # Cold-boot promotion plus the supervisor-nominated failover.
    assert summary["promotions"] >= 2
    # Every op reached a definitive outcome despite the crash.
    assert summary["ops_definitive"] == summary["ops_invoked"] == 30


def test_unsupervised_cluster_fails_safe_without_failover():
    # No supervisor, no scripted reboot: the backups must *refuse* to
    # serve rather than elect wildly; clients see unavail, never lies.
    scenario = Scenario(
        "primary_crash_load",
        (NodeCrash(200_000.0, role="replica0"),),
    )
    built = _run("kvstore", scenario)
    records = built.net.sim.trace.records
    assert check_kv_consistency(records) == []
    outcomes = _client(built).outcomes
    assert "unavail" in set(outcomes.values())


def test_partition_fences_stale_primary():
    # Isolate the primary long enough for the supervisor to promote a
    # replacement; at heal the stale primary must be demoted by epoch
    # fencing, not allowed to keep acking.
    scenario = Scenario(
        "partition_heal",
        (Partition(120_000.0, 2_600_000.0, isolate=("replica0",)),),
    )
    built = _run("kvstore_supervised", scenario)
    records = built.net.sim.trace.records
    assert check_kv_consistency(records) == []
    counts = _counts(built)
    assert counts.get("kv.promote", 0) >= 2
    # The old primary stepped down when it met the new epoch.
    demoted = [
        rec["mid"] for rec in records if rec.category == "kv.demote"
    ]
    assert built.mid_of("replica0") in demoted


def test_amnesiac_reboot_rejoins_without_divergence():
    # The rebooted node re-runs the workload factory — claim_primary and
    # all — with empty state: the §3.5.2 amnesia case.  Its takeover
    # must pull the surviving log before claiming, never fork history.
    scenario = Scenario(
        "amnesia",
        (
            NodeCrash(200_000.0, role="replica0"),
            Reboot(1_500_000.0, role="replica0"),
        ),
    )
    built = _run("kvstore", scenario)
    records = built.net.sim.trace.records
    assert check_kv_consistency(records) == []
    summary = kv_summary(records)
    assert summary["ops_definitive"] == summary["ops_invoked"] == 30


@pytest.mark.parametrize("schedule", ["duplicate", "reorder"])
def test_kv_survives_duplication_and_reordering(schedule):
    result = run_cell("kvstore_supervised", schedule, seed=1)
    assert result.ok, result.to_dict()
    assert result.consistency_problems == []
    key = (
        "deliveries_duplicated" if schedule == "duplicate"
        else "deliveries_reordered"
    )
    # The window really replayed/held back traffic.
    assert result.faults[key] > 0
    assert result.kv["availability"] == 1.0


def test_duplicate_window_replays_kv_writes_at_most_once():
    # Direct scenario (not the registered schedule): aggressive
    # duplication across the whole run, checker must stay silent.
    scenario = Scenario(
        "dup_heavy",
        (DuplicateWindow(0.0, 20_000_000.0, probability=0.3),),
    )
    built = _run("kvstore", scenario)
    records = built.net.sim.trace.records
    assert built.net.faults.deliveries_duplicated > 0
    assert check_kv_consistency(records) == []


def test_reorder_window_does_not_reorder_committed_history():
    scenario = Scenario(
        "reorder_heavy",
        (ReorderWindow(0.0, 20_000_000.0, probability=0.3, extra_us=900.0),),
    )
    built = _run("kvstore", scenario)
    records = built.net.sim.trace.records
    assert built.net.faults.deliveries_reordered > 0
    assert check_kv_consistency(records) == []


def test_chaos_cell_reports_kv_summary_and_verdict():
    result = run_cell("kvstore_supervised", "primary_crash_load", seed=1)
    assert result.ok
    payload = result.to_dict()
    assert payload["consistency_problems"] == []
    assert payload["kv"]["ops_invoked"] == 30
    assert payload["kv"]["availability"] >= 0.9
    # Workloads without kv.* records keep an empty kv block.
    echo = run_cell("echo", "calm", seed=1)
    assert echo.to_dict()["kv"] == {}


def test_kv_bench_body_shape_and_verdicts():
    from repro.bench.kv import run_kv_bench

    body = run_kv_bench(seed=1)
    assert body["workload"] == "kvstore_supervised"
    assert set(body["schedules"]) == {
        "calm", "primary_crash_load", "partition_heal", "cluster_restart"
    }
    comparison = body["comparison"]
    assert comparison["all_consistent"] is True
    assert comparison["acknowledged_write_loss"] == 0
    assert comparison["failover_bounded"] is True
    assert comparison["failover_client_us"] > 0
    for cell in body["schedules"].values():
        assert cell["consistency_problems"] == []
        assert cell["availability"] > 0.9
