"""Round-trip properties for the replication wire formats.

Every packed word must fit the positive half of the signed 64-bit wire
argument (the transport packs args ``!q``), and every field must
survive pack → unpack bit-exactly across its full range.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.replication.wire import (
    ACK_FENCED,
    ACK_GAP,
    ACK_MISMATCH,
    ACK_OK,
    BATCH_ENTRIES,
    ENTRY_BYTES,
    OP_CAS,
    OP_GET,
    OP_NOOP,
    OP_PUT,
    Entry,
    decode_entries,
    encode_entries,
    make_token,
    pack_ack,
    pack_op,
    pack_repl,
    pack_result,
    pack_status,
    token_mid,
    token_seq,
    unpack_ack,
    unpack_op,
    unpack_repl,
    unpack_result,
    unpack_status,
)

ops = st.sampled_from([OP_NOOP, OP_GET, OP_PUT, OP_CAS])
keys = st.integers(min_value=0, max_value=15)
tokens = st.integers(min_value=0, max_value=(1 << 28) - 1)
epochs = st.integers(min_value=0, max_value=(1 << 14) - 1)
indexes = st.integers(min_value=0, max_value=(1 << 24) - 1)


@given(mid=st.integers(0, 255), seq=st.integers(0, (1 << 20) - 1))
def test_token_roundtrip(mid, seq):
    token = make_token(mid, seq)
    assert token_mid(token) == mid
    assert token_seq(token) == seq
    assert 0 <= token < (1 << 28)


@given(op=ops, key=keys, token=tokens, expected=tokens)
def test_op_roundtrip_fits_wire(op, key, token, expected):
    word = pack_op(op, key, token, expected)
    assert 0 <= word < (1 << 63)
    assert unpack_op(word) == (op, key, token, expected)


@given(version=indexes, token=tokens)
def test_result_roundtrip(version, token):
    word = pack_result(version, token)
    assert 0 <= word < (1 << 63)
    assert unpack_result(word) == (version, token)


@given(
    msg=st.integers(1, 5),
    epoch=epochs,
    prev_epoch=epochs,
    from_index=indexes,
    count=st.integers(0, 255),
)
def test_repl_header_roundtrip(msg, epoch, prev_epoch, from_index, count):
    word = pack_repl(msg, epoch, prev_epoch, from_index, count)
    assert 0 <= word < (1 << 63)
    header = unpack_repl(word)
    assert (
        header.msg, header.epoch, header.prev_epoch,
        header.from_index, header.count,
    ) == (msg, epoch, prev_epoch, from_index, count)


@given(
    code=st.sampled_from([ACK_OK, ACK_GAP, ACK_FENCED, ACK_MISMATCH]),
    value=st.integers(0, (1 << 32) - 1),
)
def test_ack_roundtrip(code, value):
    word = pack_ack(code, value)
    assert 0 <= word < (1 << 63)
    assert unpack_ack(word) == (code, value)


@given(
    granted=st.booleans(),
    epoch=epochs,
    last_epoch=epochs,
    length=indexes,
)
def test_status_roundtrip(granted, epoch, last_epoch, length):
    word = pack_status(granted, epoch, last_epoch, length)
    assert 0 <= word < (1 << 63)
    status = unpack_status(word)
    assert status.granted == granted
    assert status.epoch == epoch
    assert status.last_epoch == last_epoch
    assert status.length == length


entries = st.lists(
    st.builds(
        Entry,
        epoch=epochs,
        op=ops,
        key=keys,
        token=tokens,
        expected=tokens,
    ),
    max_size=BATCH_ENTRIES,
)


@given(commit=indexes, batch=entries)
def test_entry_batch_roundtrip(commit, batch):
    data = encode_entries(commit, batch)
    assert len(data) == 4 + ENTRY_BYTES * len(batch)
    got_commit, got = decode_entries(data)
    assert got_commit == commit
    assert tuple(got) == tuple(batch)


def test_decode_tolerates_truncated_tail():
    data = encode_entries(3, [Entry(1, OP_PUT, 2, 9, 0)])
    commit, got = decode_entries(data[:-5])
    assert commit == 3
    assert list(got) == []
