"""The KV consistency checker must *fire* on each violation class.

A checker that never fires is a green light that proves nothing; each
test here forges a minimal trace exhibiting exactly one violation and
asserts the verdict names it — plus clean-trace silence.
"""

from repro.replication.consistency import check_kv_consistency, kv_summary
from repro.sim.tracing import TraceRecord


def _apply(time, mid, index, epoch, op, key, token, applied=True):
    return TraceRecord(
        time, "kv.apply",
        {
            "mid": mid, "index": index, "epoch": epoch, "op": op,
            "key": key, "token": token, "version": index + 1,
            "applied": applied,
        },
    )


def _result(time, mid, seq, op, key, status, version, token, wtoken,
            invoked_at=None):
    return TraceRecord(
        time, "kv.result",
        {
            "mid": mid, "seq": seq, "op": op, "key": key,
            "status": status, "version": version, "token": token,
            "wtoken": wtoken,
            "invoked_at": time if invoked_at is None else invoked_at,
        },
    )


def _invoke(time, mid, seq, op, key, token):
    return TraceRecord(
        time, "kv.invoke",
        {"mid": mid, "seq": seq, "op": op, "key": key, "token": token},
    )


def test_clean_trace_is_silent():
    records = [
        _invoke(0.0, 9, 0, "put", 1, 77),
        _apply(5.0, 0, 0, 1, "put", 1, 77),
        _apply(6.0, 1, 0, 1, "put", 1, 77),
        _result(10.0, 9, 0, "put", 1, "ok", 1, 77, 77),
        _invoke(20.0, 9, 1, "get", 1, 0),
        _result(25.0, 9, 1, "get", 1, "ok", 1, 77, 0, invoked_at=20.0),
    ]
    assert check_kv_consistency(records) == []
    summary = kv_summary(records)
    assert summary["ops_invoked"] == 2
    assert summary["ops_definitive"] == 2
    assert summary["availability"] == 1.0


def test_divergent_commit_detected():
    records = [
        _apply(5.0, 0, 0, 1, "put", 1, 77),
        _apply(6.0, 1, 0, 1, "put", 1, 88),  # different token, same slot
    ]
    problems = check_kv_consistency(records)
    assert any("divergent commit" in p for p in problems)


def test_lost_acknowledged_write_detected():
    records = [
        _result(10.0, 9, 0, "put", 1, "ok", 1, 77, 77),
        # no replica ever applied token 77
    ]
    problems = check_kv_consistency(records)
    assert any("lost acknowledged write" in p for p in problems)


def test_double_applied_write_detected():
    records = [
        _apply(5.0, 0, 0, 1, "put", 1, 77),
        _apply(9.0, 0, 3, 2, "put", 1, 77),  # same token, second slot
    ]
    problems = check_kv_consistency(records)
    assert any("at-most-once violation" in p for p in problems)


def test_cas_acked_failed_but_applied_detected():
    records = [
        _apply(5.0, 0, 0, 1, "cas", 1, 77),
        _result(10.0, 9, 0, "cas", 1, "cas_fail", 0, 0, 77),
    ]
    problems = check_kv_consistency(records)
    assert any("CAS acked as failed but applied" in p for p in problems)


def test_stale_read_detected():
    records = [
        _apply(4.0, 0, 0, 1, "put", 1, 70),
        _apply(5.0, 0, 1, 1, "put", 1, 77),
        _result(10.0, 9, 0, "put", 1, "ok", 2, 77, 77),
        # GET invoked well after the version-2 ack, returns version 1.
        _result(40.0, 9, 1, "get", 1, "ok", 1, 70, 0, invoked_at=30.0),
    ]
    problems = check_kv_consistency(records)
    assert any("stale read" in p for p in problems)


def test_read_concurrent_with_write_may_see_old_version():
    records = [
        _apply(4.0, 0, 0, 1, "put", 1, 70),
        _apply(25.0, 0, 1, 1, "put", 1, 77),
        _result(30.0, 9, 0, "put", 1, "ok", 2, 77, 77),
        # GET invoked *before* the write was acked: either version is
        # linearizable.
        _result(35.0, 9, 1, "get", 1, "ok", 1, 70, 0, invoked_at=20.0),
    ]
    assert check_kv_consistency(records) == []


def test_phantom_read_detected():
    records = [
        _apply(4.0, 0, 0, 1, "put", 1, 70),
        # GET returns a (version, token) no replica ever committed.
        _result(40.0, 9, 1, "get", 1, "ok", 1, 99, 0, invoked_at=30.0),
    ]
    problems = check_kv_consistency(records)
    assert any("phantom read" in p for p in problems)


def test_summary_counts_promotions():
    records = [
        TraceRecord(1.0, "kv.promote", {"mid": 0, "epoch": 1}),
        TraceRecord(9.0, "kv.promote", {"mid": 1, "epoch": 2}),
    ]
    assert kv_summary(records)["promotions"] == 2


def _crash(time, mid):
    return TraceRecord(time, "kernel.crash", {"mid": mid})


def test_total_state_loss_of_acknowledged_write_detected():
    """Every replica that applied the write crashed after applying it,
    and the cluster kept going without the write: loud failure."""
    records = [
        _result(10.0, 9, 0, "put", 1, "ok", 1, 77, 77),
        _apply(5.0, 0, 0, 1, "put", 1, 77),
        _apply(6.0, 1, 0, 1, "put", 1, 77),
        _crash(20.0, 0),
        _crash(21.0, 1),
        # The cluster runs on (fresh election no-op) minus the write.
        _apply(30.0, 2, 0, 2, "noop", 0, 0),
    ]
    problems = check_kv_consistency(records)
    assert any("total state loss" in p for p in problems)


def test_state_loss_silent_when_one_holder_survives():
    records = [
        _result(10.0, 9, 0, "put", 1, "ok", 1, 77, 77),
        _apply(5.0, 0, 0, 1, "put", 1, 77),
        _apply(6.0, 1, 0, 1, "put", 1, 77),
        _crash(20.0, 0),  # replica 1 never crashes: state survives
        _apply(30.0, 2, 1, 2, "noop", 0, 0),
    ]
    assert check_kv_consistency(records) == []


def test_state_loss_silent_when_holder_reapplies_after_reboot():
    """Durable recovery re-emits kv.apply after the crash — the write
    is held again, so the earlier crash is not a loss."""
    records = [
        _result(10.0, 9, 0, "put", 1, "ok", 1, 77, 77),
        _apply(5.0, 0, 0, 1, "put", 1, 77),
        _crash(20.0, 0),
        _apply(25.0, 0, 0, 1, "put", 1, 77),  # recovery replay
        _apply(30.0, 2, 1, 2, "noop", 0, 0),
    ]
    assert check_kv_consistency(records) == []


def test_state_loss_silent_when_cluster_goes_dark():
    """Everyone crashes and nothing ever runs again: that is an
    unavailability story, not a silent-loss story — nobody served
    reads that contradict the write."""
    records = [
        _result(10.0, 9, 0, "put", 1, "ok", 1, 77, 77),
        _apply(5.0, 0, 0, 1, "put", 1, 77),
        _crash(20.0, 0),
    ]
    assert check_kv_consistency(records) == []
