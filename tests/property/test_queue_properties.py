"""Property-based tests for the SODAL queue and the event queue."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.events import EventQueue
from repro.sodal.queueing import Queue, QueueEmptyError, QueueFullError


@st.composite
def queue_ops(draw):
    capacity = draw(st.integers(min_value=1, max_value=8))
    ops = draw(
        st.lists(
            st.one_of(
                st.tuples(st.just("enq"), st.integers()),
                st.tuples(st.just("deq"), st.none()),
            ),
            max_size=50,
        )
    )
    return capacity, ops


@given(queue_ops())
def test_queue_behaves_like_bounded_fifo(case):
    capacity, ops = case
    queue = Queue(capacity)
    model = []
    for op, value in ops:
        if op == "enq":
            if len(model) >= capacity:
                try:
                    queue.enqueue(value)
                    assert False, "expected QueueFullError"
                except QueueFullError:
                    pass
            else:
                queue.enqueue(value)
                model.append(value)
        else:
            if not model:
                try:
                    queue.dequeue()
                    assert False, "expected QueueEmptyError"
                except QueueEmptyError:
                    pass
            else:
                assert queue.dequeue() == model.pop(0)
        assert len(queue) == len(model)
        assert queue.is_empty() == (not model)
        assert queue.is_full() == (len(model) == capacity)
        assert queue.almost_empty() == (len(model) == 1)
        assert queue.almost_full() == (len(model) == capacity - 1)
        assert queue.items() == model


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            st.integers(min_value=-3, max_value=3),
        ),
        max_size=60,
    )
)
def test_event_queue_pops_in_total_order(entries):
    queue = EventQueue()
    for time, priority in entries:
        queue.push(time, lambda: None, (), priority=priority)
    popped = []
    while True:
        event = queue.pop()
        if event is None:
            break
        popped.append((event.time, event.priority, event.seq))
    assert popped == sorted(popped)
    assert len(popped) == len(entries)


@given(
    st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), max_size=40),
    st.sets(st.integers(min_value=0, max_value=39)),
)
def test_event_queue_cancellation_drops_exactly_those(times, cancel_idx):
    queue = EventQueue()
    events = [queue.push(t, lambda: None, ()) for t in times]
    for i in cancel_idx:
        if i < len(events):
            events[i].cancel()
    expected = sorted(
        event.seq for i, event in enumerate(events) if not event.cancelled
    )
    popped = []
    while True:
        event = queue.pop()
        if event is None:
            break
        popped.append(event.seq)
    assert sorted(popped) == expected
