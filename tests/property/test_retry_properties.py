"""Property tests on the retry discipline (repro.recovery.retry).

The at-most-once contract under arbitrary interleavings of OVERLOAD
sheds (proof of non-execution), ambiguous CRASHED completions, and
crash-report/epoch evidence arriving late:

* a retried request is issued **at most once per server incarnation**
  after any ambiguous failure — the next attempt waits for the epoch to
  advance, no matter how the proofs interleave;
* OVERLOAD is proof: it may be retried against the *same* incarnation
  freely, and a run of nothing-but-proofs resolves ``failed``, never
  ``maybe``;
* ``maybe`` appears exactly when ambiguity was seen and never resolved
  by a later definitive completion;
* the attempt budget is respected.

The driver replays :func:`repro.recovery.retry.retry_request` against a
scripted fake API — no network, no simulator — so hypothesis can sweep
thousands of interleavings per second.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import RequestStatus
from repro.recovery.retry import RetryPolicy, retry_request
from repro.sodal.api import Completion

SERVER_MID = 7

#: One scripted attempt outcome: (kind, epoch_bump_delay_us or None).
#: ``kind`` is what the next b_request completes with; the delay says
#: when (relative to the attempt) the server's next incarnation shows
#: up in the detector — None means it never does.
Step = Tuple[str, Optional[float]]


class _FakeTrace:
    def __init__(self):
        self.records: List[Tuple[float, str]] = []

    def record(self, now, category, **fields):
        self.records.append((now, category))


class _FakeSim:
    def __init__(self):
        self.trace = _FakeTrace()


class _FakeDetector:
    """Epoch witness: incarnations appear at scripted absolute times."""

    def __init__(self, api):
        self._api = api
        self._bumps: List[float] = []

    def schedule_bump(self, at_us: float) -> None:
        self._bumps.append(at_us)

    def epoch(self, mid: int) -> int:
        return sum(1 for at in self._bumps if self._api.now >= at)


class _ScriptedApi:
    """Just enough API surface for retry_request, fully scripted.

    ``b_request``/``discover_all`` are generator functions with an
    unreachable ``yield`` so ``yield from`` works and their ``return``
    value comes back through StopIteration, exactly like the real API.
    """

    def __init__(self, script: List[Step]):
        self.now = 0.0
        self.my_mid = 1
        self.sim = _FakeSim()
        self.script = list(script)
        self.detector = _FakeDetector(self)
        #: (issue time, epoch at issue) per b_request actually sent.
        self.issued: List[Tuple[float, int]] = []
        self.consumed: List[str] = []

    def compute(self, us: float):
        return ("compute", us)

    def discover_all(self, pattern, max_replies=8):
        return [SERVER_MID]
        yield  # pragma: no cover - makes this a generator

    def b_request(self, signature, arg=0, put=None, get=None):
        kind, bump_delay = (
            self.script.pop(0) if self.script else ("overload", None)
        )
        self.consumed.append(kind)
        self.issued.append((self.now, self.detector.epoch(SERVER_MID)))
        if bump_delay is not None:
            # The crash report (and reboot) land this much later —
            # possibly long after the failed completion is delivered.
            self.detector.schedule_bump(self.now + bump_delay)
        self.now += 1_000.0  # a request takes a moment
        if kind == "completed":
            return Completion(RequestStatus.COMPLETED, arg=0)
        if kind == "rejected":
            return Completion(RequestStatus.REJECTED, arg=-1)
        if kind == "overload":
            return Completion(RequestStatus.OVERLOADED, not_executed=True)
        return Completion(RequestStatus.CRASHED, not_executed=None)
        yield  # pragma: no cover - makes this a generator


def _run(script: List[Step], policy: RetryPolicy):
    """Drive retry_request to its outcome, advancing time per compute."""
    api = _ScriptedApi(script)
    gen = retry_request(
        api, pattern=object(), policy=policy, detector=api.detector
    )
    try:
        step = next(gen)
        while True:
            kind, us = step
            assert kind == "compute"
            api.now += us
            step = gen.send(None)
    except StopIteration as stop:
        return stop.value, api


POLICY = RetryPolicy(
    max_attempts=6,
    deadline_us=60_000_000.0,
    backoff_base_us=10_000.0,
    backoff_max_us=100_000.0,
)

#: An attempt outcome: OVERLOAD proofs, ambiguous crashes whose epoch
#: evidence arrives promptly, late, or never, and definitive endings.
steps = st.lists(
    st.one_of(
        st.just(("overload", None)),
        st.just(("completed", None)),
        st.just(("rejected", None)),
        st.tuples(
            st.just("crashed"),
            st.one_of(
                st.none(),  # incarnation never returns
                st.floats(min_value=0.0, max_value=500_000.0),  # prompt
                st.floats(  # proof arrives late, near the deadline
                    min_value=10_000_000.0, max_value=50_000_000.0
                ),
            ),
        ),
    ),
    min_size=1,
    max_size=8,
)


@given(script=steps)
@settings(max_examples=300, deadline=None)
def test_at_most_one_ambiguous_attempt_per_incarnation(script):
    """After an ambiguous failure, the same incarnation is never
    re-asked — every subsequent attempt sees a strictly newer epoch."""
    _outcome, api = _run(list(script), POLICY)
    last_ambiguous_epoch: Optional[int] = None
    for (at, epoch), kind in zip(api.issued, api.consumed):
        if last_ambiguous_epoch is not None:
            assert epoch > last_ambiguous_epoch, (
                f"attempt at t={at} reused incarnation {epoch} after an "
                f"ambiguous failure at that epoch (script={script})"
            )
            last_ambiguous_epoch = None
        if kind == "crashed":
            last_ambiguous_epoch = epoch


@given(script=steps)
@settings(max_examples=300, deadline=None)
def test_outcome_matches_evidence(script):
    outcome, api = _run(list(script), POLICY)
    assert outcome.attempts == len(api.issued)
    assert outcome.attempts <= POLICY.max_attempts
    if outcome.status == "completed":
        assert api.consumed[-1] == "completed"
    elif outcome.status == "rejected":
        assert api.consumed[-1] == "rejected"
    elif outcome.status == "failed":
        # A provable-failure verdict must never hide ambiguity.
        assert "crashed" not in api.consumed
    else:
        # Ambiguity, once seen, only a definitive completion can clear:
        # a later attempt's OVERLOAD proof covers that attempt alone,
        # never the earlier ambiguous one.
        assert outcome.status == "maybe"
        assert "crashed" in api.consumed
        assert api.consumed[-1] not in ("completed", "rejected")


@given(proofs=st.integers(min_value=1, max_value=10))
@settings(max_examples=50, deadline=None)
def test_pure_overload_runs_resolve_failed_not_maybe(proofs):
    """OVERLOAD is proof of non-execution: retried freely against the
    same incarnation, and exhausting the budget on proofs is 'failed'."""
    outcome, api = _run([("overload", None)] * proofs, POLICY)
    assert outcome.status == "failed"
    # The script pads with OVERLOAD once exhausted, so the retry loop
    # always spends its whole budget on proofs.
    assert outcome.attempts == POLICY.max_attempts
    # All attempts hit the same incarnation: no epoch ever advanced.
    assert {epoch for _, epoch in api.issued} == {0}


@given(bump_delay=st.floats(min_value=0.0, max_value=1_000_000.0))
@settings(max_examples=50, deadline=None)
def test_ambiguous_then_epoch_bump_retries_new_incarnation(bump_delay):
    """Crash with a (possibly late) reboot: the retry lands on the new
    incarnation and completes — applied at most once per incarnation."""
    outcome, api = _run([("crashed", bump_delay), ("completed", None)], POLICY)
    assert outcome.status == "completed"
    assert outcome.attempts == 2
    (_t0, e0), (_t1, e1) = api.issued
    assert e0 == 0 and e1 == 1


def test_ambiguous_without_evidence_is_maybe():
    outcome, api = _run([("crashed", None)], POLICY)
    assert outcome.status == "maybe"
    assert outcome.attempts == 1
    assert any(c == "recovery.maybe" for _, c in api.sim.trace.records)
