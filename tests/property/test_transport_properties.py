"""Property-based tests for the adaptive transport policy (ISSUE 5).

Three properties pin the estimator's contract:

* the computed retry delay never drops below one maximum-size frame's
  wire time, whatever garbage the estimator has been fed;
* Karn's rule holds end-to-end — an acknowledgement that releases a
  retransmitted message never feeds the estimator; the next *fresh*
  send acked on its first attempt does;
* the regression the adaptive policy exists to fix: on a slow but
  lossless path (RTT above the static 60 ms timer) the static policy
  retransmits spuriously on every message forever, while the adaptive
  policy converges after at most a couple of messages and then stays
  clean.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import KernelConfig
from repro.core.connection import Connection, OutboundMessage
from repro.sim import Simulator
from repro.transport.adaptive import (
    AdaptivePolicy,
    RttEstimator,
    deltat_for_policy,
)
from repro.transport.packet import Packet, PacketType
from repro.transport.retransmit import StaticPolicy


# ----------------------------------------------------------------------
# harness: a Connection over a lossless fixed-RTT path
# ----------------------------------------------------------------------


class _SlowPath:
    """Stub kernel: every first copy of a message is acked ``rtt_us``
    after transmission, echoing that copy's timestamp (retransmitted
    copies are delivered but produce no further acks — the path is slow,
    not lossy)."""

    def __init__(self, policy, rtt_us, seed=5):
        self.sim = Simulator(seed=seed)
        self.config = KernelConfig(
            retransmit=policy, deltat=deltat_for_policy(policy)
        )
        self.mid = 0
        self.sent = []
        self._acked_pids = set()
        self.rtt_us = rtt_us
        self.conn = Connection(self, peer_mid=9)

    def transmit_packet(self, dst, packet, copy_bytes=0, sequenced=False):
        self.sent.append(packet)
        if packet.packet_id in self._acked_pids:
            return
        self._acked_pids.add(packet.packet_id)
        echo, seq = packet.tx_us, packet.seq
        self.sim.schedule(
            self.rtt_us,
            lambda: self.conn.handle_ack(seq, echo_tx_us=echo),
        )

    def send(self, count):
        for tid in range(count):
            self.conn.enqueue(
                OutboundMessage(
                    Packet(PacketType.REQUEST, tid=tid), "request"
                )
            )
        self.sim.run(until=120_000_000.0)

    def count(self, category):
        return sum(
            1
            for rec in self.sim.trace.records
            if rec.category == category
        )


# ----------------------------------------------------------------------
# property 1: the timeout never undercuts one max-frame wire time
# ----------------------------------------------------------------------


@given(
    samples=st.lists(
        st.floats(min_value=0.0, max_value=500_000.0),
        min_size=0,
        max_size=32,
    ),
    attempt=st.integers(min_value=1, max_value=8),
    data_bytes=st.integers(min_value=0, max_value=4096),
    backoffs=st.integers(min_value=0, max_value=10),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_adaptive_timeout_floor(samples, attempt, data_bytes, backoffs, seed):
    policy = AdaptivePolicy()
    estimator = RttEstimator()
    for rtt in samples:
        estimator.sample(rtt)
    for _ in range(backoffs):
        estimator.back_off(policy.backoff_growth)
    delay = policy.ack_retry_delay(
        attempt, random.Random(seed), data_bytes, estimator
    )
    assert delay >= policy.min_timeout_us
    assert delay <= policy.retry_window_bound_us(1, data_bytes)


# ----------------------------------------------------------------------
# property 2: Karn's rule
# ----------------------------------------------------------------------


@given(
    slow_rtt_us=st.floats(min_value=70_000.0, max_value=135_000.0),
    fast_rtt_us=st.floats(min_value=1_000.0, max_value=20_000.0),
    seed=st.integers(min_value=1, max_value=2**16),
)
@settings(max_examples=20, deadline=None)
def test_karn_rule_holds(slow_rtt_us, fast_rtt_us, seed):
    """An ack releasing a retransmitted message never feeds the
    estimator; the next fresh send acked on attempt 1 does."""
    path = _SlowPath(AdaptivePolicy(), slow_rtt_us, seed=seed)
    path.send(1)
    assert path.count("conn.retransmit") >= 1  # the slow path forced one
    assert path.conn.estimator.samples == 0  # ...so Karn suppressed it

    # Fresh message on a now-fast path: first-attempt ack, clean sample.
    path.rtt_us = fast_rtt_us
    path.conn.enqueue(
        OutboundMessage(Packet(PacketType.REQUEST, tid=99), "request")
    )
    path.sim.run(until=path.sim.now + 60_000_000.0)
    assert path.conn.estimator.samples == 1
    assert path.conn.estimator.srtt_us is not None
    assert path.conn.estimator.srtt_us >= fast_rtt_us - 1.0


# ----------------------------------------------------------------------
# property 3: spurious-retransmit regression on a slow lossless path
# ----------------------------------------------------------------------


@given(
    rtt_us=st.floats(min_value=70_000.0, max_value=135_000.0),
    seed=st.integers(min_value=1, max_value=2**16),
)
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_adaptive_beats_static_on_slow_lossless_path(rtt_us, seed):
    """RTT above the static 60 ms timer: static spuriously retransmits
    every message forever; adaptive converges and goes quiet."""
    messages = 8
    static = _SlowPath(StaticPolicy(), rtt_us, seed=seed)
    static.send(messages)
    adaptive = _SlowPath(AdaptivePolicy(), rtt_us, seed=seed)
    adaptive.send(messages)

    static_spurious = static.count("conn.spurious_retransmit")
    adaptive_spurious = adaptive.count("conn.spurious_retransmit")
    # Static never learns: every single message is retransmitted
    # spuriously (the path loses nothing).
    assert static_spurious >= messages - 1
    # Adaptive pays at most a short warmup, then stays clean.
    assert adaptive_spurious <= 2
    assert adaptive_spurious < static_spurious
    # And the estimator actually learned the path.
    assert adaptive.conn.estimator.srtt_us is not None
    assert adaptive.conn.estimator.srtt_us >= 0.9 * rtt_us
