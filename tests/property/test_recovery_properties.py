"""Property-based recovery tests: at-most-once across crash + reboot.

The curated recovery schedules pin three crash timings; these
properties explore the crash/reboot timing axes randomly and check the
PR's core safety claim: the safe-retry shim never causes a double
execution *within a server incarnation*, no matter where the crash
lands — an op re-issued after an ambiguous failure may run on the new
incarnation, but the state the lost attempt built died with the old
one (§3.6.1), and each incarnation sees each op at most once.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chaos import RECOVERY_SCHEDULES, check_liveness, run_cell
from repro.core import Buffer, ClientProgram, KernelConfig, Network
from repro.core.patterns import make_well_known_pattern
from repro.recovery import FailureDetector, RetryPolicy, retry_request

PATTERN = make_well_known_pattern(0o202)


class _PayloadServer(ClientProgram):
    """One incarnation of the echo service; records what it executed."""

    def __init__(self):
        self.payloads = []

    def initialization(self, api, parent_mid):
        yield from api.advertise(PATTERN)

    def handler(self, api, event):
        if not event.is_arrival:
            return
        buf = Buffer(event.put_size)
        yield from api.accept_current_exchange(get=buf, put=b"pong")
        self.payloads.append(buf.data)


class _SafeRetryClient(ClientProgram):
    """A paced op stream through the retry shim, epoch-gated."""

    def __init__(self, detector, total=4, gap_us=120_000.0):
        self.detector = detector
        self.total = total
        self.gap_us = gap_us
        self.outcomes = []

    def task(self, api):
        policy = RetryPolicy(max_attempts=5, deadline_us=4_000_000.0)
        for i in range(self.total):
            outcome = yield from retry_request(
                api,
                PATTERN,
                put=b"op%d" % i,
                get=16,
                policy=policy,
                detector=self.detector,
            )
            self.outcomes.append(outcome.status)
            yield api.compute(self.gap_us)
        yield from api.serve_forever()


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=5_000),
    crash_ms=st.integers(min_value=2, max_value=500),
    reboot_delay_ms=st.integers(min_value=20, max_value=800),
    power_failure=st.booleans(),
)
def test_no_double_execution_per_incarnation(
    seed, crash_ms, reboot_delay_ms, power_failure
):
    net = Network(seed=seed, config=KernelConfig(probe_interval_us=50_000.0))
    incarnations = [_PayloadServer()]
    server_node = net.add_node(program=incarnations[0], name="server")
    detector = FailureDetector().install(net)
    client = _SafeRetryClient(detector)
    net.add_node(program=client, boot_at_us=100.0)

    def crash_and_reboot():
        if power_failure:
            server_node.crash()  # whole-kernel loss + quiet period
        else:
            server_node.crash_client()  # DIE: kernel memory survives
        quiet = net.config.deltat.crash_quiet_us if power_failure else 0.0
        incarnations.append(_PayloadServer())
        server_node.client = None
        server_node.install_program(
            incarnations[-1],
            boot_at_us=net.sim.now + quiet + reboot_delay_ms * 1_000.0,
        )

    net.sim.schedule(crash_ms * 1_000.0, crash_and_reboot)
    net.run(until=60_000_000.0)

    # Termination: every logical op reached a verdict and nothing leaks.
    assert len(client.outcomes) == client.total
    assert set(client.outcomes) <= {"completed", "maybe", "failed"}
    problems = check_liveness(net)
    assert problems == [], "\n".join(problems)

    # At-most-once per incarnation: no op payload executed twice within
    # one server lifetime, ever.
    for incarnation in incarnations:
        assert len(incarnation.payloads) == len(set(incarnation.payloads))

    # A FAILED op is *provably* unexecuted: every attempt ended in a
    # non-execution proof (NACK, queued-exhaustion, probe arg=2), so no
    # incarnation may have run it to completion.  (A COMPLETED op's
    # record can legitimately be missing: the DIE may land between the
    # protocol-level ACCEPT and the handler's own bookkeeping.)
    executed = [p for inc in incarnations for p in inc.payloads]
    for i, status in enumerate(client.outcomes):
        if status == "failed":
            assert b"op%d" % i not in executed


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=1, max_value=50),
    schedule=st.sampled_from(sorted(RECOVERY_SCHEDULES)),
)
def test_supervised_workload_always_selfheals(seed, schedule):
    result = run_cell("supervised", schedule, seed=seed)
    failures = (
        result.invariant_violations
        + result.liveness_problems
        + result.selfheal_problems
    )
    assert result.ok, "\n".join(failures)
    # Whatever the seed, the service ends the run healed, never
    # escalated, and with no false suspicions minted by noise.
    assert result.recovery["counts"]["escalations"] == 0
