"""Property-based tests for extension encodings and transfers."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.extensions.multipacket import _decode_arg, _encode_arg
from repro.facilities.links import LinkRole, _decode_end, _encode_end
from repro.facilities.connector import _decode_entry, _encode_entry
from repro.core.signatures import ServerSignature


@given(
    block_id=st.integers(min_value=0, max_value=2**16 - 1),
    index=st.integers(min_value=0, max_value=2**12 - 1),
    final=st.booleans(),
)
def test_multipacket_arg_round_trip(block_id, index, final):
    assert _decode_arg(_encode_arg(block_id, index, final)) == (
        block_id,
        index,
        final,
    )


@given(
    role=st.sampled_from(list(LinkRole)),
    mid=st.integers(min_value=0, max_value=2**16 - 1),
    pattern=st.integers(min_value=0, max_value=2**48 - 1),
)
def test_link_end_encoding_round_trip(role, mid, pattern):
    encoded = _encode_end(role, mid, pattern)
    assert len(encoded) == 9
    assert _decode_end(encoded) == (role, mid, pattern)


@given(
    mid=st.integers(min_value=0, max_value=2**16 - 1),
    pattern=st.integers(min_value=0, max_value=2**48 - 1),
)
def test_switchboard_entry_round_trip(mid, pattern):
    sig = ServerSignature(mid, pattern)
    assert _decode_entry(_encode_entry(sig)) == sig


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    payload=st.binary(min_size=0, max_size=9000),
    chunk=st.integers(min_value=200, max_value=4096),
    seed=st.integers(min_value=0, max_value=500),
)
def test_multipacket_block_round_trip(payload, chunk, seed):
    from repro.core import ClientProgram, Network
    from repro.core.patterns import make_well_known_pattern
    from repro.extensions.multipacket import BlockReceiverMixin, put_block

    PATTERN = make_well_known_pattern(0o223)

    class Sink(BlockReceiverMixin, ClientProgram):
        block_pattern = PATTERN

        def __init__(self):
            self.blocks = []

        def on_block(self, sender_mid, block_id, data):
            self.blocks.append((sender_mid, block_id, data))

    class Sender(ClientProgram):
        def task(self, api):
            yield from put_block(
                api, api.server_sig(0, PATTERN), payload,
                block_id=5, chunk_bytes=chunk,
            )
            yield from api.serve_forever()

    net = Network(seed=seed, keep_trace=False)
    sink = Sink()
    net.add_node(program=sink)
    net.add_node(program=Sender(), boot_at_us=100.0)
    net.run(until=300_000_000.0)
    assert sink.blocks == [(1, 5, payload)]
