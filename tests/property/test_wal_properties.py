"""Property-based attack on the WAL record codec.

Crash recovery is built on one contract: ``decode_records`` returns the
longest cleanly-decodable *prefix* of whatever bytes survived, and
never raises.  Hypothesis drives the three ways a log gets damaged —
truncation anywhere (torn write), a single flipped bit anywhere
(bit-rot), and arbitrary garbage (catastrophic corruption) — plus the
plain round-trip that makes the rest meaningful.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.durability.wal import decode_records, encode_record

#: (rtype, payload) streams; payloads skew small but reach a few KiB.
records_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=255),
        st.binary(max_size=2048),
    ),
    max_size=12,
)


@given(records=records_strategy)
def test_roundtrip(records):
    data = b"".join(encode_record(r, p) for r, p in records)
    decoded, consumed, clean = decode_records(data)
    assert clean
    assert consumed == len(data)
    assert decoded == records


@given(records=records_strategy, data=st.data())
def test_any_truncation_yields_a_record_prefix(records, data):
    """Cutting the byte stream anywhere loses only a record suffix —
    never a middle record, never garbage decoded from a partial tail."""
    encoded = b"".join(encode_record(r, p) for r, p in records)
    cut = data.draw(st.integers(min_value=0, max_value=len(encoded)))
    decoded, consumed, clean = decode_records(encoded[:cut])
    assert decoded == records[: len(decoded)]  # a prefix, in order
    assert consumed <= cut
    if clean:
        assert consumed == cut


@given(records=records_strategy, data=st.data())
def test_single_bit_corruption_is_always_detected(records, data):
    """No single flipped bit anywhere in the stream can smuggle a
    changed record through: decoding stops at (or before) the damaged
    frame, and everything decoded is an honest prefix."""
    encoded = b"".join(encode_record(r, p) for r, p in records)
    if not encoded:
        return
    bit = data.draw(st.integers(min_value=0, max_value=len(encoded) * 8 - 1))
    damaged = bytearray(encoded)
    damaged[bit // 8] ^= 1 << (bit % 8)
    decoded, _consumed, clean = decode_records(bytes(damaged))
    assert not clean  # the flip never goes unnoticed
    assert decoded == records[: len(decoded)]


@settings(max_examples=200)
@given(junk=st.binary(max_size=4096))
def test_decoder_never_crashes_on_arbitrary_bytes(junk):
    decoded, consumed, clean = decode_records(junk)
    assert 0 <= consumed <= len(junk)
    assert clean == (consumed == len(junk))
    # Whatever decoded re-encodes to exactly the consumed prefix.
    assert b"".join(encode_record(r, p) for r, p in decoded) == junk[:consumed]
