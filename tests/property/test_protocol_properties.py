"""Property-based tests on protocol invariants.

The big one: under arbitrary frame loss, the transport still delivers
every transaction's data exactly once, in per-sender order — the §3.3
reliability guarantee.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Buffer, ClientProgram, Network, RequestStatus
from repro.core.patterns import (
    PatternTable,
    UniqueIdGenerator,
    make_well_known_pattern,
)
from repro.net.errors import FaultPlan
from repro.transport.deltat import DeltaTConfig, DeltaTRecord

PATTERN = make_well_known_pattern(0o200)


class _Sink(ClientProgram):
    def __init__(self):
        self.received = []

    def initialization(self, api, parent_mid):
        yield from api.advertise(PATTERN)

    def handler(self, api, event):
        if event.is_arrival:
            buf = Buffer(event.put_size)
            yield from api.accept_current_put(get=buf)
            self.received.append(buf.data)


class _Sender(ClientProgram):
    def __init__(self, payloads):
        self.payloads = payloads
        self.statuses = []

    def task(self, api):
        for payload in self.payloads:
            completion = yield from api.b_put(
                api.server_sig(0, PATTERN), put=payload
            )
            self.statuses.append(completion.status)
        yield from api.serve_forever()


def _is_subsequence(smaller, larger) -> bool:
    it = iter(larger)
    return all(item in it for item in smaller)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    loss=st.floats(min_value=0.0, max_value=0.3),
    bodies=st.lists(
        st.binary(min_size=0, max_size=119), min_size=1, max_size=4
    ),
)
def test_no_loss_no_duplication_no_reorder_under_loss(seed, loss, bodies):
    """The §3.3 reliability contract, stated honestly for a bounded-
    retransmission transport: a request either COMPLETEs (its payload
    was delivered) or is reported failed; deliveries never duplicate and
    never reorder.  (At extreme loss a payload reported CRASHED may
    still have been delivered -- the classic two-generals residue -- so
    failures make no delivery claim either way.)"""
    payloads = [bytes([i]) + body for i, body in enumerate(bodies)]
    net = Network(seed=seed, faults=FaultPlan(loss_probability=loss))
    sink = _Sink()
    sender = _Sender(payloads)
    net.add_node(program=sink)
    net.add_node(program=sender, boot_at_us=50.0)
    net.run(until=240_000_000.0)
    # Every request got a verdict.
    assert len(sender.statuses) == len(payloads)
    # No duplication.
    assert len(sink.received) == len(set(sink.received))
    # No reordering: deliveries form a subsequence of the sends.
    assert _is_subsequence(sink.received, payloads)
    # Every COMPLETED payload was delivered.
    for payload, status in zip(payloads, sender.statuses):
        if status is RequestStatus.COMPLETED:
            assert payload in sink.received
    # With a reliable bus, everything completes.
    if loss == 0.0:
        assert sender.statuses == [RequestStatus.COMPLETED] * len(payloads)


@settings(max_examples=50, deadline=None)
@given(
    seqs=st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=30),
    gap_choices=st.lists(
        st.floats(min_value=0.0, max_value=300.0), min_size=1, max_size=30
    ),
)
def test_deltat_never_delivers_consecutive_duplicates(seqs, gap_choices):
    cfg = DeltaTConfig(mpl_us=50.0, r_us=100.0, a_us=10.0)
    record = DeltaTRecord(cfg)
    now = 0.0
    delivered = []
    for i, seq in enumerate(seqs):
        gap = gap_choices[i % len(gap_choices)]
        now += gap
        verdict = record.classify(seq, now)
        if verdict == "new":
            delivered.append((seq, now))
    # Within any synchronized window, delivered sequence numbers must
    # alternate: two equal consecutive deliveries can only be separated
    # by a take-any expiry.
    for (s1, t1), (s2, t2) in zip(delivered, delivered[1:]):
        if s1 == s2:
            assert t2 - t1 >= cfg.take_any_after_us


@settings(max_examples=50, deadline=None)
@given(
    serials=st.lists(
        st.integers(min_value=0, max_value=255), min_size=1, max_size=5,
        unique=True,
    ),
    draws=st.integers(min_value=1, max_value=60),
)
def test_unique_ids_globally_unique(serials, draws):
    gens = [UniqueIdGenerator(serial=s) for s in serials]
    seen = set()
    for gen in gens:
        for _ in range(draws):
            pattern = gen.next_pattern()
            assert pattern not in seen
            seen.add(pattern)


@settings(max_examples=60, deadline=None)
@given(
    patterns=st.lists(
        st.integers(min_value=0, max_value=(1 << 46) - 1),
        min_size=1,
        max_size=40,
    ),
)
def test_pattern_table_exact_semantics_matches_set_model(patterns):
    table = PatternTable()
    model = set()
    for i, pattern in enumerate(patterns):
        if i % 3 == 2:
            table.unadvertise(pattern)
            model.discard(pattern)
        else:
            table.advertise(pattern)
            model.add(pattern)
    for pattern in patterns:
        assert table.matches(pattern) == (pattern in model)
    assert set(table.advertised()) == model


@settings(max_examples=60, deadline=None)
@given(
    patterns=st.lists(
        st.integers(min_value=0, max_value=(1 << 46) - 1),
        min_size=1,
        max_size=40,
    ),
)
def test_direct_index_table_models_256_slots(patterns):
    table = PatternTable(direct_index=True)
    slots = {}
    for pattern in patterns:
        table.advertise(pattern)
        slots[pattern & 0xFF] = pattern
    for pattern in patterns:
        assert table.matches(pattern) == (slots.get(pattern & 0xFF) == pattern)
