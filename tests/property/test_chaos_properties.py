"""Property-based chaos tests: at-most-once delivery under loss.

The chaos sweep (repro.chaos) explores a handful of curated fault
schedules; these properties explore the loss-probability axis randomly.
For any seed and any loss rate up to 0.2, a PUT / GET / EXCHANGE
workload must *terminate* (every request reaches a verdict, nothing
stays wedged) and the server must ACCEPT each transaction *at most
once* — a retransmitted REQUEST must never be re-delivered to the
handler (§3.3, Delta-t duplicate detection).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chaos import check_liveness
from repro.core import Buffer, ClientProgram, Network
from repro.core.patterns import make_well_known_pattern
from repro.net.errors import FaultPlan

PATTERN = make_well_known_pattern(0o201)


class _AllVerbServer(ClientProgram):
    """Accepts every arrival, whatever the verb shape."""

    def __init__(self):
        self.accepted = 0

    def initialization(self, api, parent_mid):
        yield from api.advertise(PATTERN)

    def handler(self, api, event):
        if not event.is_arrival:
            return
        self.accepted += 1
        reply = b"r" * min(event.get_size, 8) if event.get_size else None
        if event.put_size:
            buf = Buffer(event.put_size)
            yield from api.accept_current_exchange(get=buf, put=reply)
        else:
            yield from api.accept_current(put=reply)


class _VerbClient(ClientProgram):
    """One PUT, one GET, one EXCHANGE; records every verdict."""

    def __init__(self):
        self.statuses = []

    def task(self, api):
        server = api.server_sig(0, PATTERN)
        for verb in ("put", "get", "exchange"):
            reply = Buffer(16)
            if verb == "put":
                completion = yield from api.b_put(server, put=b"payload")
            elif verb == "get":
                completion = yield from api.b_get(server, get=reply)
            else:
                completion = yield from api.b_exchange(
                    server, put=b"ping", get=reply
                )
            self.statuses.append(completion.status)
        yield from api.serve_forever()


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    loss=st.floats(min_value=0.0, max_value=0.2),
)
def test_verbs_terminate_with_at_most_once_delivery(seed, loss):
    net = Network(seed=seed, faults=FaultPlan(loss_probability=loss))
    server = _AllVerbServer()
    client = _VerbClient()
    net.add_node(program=server)
    net.add_node(program=client, boot_at_us=50.0)
    net.run(until=120_000_000.0)

    # Termination: every request reached a verdict (COMPLETED or a
    # failure — either is a terminal answer) ...
    assert len(client.statuses) == 3
    # ... and nothing is left wedged or leaking at the horizon.
    problems = check_liveness(net)
    assert problems == [], "\n".join(problems)

    # At-most-once: the server never ACCEPTed the same transaction
    # twice, no matter how many times loss forced a REQUEST retransmit.
    accepts = [
        r for r in net.sim.trace.records if r.category == "kernel.accept"
    ]
    keys = [(r["mid"], r["src"], r["tid"]) for r in accepts]
    assert len(keys) == len(set(keys)), f"duplicate ACCEPT: {sorted(keys)}"
    assert server.accepted == len(accepts)
