"""sodalint rule tests driven by the fixture programs.

Every rule has a ``bad_sodaNNN.py`` fixture that must trip exactly that
rule and an ``ok_sodaNNN.py`` counterpart that must lint clean; the
pragma fixtures prove suppression is scoped to the named rule.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import (
    Diagnostic,
    LintConfig,
    Linter,
    LintRule,
    Severity,
    all_rules,
    get_rule,
    lint_paths,
    register_rule,
)
from repro.analysis.linter import PARSE_ERROR_RULE, has_errors
from repro.analysis.rules import _REGISTRY

FIXTURES = Path(__file__).parent / "fixtures"
RULE_IDS = ["SODA001", "SODA002", "SODA003", "SODA004", "SODA005", "SODA006"]


def lint_fixture(name: str, config: LintConfig = None):
    return Linter(config).lint_file(FIXTURES / name)


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_bad_fixture_trips_exactly_its_rule(rule_id):
    diags = lint_fixture(f"bad_{rule_id.lower()}.py")
    assert diags, f"bad fixture for {rule_id} produced no diagnostics"
    assert {d.rule_id for d in diags} == {rule_id}
    assert has_errors(diags)


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_ok_fixture_is_clean(rule_id):
    assert lint_fixture(f"ok_{rule_id.lower()}.py") == []


def test_registry_has_all_builtin_rules():
    assert {rule.rule_id for rule in all_rules()} >= set(RULE_IDS)
    for rule_id in RULE_IDS:
        rule = get_rule(rule_id)
        assert rule.rule_id == rule_id
        assert rule.summary


def test_line_pragma_suppresses_only_named_rule():
    diags = lint_fixture("pragma_line.py")
    rule_ids = {d.rule_id for d in diags}
    assert "SODA003" not in rule_ids, "line pragma should suppress SODA003"
    assert "SODA005" in rule_ids, "pragma must not swallow other rules"


def test_filewide_pragma_covers_whole_file():
    diags = lint_fixture("pragma_filewide.py")
    rule_ids = {d.rule_id for d in diags}
    assert "SODA005" not in rule_ids
    assert "SODA001" in rule_ids


def test_config_disable_and_enabled_only():
    bad = FIXTURES / "bad_soda001.py"
    assert Linter(LintConfig(disabled=frozenset({"SODA001"}))).lint_file(bad) == []
    only_006 = Linter(LintConfig(enabled_only=frozenset({"SODA006"})))
    assert only_006.lint_file(bad) == []
    diags = Linter(LintConfig(enabled_only=frozenset({"SODA001"}))).lint_file(bad)
    assert {d.rule_id for d in diags} == {"SODA001"}


def test_syntax_error_becomes_soda000():
    diags = Linter().lint_source("def broken(:\n", "broken.py")
    assert len(diags) == 1
    assert diags[0].rule_id == PARSE_ERROR_RULE
    assert diags[0].severity is Severity.ERROR


def test_diagnostic_format_is_clickable():
    diag = Diagnostic(
        rule_id="SODA001", message="boom", file="x.py", line=3, col=4
    )
    assert diag.format() == "x.py:3:4: SODA001 [error] boom"


def test_extension_rule_registration_and_teardown():
    class NoSignalRule(LintRule):
        rule_id = "EXT901"
        summary = "forbid api.signal entirely"

        def check(self, model):
            import ast

            from repro.analysis.model import api_call_name

            for cls, node in model.walk_program_code():
                if isinstance(node, ast.Call) and api_call_name(node) == "signal":
                    yield self.diagnostic(model, node, "no signals allowed")

    register_rule(NoSignalRule)
    try:
        # A Linter built *before* registration still picks the rule up:
        # the rule list is resolved lazily from the registry.
        diags = Linter().lint_file(FIXTURES / "bad_soda003.py")
        assert "EXT901" in {d.rule_id for d in diags}
    finally:
        del _REGISTRY["EXT901"]
    assert "EXT901" not in {rule.rule_id for rule in all_rules()}


def test_lint_paths_walks_directories():
    diags = lint_paths([FIXTURES])
    found = {d.rule_id for d in diags}
    assert set(RULE_IDS) <= found
