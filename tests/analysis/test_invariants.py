"""Invariant checker tests: fabricated traces per invariant, plus a
seeded protocol bug that the checker must catch on a real run."""

from __future__ import annotations

import pytest

from repro.analysis.invariants import (
    InvariantChecker,
    check_network,
    check_network_degraded,
)
from repro.analysis.workloads import WORKLOADS, build_workload, run_workload
from repro.sim.tracing import CostLedger, Tracer
from repro.transport.retransmit import RetransmitPolicy


def checker(**kwargs) -> InvariantChecker:
    kwargs.setdefault("policy", RetransmitPolicy())
    return InvariantChecker(**kwargs)


def tx(trace, t, seq, pid, mid=1, dst=2, nbytes=0):
    trace.record(t, "kernel.tx", mid=mid, dst=dst, seq=seq, pid=pid, bytes=nbytes)


def invariants(violations):
    return {v.invariant for v in violations}


# -- INV-SEQ -----------------------------------------------------------


def test_clean_alternation_passes():
    trace = Tracer()
    tx(trace, 0.0, 0, 1)
    tx(trace, 100.0, 0, 1)  # retransmission keeps its bit
    tx(trace, 200.0, 1, 2)
    tx(trace, 300.0, 0, 3)
    assert checker().check(trace) == []


def test_reused_sequence_bit_is_flagged():
    trace = Tracer()
    tx(trace, 0.0, 0, 1)
    tx(trace, 100.0, 0, 2)
    assert invariants(checker().check(trace)) == {"INV-SEQ"}


def test_retransmission_changing_bit_is_flagged():
    trace = Tracer()
    tx(trace, 0.0, 0, 1)
    tx(trace, 100.0, 1, 1)
    assert invariants(checker().check(trace)) == {"INV-SEQ"}


def test_busy_nack_legitimizes_resync():
    trace = Tracer()
    tx(trace, 0.0, 0, 1)
    trace.record(50.0, "kernel.rx", mid=1, src=2, nack="busy")
    tx(trace, 100.0, 0, 2)
    assert checker().check(trace) == []


def test_seq_swap_legitimizes_resync():
    trace = Tracer()
    tx(trace, 0.0, 0, 1)
    trace.record(
        50.0, "conn.seq_swap", mid=1, peer=2, parked_pid=1, taker_pid=2, seq=0
    )
    tx(trace, 100.0, 0, 2)
    assert checker().check(trace) == []


def test_peer_dead_legitimizes_resync():
    trace = Tracer()
    tx(trace, 0.0, 0, 1)
    trace.record(50.0, "conn.peer_dead", mid=1, peer=2)
    tx(trace, 100.0, 0, 2)
    assert checker().check(trace) == []


# -- INV-DELTAT --------------------------------------------------------


def test_too_many_retransmissions_is_flagged():
    policy = RetransmitPolicy()
    trace = Tracer()
    for i in range(policy.max_ack_attempts + 2):
        tx(trace, i * 100.0, 0, 1)
    assert invariants(checker().check(trace)) == {"INV-DELTAT"}


def test_retransmission_window_bound_is_flagged():
    trace = Tracer()
    tx(trace, 0.0, 0, 1)
    tx(trace, 10_000_000.0, 0, 1)  # second send ten simulated seconds later
    assert invariants(checker().check(trace)) == {"INV-DELTAT"}


def test_busy_parked_messages_are_exempt():
    trace = Tracer()
    for i in range(20):
        tx(trace, i * 1_000_000.0, 0, 1)
    trace.record(5.0, "kernel.rx", mid=1, src=2, nack="busy")
    assert checker().check(trace) == []


# -- SODA007 (BUSY retry earlier than hinted) --------------------------


def tx_tid(trace, t, seq, pid, tid, mid=1, dst=2):
    trace.record(t, "kernel.tx", mid=mid, dst=dst, seq=seq, pid=pid, tid=tid)


def busy_rx(trace, t, hint=None, tid=None, mid=1, src=2):
    trace.record(t, "kernel.rx", mid=mid, src=src, nack="busy", hint=hint, tid=tid)


def test_busy_retry_earlier_than_hint_is_flagged():
    trace = Tracer()
    tx_tid(trace, 0.0, 0, 1, tid=7)
    busy_rx(trace, 500.0, hint=50_000.0, tid=7)
    tx_tid(trace, 10_000.0, 0, 1, tid=7)  # 40 ms before the hint allows
    assert invariants(checker().check(trace)) == {"SODA007"}


def test_busy_retry_honoring_hint_is_clean():
    trace = Tracer()
    tx_tid(trace, 0.0, 0, 1, tid=7)
    busy_rx(trace, 500.0, hint=50_000.0, tid=7)
    tx_tid(trace, 51_000.0, 0, 1, tid=7)
    assert checker().check(trace) == []


def test_hintless_busy_nack_does_not_bind():
    trace = Tracer()
    tx_tid(trace, 0.0, 0, 1, tid=7)
    busy_rx(trace, 500.0, hint=None, tid=7)
    tx_tid(trace, 600.0, 0, 1, tid=7)  # client's own schedule governs
    assert checker().check(trace) == []


def test_hint_for_other_transaction_does_not_bind():
    trace = Tracer()
    tx_tid(trace, 0.0, 0, 1, tid=7)
    busy_rx(trace, 500.0, hint=50_000.0, tid=9)
    tx_tid(trace, 600.0, 0, 1, tid=7)
    assert checker().check(trace) == []


def test_seq_swap_releases_the_hint():
    # A §5.2.3 priority swap parks the hinted message; its eventual
    # fresh send is a new transmission, not a bound BUSY retry.
    trace = Tracer()
    tx_tid(trace, 0.0, 0, 1, tid=7)
    busy_rx(trace, 500.0, hint=50_000.0, tid=7)
    trace.record(
        600.0, "conn.seq_swap", mid=1, peer=2, parked_pid=1, taker_pid=2, seq=0
    )
    tx_tid(trace, 700.0, 0, 2, tid=8)  # the priority taker
    tx_tid(trace, 1_000.0, 1, 3, tid=7)  # parked message resent early: fine
    assert checker().check(trace) == []


@pytest.mark.no_auto_invariants
def test_seeded_hint_blind_client_is_detected(monkeypatch):
    """A client that ignores the server's widened BUSY retry hint (the
    overload controller's load-spreading signal) must be caught by
    SODA007 when the trace is replayed."""
    from repro.chaos.runner import run_cell
    from repro.core.connection import Connection

    original = Connection.handle_busy_nack

    def hint_blind(self, nacked_seq, retry_hint_us=None):
        # Seeded bug: retry_hint_us is dropped on the floor.
        return original(self, nacked_seq, retry_hint_us=None)

    monkeypatch.setattr(Connection, "handle_busy_nack", hint_blind)
    result = run_cell("busy", "thundering_herd", seed=1)
    assert any("SODA007" in v for v in result.invariant_violations)


# -- INV-HANDLER -------------------------------------------------------


def test_nested_handler_is_flagged():
    trace = Tracer()
    trace.record(0.0, "kernel.interrupt", mid=3)
    trace.record(10.0, "kernel.interrupt", mid=3)
    assert invariants(checker().check(trace)) == {"INV-HANDLER"}


def test_alternating_handler_is_clean():
    trace = Tracer()
    for base in (0.0, 100.0):
        trace.record(base, "kernel.interrupt", mid=3)
        trace.record(base + 50.0, "kernel.endhandler", mid=3)
    assert checker().check(trace) == []


# -- INV-COMPLETE ------------------------------------------------------


def delivered(trace, t, state, mid=2, src=1, tid=7):
    trace.record(
        t, "kernel.delivered_state", mid=mid, src=src, tid=tid, state=state
    )


def test_illegal_transition_is_flagged():
    trace = Tracer()
    delivered(trace, 0.0, "accepted")  # accepted before delivered
    assert invariants(checker().check(trace)) == {"INV-COMPLETE"}


def test_unfinished_request_is_a_leak_in_strict_mode():
    trace = Tracer()
    delivered(trace, 0.0, "delivered")
    strict = checker(strict_completion=True).check(trace)
    assert invariants(strict) == {"INV-COMPLETE"}
    assert checker(strict_completion=False).check(trace) == []


def test_full_lifecycle_is_clean():
    trace = Tracer()
    delivered(trace, 0.0, "delivered")
    delivered(trace, 10.0, "accepted")
    delivered(trace, 20.0, "done")
    assert checker().check(trace) == []


def test_crash_forgives_unfinished_requests():
    trace = Tracer()
    delivered(trace, 0.0, "delivered", mid=5)
    trace.record(10.0, "kernel.crash", mid=5)
    assert checker(strict_completion=True).check(trace) == []


# -- INV-LEDGER --------------------------------------------------------


def test_unknown_ledger_category_is_flagged():
    ledger = CostLedger()
    ledger.charge("protocol", 10.0)
    ledger.charge("bogus", 1.0)
    violations = checker().check(Tracer(), ledger=ledger)
    assert invariants(violations) == {"INV-LEDGER"}


def test_inconsistent_ledger_total_is_flagged():
    class BrokenLedger(CostLedger):
        def total(self):
            return super().total() + 42.0

    ledger = BrokenLedger()
    ledger.charge("protocol", 10.0)
    violations = checker().check(Tracer(), ledger=ledger)
    assert invariants(violations) == {"INV-LEDGER"}


def test_consistent_ledger_is_clean():
    ledger = CostLedger()
    ledger.charge("protocol", 10.0)
    ledger.charge("transmission", 2.5)
    assert checker().check(Tracer(), ledger=ledger) == []


# -- end-to-end --------------------------------------------------------


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_shipped_workloads_hold_all_invariants(name):
    net = run_workload(name)
    violations = check_network(net, strict_completion=True)
    assert violations == [], "\n".join(v.format() for v in violations)


@pytest.mark.no_auto_invariants
def test_seeded_ack_bug_is_detected(monkeypatch):
    """A kernel that stops flipping the alternating bit on ACK must be
    caught by INV-SEQ when the trace is replayed."""
    from repro.core.connection import Connection

    def sticky_ack(self, ack_seq, echo_tx_us=None, implicit=False):
        message = self.outstanding
        if message is None or message.packet.seq != ack_seq:
            return
        self.outstanding = None
        self._cancel_timer("_retransmit_timer")
        self._cancel_timer("_busy_timer")
        # Seeded bug: self.send_seq is never flipped here.
        if message.on_acked is not None:
            message.on_acked()
        self._pump()

    monkeypatch.setattr(Connection, "handle_ack", sticky_ack)
    net = run_workload("echo")
    violations = check_network(net, strict_completion=False)
    assert any(v.invariant == "INV-SEQ" for v in violations)


# -- degraded mode (truncated ring-buffer traces) ----------------------


def _truncated_run(name="stream", max_trace_records=200):
    built = build_workload(name, max_trace_records=max_trace_records)
    net = built.run()
    assert net.sim.trace.truncated, "workload too small to truncate"
    return net


def test_degraded_check_passes_on_truncated_healthy_run():
    net = _truncated_run()
    violations = check_network_degraded(net)
    assert violations == [], "\n".join(v.format() for v in violations)


def test_degraded_check_flags_handler_counter_imbalance():
    net = _truncated_run()
    # Simulate ENDHANDLER records going missing in the *counters*
    # (which truncation can never cause — a real imbalance is a bug).
    net.sim.trace.counters["kernel.interrupt"] += len(net.nodes) + 1
    violations = check_network_degraded(net)
    assert any(v.invariant == "INV-HANDLER" for v in violations)


def test_degraded_check_flags_wedged_connection():
    from types import SimpleNamespace

    net = _truncated_run()
    kernel = net.nodes[0].kernel
    conn = kernel._conn(1)
    conn._cancel_timer("_retransmit_timer")
    conn._cancel_timer("_busy_timer")
    conn.outstanding = SimpleNamespace(kind="data")
    violations = check_network_degraded(net)
    assert any(
        v.invariant == "INV-DELTAT" and "wedged" in v.message
        for v in violations
    )


def test_watcher_degrades_instead_of_skipping(recwarn):
    """The conftest watcher's degraded path: a truncated trace must
    yield the explicit 'invariants degraded' notice, not silence."""
    import warnings

    net = _truncated_run()
    with pytest.warns(UserWarning, match="invariants degraded"):
        warnings.warn(
            "trace ring buffer dropped records: invariants degraded "
            "(counter balance, live timers, ledger only)",
            stacklevel=2,
        )
    assert check_network_degraded(net) == []
