"""Causal engine tests: vector-clock properties on fabricated and real
traces, seeded-bug fixtures per SODA010-012 rule, and the SODA013
dining-philosophers no-arbitration deadlock."""

from __future__ import annotations

import pytest

from repro.analysis.causal import (
    build_causal_order,
    detect_deadlocks,
    find_races,
)
from repro.analysis.causal.clocks import happens_before_pairs
from repro.analysis.causal.waitfor import build_wait_graph
from repro.analysis.workloads import (
    CAUSAL_WORKLOADS,
    WORKLOADS,
    run_workload,
)
from repro.net.frame import BROADCAST_MID
from repro.sim.tracing import Tracer


def order_of(trace):
    return build_causal_order(list(trace.records))


def rules(diagnostics):
    return [d.rule_id for d in diagnostics]


# -- vector clocks on fabricated traces --------------------------------


def test_program_order_is_happens_before():
    trace = Tracer()
    trace.record(0.0, "kernel.request", mid=0, tid=1, dst=1)
    trace.record(10.0, "kernel.tx", mid=0, dst=1, seq=0, pid=1, fid=100)
    order = order_of(trace)
    assert order.happens_before(0, 1)
    assert not order.happens_before(1, 0)


def test_frame_id_draws_the_send_receive_edge():
    trace = Tracer()
    trace.record(0.0, "kernel.request", mid=0, tid=1, dst=1)
    trace.record(10.0, "kernel.tx", mid=0, dst=1, seq=0, pid=1, fid=100)
    trace.record(20.0, "kernel.rx", mid=1, src=0, fid=100)
    trace.record(
        30.0, "kernel.delivered_state", mid=1, src=0, tid=1, state="delivered"
    )
    order = order_of(trace)
    assert order.send_edges == 1
    assert order.unmatched_rx == 0
    # The REQUEST is in the delivery's causal past, through the wire.
    assert order.happens_before(0, 3)
    assert happens_before_pairs(order, [0, 3]) == [(0, 3)]


def test_events_without_an_edge_are_concurrent():
    trace = Tracer()
    trace.record(0.0, "kernel.request", mid=0, tid=1, dst=1)
    trace.record(5.0, "kernel.advertise", mid=1, pattern=0o700)
    order = order_of(trace)
    assert order.concurrent(0, 1)
    assert not order.ordered(0, 1)


def test_missing_fid_degrades_to_no_edge():
    trace = Tracer()
    trace.record(0.0, "kernel.tx", mid=0, dst=1, seq=0, pid=1)  # no fid
    trace.record(10.0, "kernel.rx", mid=1, src=0)  # no fid
    order = order_of(trace)
    assert order.send_edges == 0
    assert order.unmatched_rx == 0
    assert order.concurrent(0, 1)


def test_unmatched_frame_id_is_counted():
    trace = Tracer()
    trace.record(0.0, "kernel.rx", mid=1, src=0, fid=999)
    order = order_of(trace)
    assert order.unmatched_rx == 1


def test_broadcast_frame_fans_out_to_every_receiver():
    trace = Tracer()
    trace.record(
        0.0, "kernel.tx", mid=0, dst=BROADCAST_MID, seq=0, pid=1, fid=7
    )
    trace.record(10.0, "kernel.rx", mid=1, src=0, fid=7)
    trace.record(20.0, "kernel.rx", mid=2, src=0, fid=7)
    order = order_of(trace)
    assert order.send_edges == 2
    assert order.happens_before(0, 1)
    assert order.happens_before(0, 2)


def test_unicast_frame_joins_exactly_one_receiver():
    trace = Tracer()
    trace.record(0.0, "kernel.tx", mid=0, dst=1, seq=0, pid=1, fid=7)
    trace.record(10.0, "kernel.rx", mid=1, src=0, fid=7)
    trace.record(20.0, "kernel.rx", mid=2, src=0, fid=7)  # stale duplicate
    order = order_of(trace)
    assert order.send_edges == 1
    assert order.unmatched_rx == 1


def test_client_reset_starts_a_new_process_in_program_order():
    trace = Tracer()
    trace.record(0.0, "kernel.request", mid=0, tid=1, dst=1)
    trace.record(10.0, "kernel.client_reset", mid=0, epoch=1)
    trace.record(20.0, "kernel.request", mid=0, tid=1, dst=1)
    order = order_of(trace)
    assert order.proc(0) == (0, 0)
    assert order.proc(1) == (0, 1)  # the reset opens the new incarnation
    assert order.proc(2) == (0, 1)
    # Epochs chain: one physical kernel executes both incarnations.
    assert order.happens_before(0, 2)
    assert order.processes == [(0, 0), (0, 1)]


def test_real_echo_trace_orders_every_transaction():
    net = run_workload("echo")
    records = list(net.sim.trace.records)
    order = build_causal_order(records)
    assert order.unmatched_rx == 0
    assert order.send_edges > 0
    by_txn = {}
    for idx, rec in enumerate(records):
        if rec.category == "kernel.request":
            by_txn.setdefault((rec["mid"], rec["tid"]), {})["req"] = idx
        elif (
            rec.category == "kernel.delivered_state"
            and rec["state"] == "delivered"
        ):
            by_txn.setdefault((rec["src"], rec["tid"]), {})["del"] = idx
        elif rec.category == "kernel.complete":
            by_txn.setdefault((rec["mid"], rec["tid"]), {})["done"] = idx
    checked = 0
    for events in by_txn.values():
        if {"req", "del", "done"} <= set(events):
            assert order.happens_before(events["req"], events["del"])
            assert order.happens_before(events["del"], events["done"])
            checked += 1
    assert checked > 0


# -- SODA010: causality inversion --------------------------------------


def test_soda010_delivery_without_request_in_causal_past():
    trace = Tracer()
    trace.record(0.0, "kernel.request", mid=0, tid=5, dst=1)
    # Delivery with no wire edge back to the REQUEST: clock-concurrent.
    trace.record(
        20.0, "kernel.delivered_state", mid=1, src=0, tid=5, state="delivered"
    )
    records = list(trace.records)
    diags = find_races(records, build_causal_order(records))
    assert rules(diags) == ["SODA010"]
    assert "delivered at the server without the issuing REQUEST" in (
        diags[0].message
    )
    assert "clock-concurrent" in diags[0].witness


def test_soda010_completion_without_delivery_in_causal_past():
    trace = Tracer()
    trace.record(0.0, "kernel.request", mid=0, tid=5, dst=1)
    trace.record(10.0, "kernel.tx", mid=0, dst=1, seq=0, pid=1, fid=1)
    trace.record(20.0, "kernel.rx", mid=1, src=0, fid=1)
    trace.record(
        30.0, "kernel.delivered_state", mid=1, src=0, tid=5, state="delivered"
    )
    # COMPLETED interrupt with no reply frame: the effect has no cause.
    trace.record(40.0, "kernel.complete", mid=0, tid=5, status="completed")
    records = list(trace.records)
    diags = find_races(records, build_causal_order(records))
    assert rules(diags) == ["SODA010"]
    assert "completed COMPLETED without its delivery" in diags[0].message


def test_soda010_clean_when_wire_edges_close_the_loop():
    trace = Tracer()
    trace.record(0.0, "kernel.request", mid=0, tid=5, dst=1)
    trace.record(10.0, "kernel.tx", mid=0, dst=1, seq=0, pid=1, fid=1)
    trace.record(20.0, "kernel.rx", mid=1, src=0, fid=1)
    trace.record(
        30.0, "kernel.delivered_state", mid=1, src=0, tid=5, state="delivered"
    )
    trace.record(40.0, "kernel.tx", mid=1, dst=0, seq=0, pid=2, fid=2)
    trace.record(50.0, "kernel.rx", mid=0, src=1, fid=2)
    trace.record(60.0, "kernel.complete", mid=0, tid=5, status="completed")
    records = list(trace.records)
    assert find_races(records, build_causal_order(records)) == []


def test_soda010_needs_an_order_to_fire():
    # Without clocks the rule cannot distinguish inversion from benign
    # trace-order jitter, so it stays silent rather than guess.
    trace = Tracer()
    trace.record(0.0, "kernel.request", mid=0, tid=5, dst=1)
    trace.record(
        20.0, "kernel.delivered_state", mid=1, src=0, tid=5, state="delivered"
    )
    assert find_races(list(trace.records)) == []


# -- SODA011: ACCEPT/reset race ----------------------------------------


def test_soda011_completion_in_a_later_incarnation():
    trace = Tracer()
    trace.record(0.0, "kernel.request", mid=0, tid=5, dst=1)
    trace.record(10.0, "kernel.client_reset", mid=0, epoch=1)
    trace.record(20.0, "kernel.complete", mid=0, tid=5, status="completed")
    diags = find_races(list(trace.records))
    assert rules(diags) == ["SODA011"]
    assert "issued by incarnation e0 but completed COMPLETED in e1" in (
        diags[0].message
    )
    assert diags[0].witness  # the reset boundary is the witness


def test_soda011_ignores_non_completed_statuses():
    # A CRASHED/CANCELLED completion after a reset is the kernel doing
    # its job (tearing the transaction down), not a resurrection.
    trace = Tracer()
    trace.record(0.0, "kernel.request", mid=0, tid=5, dst=1)
    trace.record(10.0, "kernel.client_reset", mid=0, epoch=1)
    trace.record(20.0, "kernel.complete", mid=0, tid=5, status="crashed")
    assert find_races(list(trace.records)) == []


def test_soda011_same_incarnation_is_clean():
    trace = Tracer()
    trace.record(0.0, "kernel.request", mid=0, tid=5, dst=1)
    trace.record(20.0, "kernel.complete", mid=0, tid=5, status="completed")
    assert find_races(list(trace.records)) == []


# -- SODA012: shared-state write across a reset ------------------------


def test_soda012_delivered_cell_advances_across_reset():
    trace = Tracer()
    trace.record(
        0.0, "kernel.delivered_state", mid=1, src=0, tid=5, state="delivered"
    )
    trace.record(10.0, "kernel.client_reset", mid=1, epoch=1)
    trace.record(
        20.0, "kernel.delivered_state", mid=1, src=0, tid=5, state="accepted"
    )
    diags = find_races(list(trace.records))
    assert rules(diags) == ["SODA012"]
    assert "across mid 1's incarnation boundary" in diags[0].message


def test_soda012_connection_resurrection_after_crash():
    trace = Tracer()
    trace.record(0.0, "kernel.tx", mid=0, dst=1, seq=0, pid=1)
    trace.record(10.0, "kernel.crash", mid=0)
    trace.record(20.0, "conn.retransmit", mid=0, peer=1, kind="data")
    diags = find_races(list(trace.records))
    assert rules(diags) == ["SODA012"]
    assert "after mid 0's power failure with no fresh transmission" in (
        diags[0].message
    )


def test_soda012_connection_clean_after_fresh_transmission():
    trace = Tracer()
    trace.record(0.0, "kernel.tx", mid=0, dst=1, seq=0, pid=1)
    trace.record(10.0, "kernel.crash", mid=0)
    trace.record(20.0, "kernel.tx", mid=0, dst=1, seq=0, pid=2)
    trace.record(30.0, "conn.retransmit", mid=0, peer=1, kind="data")
    assert find_races(list(trace.records)) == []


def test_soda012_cross_epoch_unadvertise():
    trace = Tracer()
    trace.record(0.0, "kernel.advertise", mid=0, pattern=0o700)
    trace.record(10.0, "kernel.client_reset", mid=0, epoch=1)
    trace.record(20.0, "kernel.unadvertise", mid=0, pattern=0o700)
    diags = find_races(list(trace.records))
    assert rules(diags) == ["SODA012"]
    assert "advertisement-table entry" in diags[0].message


def test_soda012_same_epoch_unadvertise_is_clean():
    trace = Tracer()
    trace.record(0.0, "kernel.advertise", mid=0, pattern=0o700)
    trace.record(20.0, "kernel.unadvertise", mid=0, pattern=0o700)
    assert find_races(list(trace.records)) == []


# -- SODA013: wait-for deadlock ----------------------------------------


def test_soda013_two_node_cycle_from_pending_spans():
    trace = Tracer()
    trace.record(0.0, "kernel.request", mid=0, tid=1, dst=1)
    trace.record(10.0, "kernel.request", mid=1, tid=1, dst=0)
    diags = detect_deadlocks(list(trace.records))
    assert rules(diags) == ["SODA013"]
    assert "wait-for cycle among mids {0, 1}" in diags[0].message
    assert any("mid 0 blocked on REQUEST" in w for w in diags[0].witness)


def test_soda013_completed_spans_draw_no_edges():
    trace = Tracer()
    trace.record(0.0, "kernel.request", mid=0, tid=1, dst=1)
    trace.record(10.0, "kernel.request", mid=1, tid=1, dst=0)
    trace.record(20.0, "kernel.complete", mid=0, tid=1, status="completed")
    trace.record(30.0, "kernel.complete", mid=1, tid=1, status="completed")
    assert detect_deadlocks(list(trace.records)) == []


def test_soda013_chain_without_cycle_is_clean():
    trace = Tracer()
    trace.record(0.0, "kernel.request", mid=0, tid=1, dst=1)
    trace.record(10.0, "kernel.request", mid=1, tid=1, dst=2)
    assert detect_deadlocks(list(trace.records)) == []


def test_soda013_self_loop_counts():
    trace = Tracer()
    trace.record(0.0, "kernel.request", mid=3, tid=1, dst=3)
    diags = detect_deadlocks(list(trace.records))
    assert rules(diags) == ["SODA013"]
    assert "{3}" in diags[0].message


def test_philosophers_noarb_deadlocks_with_the_full_ring():
    """The §4.4.3 dining philosophers without arbitration (grab your own
    fork first) must produce the textbook 5-cycle."""
    net = run_workload("philosophers_noarb")
    records = list(net.sim.trace.records)
    graph = build_wait_graph(records)
    diags = detect_deadlocks(records)
    assert rules(diags) == ["SODA013"]
    assert "wait-for cycle among mids {0, 1, 2, 3, 4}" in diags[0].message
    # Each philosopher holds its own fork and waits on its left neighbour.
    assert len(diags[0].witness) >= 5
    assert set(graph.nodes) == {0, 1, 2, 3, 4}
    # The deadlock is causal, not a trace artifact: no races on top.
    assert find_races(records, build_causal_order(records)) == []


def test_arbitrated_philosophers_do_not_deadlock():
    # The shipped variant (grab-left-first plus the §4.4.3 detector)
    # finishes every meal; no wait-for cycle survives to end of trace.
    from repro.apps.philosophers import DeadlockDetector, Philosopher
    from repro.core import Network
    from repro.facilities.timeservice import TimeServer

    n = 3
    net = Network(seed=114)
    philosophers = []
    for i in range(n):
        philosopher = Philosopher(
            left_mid=(i - 1) % n, think_us=500.0, eat_us=500.0,
            meals_target=2,
        )
        philosophers.append(philosopher)
        net.add_node(mid=i, program=philosopher, boot_at_us=i * 20.0)
    net.add_node(mid=n, program=TimeServer())
    net.add_node(
        mid=n + 1,
        program=DeadlockDetector(list(range(n)), interval_ms=10),
        boot_at_us=500.0,
    )
    done = net.run_until(
        lambda: all(p.meals >= 2 for p in philosophers),
        timeout=600_000_000.0,
    )
    assert done, [p.meals for p in philosophers]
    assert detect_deadlocks(list(net.sim.trace.records)) == []


# -- zero false positives on healthy runs ------------------------------


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_shipped_workloads_are_race_and_deadlock_free(name):
    net = run_workload(name)
    records = list(net.sim.trace.records)
    order = build_causal_order(records)
    diags = find_races(records, order) + detect_deadlocks(records)
    assert diags == [], "\n".join(d.format() for d in diags)


def test_causal_workloads_do_not_leak_into_the_standard_set():
    assert "philosophers_noarb" in CAUSAL_WORKLOADS
    assert "philosophers_noarb" not in WORKLOADS
    assert set(WORKLOADS) < set(CAUSAL_WORKLOADS)
