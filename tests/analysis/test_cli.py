"""CLI surface: `python -m repro lint`, `check-trace`, and `causal`."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.analysis.cli import run_causal, run_check_trace, run_lint

ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"


def collect():
    lines = []
    return lines, lines.append


def test_lint_is_clean_on_shipped_programs():
    status = main(
        ["lint", str(ROOT / "src" / "repro" / "apps"), str(ROOT / "examples")]
    )
    assert status == 0


@pytest.mark.parametrize(
    "fixture", sorted(p.name for p in FIXTURES.glob("bad_*.py"))
)
def test_lint_fails_on_each_bad_fixture(fixture):
    lines, out = collect()
    status = run_lint([str(FIXTURES / fixture)], out=out)
    assert status == 1
    assert any("SODA" in line for line in lines)


def test_lint_disable_flag_silences_a_rule():
    lines, out = collect()
    status = run_lint(
        ["--disable=SODA001", str(FIXTURES / "bad_soda001.py")], out=out
    )
    assert status == 0


def test_check_trace_clean_workload():
    lines, out = collect()
    status = run_check_trace(["echo"], out=out)
    assert status == 0
    assert any("echo: ok" in line for line in lines)


def test_check_trace_rejects_unknown_workload():
    lines, out = collect()
    status = run_check_trace(["no-such-workload"], out=out)
    assert status != 0


def test_check_trace_streaming_agrees(tmp_path):
    lines, out = collect()
    json_path = tmp_path / "trace.json"
    status = run_check_trace(
        ["--streaming", "echo"], out=out, json_path=str(json_path)
    )
    assert status == 0
    assert any("echo: ok" in line and "streaming" in line for line in lines)
    body = json.loads(json_path.read_text())["body"]
    assert body["streaming"] is True
    assert body["workloads"][0]["streaming_agrees"] is True


def test_causal_defaults_to_the_clean_workloads():
    lines, out = collect()
    status = run_causal(["echo", "signal"], out=out)
    assert status == 0
    assert any("causal: 2/2 workload(s) clean" in line for line in lines)


def test_causal_flags_the_noarb_philosophers(tmp_path):
    lines, out = collect()
    json_path = tmp_path / "causal.json"
    status = run_causal(
        ["philosophers_noarb"], out=out, json_path=str(json_path)
    )
    assert status == 1
    assert any("SODA013" in line for line in lines)
    body = json.loads(json_path.read_text())["body"]
    assert any(
        "SODA013" in diag
        for wl in body["workloads"]
        for diag in wl["diagnostics"]
    )


def test_causal_rejects_unknown_workload():
    lines, out = collect()
    assert run_causal(["no-such-workload"], out=out) == 1


def test_lint_json_snapshot(tmp_path):
    lines, out = collect()
    json_path = tmp_path / "lint.json"
    status = run_lint(
        [str(FIXTURES / "bad_soda001.py")], out=out, json_path=str(json_path)
    )
    assert status == 1
    payload = json.loads(json_path.read_text())
    assert payload["schema"] == "soda.bench/1"
    assert any(
        f["rule_id"] == "SODA001" for f in payload["body"]["findings"]
    )


def test_main_help_mentions_analysis_commands():
    import repro.__main__ as entry

    help_text = entry._render_help()
    assert "lint" in help_text
    assert "check-trace" in help_text
    assert "causal" in help_text
    for name in ("lint", "check-trace", "causal", "causal-bench"):
        assert name in entry.COMMANDS
