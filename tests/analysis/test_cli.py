"""CLI surface: `python -m repro lint` and `python -m repro check-trace`."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.__main__ import main
from repro.analysis.cli import run_check_trace, run_lint

ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"


def collect():
    lines = []
    return lines, lines.append


def test_lint_is_clean_on_shipped_programs():
    status = main(
        ["lint", str(ROOT / "src" / "repro" / "apps"), str(ROOT / "examples")]
    )
    assert status == 0


@pytest.mark.parametrize(
    "fixture", sorted(p.name for p in FIXTURES.glob("bad_*.py"))
)
def test_lint_fails_on_each_bad_fixture(fixture):
    lines, out = collect()
    status = run_lint([str(FIXTURES / fixture)], out=out)
    assert status == 1
    assert any("SODA" in line for line in lines)


def test_lint_disable_flag_silences_a_rule():
    lines, out = collect()
    status = run_lint(
        ["--disable=SODA001", str(FIXTURES / "bad_soda001.py")], out=out
    )
    assert status == 0


def test_check_trace_clean_workload():
    lines, out = collect()
    status = run_check_trace(["echo"], out=out)
    assert status == 0
    assert any("echo: ok" in line for line in lines)


def test_check_trace_rejects_unknown_workload():
    lines, out = collect()
    status = run_check_trace(["no-such-workload"], out=out)
    assert status != 0


def test_main_help_mentions_analysis_commands():
    import repro.__main__ as entry

    assert "lint" in entry.__doc__
    assert "check-trace" in entry.__doc__
