"""Streaming invariant checker: byte-identical verdicts to the batch
checker on real runs and fabricated violations, with O(open-state)
retained memory."""

from __future__ import annotations

import pytest

from repro.analysis.causal import IncrementalChecker, check_stream
from repro.analysis.invariants import InvariantChecker, check_network
from repro.analysis.workloads import WORKLOADS, build_workload, run_workload
from repro.sim.tracing import CostLedger, Tracer
from repro.transport.retransmit import RetransmitPolicy

GATE_CELLS = sorted(WORKLOADS)


def formatted(violations):
    return [v.format() for v in violations]


def batch_check(trace, ledger=None, **kwargs):
    kwargs.setdefault("policy", RetransmitPolicy())
    return InvariantChecker(**kwargs).check(trace, ledger=ledger)


def stream_check(trace, ledger=None, **kwargs):
    kwargs.setdefault("policy", RetransmitPolicy())
    checker = IncrementalChecker(**kwargs)
    for rec in trace.records:
        checker.feed(rec)
    return checker.finish(ledger=ledger)


def assert_identical(trace, ledger=None, **kwargs):
    batch = formatted(batch_check(trace, ledger, **kwargs))
    stream = formatted(stream_check(trace, ledger, **kwargs))
    assert stream == batch
    return batch


# -- identical verdicts on real workload traces ------------------------


@pytest.mark.parametrize("name", GATE_CELLS)
def test_post_hoc_stream_matches_batch(name):
    net = run_workload(name)
    batch = formatted(check_network(net, strict_completion=True))
    stream = formatted(
        check_stream(
            list(net.sim.trace.records),
            network=net,
            strict_completion=True,
            ledger=net.ledger,
        )
    )
    assert stream == batch == []


def test_live_sink_matches_post_hoc_replay():
    built = build_workload("stream")
    live = IncrementalChecker(network=built.net, strict_completion=True)
    live.install(built.net)
    net = built.run()
    live_verdicts = formatted(live.finish(ledger=net.ledger))
    replay = formatted(
        check_stream(
            list(net.sim.trace.records),
            network=net,
            strict_completion=True,
            ledger=net.ledger,
        )
    )
    assert live_verdicts == replay
    assert live.records_checked == len(net.sim.trace.records)


# -- identical verdicts on fabricated violations -----------------------


def tx(trace, t, seq, pid, mid=1, dst=2, **fields):
    trace.record(
        t, "kernel.tx", mid=mid, dst=dst, seq=seq, pid=pid, **fields
    )


def test_inv_seq_reused_bit_matches():
    trace = Tracer()
    tx(trace, 0.0, 0, 1)
    tx(trace, 100.0, 0, 2)
    verdicts = assert_identical(trace)
    assert any("INV-SEQ" in v for v in verdicts)


def test_inv_deltat_window_matches():
    trace = Tracer()
    tx(trace, 0.0, 0, 1)
    tx(trace, 10_000_000.0, 0, 1)
    verdicts = assert_identical(trace)
    assert any("INV-DELTAT" in v for v in verdicts)


def test_inv_deltat_attempt_count_matches():
    policy = RetransmitPolicy()
    trace = Tracer()
    for i in range(policy.max_ack_attempts + 2):
        tx(trace, i * 100.0, 0, 1)
    verdicts = assert_identical(trace)
    assert any("INV-DELTAT" in v for v in verdicts)


def test_busy_nack_clears_pending_verdicts_in_both():
    # The message overruns its window, is retired by a fresh pid, and
    # only THEN does the BUSY arrive: the batch checker forgives the
    # whole connection at finalize time, so streaming must drop the
    # already-computed verdict too.
    trace = Tracer()
    tx(trace, 0.0, 0, 1)
    tx(trace, 10_000_000.0, 0, 1)
    tx(trace, 10_000_100.0, 1, 2)  # retires pid 1 with a dirty verdict
    trace.record(10_000_200.0, "kernel.rx", mid=1, src=2, nack="busy")
    assert assert_identical(trace) == []


def test_seq_swap_drops_parked_pid_in_both():
    trace = Tracer()
    tx(trace, 0.0, 0, 1)
    tx(trace, 10_000_000.0, 0, 1)  # dirty: would violate INV-DELTAT
    trace.record(
        10_000_100.0,
        "conn.seq_swap",
        mid=1,
        peer=2,
        parked_pid=1,
        taker_pid=2,
        seq=0,
    )
    tx(trace, 10_000_200.0, 0, 2)
    assert assert_identical(trace) == []


def test_crash_forgets_connections_in_both():
    trace = Tracer()
    tx(trace, 0.0, 0, 1)
    tx(trace, 10_000_000.0, 0, 1)
    trace.record(10_000_100.0, "kernel.crash", mid=1)
    assert assert_identical(trace) == []


def test_handler_nesting_matches():
    trace = Tracer()
    trace.record(0.0, "kernel.interrupt", mid=3)
    trace.record(10.0, "kernel.interrupt", mid=3)
    verdicts = assert_identical(trace)
    assert any("INV-HANDLER" in v for v in verdicts)


def test_illegal_transition_matches():
    trace = Tracer()
    trace.record(
        0.0, "kernel.delivered_state", mid=2, src=1, tid=7, state="accepted"
    )
    verdicts = assert_identical(trace)
    assert any("INV-COMPLETE" in v for v in verdicts)


def test_strict_completion_leak_matches():
    trace = Tracer()
    trace.record(
        0.0, "kernel.delivered_state", mid=2, src=1, tid=7, state="delivered"
    )
    leak = assert_identical(trace, strict_completion=True)
    assert any("INV-COMPLETE" in v for v in leak)
    assert assert_identical(trace, strict_completion=False) == []


def test_ledger_audit_matches():
    ledger = CostLedger()
    ledger.charge("protocol", 10.0)
    ledger.charge("bogus", 1.0)
    verdicts = assert_identical(Tracer(), ledger=ledger)
    assert any("INV-LEDGER" in v for v in verdicts)


def test_soda007_hint_violation_matches():
    trace = Tracer()
    tx(trace, 0.0, 0, 1, tid=7)
    trace.record(
        500.0, "kernel.rx", mid=1, src=2, nack="busy", hint=50_000.0, tid=7
    )
    tx(trace, 10_000.0, 0, 1, tid=7)
    verdicts = assert_identical(trace)
    assert any("SODA007" in v for v in verdicts)


# -- streaming semantics -----------------------------------------------


def test_feed_after_finish_is_an_error():
    checker = IncrementalChecker(policy=RetransmitPolicy())
    checker.finish()
    with pytest.raises(RuntimeError):
        checker.feed(next(iter(_one_record_trace().records)))


def _one_record_trace():
    trace = Tracer()
    tx(trace, 0.0, 0, 1)
    return trace


def test_open_state_stays_sublinear_on_a_long_run():
    """The whole point of the streaming rewrite: retained state tracks
    *open* transactions, not trace length."""
    built = build_workload("stream")
    checker = IncrementalChecker(network=built.net, strict_completion=True)
    checker.install(built.net)
    net = built.run()
    checker.finish(ledger=net.ledger)
    assert checker.records_checked > 300
    assert checker.peak_open_state * 10 < checker.records_checked
    assert checker.peak_open_state < 40


def test_violations_surface_mid_stream():
    checker = IncrementalChecker(policy=RetransmitPolicy())
    trace = Tracer()
    trace.record(0.0, "kernel.interrupt", mid=3)
    trace.record(10.0, "kernel.interrupt", mid=3)
    for rec in trace.records:
        checker.feed(rec)
    # INV-HANDLER is detectable the moment the nested interrupt lands,
    # before finish() runs the end-of-trace passes.
    assert any(v.invariant == "INV-HANDLER" for v in checker.violations)
