"""Violates SODA002: ADVERTISE of reserved kernel patterns."""

from repro.core import ClientProgram
from repro.core.boot import SYSTEM_PATTERN, boot_pattern_for

MY_BOOT = boot_pattern_for("vax")


class PatternSquatter(ClientProgram):
    def initialization(self, api, parent_mid):
        yield from api.advertise(SYSTEM_PATTERN)
        yield from api.advertise(MY_BOOT)
        yield from api.advertise(boot_pattern_for("pdp11"))
