"""Pragma fixture: a standalone disable comment covers the whole file."""

# sodalint: disable=SODA005

from repro.core import ClientProgram
from repro.core.patterns import make_well_known_pattern

SERVICE = make_well_known_pattern(0o4326)


class FileWideQuiet(ClientProgram):
    def initialization(self, api, parent_mid):
        api.advertise(SERVICE)
        yield api.getuniqueid()

    def handler(self, api, event):
        yield from api.sleep(10.0)
