"""Clean counterpart to bad_soda006: kernel state changed via primitives."""

from repro.core import ClientProgram
from repro.core.patterns import make_well_known_pattern

SERVICE = make_well_known_pattern(0o4324)


class LawAbiding(ClientProgram):
    def initialization(self, api, parent_mid):
        yield from api.advertise(SERVICE)

    def task(self, api):
        yield from api.unadvertise(SERVICE)
        self.rounds = 0
        yield from api.serve_forever()
