"""Violates SODA003: non-blocking REQUESTs with no completion path."""

from repro.core import ClientProgram


class FireAndForget(ClientProgram):
    def task(self, api):
        yield from api.signal(3)
        yield from api.put(3, put=b"payload")
        # The TIDs are dropped and the handler never looks at
        # completions: both request slots leak.

    def handler(self, api, event):
        if event.is_arrival:
            yield from api.reject()
