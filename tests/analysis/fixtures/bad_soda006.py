"""Violates SODA006: client code mutating kernel-owned state."""

from repro.core import ClientProgram


class KernelMeddler(ClientProgram):
    def task(self, api):
        api.kernel.patterns = {}
        api.kernel.handler_busy = False
        self.api.kernel.max_requests = 99
        api._deliver_arrival(None)
        yield from api.serve_forever()
