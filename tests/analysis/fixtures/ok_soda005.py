"""Clean counterpart to bad_soda005: every generator is driven."""

from repro.core import ClientProgram
from repro.core.patterns import make_well_known_pattern

SERVICE = make_well_known_pattern(0o4323)


class ResultKeeper(ClientProgram):
    def initialization(self, api, parent_mid):
        yield from api.advertise(SERVICE)
        unique = yield from api.getuniqueid()
        yield from api.advertise(unique)

    def task(self, api):
        tid = yield from api.exchange(3, put=b"x", get_size=8)
        future = api.watch_completion(tid)
        completion = yield from api.await_completion(tid)
        del future, completion
