"""Pragma fixture: a line-scoped disable suppresses only the named rule."""

from repro.core import ClientProgram
from repro.core.patterns import make_well_known_pattern

SERVICE = make_well_known_pattern(0o4325)


class PartiallyQuiet(ClientProgram):
    def task(self, api):
        yield from api.signal(7)  # sodalint: disable=SODA003
        api.advertise(SERVICE)
