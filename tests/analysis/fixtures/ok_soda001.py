"""Clean counterpart to bad_soda001: blocking calls stay in the task."""

from repro.core import Buffer, ClientProgram


class PoliteHandler(ClientProgram):
    def handler(self, api, event):
        if event.is_arrival:
            yield from api.accept_current(put=b"pong")

    def task(self, api):
        reply = Buffer(8)
        yield from api.b_exchange(3, put=b"x", get=reply)
        yield from api.sleep(1_000.0)
