"""Clean counterpart to bad_soda003: the handler consumes completions."""

from repro.core import ClientProgram


class CompletionAware(ClientProgram):
    def __init__(self):
        self.done = 0

    def task(self, api):
        yield from api.signal(3)
        yield from api.put(3, put=b"payload")

    def handler(self, api, event):
        if event.is_completion:
            self.done += 1
        return
        yield
