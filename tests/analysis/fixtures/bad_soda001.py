"""Violates SODA001: blocking task-level primitives in handler context."""

from repro.core import Buffer, ClientProgram


class BlockingHandler(ClientProgram):
    def handler(self, api, event):
        if event.is_arrival:
            reply = Buffer(8)
            # B_EXCHANGE from a handler triggers the saved-PC maneuver.
            yield from api.b_exchange(event.source, put=b"x", get=reply)
        yield from api.sleep(1_000.0)
