"""Clean counterpart to bad_soda002: well-known client patterns only."""

from repro.core import ClientProgram
from repro.core.patterns import make_well_known_pattern

SERVICE = make_well_known_pattern(0o4321)


class WellKnownServer(ClientProgram):
    def initialization(self, api, parent_mid):
        yield from api.advertise(SERVICE)
        unique = yield from api.getuniqueid()
        yield from api.advertise(unique)
