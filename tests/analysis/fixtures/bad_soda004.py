"""Violates SODA004: client code nesting handler invocations."""

from repro.core import ClientProgram


class HandlerNester(ClientProgram):
    def handler(self, api, event):
        if event.is_arrival:
            yield from api.accept_current()
        self.handler(api, event)

    def task(self, api):
        yield from api.serve_forever()
        api.kernel.run_handler()
