"""Clean counterpart to bad_soda004: shared logic lives in a helper."""

from repro.core import ClientProgram


class SharedHelper(ClientProgram):
    def _note(self, event):
        self.last = event

    def handler(self, api, event):
        self._note(event)
        if event.is_arrival:
            yield from api.accept_current()

    def task(self, api):
        yield from api.serve_forever()
