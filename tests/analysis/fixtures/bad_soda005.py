"""Violates SODA005: discarded generators and SimFutures."""

from repro.core import ClientProgram
from repro.core.patterns import make_well_known_pattern

SERVICE = make_well_known_pattern(0o4322)


class ResultDropper(ClientProgram):
    def initialization(self, api, parent_mid):
        api.advertise(SERVICE)
        yield api.getuniqueid()

    def task(self, api):
        tid = yield from api.exchange(3, put=b"x", get_size=8)
        api.watch_completion(tid)
        result = yield from api.await_completion(tid)
        del result
