"""Tests for links / virtual circuits and link moving (§4.2.4)."""

from repro.core import ClientProgram, Network
from repro.facilities.links import LinkRole, LinkService, LinkState

RUN_US = 120_000_000.0


class LinkProgram(ClientProgram):
    """A client with link machinery and a scripted task body."""

    def __init__(self, body=None):
        self.links = LinkService()
        self.body = body
        self.log = []

    def initialization(self, api, parent_mid):
        yield from self.links.install(api)

    def handler(self, api, event):
        consumed = yield from self.links.handle_arrival(api, event)
        if consumed:
            return

    def task(self, api):
        if self.body is not None:
            yield from self.body(api, self)
        yield from api.serve_forever()


def test_connect_and_send_both_ways():
    net = Network(seed=61)

    def passive_recv(api, self):
        # Wait for a link to appear, then echo one message back.
        yield from api.poll(lambda: self.links.ends)
        link_id = next(iter(self.links.ends))
        data, tag = yield from self.links.recv(api, link_id)
        self.log.append(("got", data, tag))
        yield from self.links.send(api, link_id, data.upper(), tag=2)

    def active_send(api, self):
        link = yield from self.links.connect(api, 0)
        yield from self.links.send(api, link, b"over the link", tag=1)
        data, tag = yield from self.links.recv(api, link)
        self.log.append(("reply", data, tag))

    passive = LinkProgram(passive_recv)
    active = LinkProgram(active_send)
    net.add_node(program=passive)
    net.add_node(program=active, boot_at_us=200.0)
    net.run(until=RUN_US)
    assert ("got", b"over the link", 1) in passive.log
    assert ("reply", b"OVER THE LINK", 2) in active.log


def test_connect_assigns_roles():
    net = Network(seed=62)
    passive = LinkProgram()
    state = {}

    def active_body(api, self):
        link = yield from self.links.connect(api, 0)
        state["active_role"] = self.links.ends[link].role
        yield from api.poll(lambda: passive.links.ends)
        passive_end = next(iter(passive.links.ends.values()))
        state["passive_role"] = passive_end.role

    active = LinkProgram(active_body)
    net.add_node(program=passive)
    net.add_node(program=active, boot_at_us=200.0)
    net.run(until=RUN_US)
    assert state["active_role"] is LinkRole.MASTER
    assert state["passive_role"] is LinkRole.SLAVE


def test_link_move_transparent_to_partner():
    # A(1) has a link to S(0) and a link to B(2); A moves its S-link end
    # to B.  S keeps sending on the same link id and the messages reach B.
    net = Network(seed=63)

    stationary_sent = []

    def stationary_body(api, self):
        yield from api.poll(lambda: self.links.ends)
        link_id = next(iter(self.links.ends))
        for i in range(4):
            yield from self.links.send(api, link_id, f"m{i}".encode(), tag=1)
            stationary_sent.append(i)
            yield api.compute(30_000)

    received_at_b = []

    def b_body(api, self):
        # First end: the A-B link; second end: the moved S-link.
        yield from api.poll(lambda: len(self.links.ends) >= 2)
        moved = max(self.links.ends)
        while len(received_at_b) < 2:
            data, tag = yield from self.links.recv(api, moved)
            received_at_b.append(data)

    def a_body(api, self):
        link_to_s = yield from self.links.connect(api, 0)
        link_to_b = yield from self.links.connect(api, 2)
        # Receive the first couple of messages at A.
        data, _tag = yield from self.links.recv(api, link_to_s)
        self.log.append(("a_got", data))
        # Now move the S-link end over to B.
        yield from self.links.move(api, link_to_s, link_to_b)
        self.log.append(("moved", True))

    stationary = LinkProgram(stationary_body)
    a = LinkProgram(a_body)
    b = LinkProgram(b_body)
    net.add_node(program=stationary)          # mid 0
    net.add_node(program=a, boot_at_us=200.0)  # mid 1
    net.add_node(program=b, boot_at_us=400.0)  # mid 2
    net.run(until=RUN_US)
    assert ("moved", True) in a.log
    assert len(received_at_b) >= 2
    # A received at least the first message before moving.
    assert any(entry[0] == "a_got" for entry in a.log)
    # All data originated at S, in order, no duplication across A/B.
    a_msgs = [e[1] for e in a.log if e[0] == "a_got"]
    all_msgs = a_msgs + received_at_b
    assert all_msgs == [f"m{i}".encode() for i in range(len(all_msgs))]


def test_destroy_notifies_partner():
    net = Network(seed=64)
    state = {}

    def active_body(api, self):
        link = yield from self.links.connect(api, 0)
        yield from self.links.destroy(api, link)
        state["gone_locally"] = link not in self.links.ends

    passive = LinkProgram()
    active = LinkProgram(active_body)
    net.add_node(program=passive)
    net.add_node(program=active, boot_at_us=200.0)
    net.run(until=RUN_US)
    assert state["gone_locally"]
    passive_end = next(iter(passive.links.ends.values()))
    assert passive_end.state is LinkState.DESTROYED


def test_send_on_destroyed_link_raises():
    from repro.core.errors import SodaError

    net = Network(seed=65)
    outcome = {}

    def passive_body(api, self):
        yield from api.poll(lambda: self.links.ends)
        link_id = next(iter(self.links.ends))
        yield from api.poll(
            lambda: self.links.ends[link_id].state is LinkState.DESTROYED
        )
        try:
            yield from self.links.send(api, link_id, b"too late")
        except SodaError as exc:
            outcome["error"] = str(exc)

    def active_body(api, self):
        link = yield from self.links.connect(api, 0)
        yield from self.links.destroy(api, link)

    net.add_node(program=LinkProgram(passive_body))
    net.add_node(program=LinkProgram(active_body), boot_at_us=200.0)
    net.run(until=RUN_US)
    assert "destroyed" in outcome["error"]


def test_introduce_gives_partners_a_link():
    # C holds links to A and B; after INTRODUCE, A and B talk directly.
    net = Network(seed=66)

    a_received = []

    def a_body(api, self):
        # Wait until we hold a second link (the introduced one).
        yield from api.poll(lambda: len(self.links.ends) >= 2)
        introduced = max(self.links.ends)  # newest link id
        data, tag = yield from self.links.recv(api, introduced)
        a_received.append((data, tag))

    def b_body(api, self):
        yield from api.poll(lambda: len(self.links.ends) >= 2)
        introduced = max(self.links.ends)
        yield from self.links.send(api, introduced, b"direct hello", tag=3)

    def c_body(api, self):
        link_a = yield from self.links.connect(api, 0)
        link_b = yield from self.links.connect(api, 1)
        yield from self.links.introduce(api, link_a, link_b)
        self.log.append(("introduced", True))

    a = LinkProgram(a_body)
    b = LinkProgram(b_body)
    c = LinkProgram(c_body)
    net.add_node(program=a)                    # mid 0
    net.add_node(program=b, boot_at_us=100.0)  # mid 1
    net.add_node(program=c, boot_at_us=200.0)  # mid 2
    net.run(until=RUN_US)
    assert ("introduced", True) in c.log
    assert a_received == [(b"direct hello", 3)]
