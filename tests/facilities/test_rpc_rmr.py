"""Tests for RPC (§4.2.2) and remote memory reference (§4.2.3)."""

import struct

from repro.core import ClientProgram, Network
from repro.core.patterns import make_well_known_pattern
from repro.facilities.rmr import RMR_PATTERN, MemoryServer, peek, poke
from repro.facilities.rpc import RpcServer, rpc_call

RUN_US = 60_000_000.0
SQUARE = make_well_known_pattern(0o531)
CONCAT = make_well_known_pattern(0o532)


def square_proc(params: bytes) -> bytes:
    (x,) = struct.unpack(">i", params)
    return struct.pack(">i", x * x)


def concat_proc(params: bytes) -> bytes:
    return params + b"!"


class Caller(ClientProgram):
    def __init__(self, calls):
        self.calls = calls  # list of (pattern, in_bytes, out_capacity)
        self.results = []

    def task(self, api):
        for pattern, in_bytes, cap in self.calls:
            result = yield from rpc_call(
                api, api.server_sig(0, pattern), in_bytes, cap
            )
            self.results.append(result)
        yield from api.serve_forever()


def test_rpc_roundtrip():
    net = Network(seed=51)
    net.add_node(program=RpcServer({SQUARE: square_proc}))
    caller = Caller([(SQUARE, struct.pack(">i", 12), 4)])
    net.add_node(program=caller, boot_at_us=100.0)
    net.run(until=RUN_US)
    assert caller.results == [struct.pack(">i", 144)]


def test_rpc_multiple_procedures():
    net = Network(seed=52)
    server = RpcServer({SQUARE: square_proc, CONCAT: concat_proc})
    net.add_node(program=server)
    caller = Caller(
        [
            (SQUARE, struct.pack(">i", 5), 4),
            (CONCAT, b"hello", 16),
            (SQUARE, struct.pack(">i", -3), 4),
        ]
    )
    net.add_node(program=caller, boot_at_us=100.0)
    net.run(until=RUN_US)
    assert caller.results == [
        struct.pack(">i", 25),
        b"hello!",
        struct.pack(">i", 9),
    ]
    assert server.calls_served == 3


def test_rpc_concurrent_callers():
    net = Network(seed=53)
    server = RpcServer({SQUARE: square_proc})
    net.add_node(program=server)
    callers = []
    for i in range(3):
        caller = Caller([(SQUARE, struct.pack(">i", i + 2), 4)])
        callers.append(caller)
        net.add_node(program=caller, boot_at_us=100.0 + i * 37.0)
    net.run(until=RUN_US)
    for i, caller in enumerate(callers):
        assert caller.results == [struct.pack(">i", (i + 2) ** 2)]


def test_rpc_crashed_server_raises():
    from repro.core import KernelConfig
    from repro.core.errors import SodaError

    net = Network(seed=54, config=KernelConfig(probe_interval_us=50_000.0))
    server_node = net.add_node(program=RpcServer({SQUARE: square_proc}))
    outcome = {}

    class FragileCaller(ClientProgram):
        def task(self, api):
            yield api.compute(50_000)
            try:
                yield from rpc_call(
                    api, api.server_sig(0, SQUARE), struct.pack(">i", 2), 4
                )
                outcome["error"] = None
            except SodaError as exc:
                outcome["error"] = str(exc)
            yield from api.serve_forever()

    net.add_node(program=FragileCaller(), boot_at_us=100.0)
    net.sim.schedule(60_000.0, server_node.crash_client)
    net.run(until=RUN_US)
    assert outcome["error"] is not None


# -- remote memory reference -------------------------------------------------


def test_poke_then_peek():
    net = Network(seed=55)
    server = MemoryServer(size=256)
    net.add_node(program=server)
    outcome = {}

    class MemClient(ClientProgram):
        def task(self, api):
            sig = api.server_sig(0, RMR_PATTERN)
            yield from poke(api, sig, 10, b"\xde\xad\xbe\xef")
            data = yield from peek(api, sig, 10, 4)
            outcome["data"] = data
            data = yield from peek(api, sig, 8, 8)
            outcome["window"] = data
            yield from api.serve_forever()

    net.add_node(program=MemClient(), boot_at_us=100.0)
    net.run(until=RUN_US)
    assert outcome["data"] == b"\xde\xad\xbe\xef"
    assert outcome["window"] == b"\x00\x00\xde\xad\xbe\xef\x00\x00"
    assert server.peeks == 2 and server.pokes == 1


def test_peek_truncates_at_memory_end():
    net = Network(seed=56)
    net.add_node(program=MemoryServer(size=16))
    outcome = {}

    class MemClient(ClientProgram):
        def task(self, api):
            sig = api.server_sig(0, RMR_PATTERN)
            data = yield from peek(api, sig, 12, 8)
            outcome["data"] = data
            yield from api.serve_forever()

    net.add_node(program=MemClient(), boot_at_us=100.0)
    net.run(until=RUN_US)
    assert outcome["data"] == b"\x00" * 4  # only 4 bytes exist past 12


def test_out_of_range_address_rejected():
    from repro.core.errors import SodaError

    net = Network(seed=57)
    net.add_node(program=MemoryServer(size=16))
    outcome = {}

    class MemClient(ClientProgram):
        def task(self, api):
            sig = api.server_sig(0, RMR_PATTERN)
            try:
                yield from peek(api, sig, 999, 4)
            except SodaError as exc:
                outcome["error"] = str(exc)
            yield from api.serve_forever()

    net.add_node(program=MemClient(), boot_at_us=100.0)
    net.run(until=RUN_US)
    assert "rejected" in outcome["error"]
