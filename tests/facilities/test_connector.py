"""Tests for the connector and the switchboard (§4.3.1)."""

from repro.core import Buffer, ClientProgram, Network, RequestStatus
from repro.core.errors import SodaError
from repro.core.patterns import make_well_known_pattern
from repro.facilities.connector import (
    ConnectedProgram,
    ModuleSpec,
    Switchboard,
    Wiring,
    lookup_service,
    register_service,
    run_connector,
)

RUN_US = 300_000_000.0
SERVICE = make_well_known_pattern(0o472)


# -- connector (load-time interconnection) ----------------------------------


class PingModule(ConnectedProgram):
    """Sends one PUT to its 'pong' peer once booted."""

    sent = []

    def task(self, api):
        peer = self.wiring.peers["pong"]
        completion = yield from api.b_put(peer, put=b"wired hello")
        PingModule.sent.append(completion.status)
        yield from api.serve_forever()


class PongModule(ConnectedProgram):
    received = []

    def handler(self, api, event):
        if event.is_arrival and event.pattern in self.wiring.exports:
            buf = Buffer(event.put_size)
            yield from api.accept_current_put(get=buf)
            PongModule.received.append(buf.data)


def test_connector_boots_and_wires_two_modules():
    PingModule.sent = []
    PongModule.received = []
    net = Network(seed=221)
    net.add_node(machine_type="app")   # 0: bare
    net.add_node(machine_type="app")   # 1: bare
    outcome = {}

    class ConnectorClient(ClientProgram):
        def task(self, api):
            mids = yield from run_connector(
                api,
                modules=[
                    ModuleSpec("ping", PingModule, machine_type="app"),
                    ModuleSpec("pong", PongModule, machine_type="app"),
                ],
                connections=[("ping", "pong")],
            )
            outcome["mids"] = mids
            yield from api.serve_forever()

    net.add_node(program=ConnectorClient(), boot_at_us=100.0)
    net.run(until=RUN_US)
    assert sorted(outcome["mids"]) == ["ping", "pong"]
    assert set(outcome["mids"].values()) == {0, 1}
    assert PingModule.sent == [RequestStatus.COMPLETED]
    assert PongModule.received == [b"wired hello"]


def test_connector_distinct_patterns_per_connection():
    # Three modules in a triangle: each connection gets its own pattern.
    received = {}

    class Node(ConnectedProgram):
        def handler(self, api, event):
            if event.is_arrival and event.pattern in self.wiring.exports:
                yield from api.accept_current_signal()
                received.setdefault(api.my_mid, []).append(event.pattern)

        def task(self, api):
            for peer_name, sig in sorted(self.wiring.peers.items()):
                # Cyclic topology: a peer may still be booting (the
                # connector cannot topologically order a cycle); retry.
                while True:
                    completion = yield from api.b_signal(sig)
                    if completion.status is RequestStatus.COMPLETED:
                        break
                    yield api.compute(10_000)
            yield from api.serve_forever()

    net = Network(seed=222)
    for _ in range(3):
        net.add_node(machine_type="tri")
    patterns = {}

    class ConnectorClient(ClientProgram):
        def task(self, api):
            specs = [ModuleSpec(n, Node, machine_type="tri") for n in "abc"]
            yield from run_connector(
                api, specs,
                connections=[("a", "b"), ("b", "c"), ("c", "a")],
            )
            yield from api.serve_forever()

    net.add_node(program=ConnectorClient(), boot_at_us=100.0)
    net.run(until=RUN_US)
    all_patterns = [p for plist in received.values() for p in plist]
    assert len(all_patterns) == 3
    assert len(set(all_patterns)) == 3  # one fresh pattern per connection


def test_connector_fails_without_free_machine():
    net = Network(seed=223)
    outcome = {}

    class ConnectorClient(ClientProgram):
        def task(self, api):
            try:
                yield from run_connector(
                    api,
                    [ModuleSpec("lonely", PingModule, machine_type="absent")],
                    [],
                )
            except SodaError as exc:
                outcome["error"] = str(exc)
            yield from api.serve_forever()

    net.add_node(program=ConnectorClient())
    net.run(until=RUN_US)
    assert "no free" in outcome["error"]


def test_connector_rejects_unknown_connection_names():
    net = Network(seed=224)
    outcome = {}

    class ConnectorClient(ClientProgram):
        def task(self, api):
            try:
                yield from run_connector(
                    api,
                    [ModuleSpec("a", PingModule)],
                    [("a", "ghost")],
                )
            except SodaError as exc:
                outcome["error"] = str(exc)
            yield from api.serve_forever()

    net.add_node(program=ConnectorClient())
    net.run(until=RUN_US)
    assert "unknown module" in outcome["error"]


# -- switchboard (run-time interconnection) --------------------------------------


def test_switchboard_register_then_lookup():
    net = Network(seed=225)
    net.add_node(program=Switchboard())

    class Service(ClientProgram):
        def initialization(self, api, parent_mid):
            yield from api.advertise(SERVICE)

        def handler(self, api, event):
            if event.is_arrival and event.pattern == SERVICE:
                yield from api.accept_current_get(put=b"served")

        def task(self, api):
            yield from register_service(
                api, 0, b"demo-service", api.server_sig(api.my_mid, SERVICE)
            )
            yield from api.serve_forever()

    net.add_node(program=Service())
    outcome = {}

    class Consumer(ClientProgram):
        def task(self, api):
            sig = yield from lookup_service(api, 0, b"demo-service")
            buf = Buffer(16)
            completion = yield from api.b_get(sig, get=buf)
            outcome["reply"] = (completion.status, buf.data)
            yield from api.serve_forever()

    net.add_node(program=Consumer(), boot_at_us=200.0)
    net.run(until=RUN_US)
    assert outcome["reply"] == (RequestStatus.COMPLETED, b"served")


def test_switchboard_lookup_unknown_name_fails():
    net = Network(seed=226)
    net.add_node(program=Switchboard())
    outcome = {}

    class Consumer(ClientProgram):
        def task(self, api):
            try:
                yield from lookup_service(api, 0, b"nobody", retries=3)
            except SodaError as exc:
                outcome["error"] = str(exc)
            yield from api.serve_forever()

    net.add_node(program=Consumer(), boot_at_us=100.0)
    net.run(until=RUN_US)
    assert "lookup" in outcome["error"]


def test_switchboard_reregistration_updates_entry():
    net = Network(seed=227)
    switchboard = Switchboard()
    net.add_node(program=switchboard)
    outcome = {}

    class Admin(ClientProgram):
        def task(self, api):
            yield from register_service(
                api, 0, b"svc", api.server_sig(7, SERVICE)
            )
            yield from register_service(
                api, 0, b"svc", api.server_sig(9, SERVICE)
            )
            sig = yield from lookup_service(api, 0, b"svc")
            outcome["mid"] = sig.mid
            yield from api.serve_forever()

    net.add_node(program=Admin(), boot_at_us=100.0)
    net.run(until=RUN_US)
    assert outcome["mid"] == 9
