"""Stress tests for link moving: repeated and contended moves (§4.2.4)."""

from repro.core import ClientProgram, Network
from repro.facilities.links import LinkRole, LinkService

RUN_US = 240_000_000.0


class LinkProgram(ClientProgram):
    def __init__(self, body=None):
        self.links = LinkService()
        self.body = body
        self.log = []

    def initialization(self, api, parent_mid):
        yield from self.links.install(api)

    def handler(self, api, event):
        consumed = yield from self.links.handle_arrival(api, event)
        if consumed:
            return

    def task(self, api):
        if self.body is not None:
            yield from self.body(api, self)
        yield from api.serve_forever()


def test_link_moves_twice_and_still_delivers():
    # S holds a link whose far end starts at A, moves to B, then to C.
    # S keeps sending on the same link id the whole time.
    net = Network(seed=181)
    received = {"B": [], "C": []}

    def s_body(api, self):
        yield from api.poll(lambda: self.links.ends)
        link_id = next(iter(self.links.ends))
        for i in range(6):
            yield from self.links.send(api, link_id, f"m{i}".encode())
            yield api.compute(40_000)

    def a_body(api, self):
        link_s = yield from self.links.connect(api, 0)   # to S
        link_b = yield from self.links.connect(api, 2)   # to B
        data, _ = yield from self.links.recv(api, link_s)
        self.log.append(("a_got", data))
        yield from self.links.move(api, link_s, link_b)
        self.log.append(("a_moved", True))

    def b_body(api, self):
        # First link: A-B.  Second: the moved S-link.
        yield from api.poll(lambda: len(self.links.ends) >= 2)
        moved = max(self.links.ends)
        link_c = yield from self.links.connect(api, 3)
        data, _ = yield from self.links.recv(api, moved)
        received["B"].append(data)
        yield from self.links.move(api, moved, link_c)
        self.log.append(("b_moved", True))

    def c_body(api, self):
        # First link: B-C.  Second: the twice-moved S-link.
        yield from api.poll(lambda: len(self.links.ends) >= 2)
        moved = max(self.links.ends)
        while len(received["C"]) < 2:
            data, _ = yield from self.links.recv(api, moved)
            received["C"].append(data)

    s = LinkProgram(s_body)
    a = LinkProgram(a_body)
    b = LinkProgram(b_body)
    c = LinkProgram(c_body)
    net.add_node(program=s)                    # 0
    net.add_node(program=a, boot_at_us=100.0)  # 1
    net.add_node(program=b, boot_at_us=200.0)  # 2
    net.add_node(program=c, boot_at_us=300.0)  # 3
    net.run(until=RUN_US)
    assert ("a_moved", True) in a.log
    assert ("b_moved", True) in b.log
    # Messages were seen at A, then B, then C -- in order, no loss up to
    # the point each stopped receiving.
    a_msgs = [entry[1] for entry in a.log if entry[0] == "a_got"]
    all_seen = a_msgs + received["B"] + received["C"]
    assert all_seen == [f"m{i}".encode() for i in range(len(all_seen))]
    assert len(received["C"]) == 2


def test_both_ends_move_simultaneously():
    # The MASTER/SLAVE protocol exists precisely to serialize this: both
    # ends of one link try to move at once; one must first become master
    # (delayed/denied while the other moves), and both moves eventually
    # succeed without wedging the link.
    net = Network(seed=182)
    done = []

    def a_body(api, self):
        link_s = yield from self.links.connect(api, 1)   # the contended link (A master)
        link_c = yield from self.links.connect(api, 2)   # A's spare to C
        yield api.compute(5_000)
        yield from self.links.move(api, link_s, link_c)
        done.append("a")

    def b_body(api, self):
        # B holds the SLAVE end of the contended link plus a spare to D.
        yield from api.poll(lambda: self.links.ends)
        contended = next(iter(self.links.ends))
        link_d = yield from self.links.connect(api, 3)
        yield api.compute(5_000)
        yield from self.links.move(api, contended, link_d)
        done.append("b")

    a = LinkProgram(a_body)
    b = LinkProgram(b_body)
    c = LinkProgram()
    d = LinkProgram()
    net.add_node(program=a)                    # 0
    net.add_node(program=b, boot_at_us=50.0)   # 1
    net.add_node(program=c, boot_at_us=100.0)  # 2
    net.add_node(program=d, boot_at_us=150.0)  # 3
    net.run(until=RUN_US)
    assert sorted(done) == ["a", "b"]
    # After both moves, the link runs C <-> D: exactly one end at each,
    # pointing at each other.
    c_end = [e for e in c.links.ends.values()]
    d_end = [e for e in d.links.ends.values()]
    moved_c = [e for e in c_end if e.peer_mid == 3]
    moved_d = [e for e in d_end if e.peer_mid == 2]
    assert len(moved_c) == 1 and len(moved_d) == 1
    assert moved_c[0].peer_pattern == moved_d[0].local_pattern
    assert moved_d[0].peer_pattern == moved_c[0].local_pattern
