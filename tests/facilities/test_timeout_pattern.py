"""The full §4.3.2 timeout idiom, end to end.

"One way to implement timeouts is to register a wakeup REQUEST with a
timeserver utility prior to initiating a REQUEST to a potentially slow
server...  When the delay has expired, the REQUEST is ACCEPTED, thus
notifying the requester that the alarm has expired.  The requester may
then CANCEL outstanding requests to other clients and attempt
alternative action."
"""

from repro.core import CancelStatus, ClientProgram, Network, RequestStatus
from repro.core.patterns import make_well_known_pattern
from repro.facilities.timeservice import ALARM_CLOCK, TimeServer, set_alarm

SLOW = make_well_known_pattern(0o550)
FAST = make_well_known_pattern(0o551)
RUN_US = 120_000_000.0


class SlowServer(ClientProgram):
    """Delivers the request to its handler but never accepts."""

    def initialization(self, api, parent_mid):
        yield from api.advertise(SLOW)


class FastServer(ClientProgram):
    def initialization(self, api, parent_mid):
        yield from api.advertise(FAST)

    def handler(self, api, event):
        if event.is_arrival:
            yield from api.accept_current_get(put=b"fallback answer")


class ImpatientClient(ClientProgram):
    """Tries the slow server with a 40 ms alarm; falls back to the fast
    replica when the alarm fires first."""

    def __init__(self):
        self.alarm_tid = None
        self.alarm_fired = False
        self.outcome = {}

    def handler(self, api, event):
        if event.is_completion and event.asker.tid == self.alarm_tid:
            self.alarm_fired = True
        return
        yield  # pragma: no cover

    def task(self, api):
        from repro.core.buffers import Buffer

        timeserver = yield from api.discover(ALARM_CLOCK)
        # Register the wakeup BEFORE the risky request (§4.3.2).
        self.alarm_tid = yield from set_alarm(api, timeserver, delay_ms=40)
        slow_tid = yield from api.get(api.server_sig(0, SLOW), get=Buffer(32))
        slow_future = api.watch_completion(slow_tid)
        # Wait for whichever happens first.
        yield from api.poll(lambda: self.alarm_fired or slow_future.resolved)
        if self.alarm_fired and not slow_future.resolved:
            status = yield from api.cancel(slow_tid)
            self.outcome["cancel"] = status
            buf = Buffer(32)
            completion = yield from api.b_get(api.server_sig(1, FAST), get=buf)
            self.outcome["fallback"] = (completion.status, buf.data)
        else:  # pragma: no cover - slow server never answers in this test
            self.outcome["unexpected"] = True
        yield from api.serve_forever()


def test_alarm_cancels_slow_request_and_falls_back():
    net = Network(seed=211)
    net.add_node(program=SlowServer())       # 0
    net.add_node(program=FastServer())       # 1
    net.add_node(program=TimeServer())       # 2
    client = ImpatientClient()
    net.add_node(program=client, boot_at_us=100.0)
    net.run(until=RUN_US)
    assert client.outcome.get("cancel") is CancelStatus.SUCCESS
    status, data = client.outcome["fallback"]
    assert status is RequestStatus.COMPLETED
    assert data == b"fallback answer"
    # The slow server's kernel was told: a later ACCEPT would fail.
    slow_kernel = net.nodes[0].kernel
    from repro.core.kernel import DeliveredState

    states = [d.state for d in slow_kernel.delivered.values()]
    assert DeliveredState.CANCELLED in states


def test_alarm_loses_race_when_server_answers_in_time():
    net = Network(seed=212)

    class PromptServer(ClientProgram):
        def initialization(self, api, parent_mid):
            yield from api.advertise(SLOW)

        def handler(self, api, event):
            if event.is_arrival:
                yield from api.accept_current_get(put=b"in time")

    net.add_node(program=PromptServer())     # 0
    net.add_node(program=FastServer())       # 1
    net.add_node(program=TimeServer())       # 2

    outcome = {}

    class Client(ClientProgram):
        def __init__(self):
            self.alarm_tid = None
            self.alarm_fired = False

        def handler(self, api, event):
            if event.is_completion and event.asker.tid == self.alarm_tid:
                self.alarm_fired = True
            return
            yield  # pragma: no cover

        def task(self, api):
            from repro.core.buffers import Buffer

            timeserver = yield from api.discover(ALARM_CLOCK)
            self.alarm_tid = yield from set_alarm(api, timeserver, delay_ms=500)
            buf = Buffer(32)
            tid = yield from api.get(api.server_sig(0, SLOW), get=buf)
            future = api.watch_completion(tid)
            yield from api.poll(lambda: self.alarm_fired or future.resolved)
            assert future.resolved and not self.alarm_fired
            completion = yield from api.wait_completion(tid, future)
            outcome["answer"] = (completion.status, buf.data)
            # Tidy up: cancelling the pending alarm should succeed.
            outcome["alarm_cancel"] = yield from api.cancel(self.alarm_tid)
            yield from api.serve_forever()

    net.add_node(program=Client(), boot_at_us=100.0)
    net.run(until=RUN_US)
    assert outcome["answer"] == (RequestStatus.COMPLETED, b"in time")
    assert outcome["alarm_cancel"] is CancelStatus.SUCCESS
