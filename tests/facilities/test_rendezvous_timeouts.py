"""Tests for CSP rendezvous (Bernstein, §4.2.5) and the timeserver (§4.3.2)."""

import pytest

from repro.core import ClientProgram, Network, RequestStatus
from repro.core.patterns import make_well_known_pattern
from repro.facilities.rendezvous import CspGuard, CspProcess
from repro.facilities.timeservice import ALARM_CLOCK, TimeServer, set_alarm, sleep_via

RUN_US = 120_000_000.0


def csp_name(i: int):
    return make_well_known_pattern(0o5400 + i)


class CspClient(ClientProgram):
    def __init__(self, mid: int, body):
        self.csp = CspProcess(csp_name(mid))
        self.body = body
        self.log = []

    def initialization(self, api, parent_mid):
        yield from self.csp.install(api)

    def handler(self, api, event):
        consumed = yield from self.csp.handle_arrival(api, event)
        if consumed:
            return

    def task(self, api):
        yield from self.body(api, self)
        yield from api.serve_forever()


def test_simple_output_to_waiting_input():
    net = Network(seed=71)

    def receiver(api, self):
        guard = CspGuard(kind="input", msg_type=7, capacity=16)
        idx = yield from self.csp.alternative(api, [guard])
        self.log.append((idx, guard.received))

    def sender(api, self):
        yield api.compute(50_000)
        guard = CspGuard(
            kind="output", msg_type=7,
            peer=api.server_sig(0, csp_name(0)), value=b"rendezvous!",
        )
        idx = yield from self.csp.alternative(api, [guard])
        self.log.append(idx)

    r = CspClient(0, receiver)
    s = CspClient(1, sender)
    net.add_node(program=r)
    net.add_node(program=s, boot_at_us=100.0)
    net.run(until=RUN_US)
    assert r.log == [(0, b"rendezvous!")]
    assert s.log == [0]


def test_type_mismatch_is_rejected_until_matching_sender():
    net = Network(seed=72)

    def receiver(api, self):
        guard = CspGuard(kind="input", msg_type=7, capacity=16)
        yield from self.csp.alternative(api, [guard])
        self.log.append(guard.received)

    def bad_sender(api, self):
        yield api.compute(30_000)
        guard = CspGuard(
            kind="output", msg_type=9,  # wrong type
            peer=api.server_sig(0, csp_name(0)), value=b"wrong",
        )
        idx = yield from self.csp.alternative(api, [guard])
        self.log.append(idx)

    def good_sender(api, self):
        yield api.compute(120_000)
        guard = CspGuard(
            kind="output", msg_type=7,
            peer=api.server_sig(0, csp_name(0)), value=b"right",
        )
        idx = yield from self.csp.alternative(api, [guard])
        self.log.append(idx)

    r = CspClient(0, receiver)
    bad = CspClient(1, bad_sender)
    good = CspClient(2, good_sender)
    net.add_node(program=r)
    net.add_node(program=bad, boot_at_us=100.0)
    net.add_node(program=good, boot_at_us=150.0)
    net.run(until=RUN_US)
    assert r.log == [b"right"]
    assert bad.log == [None]  # its only guard failed
    assert good.log == [0]


def test_symmetric_rendezvous_no_deadlock():
    # Both processes run an alternative command with BOTH an output guard
    # to the other and an input guard -- the classic deadlock danger.
    # Bernstein's MID ordering must let exactly one pairing happen.
    net = Network(seed=73)
    done = []

    def make_body(peer_mid):
        def body(api, self):
            guards = [
                CspGuard(
                    kind="output", msg_type=1,
                    peer=api.server_sig(peer_mid, csp_name(peer_mid)),
                    value=f"from {api.my_mid}".encode(),
                ),
                CspGuard(kind="input", msg_type=1, capacity=16),
            ]
            idx = yield from self.csp.alternative(api, guards)
            done.append((api.my_mid, idx, guards[1].received))

        return body

    p0 = CspClient(0, make_body(1))
    p1 = CspClient(1, make_body(0))
    net.add_node(program=p0)
    net.add_node(program=p1, boot_at_us=60.0)
    net.run(until=RUN_US)
    assert len(done) == 2
    outcomes = dict((mid, (idx, data)) for mid, idx, data in done)
    # Exactly one output succeeded and the other side took the input.
    kinds = sorted(idx for idx, _ in outcomes.values())
    assert kinds == [0, 1]
    receiver_mid = next(m for m, (idx, _) in outcomes.items() if idx == 1)
    sender_mid = 1 - receiver_mid
    assert outcomes[receiver_mid][1] == f"from {sender_mid}".encode()


def test_three_cycle_query_breaks():
    # P0 queries P1, P1 queries P2, P2 queries P0 -- the paper's cycle
    # scenario.  Each process loops on an alternative command with both
    # an output guard (to its successor) and an input guard, until it
    # has taken part in two rendezvous.  The MID ordering must prevent
    # both deadlock (everyone delayed) and livelock (synchronized
    # abort/retry): every process finishes.
    net = Network(seed=74)
    rendezvous_counts = {0: 0, 1: 0, 2: 0}

    def make_body(peer_mid):
        def body(api, self):
            while True:
                guards = [
                    CspGuard(
                        kind="output", msg_type=1,
                        peer=api.server_sig(peer_mid, csp_name(peer_mid)),
                        value=bytes([api.my_mid]),
                    ),
                    CspGuard(kind="input", msg_type=1, capacity=4),
                ]
                idx = yield from self.csp.alternative(api, guards)
                if idx is not None:
                    rendezvous_counts[api.my_mid] += 1
                else:
                    yield api.compute(10_000)

        return body

    for mid, peer in ((0, 1), (1, 2), (2, 0)):
        net.add_node(
            mid=mid, program=CspClient(mid, make_body(peer)),
            boot_at_us=mid * 40.0,
        )
    done = net.run_until(
        lambda: all(count >= 2 for count in rendezvous_counts.values()),
        timeout=RUN_US,
    )
    # No livelock/deadlock: every process keeps rendezvousing.
    assert done, f"starvation: {rendezvous_counts}"


def test_pure_guard_executes_without_communication():
    net = Network(seed=75)

    def body(api, self):
        guards = [
            CspGuard(kind="pure", condition=lambda: True),
            CspGuard(kind="input", msg_type=1),
        ]
        idx = yield from self.csp.alternative(api, guards)
        self.log.append(idx)

    p = CspClient(0, body)
    net.add_node(program=p)
    net.run(until=RUN_US)
    assert p.log == [0]


def test_all_false_conditions_fail_alternative():
    net = Network(seed=76)

    def body(api, self):
        guards = [CspGuard(kind="pure", condition=lambda: False)]
        idx = yield from self.csp.alternative(api, guards)
        self.log.append(idx)

    p = CspClient(0, body)
    net.add_node(program=p)
    net.run(until=RUN_US)
    assert p.log == [None]


# -- timeserver ---------------------------------------------------------------


def test_blocking_sleep_duration():
    net = Network(seed=77)
    net.add_node(program=TimeServer())
    outcome = {}

    class Sleeper(ClientProgram):
        def task(self, api):
            ts = yield from api.discover(ALARM_CLOCK)
            t0 = api.now
            completion = yield from sleep_via(api, ts, delay_ms=50)
            outcome["slept_ms"] = (api.now - t0) / 1000.0
            outcome["status"] = completion.status
            yield from api.serve_forever()

    net.add_node(program=Sleeper(), boot_at_us=100.0)
    net.run(until=RUN_US)
    assert outcome["status"] is RequestStatus.COMPLETED
    assert outcome["slept_ms"] == pytest.approx(50.0, abs=20.0)
    assert outcome["slept_ms"] >= 50.0


def test_alarm_completion_arrives_at_handler():
    net = Network(seed=78)
    server = TimeServer()
    net.add_node(program=server)
    fired = []

    class AlarmUser(ClientProgram):
        def handler(self, api, event):
            if event.is_completion and event.asker.tid == self.alarm_tid:
                fired.append(api.now)
            return
            yield  # pragma: no cover

        def task(self, api):
            ts = yield from api.discover(ALARM_CLOCK)
            self.alarm_tid = yield from set_alarm(api, ts, delay_ms=30)
            self.set_at = api.now
            yield from api.serve_forever()

    user = AlarmUser()
    net.add_node(program=user, boot_at_us=100.0)
    net.run(until=RUN_US)
    assert fired and fired[0] - user.set_at >= 30_000.0


def test_multiple_alarms_fire_in_expiry_order():
    net = Network(seed=79)
    server = TimeServer()
    net.add_node(program=server)
    fired = []

    class MultiAlarm(ClientProgram):
        def handler(self, api, event):
            if event.is_completion:
                fired.append((self.tids.index(event.asker.tid), api.now))
            return
            yield  # pragma: no cover

        def task(self, api):
            ts = yield from api.discover(ALARM_CLOCK)
            self.tids = []
            for delay in (80, 20, 50):
                tid = yield from set_alarm(api, ts, delay_ms=delay)
                self.tids.append(tid)
            yield from api.serve_forever()

    net.add_node(program=MultiAlarm(), boot_at_us=100.0)
    net.run(until=RUN_US)
    order = [idx for idx, _ in fired]
    assert order == [1, 2, 0]  # 20ms, 50ms, 80ms
    assert server.alarms_served == 3
