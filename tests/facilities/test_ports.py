"""Tests for input ports and priority queues (§4.2.1)."""

from repro.core import ClientProgram, Network
from repro.core.patterns import make_well_known_pattern
from repro.facilities.ports import InputPort, PriorityPort, port_write

PORT = make_well_known_pattern(0o540)
RUN_US = 60_000_000.0


class PortReader(ClientProgram):
    def __init__(self, port, count):
        self.port = port
        self.count = count
        self.reads = []

    def initialization(self, api, parent_mid):
        yield from self.port.install(api)

    def handler(self, api, event):
        if event.is_arrival and event.pattern == self.port.pattern:
            yield from self.port.note_arrival(api, event)

    def task(self, api):
        for _ in range(self.count):
            data = yield from self.port.read(api)
            self.reads.append(data)
        yield from api.serve_forever()


class PortWriter(ClientProgram):
    def __init__(self, messages, priority_fn=None, delay_us=0.0):
        self.messages = messages
        self.priority_fn = priority_fn or (lambda i: 0)
        self.delay_us = delay_us
        self.done = 0

    def task(self, api):
        if self.delay_us:
            yield api.compute(self.delay_us)
        sig = api.server_sig(0, PORT)
        for i, message in enumerate(self.messages):
            yield from port_write(api, sig, message, priority=self.priority_fn(i))
            self.done += 1
        yield from api.serve_forever()


def test_single_writer_fifo():
    net = Network(seed=41)
    reader = PortReader(InputPort(PORT, queue_capacity=8, item_capacity=64), 5)
    net.add_node(program=reader)
    messages = [f"msg{i}".encode() for i in range(5)]
    net.add_node(program=PortWriter(messages), boot_at_us=100.0)
    net.run(until=RUN_US)
    assert reader.reads == messages


def test_multiple_writers_all_delivered():
    net = Network(seed=42)
    reader = PortReader(InputPort(PORT, queue_capacity=8, item_capacity=64), 6)
    net.add_node(program=reader)
    net.add_node(program=PortWriter([b"a1", b"a2", b"a3"]), boot_at_us=100.0)
    net.add_node(program=PortWriter([b"b1", b"b2", b"b3"]), boot_at_us=150.0)
    net.run(until=RUN_US)
    assert sorted(reader.reads) == sorted([b"a1", b"a2", b"a3", b"b1", b"b2", b"b3"])
    # Per-writer FIFO is preserved (§3.3.2 ordering guarantee).
    a_reads = [m for m in reader.reads if m.startswith(b"a")]
    b_reads = [m for m in reader.reads if m.startswith(b"b")]
    assert a_reads == [b"a1", b"a2", b"a3"]
    assert b_reads == [b"b1", b"b2", b"b3"]


def test_port_flow_control_small_queue():
    # Queue of 2 against 6 eager writes: the handler CLOSEs when full and
    # reopens as the reader drains; nothing is lost.
    net = Network(seed=43)
    reader = PortReader(InputPort(PORT, queue_capacity=2, item_capacity=64), 6)
    net.add_node(program=reader)
    writer = PortWriter([f"m{i}".encode() for i in range(6)])
    net.add_node(program=writer, boot_at_us=100.0)
    net.run(until=RUN_US)
    assert reader.reads == [f"m{i}".encode() for i in range(6)]
    assert writer.done == 6


def test_priority_port_orders_by_argument():
    net = Network(seed=44)
    port = PriorityPort(PORT, queue_capacity=8, item_capacity=64)

    class SlowReader(PortReader):
        def task(self, api):
            # Let all writes queue up first, then drain.
            yield api.compute(400_000)
            yield from PortReader.task(self, api)

    reader = SlowReader(port, 3)
    net.add_node(program=reader)
    # One writer, priorities 1, 9, 5 -- reads must come out 9, 5, 1.
    # (The writer blocks per write, so all three are enqueued in issue
    # order but the reader drains by priority.)
    priorities = {0: 1, 1: 9, 2: 5}

    class AsyncWriter(ClientProgram):
        def task(self, api):
            sig = api.server_sig(0, PORT)
            for i in range(3):
                yield from api.put(sig, arg=priorities[i], put=f"p{priorities[i]}".encode())
            yield from api.serve_forever()

    net.add_node(program=AsyncWriter(), boot_at_us=100.0)
    net.run(until=RUN_US)
    assert reader.reads == [b"p9", b"p5", b"p1"]
