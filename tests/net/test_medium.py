"""Unit tests for the broadcast bus, NIC, frames, and fault injection."""

import pytest

from repro.net import BROADCAST_MID, BroadcastBus, FaultPlan, Frame, NetworkInterface
from repro.net.frame import FRAME_HEADER_BYTES
from repro.sim import Simulator


def build_bus(n_nodes=3, **kwargs):
    sim = Simulator(seed=1)
    bus = BroadcastBus(sim, **kwargs)
    nics = [NetworkInterface(bus, mid) for mid in range(n_nodes)]
    inboxes = {nic.mid: [] for nic in nics}
    for nic in nics:
        nic.on_frame = (lambda m: lambda f: inboxes[m].append(f))(nic.mid)
    return sim, bus, nics, inboxes


def test_unicast_reaches_only_destination():
    sim, bus, nics, inboxes = build_bus()
    nics[0].send(2, "hello")
    sim.run()
    assert len(inboxes[2]) == 1
    assert inboxes[1] == []
    assert inboxes[0] == []


def test_broadcast_reaches_everyone_but_sender():
    sim, bus, nics, inboxes = build_bus()
    nics[1].send(BROADCAST_MID, "announce")
    sim.run()
    assert len(inboxes[0]) == 1
    assert len(inboxes[2]) == 1
    assert inboxes[1] == []


def test_unicast_to_absent_mid_vanishes():
    sim, bus, nics, inboxes = build_bus()
    nics[0].send(99, "ghost")
    sim.run()
    assert all(not v for v in inboxes.values())


def test_serialization_delay_matches_bandwidth():
    # 1 Mbit/s -> 8 us per byte.
    sim, bus, nics, inboxes = build_bus(propagation_us=0.0)
    nics[0].send(1, "x", payload_bytes=100)
    sim.run()
    expected = (FRAME_HEADER_BYTES + 100) * 8.0
    assert sim.now == pytest.approx(expected)


def test_propagation_delay_added():
    sim, bus, nics, inboxes = build_bus(propagation_us=50.0)
    nics[0].send(1, "x", payload_bytes=0)
    sim.run()
    assert sim.now == pytest.approx(FRAME_HEADER_BYTES * 8.0 + 50.0)


def test_bus_serializes_concurrent_sends():
    sim, bus, nics, inboxes = build_bus(propagation_us=0.0)
    times = []
    nics[2].on_frame = lambda f: times.append(sim.now)
    nics[0].send(2, "a", payload_bytes=0)
    nics[1].send(2, "b", payload_bytes=0)
    sim.run()
    per_frame = FRAME_HEADER_BYTES * 8.0
    assert times == [pytest.approx(per_frame), pytest.approx(2 * per_frame)]


def test_bus_counts_traffic():
    sim, bus, nics, _ = build_bus()
    nics[0].send(1, "x", payload_bytes=10)
    nics[0].send(1, "y", payload_bytes=20)
    sim.run()
    assert bus.frames_sent == 2
    assert bus.bytes_sent == 2 * FRAME_HEADER_BYTES + 30


def test_duplicate_mid_rejected():
    sim = Simulator()
    bus = BroadcastBus(sim)
    NetworkInterface(bus, 1)
    with pytest.raises(ValueError):
        NetworkInterface(bus, 1)


def test_negative_mid_rejected():
    sim = Simulator()
    bus = BroadcastBus(sim)
    with pytest.raises(ValueError):
        NetworkInterface(bus, -2)


def test_disabled_nic_discards():
    sim, bus, nics, inboxes = build_bus()
    nics[1].enabled = False
    nics[0].send(1, "x")
    sim.run()
    assert inboxes[1] == []


def test_nic_without_handler_discards():
    sim, bus, nics, inboxes = build_bus()
    nics[1].on_frame = None
    nics[0].send(1, "x")
    sim.run()  # must not raise


# -- fault injection ------------------------------------------------------------


def test_loss_probability_drops_frames():
    sim = Simulator(seed=3)
    bus = BroadcastBus(sim, faults=FaultPlan(loss_probability=1.0))
    a, b = NetworkInterface(bus, 0), NetworkInterface(bus, 1)
    got = []
    b.on_frame = got.append
    a.send(1, "x")
    sim.run()
    assert got == []
    assert bus.faults.frames_lost == 1


def test_corruption_counts_separately():
    sim = Simulator(seed=3)
    bus = BroadcastBus(sim, faults=FaultPlan(corruption_probability=1.0))
    a, b = NetworkInterface(bus, 0), NetworkInterface(bus, 1)
    b.on_frame = lambda f: None
    a.send(1, "x")
    sim.run()
    assert bus.faults.frames_corrupted == 1


def test_drop_next_scripted():
    sim = Simulator()
    bus = BroadcastBus(sim)
    a, b = NetworkInterface(bus, 0), NetworkInterface(bus, 1)
    got = []
    b.on_frame = got.append
    bus.faults.drop_next(1)
    a.send(1, "first")
    a.send(1, "second")
    sim.run()
    assert [f.payload for f in got] == ["second"]
    assert bus.faults.frames_scripted_drops == 1


def test_drop_predicate_severs_direction():
    sim = Simulator()
    bus = BroadcastBus(sim)
    a, b = NetworkInterface(bus, 0), NetworkInterface(bus, 1)
    got_a, got_b = [], []
    a.on_frame = got_a.append
    b.on_frame = got_b.append
    predicate = lambda frame, rx: frame.src == 0
    bus.faults.add_drop_predicate(predicate)
    a.send(1, "a->b")
    b.send(0, "b->a")
    sim.run()
    assert got_b == []
    assert len(got_a) == 1
    bus.faults.remove_drop_predicate(predicate)
    a.send(1, "again")
    sim.run()
    assert len(got_b) == 1


def test_drop_next_broadcast_burns_one_budget_unit():
    # Regression: one broadcast frame fans out to N-1 receivers but is ONE
    # scripted event — it must consume exactly one drop_next unit and count
    # once, and the next frame must get through everywhere.
    sim, bus, nics, inboxes = build_bus(n_nodes=4)
    bus.faults.drop_next(1)
    nics[0].send(BROADCAST_MID, "doomed")
    nics[0].send(BROADCAST_MID, "survivor")
    sim.run()
    for mid in (1, 2, 3):
        assert [f.payload for f in inboxes[mid]] == ["survivor"]
    assert bus.faults.frames_scripted_drops == 1
    assert not bus.faults.scripted_drops_pending


def test_drop_matching_targets_nth_match():
    # "Drop the 2nd frame from node 0" — skip=1 lets the first match pass.
    sim, bus, nics, inboxes = build_bus()
    bus.faults.drop_matching(lambda f: f.src == 0, count=1, skip=1)
    nics[0].send(1, "first")
    nics[0].send(1, "second")
    nics[0].send(1, "third")
    nics[2].send(1, "other")  # non-matching traffic is untouched
    sim.run()
    assert [f.payload for f in inboxes[1]] == ["first", "third", "other"]
    assert bus.faults.frames_scripted_drops == 1


def test_drop_matching_broadcast_counts_once():
    sim, bus, nics, inboxes = build_bus(n_nodes=3)
    bus.faults.drop_matching(lambda f: f.payload == "doomed")
    nics[0].send(BROADCAST_MID, "doomed")
    sim.run()
    assert inboxes[1] == [] and inboxes[2] == []
    assert bus.faults.frames_scripted_drops == 1


def test_drop_matching_validates_args():
    plan = FaultPlan()
    with pytest.raises(ValueError):
        plan.drop_matching(lambda f: True, count=0)
    with pytest.raises(ValueError):
        plan.drop_matching(lambda f: True, skip=-1)


def test_predicate_drops_counted_per_delivery():
    sim, bus, nics, inboxes = build_bus(n_nodes=3)
    predicate = lambda frame, rx: frame.src == 0
    bus.faults.add_drop_predicate(predicate)
    nics[0].send(BROADCAST_MID, "blocked")
    sim.run()
    assert inboxes[1] == [] and inboxes[2] == []
    # Partitions are receiver-specific: two deliveries were suppressed.
    assert bus.faults.deliveries_predicate_dropped == 2
    assert bus.faults.frames_scripted_drops == 0


def test_fault_plan_validates_probabilities():
    with pytest.raises(ValueError):
        FaultPlan(loss_probability=1.5)
    with pytest.raises(ValueError):
        FaultPlan(corruption_probability=-0.1)


def test_frame_properties():
    frame = Frame(1, BROADCAST_MID, "p", payload_bytes=10)
    assert frame.is_broadcast
    assert frame.wire_bytes == FRAME_HEADER_BYTES + 10
    assert "BCAST" in repr(frame)
