"""Smoke tests: every example script runs clean.

Examples are documentation that executes; these tests keep them honest.
The slower table-generating example runs in --quick mode.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: float = 600.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "exchange completed" in out
    assert "frames crossed the bus" in out


def test_typical_network():
    out = run_example("typical_network.py")
    assert "booted worker" in out
    assert "worker answered: 5050" in out
    assert "worker answered: 500500" in out
    assert "worker killed" in out
    assert "sum 1..100 -> 5050" in out


def test_dining_philosophers():
    out = run_example("dining_philosophers.py")
    assert "finished: True" in out
    assert "deadlock(s) broken" in out


def test_deltat_scenarios():
    out = run_example("deltat_scenarios.py")
    assert out.count("[ok]") == 3
    assert "FAILED" not in out


def test_readers_writers():
    out = run_example("readers_writers.py")
    assert "invariant violations: 0" in out
    assert "operations completed: 25/25" in out


def test_csp_pipeline():
    out = run_example("csp_pipeline.py")
    assert "pipeline delivered: [6, 14, 22, 50]" in out


@pytest.mark.slow
def test_performance_tables_quick():
    out = run_example("performance_tables.py", "--quick")
    assert "Milliseconds per EXCHANGE (pipelined)" in out
    assert "SODA vs *MOD" in out
