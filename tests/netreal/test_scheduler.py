"""WallClockScheduler: the SchedulerBackend contract over real time."""

import pytest

from repro.netreal.scheduler import WallClockScheduler
from repro.sim.interface import SchedulerBackend, TimerHandle


@pytest.fixture
def sched():
    scheduler = WallClockScheduler(seed=9)
    yield scheduler
    scheduler.close()


def test_satisfies_backend_protocols(sched):
    assert isinstance(sched, SchedulerBackend)
    assert isinstance(sched.schedule(0.0, lambda: None), TimerHandle)


def test_timer_fires_and_order_holds(sched):
    fired = []
    sched.schedule(4_000.0, fired.append, "late")
    sched.schedule(1_000.0, fired.append, "early")
    events = sched.run(until=20_000.0)
    assert fired == ["early", "late"]
    assert events == 2


def test_cancel_is_idempotent_and_fired_timers_stay_uncancelled(sched):
    fired = []
    doomed = sched.schedule(2_000.0, fired.append, "no")
    kept = sched.schedule(2_000.0, fired.append, "yes")
    doomed.cancel()
    doomed.cancel()
    sched.run(until=20_000.0)
    assert fired == ["yes"]
    assert doomed.cancelled
    # A spent timer reads as live, exactly like sim Events — the
    # degraded-run auditor keys off this distinction.
    assert not kept.cancelled


def test_negative_delay_rejected(sched):
    with pytest.raises(ValueError):
        sched.schedule(-1.0, lambda: None)


def test_past_instant_fires_instead_of_raising(sched):
    sched.start()
    fired = []
    sched.at(0.0, fired.append, True)  # epoch is already behind the clock
    sched.run(until=10_000.0)
    assert fired == [True]


def test_parked_timers_flush_at_start(sched):
    fired = []
    timer = sched.at(1_000.0, fired.append, "boot")
    cancelled = sched.at(1_000.0, fired.append, "never")
    cancelled.cancel()
    assert not sched.started
    assert sched.now == 0.0
    sched.run(until=15_000.0)  # implicit start
    assert fired == ["boot"]
    assert not timer.cancelled


def test_run_requires_horizon(sched):
    with pytest.raises(ValueError):
        sched.run()


def test_now_is_monotonic_and_run_advances_it(sched):
    sched.run(until=2_000.0)
    first = sched.now
    sched.run(until=4_000.0)
    assert sched.now >= first >= 2_000.0


def test_double_start_rejected(sched):
    sched.start()
    with pytest.raises(RuntimeError):
        sched.start()


def test_run_until_polls_predicate(sched):
    state = []
    sched.schedule(2_000.0, state.append, True)
    assert sched.run_until(lambda: bool(state), timeout=1_000_000.0)
    assert not sched.run_until(lambda: False, timeout=5_000.0)


def test_processes_and_futures_run_over_wall_clock(sched):
    """The unmodified sim Process/SimFuture machinery works unchanged."""
    log = []

    def helper(future):
        yield 1_000.0  # sleep a millisecond of real time
        future.resolve("payload")

    def main():
        future = sched.new_future()
        sched.spawn(helper(future), name="helper")
        value = yield future
        log.append(value)

    sched.spawn(main(), name="main")
    sched.run(until=100_000.0)
    assert log == ["payload"]


def test_rng_streams_are_seeded_and_named(sched):
    a = [sched.rng.stream("x").random() for _ in range(3)]
    other = WallClockScheduler(seed=9)
    try:
        assert [other.rng.stream("x").random() for _ in range(3)] == a
        assert other.rng.stream("y").random() != a[0]
    finally:
        other.close()
