"""Tier-1 smoke: the unmodified SODA stack over real UDP sockets.

A whole network — server plus two ping-pong clients — on ONE event loop
in THIS process (no subprocesses; the multi-process path is exercised
by the CI ``real`` smoke job), bound to real loopback datagram sockets.
Hard wall-clock timeouts throughout: a wedged run fails, never hangs.

After the run, the standard batch analyzers audit the trace post-hoc —
the tentpole's claim is precisely that the sim-grade invariants hold
over the real transport.
"""

import pytest

from repro.analysis.causal import (
    build_causal_order,
    detect_deadlocks,
    find_races,
)
from repro.analysis.invariants import InvariantChecker
from repro.netreal import Impairments, RealNetwork
from repro.netreal.trace_io import tracer_from_records
from repro.netreal.workloads import PingClient, PingServer

#: Generous wall-clock cap; clean loopback runs finish in well under a
#: second.  pytest-timeout is not installed, so the cap is enforced by
#: run_until's own deadline.
TIMEOUT_US = 20_000_000.0

GRACE_US = 300_000.0


def _run_pingpong(impairments=None, rounds=2, seed=11):
    net = RealNetwork(seed=seed, impairments=impairments)
    try:
        server = PingServer()
        clients = [PingClient(rounds=rounds) for _ in range(2)]
        net.add_node(program=server, name="server")
        for index, client in enumerate(clients):
            net.add_node(
                program=client,
                name=f"ping{index + 1}",
                boot_at_us=30_000.0 * (index + 1),
            )
        finished = net.run_until(
            lambda: all(client.finished for client in clients),
            timeout=TIMEOUT_US,
        )
        net.run(until=net.now + GRACE_US)  # drain the final ACKs
        records = list(net.sim.trace.records)
    finally:
        net.close()
    return finished, clients, records


def test_pingpong_over_real_sockets():
    finished, clients, records = _run_pingpong()
    assert finished, "clients did not finish within the wall-clock cap"
    for client in clients:
        assert client.completions == ["completed"] * 2

    assert any(rec.category == "net.tx" for rec in records)
    checker = InvariantChecker(strict_completion=True)
    violations = checker.check(tracer_from_records(records))
    assert violations == [], [v.format() for v in violations]

    order = build_causal_order(records)
    assert order.send_edges > 0
    assert order.unmatched_rx == 0
    diagnostics = find_races(records, order) + detect_deadlocks(records)
    assert diagnostics == [], [d.format() for d in diagnostics]


def test_pingpong_survives_seeded_loss():
    finished, clients, records = _run_pingpong(
        impairments=Impairments(loss_probability=0.15), seed=12
    )
    assert finished, "clients did not finish despite retransmission"
    for client in clients:
        assert client.completions == ["completed"] * 2
    violations = InvariantChecker(strict_completion=True).check(
        tracer_from_records(records)
    )
    assert violations == [], [v.format() for v in violations]


def test_wall_clock_timestamps_are_real_and_ordered():
    finished, _, records = _run_pingpong()
    assert finished
    times = [rec.time for rec in records]
    assert times == sorted(times)
    # Wall-clock microseconds: floats with genuine sub-ms structure,
    # spanning at least the two boot offsets.
    assert any(isinstance(t, float) and t != int(t) for t in times)
    assert times[-1] > 60_000.0


def test_unknown_destination_vanishes_like_the_bus():
    """A frame to an unregistered MID is silently dropped, matching the
    simulator's absent-MID screening — no socket error escapes."""
    net = RealNetwork(seed=13)
    try:
        client = PingClient(rounds=1)
        net.add_node(program=client, name="lonely")
        finished = net.run_until(lambda: client.finished, timeout=400_000.0)
        assert not finished  # nobody answers DISCOVER
        assert net.bus.frames_sent > 0
    finally:
        net.close()


@pytest.mark.parametrize("loss", [0.0, 0.3])
def test_decode_errors_are_contained(loss):
    """Garbage datagrams hit the counter, not the kernel."""
    net = RealNetwork(
        seed=14, impairments=Impairments(loss_probability=loss)
    )
    try:
        client = PingClient(rounds=1)
        net.add_node(program=PingServer(), name="server")
        net.add_node(program=client, name="ping", boot_at_us=20_000.0)
        addresses = net.sim.loop.run_until_complete(net.open())

        def spray() -> None:
            transport = net.bus._protocols[0].transport
            for junk in (b"", b"XX", b"SW\x01garbage", b"\xff" * 64):
                transport.sendto(junk, addresses[1])

        net.sim.schedule(10_000.0, spray)
        finished = net.run_until(lambda: client.finished, timeout=TIMEOUT_US)
        assert finished
        assert client.completions == ["completed"]
        assert net.bus.decode_errors >= 3  # b"" may be dropped by the OS
        errors = [
            rec
            for rec in net.sim.trace.records
            if rec.category == "netreal.decode_error"
        ]
        assert len(errors) == net.bus.decode_errors
        assert all(rec["mid"] == 1 for rec in errors)
    finally:
        net.close()
