"""Property tests for the binary wire codec (ISSUE 7 satellite).

Round-trip: any encodable packet — every type, every optional-field
combination hypothesis can compose — survives encode/decode with all
protocol-relevant fields intact.  Rejection: any truncation or byte
corruption of a valid datagram, and arbitrary junk, either decodes to
the original frame (corruption that misses the encoding, e.g. flipping
a bit the CRC catches first is *never* accepted silently) or raises
:class:`WireDecodeError` — never any other exception.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.frame import BROADCAST_MID, Frame
from repro.netreal.wire import (
    MAX_DATAGRAM_BYTES,
    WIRE_VERSION,
    WireDecodeError,
    WireEncodeError,
    decode_frame,
    encode_frame,
)
from repro.transport.packet import NackCode, Packet, PacketType

#: Everything the codec carries; ``image``/``packet_id`` deliberately
#: stay process-local (see the wire module docstring).
WIRE_FIELDS = (
    "ptype",
    "seq",
    "ack",
    "connection_open",
    "pattern",
    "tid",
    "requester_mid",
    "arg",
    "put_size",
    "get_size",
    "data",
    "pull_data",
    "taken_put",
    "taken_get",
    "nack_code",
    "nacked_seq",
    "retry_hint_us",
    "tx_us",
    "echo_tx_us",
    "reply_mid",
    "query_token",
    "epoch",
)

_bit = st.sampled_from([0, 1])
_u32 = st.integers(min_value=0, max_value=2**32 - 1)
_i32 = st.integers(min_value=-(2**31), max_value=2**31 - 1)
_i64 = st.integers(min_value=-(2**63), max_value=2**63 - 1)
_time_us = st.floats(
    min_value=0.0, max_value=1e12, allow_nan=False, allow_infinity=False
)

packets = st.builds(
    Packet,
    ptype=st.sampled_from(PacketType),
    seq=st.none() | _bit,
    ack=st.none() | _bit,
    connection_open=st.booleans(),
    pattern=st.none() | st.integers(min_value=0, max_value=2**48 - 1),
    tid=st.none() | _u32,
    requester_mid=st.none() | _i32,
    arg=_i64,
    put_size=_u32,
    get_size=_u32,
    data=st.none() | st.binary(max_size=2048),
    pull_data=st.booleans(),
    taken_put=_u32,
    taken_get=_u32,
    nack_code=st.none() | st.sampled_from(NackCode),
    nacked_seq=st.none() | _bit,
    retry_hint_us=st.none() | _time_us,
    tx_us=st.none() | _time_us,
    echo_tx_us=st.none() | _time_us,
    reply_mid=st.none() | _i32,
    query_token=st.none() | _i64,
    epoch=st.none() | _u32,
)

frames = st.builds(
    lambda src, dst, packet, frame_id: Frame(
        src, dst, packet, payload_bytes=packet.data_bytes, frame_id=frame_id
    ),
    src=st.integers(min_value=0, max_value=2**31 - 1),
    dst=st.just(BROADCAST_MID) | st.integers(min_value=0, max_value=2**31 - 1),
    packet=packets,
    frame_id=st.integers(min_value=0, max_value=2**64 - 1),
)


def assert_frames_equal(left: Frame, right: Frame) -> None:
    assert left.src == right.src
    assert left.dst == right.dst
    assert left.frame_id == right.frame_id
    assert left.payload_bytes == right.payload_bytes
    for name in WIRE_FIELDS:
        assert getattr(left.payload, name) == getattr(right.payload, name), name


@given(frame=frames)
@settings(max_examples=300)
def test_round_trip(frame):
    decoded = decode_frame(encode_frame(frame))
    assert_frames_equal(frame, decoded)


@given(frame=frames)
def test_decoded_packet_gets_fresh_identity(frame):
    decoded = decode_frame(encode_frame(frame))
    assert decoded.payload.packet_id != frame.payload.packet_id
    assert decoded.payload.image is None


@given(frame=frames, cut=st.integers(min_value=0, max_value=200))
def test_truncation_never_escapes(frame, cut):
    datagram = encode_frame(frame)
    truncated = datagram[: max(0, len(datagram) - 1 - cut)]
    with pytest.raises(WireDecodeError):
        decode_frame(truncated)


@given(
    frame=frames,
    position=st.integers(min_value=0, max_value=2**31),
    flip=st.integers(min_value=1, max_value=255),
)
def test_corruption_never_escapes(frame, position, flip):
    """Any single-byte corruption is rejected or decodes identically.

    (The CRC makes silent acceptance of a *changed* datagram impossible;
    flipping bits inside the data payload of an already-CRC-matching
    datagram cannot happen by construction.)
    """
    datagram = bytearray(encode_frame(frame))
    index = position % len(datagram)
    datagram[index] ^= flip
    try:
        decoded = decode_frame(bytes(datagram))
    except WireDecodeError:
        return
    # Only reachable if the corruption produced another valid encoding
    # that the CRC vouches for — astronomically unlikely, but if it
    # happens the decode must still be a well-formed frame.
    assert isinstance(decoded, Frame)


@given(junk=st.binary(max_size=256))
def test_junk_never_escapes(junk):
    try:
        decode_frame(junk)
    except WireDecodeError:
        pass


def test_oversized_datagram_rejected():
    with pytest.raises(WireDecodeError):
        decode_frame(b"\x00" * (MAX_DATAGRAM_BYTES + 1))


def test_version_skew_rejected():
    datagram = bytearray(
        encode_frame(Frame(1, 2, Packet(ptype=PacketType.ACK), 0))
    )
    assert datagram[2] == WIRE_VERSION
    datagram[2] = WIRE_VERSION + 1
    with pytest.raises(WireDecodeError):
        decode_frame(bytes(datagram))


def test_bad_magic_rejected():
    datagram = bytearray(
        encode_frame(Frame(1, 2, Packet(ptype=PacketType.ACK), 0))
    )
    datagram[0] = ord("X")
    with pytest.raises(WireDecodeError):
        decode_frame(bytes(datagram))


def test_trailing_octets_rejected():
    """Appending bytes invalidates the CRC; fixing the CRC still fails
    on the trailing-octet check — either way the decode refuses."""
    datagram = encode_frame(Frame(1, 2, Packet(ptype=PacketType.ACK), 0))
    with pytest.raises(WireDecodeError):
        decode_frame(datagram + b"\x00")


def test_boot_image_refused_at_encode():
    packet = Packet(ptype=PacketType.REQUEST, image=object())
    with pytest.raises(WireEncodeError):
        encode_frame(Frame(1, 2, packet, 0))


def test_non_packet_payload_refused_at_encode():
    with pytest.raises(WireEncodeError):
        encode_frame(Frame(1, 2, "not a packet", 0))


def test_wire_fields_cover_the_packet():
    """If Packet grows a field, this forces a codec decision."""
    known = set(WIRE_FIELDS) | {"image", "packet_id"}
    actual = {f.name for f in dataclasses.fields(Packet)}
    assert actual == known
