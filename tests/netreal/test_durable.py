"""Durable KV replicas over real sockets: WAL + snapshots on FileDisk.

One event loop, real loopback UDP, real files under ``tmp_path`` — the
whole cluster loses power mid-run, reboots, and must recover every
acknowledged write from disk.  Wall-clock timeouts throughout.
"""

from repro.durability.disk import DiskFaultPlan, FaultDisk, FileDisk
from repro.netreal import RealNetwork
from repro.replication import KvClient, KvReplica
from repro.replication.consistency import check_kv_consistency

TIMEOUT_US = 30_000_000.0
GRACE_US = 500_000.0

BLACKOUT_US = 1_600_000.0
REBOOT_US = 2_100_000.0


def _replica(index):
    return KvReplica(index, tuple(i for i in range(3) if i != index),
                     claim_primary=index == 0)


def test_cluster_power_loss_recovers_from_filedisk(tmp_path):
    net = RealNetwork(seed=21)
    try:
        replicas = []
        for index in range(3):
            node = net.add_node(
                program=_replica(index),
                name=f"replica{index}",
                boot_at_us=20_000.0 * index,
            )
            node.disk = FaultDisk(
                FileDisk(str(tmp_path / f"replica{index}")),
                DiskFaultPlan(seed=100 + index),
            )
            replicas.append(node)
        client = KvClient(total=8)
        net.add_node(program=client, name="client", boot_at_us=250_000.0)

        def cut():
            for node in replicas:
                if node.kernel.offline_until is None:
                    node.crash()

        def reboot():
            for index, node in enumerate(replicas):
                boot_at = net.sim.now
                if node.kernel.offline_until is not None:
                    boot_at = node.kernel.offline_until
                node.install_program(_replica(index), boot_at_us=boot_at)

        net.sim.at(BLACKOUT_US, cut)
        net.sim.at(REBOOT_US, reboot)

        finished = net.run_until(
            lambda: len(client.outcomes) >= client.total,
            timeout=TIMEOUT_US,
        )
        net.run(until=net.now + GRACE_US)
        records = list(net.sim.trace.records)
    finally:
        net.close()

    assert finished, "client did not finish within the wall-clock cap"
    assert check_kv_consistency(records) == []
    # The reboot really went through disk recovery, not amnesia.
    recovers = [
        r for r in records
        if r.category == "kv.recover" and r.fields.get("source") != "amnesia"
    ]
    assert recovers
    assert any(int(r.fields.get("entries", 0)) > 0 for r in recovers)
    # And the WAL exists as honest-to-goodness files.
    assert any((tmp_path / "replica0").iterdir())
