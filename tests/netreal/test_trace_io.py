"""Trace JSONL round-trips and the wall-clock merge (ISSUE 7 satellite).

The regression being pinned: simulated traces carry integer-valued
microsecond timestamps, wall-clock traces arbitrary floats, and both
must survive dump/load/merge with their exact types — an ``int()``
anywhere in the path would silently collapse sub-microsecond wall-clock
orderings.  The invariant checker and span builder must accept either.
"""

from repro.analysis.invariants import InvariantChecker
from repro.netreal.trace_io import (
    dump_trace,
    load_trace,
    merge_records,
    merge_traces,
    tracer_from_records,
)
from repro.obs.spans import build_spans
from repro.sim.tracing import TraceRecord


def test_round_trip_preserves_timestamp_types(tmp_path):
    records = [
        TraceRecord(100, "kernel.tx", {"mid": 0}),  # sim: int µs
        TraceRecord(100.25, "kernel.rx", {"mid": 1}),  # real: float µs
        TraceRecord(100.75, "net.tx", {"src": 0, "dst": 1}),
    ]
    path = dump_trace(tmp_path / "t.jsonl", records, meta={"mid": 0})
    meta, loaded = load_trace(path)
    assert meta["mid"] == 0
    assert [r.time for r in loaded] == [100, 100.25, 100.75]
    assert type(loaded[0].time) is int
    assert type(loaded[1].time) is float
    assert [r.category for r in loaded] == [
        "kernel.tx",
        "kernel.rx",
        "net.tx",
    ]
    assert loaded[2].fields == {"src": 0, "dst": 1}


def test_merge_orders_across_streams_without_rounding():
    stream_a = [
        TraceRecord(10.5, "a1", {}),
        TraceRecord(12.25, "a2", {}),
    ]
    stream_b = [
        TraceRecord(10.75, "b1", {}),
        TraceRecord(12.25, "b2", {}),
    ]
    merged = merge_records([stream_a, stream_b])
    assert [r.category for r in merged] == ["a1", "b1", "a2", "b2"]
    # Sub-microsecond separations survive: int() here would make 10.5
    # and 10.75 tie and the order arbitrary.
    assert [r.time for r in merged] == [10.5, 10.75, 12.25, 12.25]


def test_merge_is_stable_within_a_stream():
    stream = [TraceRecord(5.0, f"e{i}", {}) for i in range(4)]
    merged = merge_records([stream])
    assert [r.category for r in merged] == ["e0", "e1", "e2", "e3"]


def test_merge_traces_pools_ledgers(tmp_path):
    a = dump_trace(
        tmp_path / "a.jsonl",
        [TraceRecord(1.5, "x", {})],
        meta={"mid": 0, "ledger": {"transmission": 10.0, "kernel": 2.0}},
    )
    b = dump_trace(
        tmp_path / "b.jsonl",
        [TraceRecord(1.25, "y", {})],
        meta={"mid": 1, "ledger": {"transmission": 5.0}},
    )
    metas, merged, ledger = merge_traces([a, b])
    assert [m["mid"] for m in metas] == [0, 1]
    assert [r.category for r in merged] == ["y", "x"]
    assert ledger.snapshot() == {"transmission": 15.0, "kernel": 2.0}


def test_checker_and_spans_accept_mixed_timestamp_types():
    """One requester's span with float (wall-clock) timestamps flows
    through the span builder and the strict invariant checker."""
    mid, tid = 7, 3
    records = [
        TraceRecord(
            1000.5,
            "kernel.request",
            {
                "mid": mid,
                "tid": tid,
                "dst": 2,
                "pattern": 1,
                "put": 4,
                "get": 4,
            },
        ),
        TraceRecord(
            1500, "kernel.rx", {"mid": 2, "ptype": "request", "tid": tid}
        ),
        TraceRecord(
            2000.25,
            "kernel.complete",
            {
                "mid": mid,
                "tid": tid,
                "status": "completed",
                "arg": 0,
                "taken_put": 4,
                "taken_get": 4,
                "reason": None,
                "not_executed": False,
            },
        ),
    ]
    spans = build_spans(records)
    assert len(spans) == 1
    assert spans[0].completed
    assert spans[0].latency_us == 2000.25 - 1000.5

    violations = InvariantChecker(strict_completion=True).check(
        tracer_from_records(records)
    )
    assert violations == []


def test_tracer_from_records_rebuilds_counters():
    records = [
        TraceRecord(1.0, "kernel.tx", {}),
        TraceRecord(2.0, "kernel.tx", {}),
        TraceRecord(3.0, "kernel.rx", {}),
    ]
    tracer = tracer_from_records(records)
    assert tracer.counters["kernel.tx"] == 2
    assert tracer.counters["kernel.rx"] == 1
    assert list(tracer.records) == records
