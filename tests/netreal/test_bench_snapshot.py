"""Schema gate for the committed ``BENCH_real.json`` snapshot.

Real-backend numbers are wall-clock and vary run to run, so — unlike
the sim-only snapshots — the committed file is *not* byte-diffable and
no value is pinned here.  What this test holds fixed is the contract:
the soda.bench/1 envelope, the backend x policy cell grid, each cell's
metric keys and types, and the one qualitative claim the snapshot
exists to document — on the real backend, the adaptive policy's mean
recovery wait per lost frame beat the static 60ms timeout when the
snapshot was produced.
"""

import json
import math
from pathlib import Path

import pytest

SNAPSHOT = Path(__file__).resolve().parents[2] / "BENCH_real.json"

CELL_NUMBERS = (
    "completed_exchanges",
    "spans_total",
    "latency_p50_us",
    "latency_p99_us",
    "rtt_samples",
    "rtt_p50_us",
    "rtt_p99_us",
    "rtt_mean_us",
    "retransmits",
    "recovery_wait_mean_us",
    "recovery_wait_p99_us",
    "spurious_retransmits",
    "elapsed_s",
    "goodput_exchanges_per_s",
)


@pytest.fixture(scope="module")
def payload():
    assert SNAPSHOT.exists(), "BENCH_real.json must be committed"
    return json.loads(SNAPSHOT.read_text())


def test_envelope(payload):
    assert payload["schema"] == "soda.bench/1"
    assert payload["kind"] == "real_bench"
    assert payload["meta"] == {"seed": payload["body"]["seed"]}


def test_cell_grid_and_metric_keys(payload):
    body = payload["body"]
    assert body["loss"] == pytest.approx(0.10)
    assert body["real_drop_every"] >= 2
    assert set(body["backends"]) == {"sim", "real"}
    for backend, cells in body["backends"].items():
        assert set(cells) == {"static", "adaptive"}, backend
        for policy, cell in cells.items():
            for key in CELL_NUMBERS:
                value = cell[key]
                label = f"{backend}/{policy}/{key}"
                assert isinstance(value, (int, float)), label
                assert math.isfinite(value), label
            # Sanity, not pinning: the sweep ran to completion.
            assert cell["completed_exchanges"] > 0
            assert cell["retransmits"] > 0  # loss was actually injected
    assert body["backends"]["real"]["static"]["all_finished"] is True
    assert body["backends"]["real"]["adaptive"]["all_finished"] is True


def test_committed_verdict_shows_adaptive_win(payload):
    comparison = payload["body"]["comparison"]
    assert comparison["adaptive_recovers_faster_real"] is True
    waits = comparison["recovery_wait_mean_us"]
    assert waits["adaptive"] < waits["static"]
    knobs = comparison["policy_knobs"]
    assert set(knobs) == {"static", "adaptive"}
    assert knobs["static"]["kind"] != knobs["adaptive"]["kind"]
