"""Tier-1 gate for the chaos sweep (repro.chaos).

A bounded handful of cells runs in the default suite; the full
(workload × schedule × seed) matrix hides behind the ``chaos`` marker:

    PYTHONPATH=src python -m pytest -m chaos tests/test_chaos.py
"""

import json

import pytest

from repro.chaos import (
    SCHEDULES,
    Scenario,
    format_repro,
    make_schedule,
    matrix_cells,
    matrix_payload,
    run_cell,
    run_matrix,
    shrink_scenario,
)
from repro.chaos.scenario import ClientDie, LossWindow, TargetedDrop
from repro.analysis.workloads import WORKLOADS, get_spec


# ---------------------------------------------------------------------------
# Bounded gate: representative cells that exercise every action type.


GATE_CELLS = [
    ("echo", "lossy"),
    ("echo", "client_flap"),
    ("echo", "server_crash"),
    ("cancel", "strike"),
    ("signal", "partition"),
    ("busy", "server_flap"),
    ("supervised", "crash_idle"),
    ("supervised", "crash_load"),
    ("supervised", "flap"),
    ("kvstore", "duplicate"),
    ("kvstore", "reorder"),
    ("kvstore_supervised", "primary_crash_load"),
    ("kvstore_supervised", "backup_flap"),
    ("kvstore_supervised", "partition_heal"),
    ("kvstore", "cluster_restart"),
    ("kvstore", "cluster_power_loss"),
    ("kvstore", "torn_write_primary"),
    ("kvstore_supervised", "bitrot_backup"),
]


@pytest.mark.parametrize("workload,schedule", GATE_CELLS)
def test_gate_cell_is_clean(workload, schedule):
    result = run_cell(workload, schedule, seed=1)
    failures = (
        result.invariant_violations
        + result.liveness_problems
        + result.consistency_problems
    )
    assert result.ok, "\n".join(failures)


def test_gate_cells_inject_real_faults():
    """The noise schedules must actually touch the wire — a sweep that
    injects nothing is a green light that proves nothing."""
    lossy = run_cell("echo", "lossy", seed=1)
    assert lossy.faults["frames_lost"] + lossy.faults["frames_corrupted"] > 0
    strike = run_cell("cancel", "strike", seed=1)
    assert strike.faults["frames_scripted_drops"] > 0
    dup = run_cell("kvstore", "duplicate", seed=1)
    assert dup.faults["deliveries_duplicated"] > 0
    reorder = run_cell("kvstore", "reorder", seed=1)
    assert reorder.faults["deliveries_reordered"] > 0


def test_client_flap_produces_crashed_or_cancelled_spans():
    result = run_cell("echo", "client_flap", seed=1)
    terminal_faulty = (
        result.spans_by_status.get("crashed", 0)
        + result.spans_by_status.get("cancelled", 0)
    )
    assert terminal_faulty > 0, result.spans_by_status


# ---------------------------------------------------------------------------
# Recovery schedules: the self-heal contract (docs/RECOVERY.md).


def test_recovery_schedules_inject_and_heal():
    from repro.chaos import RECOVERY_SCHEDULES

    for schedule in RECOVERY_SCHEDULES:
        result = run_cell("supervised", schedule, seed=1)
        assert result.ok, (schedule, result.selfheal_problems)
        counts = result.recovery["counts"]
        # The schedule really killed the service and the supervisor
        # really brought it back — a sweep that heals nothing proves
        # nothing.
        assert counts["crashes_detected"] >= 1, schedule
        assert counts["reboots_issued"] >= 1, schedule
        assert counts["restored"] >= 1, schedule
        assert counts["escalations"] == 0, schedule


def test_crash_idle_exercises_safe_retry():
    # The DIE lands mid-exchange: the retry shim must re-issue at least
    # one provably-unexecuted op (and everything still converges).
    result = run_cell("supervised", "crash_idle", seed=1)
    assert result.ok
    assert result.recovery["counts"]["retries"] >= 1


def test_calm_schedule_has_zero_false_suspicions():
    # Acceptance: a fault-free sweep reports no crash activity at all,
    # for every workload.
    for workload in sorted(WORKLOADS):
        result = run_cell(workload, "calm", seed=1)
        assert result.ok, (workload, result.to_dict())
        counts = result.recovery["counts"]
        assert counts["crash_reports"] == 0, workload
        assert counts["crashes_detected"] == 0, workload
        assert result.recovery["false_suspicions"] == 0, workload
        assert result.faults["frames_lost"] == 0


def test_selfheal_failure_flips_cell_to_failed():
    from repro.chaos.runner import CellResult

    cell = CellResult(
        workload="supervised",
        schedule="crash_idle",
        seed=1,
        horizon_us=0.0,
        selfheal_problems=["service mid 0 was not restored"],
    )
    assert not cell.ok
    assert cell.to_dict()["selfheal_problems"]


# ---------------------------------------------------------------------------
# Determinism: same seed ⇒ identical report.


def test_cell_result_is_deterministic():
    first = run_cell("stream", "lossy", seed=7)
    second = run_cell("stream", "lossy", seed=7)
    assert first.to_dict() == second.to_dict()


def test_matrix_payload_is_deterministic():
    kwargs = dict(workloads=["echo"], schedules=["strike", "client_flap"])
    one = matrix_payload(run_matrix(seeds=(3,), **kwargs), seed=3)
    two = matrix_payload(run_matrix(seeds=(3,), **kwargs), seed=3)
    assert json.dumps(one, sort_keys=True) == json.dumps(two, sort_keys=True)


def test_parallel_matrix_is_byte_identical_to_serial():
    # The parallel sweep contract (docs/SIM.md): farming cells out to
    # worker processes must not change a byte of the merged report.
    kwargs = dict(
        workloads=["echo", "cancel"], schedules=["calm", "strike"]
    )
    serial = matrix_payload(run_matrix(seeds=(1,), **kwargs), seed=1)
    parallel = matrix_payload(
        run_matrix(seeds=(1,), parallel=2, **kwargs), seed=1
    )
    assert json.dumps(serial, sort_keys=True) == json.dumps(
        parallel, sort_keys=True
    )


def test_parallel_matrix_preserves_progress_order():
    # progress() fires in canonical enumeration order even when workers
    # finish out of order, so CLI output stays deterministic.
    seen = []
    results = run_matrix(
        workloads=["echo"],
        schedules=["calm", "strike"],
        seeds=(1,),
        parallel=2,
        progress=lambda r: seen.append(r.key),
    )
    assert seen == [r.key for r in results]
    assert seen == sorted(seen)


def test_matrix_enumeration_covers_at_least_24_cells():
    cells = matrix_cells()
    assert len(cells) >= 24
    assert len(cells) == len(WORKLOADS) * len(SCHEDULES)
    assert cells == sorted(cells)


def test_causal_only_workloads_stay_out_of_the_matrix():
    # philosophers_noarb deadlocks by design (SODA013 demo); it must
    # never enter the standard sweep, which asserts liveness.
    assert all("philosophers_noarb" not in cell for cell in matrix_cells())
    assert "philosophers_noarb" not in WORKLOADS


# ---------------------------------------------------------------------------
# Causal verdict column (--causal): streaming/batch agreement per cell.


def test_causal_column_is_clean_on_a_gate_cell():
    result = run_cell("echo", "sustained_loss", seed=1, causal=True)
    assert result.causal_problems == []
    assert result.ok
    assert "causal_problems" in result.to_dict()


def test_causal_column_defaults_off():
    result = run_cell("echo", "calm", seed=1)
    assert result.causal_problems == []


# ---------------------------------------------------------------------------
# Shrinker + reproducer formatting (synthetic predicate: no sim runs).


def _toy_scenario():
    return Scenario(
        "toy",
        (
            LossWindow(0.0, 1_000.0, loss=0.5),
            ClientDie(10.0, role="client"),
            TargetedDrop(0.0, ptype="ack", skip=1),
        ),
    )


def test_shrink_to_single_culprit():
    scenario = _toy_scenario()

    def still_fails(trial):
        return any(isinstance(a, ClientDie) for a in trial.actions)

    minimal = shrink_scenario(scenario, still_fails)
    assert len(minimal.actions) == 1
    assert isinstance(minimal.actions[0], ClientDie)


def test_shrink_keeps_failing_pair():
    scenario = _toy_scenario()

    def still_fails(trial):
        kinds = {type(a) for a in trial.actions}
        return {ClientDie, TargetedDrop} <= kinds

    minimal = shrink_scenario(scenario, still_fails)
    assert {type(a) for a in minimal.actions} == {ClientDie, TargetedDrop}


def test_shrink_respects_max_runs():
    scenario = _toy_scenario()
    calls = []

    def still_fails(trial):
        calls.append(trial)
        return True

    shrink_scenario(scenario, still_fails, max_runs=2)
    assert len(calls) <= 2


def test_format_repro_is_pasteable_python():
    scenario = Scenario("client_flap", (ClientDie(25_000.0, role="client"),))
    text = format_repro("echo", 1, scenario, ["span <1,1> never terminal"])
    assert "def test_chaos_regression_echo_client_flap_seed1" in text
    assert "ClientDie(at_us=25000.0, role='client')" in text
    compile(text, "<repro>", "exec")  # must be valid Python as-is


def test_make_schedule_unknown_name():
    with pytest.raises(KeyError, match="unknown schedule"):
        make_schedule("nope", get_spec("echo"))


# ---------------------------------------------------------------------------
# Full sweep (slow-ish; run with `-m chaos`).


@pytest.mark.chaos
def test_full_matrix_is_clean():
    # parallel=2 doubles as the full-matrix determinism gate: the
    # harness asserts the same verdicts the serial sweep has always
    # produced, via worker processes.
    results = run_matrix(seeds=(1,), parallel=2)
    assert len(results) >= 24
    failed = [r for r in results if not r.ok]
    report = "\n".join(
        f"{r.workload}/{r.schedule}: "
        + "; ".join(r.invariant_violations + r.liveness_problems)
        for r in failed
    )
    assert not failed, report


@pytest.mark.chaos
def test_full_matrix_streaming_verdicts_match_batch():
    """Every (workload × schedule) cell: the streaming checker must
    produce byte-identical verdicts to the batch replay, and the causal
    rules must stay silent on surviving-the-chaos runs."""
    results = run_matrix(seeds=(1,), causal=True, parallel=2)
    failed = [r for r in results if r.causal_problems]
    report = "\n".join(
        f"{r.workload}/{r.schedule}: " + "; ".join(r.causal_problems)
        for r in failed
    )
    assert not failed, report
