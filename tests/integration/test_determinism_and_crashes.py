"""Whole-run determinism and mid-exchange crash behaviour."""

from repro.analysis.invariants import check_network
from repro.core import (
    AcceptStatus,
    Buffer,
    ClientProgram,
    KernelConfig,
    Network,
    RequestStatus,
)
from repro.core.patterns import make_well_known_pattern
from repro.net.errors import FaultPlan
from repro.obs.spans import build_spans

from tests.conftest import ECHO_PATTERN, EchoServer

PATTERN = make_well_known_pattern(0o564)


def _run_fingerprint(seed: int) -> tuple:
    """A busy little network; returns a digest of everything observable."""
    net = Network(seed=seed, faults=FaultPlan(loss_probability=0.05))
    server = EchoServer(greeting=b"abcdefgh")
    net.add_node(program=server)
    results = []

    class Chatter(ClientProgram):
        def __init__(self, n):
            self.n = n

        def task(self, api):
            sig = api.server_sig(0, ECHO_PATTERN)
            for i in range(self.n):
                buf = Buffer(8)
                completion = yield from api.b_exchange(
                    sig, put=bytes([i] * (i + 1)), get=buf
                )
                results.append((api.my_mid, i, completion.status.value, buf.data))
            yield from api.serve_forever()

    net.add_node(program=Chatter(4), boot_at_us=100.0)
    net.add_node(program=Chatter(3), boot_at_us=150.0)
    net.run(until=60_000_000.0)
    return (
        tuple(results),
        net.bus.frames_sent,
        net.bus.bytes_sent,
        round(net.ledger.total(), 6),
        net.sim.events_processed,
    )


def test_identical_seeds_identical_universes():
    assert _run_fingerprint(31) == _run_fingerprint(31)


def test_different_seeds_differ_somewhere():
    # With 5% loss the fault draws differ, so packet counts diverge.
    a = _run_fingerprint(31)
    b = _run_fingerprint(32)
    assert a != b
    # ...but application-level outcomes are equally correct in both.
    assert [r[2] for r in a[0]] == ["completed"] * 7
    assert [r[2] for r in b[0]] == ["completed"] * 7


def test_requester_node_crash_mid_exchange_unblocks_server():
    """The requester's whole node dies while the server's data-carrying
    ACCEPT is waiting for the transport ack: the ACCEPT must resolve
    CRASHED once retransmissions exhaust (bounded time, §6.10)."""
    net = Network(seed=33, config=KernelConfig(probe_interval_us=50_000.0))
    outcome = {}

    class SlowAcceptServer(ClientProgram):
        def initialization(self, api, parent_mid):
            yield from api.advertise(PATTERN)

        def handler(self, api, event):
            if event.is_arrival:
                outcome["arrived_at"] = api.now
                # Data-carrying accept: blocks awaiting the ack.
                status = yield from api.accept_current_get(put=b"d" * 64)
                outcome["accept"] = status
                outcome["accept_done_at"] = api.now

    net.add_node(program=SlowAcceptServer())
    requester_node = net.add_node()

    class Requester(ClientProgram):
        def task(self, api):
            yield from api.get(api.server_sig(0, PATTERN), get=Buffer(64))
            yield from api.serve_forever()

    requester_node.install_program(Requester(), boot_at_us=50.0)
    # Crash the whole requester node right as the ACCEPT's data is in
    # flight: after the request arrives at the server.
    def crash_when_arrived():
        if "arrived_at" in outcome:
            requester_node.crash()
        else:
            net.sim.schedule(1_000.0, crash_when_arrived)

    net.sim.schedule(5_000.0, crash_when_arrived)
    net.run(until=60_000_000.0)
    assert outcome.get("accept") is AcceptStatus.CRASHED
    # Bounded: within the retransmission-exhaustion window, well under
    # the run horizon.
    assert outcome["accept_done_at"] - outcome["arrived_at"] < 5_000_000.0


def test_server_node_crash_fails_inflight_and_future_requests():
    net = Network(seed=34, config=KernelConfig(probe_interval_us=50_000.0))
    server_node = net.add_node(program=EchoServer())
    statuses = []

    class Persistent(ClientProgram):
        def task(self, api):
            sig = api.server_sig(0, ECHO_PATTERN)
            for _ in range(3):
                completion = yield from api.b_signal(sig)
                statuses.append(completion.status)
                yield api.compute(400_000)
            yield from api.serve_forever()

    net.add_node(program=Persistent(), boot_at_us=100.0)
    net.sim.schedule(250_000.0, server_node.crash)
    net.run(until=120_000_000.0)
    assert statuses[0] is RequestStatus.COMPLETED
    assert all(
        s in (RequestStatus.CRASHED, RequestStatus.UNADVERTISED)
        for s in statuses[1:]
    )


# -- DIE/BOOT boundary regressions (found by the chaos sweep) ---------------


def test_accept_ack_across_die_boundary_does_not_resurrect_tid():
    """The server's client DIEs while its data-carrying ACCEPT is still
    awaiting the transport ack.  When the ack finally lands, the dead
    incarnation's DeliveredRequest must stay dead — no
    ``kernel.delivered_state`` record after ``kernel.client_reset``."""
    net = Network(seed=41)
    server_node = net.add_node()

    class GetServer(ClientProgram):
        def initialization(self, api, parent_mid):
            yield from api.advertise(PATTERN)

        def handler(self, api, event):
            if event.is_arrival:
                yield from api.accept_current_get(put=b"g" * 32)

    server_node.install_program(GetServer())

    class Requester(ClientProgram):
        def task(self, api):
            yield from api.get(api.server_sig(0, PATTERN), get=Buffer(32))
            yield from api.serve_forever()

    requester_node = net.add_node(program=Requester(), boot_at_us=50.0)

    trace = net.sim.trace
    accepted = lambda: trace.counters.get("kernel.accept", 0) > 0
    assert net.sim.run_until(accepted, timeout=5_000_000.0)
    # Sever requester->server so the ACCEPT's transport ack cannot land.
    sever = lambda frame, rx: (
        frame.src == requester_node.kernel.mid
        and rx == server_node.kernel.mid
    )
    net.bus.faults.add_drop_predicate(sever)
    # The client dies while the ACCEPT is still outstanding...
    net.sim.schedule(5_000.0, server_node.kernel.client_die)
    # ...and the ack arrives after the DIE, via a later retransmission.
    net.sim.schedule(130_000.0, net.bus.faults.remove_drop_predicate, sever)
    net.run(until=10_000_000.0)

    reset_at = next(
        r.time
        for r in trace.records
        if r.category == "kernel.client_reset"
        and r["mid"] == server_node.kernel.mid
    )
    late = [
        r
        for r in trace.records
        if r.category == "kernel.delivered_state"
        and r["mid"] == server_node.kernel.mid
        and r.time > reset_at
    ]
    assert late == [], f"dead incarnation resurrected: {late}"
    assert check_network(net, strict_completion=True) == []


def test_client_die_cancels_open_discover_windows():
    """DIE while a DISCOVER window is open: the dead incarnation's
    query state (and its timer) must be torn down, not left to absorb
    late DISCOVER_REPLYs."""
    net = Network(seed=42)
    node = net.add_node()

    class Discoverer(ClientProgram):
        def task(self, api):
            # Nobody advertises this; discover() retries forever.
            yield from api.discover(make_well_known_pattern(0o777))

    node.install_program(Discoverer())
    in_window = lambda: bool(node.kernel._discovers)
    assert net.sim.run_until(in_window, timeout=5_000_000.0)
    node.kernel.client_die()
    assert node.kernel._discovers == {}
    net.run(until=10_000_000.0)
    assert check_network(net, strict_completion=True) == []


def test_client_die_traces_cancelled_for_open_requests():
    """Every REQUEST the dead incarnation left open must reach a
    terminal span status via a ``kernel.cancelled`` record."""
    net = Network(seed=43)
    server_node = net.add_node()

    class NeverAccept(ClientProgram):
        def initialization(self, api, parent_mid):
            yield from api.advertise(PATTERN)

        def handler(self, api, event):
            return
            yield  # pragma: no cover

    server_node.install_program(NeverAccept())

    class Requester(ClientProgram):
        def task(self, api):
            yield from api.b_signal(api.server_sig(0, PATTERN))
            yield from api.serve_forever()

    requester_node = net.add_node(program=Requester(), boot_at_us=50.0)
    trace = net.sim.trace
    delivered = lambda: trace.counters.get("kernel.delivered_state", 0) > 0
    assert net.sim.run_until(delivered, timeout=5_000_000.0)
    requester_node.kernel.client_die()
    net.run(until=10_000_000.0)

    spans = build_spans(trace.records)
    mine = [s for s in spans if s.requester_mid == requester_node.kernel.mid]
    assert mine, "requester issued no spans"
    assert all(s.status == "cancelled" for s in mine), [
        (s.tid, s.status) for s in mine
    ]
