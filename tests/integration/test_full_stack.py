"""Integration tests: several subsystems composed in one network."""

import struct

from repro.apps.file_server import FILESERVER_PATTERN, FileServer, RemoteFile
from repro.core import Buffer, ClientProgram, KernelConfig, Network, RequestStatus
from repro.core.boot import ProgramImage, boot_pattern_for
from repro.core.patterns import make_well_known_pattern
from repro.facilities.rpc import RpcServer, rpc_call
from repro.facilities.timeservice import ALARM_CLOCK, TimeServer, sleep_via
from repro.net.errors import FaultPlan

RUN_US = 600_000_000.0
CRUNCH = make_well_known_pattern(0o260)
ECHO = make_well_known_pattern(0o261)


def test_file_service_under_packet_loss():
    """10% loss; a client writes and reads back a file correctly."""
    net = Network(seed=161, faults=FaultPlan(loss_probability=0.10))
    server = FileServer()
    net.add_node(program=server)
    outcome = {}

    class Client(ClientProgram):
        def task(self, api):
            fs = yield from api.discover(FILESERVER_PATTERN)
            f = yield from RemoteFile.open(api, fs.mid, "lossy.dat")
            payload = bytes(range(256)) * 4
            for offset in range(0, len(payload), 256):
                yield from f.write(payload[offset : offset + 256])
            yield from f.seek(0)
            chunks = []
            while True:
                chunk = yield from f.read(256)
                if not chunk:
                    break
                chunks.append(chunk)
            yield from f.close()
            outcome["data"] = b"".join(chunks)
            outcome["expected"] = payload
            yield from api.serve_forever()

    net.add_node(program=Client(), boot_at_us=100.0)
    net.run(until=RUN_US)
    assert outcome["data"] == outcome["expected"]


def test_three_services_one_client_session():
    """File server + time server + RPC worker in one coherent session."""
    net = Network(seed=162)
    net.add_node(program=FileServer(files={"in.txt": b"5 12 30"}))
    net.add_node(program=TimeServer())
    net.add_node(
        program=RpcServer(
            {CRUNCH: lambda params: str(
                sum(int(x) for x in params.split())
            ).encode()}
        )
    )
    outcome = {}

    class Session(ClientProgram):
        def task(self, api):
            fs = yield from api.discover(FILESERVER_PATTERN)
            ts = yield from api.discover(ALARM_CLOCK)
            f = yield from RemoteFile.open(api, fs.mid, "in.txt")
            numbers = yield from f.read(64)
            yield from sleep_via(api, ts, delay_ms=10)
            result = yield from rpc_call(
                api, api.server_sig(2, CRUNCH), numbers, 32
            )
            out = yield from RemoteFile.open(api, fs.mid, "out.txt")
            yield from out.write(result)
            yield from out.close()
            yield from f.close()
            outcome["result"] = result
            yield from api.serve_forever()

    net.add_node(program=Session(), boot_at_us=200.0)
    net.run(until=RUN_US)
    assert outcome["result"] == b"47"


def test_failover_between_replicated_servers():
    """Two servers advertise the same pattern (legal, §3.4.2); when one
    dies, re-DISCOVER finds the survivor and service continues."""
    net = Network(seed=163, config=KernelConfig(probe_interval_us=50_000.0))

    class Echo(ClientProgram):
        def initialization(self, api, parent_mid):
            yield from api.advertise(ECHO)

        def handler(self, api, event):
            if event.is_arrival:
                yield from api.accept_current_get(
                    put=f"from {api.my_mid}".encode()
                )

    net.add_node(program=Echo())
    net.add_node(program=Echo())
    outcome = {"replies": []}

    class Client(ClientProgram):
        def task(self, api):
            while len(outcome["replies"]) < 6:
                mids = yield from api.discover_all(ECHO, max_replies=4)
                if not mids:
                    yield api.compute(50_000)
                    continue
                buf = Buffer(16)
                completion = yield from api.b_get(
                    api.server_sig(mids[0], ECHO), get=buf
                )
                if completion.status is RequestStatus.COMPLETED:
                    outcome["replies"].append(buf.data)
                yield api.compute(30_000)
            yield from api.serve_forever()

    net.add_node(program=Client(), boot_at_us=200.0)
    net.sim.schedule(130_000.0, net.nodes[0].crash_client)
    net.run(until=RUN_US)
    replies = outcome["replies"]
    assert len(replies) == 6
    assert b"from 0" in replies  # served by 0 before the crash
    assert replies[-1] == b"from 1"  # survivor carries on


def test_boot_three_workers_and_farm_work():
    """A coordinator boots three workers onto bare nodes and farms RPC
    calls across them."""
    net = Network(seed=164)
    for _ in range(3):
        net.add_node(machine_type="worker")
    outcome = {"answers": []}

    class Worker(RpcServer):
        def __init__(self):
            super().__init__({CRUNCH: self._square})

        @staticmethod
        def _square(params):
            (x,) = struct.unpack(">i", params)
            return struct.pack(">i", x * x)

    class Coordinator(ClientProgram):
        def task(self, api):
            mids = []
            for _ in range(3):
                target = yield from api.discover(boot_pattern_for("worker"))
                yield from api.boot_node(
                    target, ProgramImage("worker", Worker, size_bytes=2048)
                )
                mids.append(target.mid)
            assert len(set(mids)) == 3
            for i, mid in enumerate(mids):
                result = yield from rpc_call(
                    api, api.server_sig(mid, CRUNCH),
                    struct.pack(">i", i + 2), 4,
                )
                outcome["answers"].append(struct.unpack(">i", result)[0])
            yield from api.serve_forever()

    net.add_node(program=Coordinator(), boot_at_us=100.0)
    net.run(until=RUN_US)
    assert outcome["answers"] == [4, 9, 16]


def test_heavily_loaded_shared_bus():
    """Six nodes talking across each other; nothing lost or corrupted."""
    net = Network(seed=165)
    PATTERNS = [make_well_known_pattern(0o270 + i) for i in range(3)]
    sinks = []

    class Sink(ClientProgram):
        def __init__(self, pattern):
            self.pattern = pattern
            self.got = []

        def initialization(self, api, parent_mid):
            yield from api.advertise(self.pattern)

        def handler(self, api, event):
            if event.is_arrival:
                buf = Buffer(event.put_size)
                yield from api.accept_current_put(get=buf)
                self.got.append(buf.data)

    for pattern in PATTERNS:
        sink = Sink(pattern)
        sinks.append(sink)
        net.add_node(program=sink)

    class Blaster(ClientProgram):
        def __init__(self, target_mid, pattern, n):
            self.target = target_mid
            self.pattern = pattern
            self.n = n
            self.ok = 0

        def task(self, api):
            sig = api.server_sig(self.target, self.pattern)
            for i in range(self.n):
                payload = f"{api.my_mid}:{i}".encode()
                completion = yield from api.b_put(sig, put=payload)
                if completion.status is RequestStatus.COMPLETED:
                    self.ok += 1
            yield from api.serve_forever()

    blasters = []
    for i in range(3):
        blaster = Blaster(i, PATTERNS[i], 10)
        blasters.append(blaster)
        net.add_node(program=blaster, boot_at_us=100.0 + 31.0 * i)
    net.run(until=RUN_US)
    for i, (sink, blaster) in enumerate(zip(sinks, blasters)):
        assert blaster.ok == 10
        assert sink.got == [f"{3 + i}:{j}".encode() for j in range(10)]
