"""Integration tests always run under the trace invariant watcher."""

from __future__ import annotations

from pathlib import Path

import pytest

_HERE = Path(__file__).resolve().parent


def pytest_collection_modifyitems(items):
    for item in items:
        try:
            in_here = Path(str(item.fspath)).resolve().is_relative_to(_HERE)
        except (OSError, ValueError):
            continue
        if in_here:
            item.add_marker(pytest.mark.check_invariants)
