"""Soak test: everything at once on a lossy bus.

Philosophers dining, a file server logging their meals, a time server
driving the deadlock detector, and a moderated shared counter — all on
one 1 Mbit bus with 3% frame loss.  The run must stay live and every
invariant must hold.  This is the closest thing to the paper's vision of
a whole operating system built from cooperating uniprogrammed clients.
"""

import pytest

from repro.apps.file_server import FILESERVER_PATTERN, FileServer, RemoteFile
from repro.apps.philosophers import DeadlockDetector, Philosopher
from repro.apps.readers_writers import (
    Moderator,
    rw_end_write,
    rw_start_write,
)
from repro.core import ClientProgram, KernelConfig, Network
from repro.facilities.timeservice import TimeServer
from repro.net.errors import FaultPlan

N_PHIL = 5
MEALS = 3


@pytest.mark.slow
def test_whole_system_soak():
    # Ring-buffer tracing: category counters stay exact, but only the
    # most recent records are retained, keeping the soak's memory flat.
    net = Network(
        seed=201,
        config=KernelConfig(probe_interval_us=100_000.0),
        faults=FaultPlan(loss_probability=0.03),
        max_trace_records=10_000,
    )
    philosophers = []
    for i in range(N_PHIL):
        philosopher = Philosopher(
            left_mid=(i - 1) % N_PHIL,
            think_us=3_000.0,
            eat_us=3_000.0,
            meals_target=MEALS,
        )
        philosophers.append(philosopher)
        net.add_node(mid=i, program=philosopher, boot_at_us=i * 25.0)
    net.add_node(mid=N_PHIL, program=TimeServer())
    detector = DeadlockDetector(list(range(N_PHIL)), interval_ms=15)
    net.add_node(mid=N_PHIL + 1, program=detector, boot_at_us=500.0)
    net.add_node(mid=N_PHIL + 2, program=FileServer())
    moderator_mid = N_PHIL + 3
    net.add_node(mid=moderator_mid, program=Moderator())

    shared = {"count": 0}

    class MealLogger(ClientProgram):
        """Watches the philosophers and journals their meal counts to a
        file under the moderator's write lock."""

        def __init__(self):
            self.entries = 0

        def task(self, api):
            fs = yield from api.discover(FILESERVER_PATTERN)
            logfile = yield from RemoteFile.open(api, fs.mid, "meals.log")
            last_total = -1
            while True:
                total = sum(p.meals for p in philosophers)
                if total != last_total:
                    last_total = total
                    yield from rw_start_write(api, moderator_mid)
                    shared["count"] += 1
                    yield from logfile.write(f"{total}\n".encode())
                    self.entries += 1
                    shared["count"] -= 1
                    yield from rw_end_write(api, moderator_mid)
                if total >= N_PHIL * MEALS:
                    break
                yield api.compute(25_000)
            yield from logfile.close()
            self.done = True
            yield from api.serve_forever()

    logger = MealLogger()
    net.add_node(mid=N_PHIL + 4, program=logger, boot_at_us=800.0)

    done = net.run_until(
        lambda: getattr(logger, "done", False)
        and all(p.meals >= MEALS for p in philosophers),
        timeout=3_000_000_000.0,
    )
    assert done, (
        [p.meals for p in philosophers],
        getattr(logger, "done", False),
    )
    assert logger.entries >= 2
    # The journal exists and ends with the final total.
    fs = net.nodes[N_PHIL + 2].kernel.node.client.program
    content = bytes(fs.files["meals.log"]).decode().split()
    assert content[-1] == str(N_PHIL * MEALS)
    # Monotone non-decreasing totals were journaled.
    totals = [int(x) for x in content]
    assert totals == sorted(totals)
