"""Tests for the two-way bounded buffer (§4.4.1)."""

from repro.apps.bounded_buffer import BufferConsumer, BufferProducer
from repro.core import Network

RUN_US = 120_000_000.0


def test_single_producer_all_items_in_order():
    net = Network(seed=81)
    items = [f"item-{i:03d}".encode() for i in range(12)]
    consumer = BufferConsumer(consume_us=1_000.0)
    producer = BufferProducer(items, produce_us=500.0)
    net.add_node(program=consumer)
    net.add_node(program=producer, boot_at_us=100.0)
    net.run(until=RUN_US)
    assert consumer.consumed == items
    assert producer.delivered == len(items)
    assert not producer.failed


def test_fast_producer_slow_consumer_backpressure():
    # The consumer is 20x slower; flow control must engage and nothing
    # may be lost or reordered.
    net = Network(seed=82)
    items = [bytes([i]) * 32 for i in range(20)]
    # pending_size=1: a single producer has at most one outstanding
    # request, so the signature queue must be tiny to see flow control.
    consumer = BufferConsumer(
        queue_size=3, pending_size=1, consume_us=40_000.0
    )
    producer = BufferProducer(items, produce_us=200.0)
    net.add_node(program=consumer)
    net.add_node(program=producer, boot_at_us=100.0)
    net.run(until=600_000_000.0)
    assert consumer.consumed == items
    assert consumer.flow_control_closes >= 1


def test_two_producers_interleave_without_loss():
    net = Network(seed=83)
    a_items = [f"a{i}".encode() for i in range(8)]
    b_items = [f"b{i}".encode() for i in range(8)]
    consumer = BufferConsumer(consume_us=3_000.0)
    net.add_node(program=consumer)
    net.add_node(program=BufferProducer(a_items, produce_us=800.0), boot_at_us=100.0)
    net.add_node(program=BufferProducer(b_items, produce_us=900.0), boot_at_us=150.0)
    net.run(until=300_000_000.0)
    got_a = [x for x in consumer.consumed if x.startswith(b"a")]
    got_b = [x for x in consumer.consumed if x.startswith(b"b")]
    assert got_a == a_items
    assert got_b == b_items


def test_producer_overlaps_production_with_delivery():
    # With double buffering, total time is close to max(produce, deliver)
    # per item rather than their sum.  We check the producer finishes
    # sooner than a fully-serial schedule would allow.
    net = Network(seed=84)
    n = 10
    produce_us = 6_000.0
    items = [b"x" * 100] * n
    consumer = BufferConsumer(consume_us=100.0)
    producer = BufferProducer(items, produce_us=produce_us)
    net.add_node(program=consumer)
    net.add_node(program=producer, boot_at_us=0.0)

    finished = {}

    def check():
        if producer.delivered == n and "t" not in finished:
            finished["t"] = net.sim.now
        return producer.delivered == n

    net.run_until(check, timeout=RUN_US)
    # Serial lower bound would be n * (produce + ~9ms delivery).  With
    # overlap we beat n * (produce + deliver) comfortably.
    assert finished["t"] < n * (produce_us + 9_000.0)
