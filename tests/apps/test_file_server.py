"""Tests for the file service (§4.4.5)."""

from repro.apps.file_server import FILESERVER_PATTERN, FileServer, RemoteFile
from repro.core import ClientProgram, Network
from repro.core.errors import SodaError

RUN_US = 300_000_000.0


class FsClient(ClientProgram):
    def __init__(self, body):
        self.body = body
        self.result = None
        self.error = None

    def task(self, api):
        fs = yield from api.discover(FILESERVER_PATTERN)
        try:
            self.result = yield from self.body(api, fs.mid)
        except SodaError as exc:
            self.error = exc
        yield from api.serve_forever()


def run_fs(seed, body, files=None, extra_clients=()):
    net = Network(seed=seed)
    server = FileServer(files=files)
    net.add_node(program=server)
    client = FsClient(body)
    net.add_node(program=client, boot_at_us=100.0)
    for i, extra in enumerate(extra_clients):
        net.add_node(program=extra, boot_at_us=200.0 + 57.0 * i)
    net.run(until=RUN_US)
    return server, client


def test_read_existing_file_in_chunks():
    content = bytes(range(200))

    def body(api, fs_mid):
        f = yield from RemoteFile.open(api, fs_mid, "data.bin")
        first = yield from f.read(64)
        second = yield from f.read(64)
        rest = yield from f.read(200)
        yield from f.close()
        return first, second, rest

    server, client = run_fs(101, body, files={"data.bin": content})
    first, second, rest = client.result
    assert first == content[:64]
    assert second == content[64:128]
    assert rest == content[128:]


def test_write_then_read_back_with_seek():
    def body(api, fs_mid):
        f = yield from RemoteFile.open(api, fs_mid, "new.txt")
        yield from f.write(b"hello, ")
        yield from f.write(b"world")
        yield from f.seek(0)
        data = yield from f.read(32)
        yield from f.seek(7)
        tail = yield from f.read(32)
        yield from f.close()
        return data, tail

    server, client = run_fs(102, body)
    data, tail = client.result
    assert data == b"hello, world"
    assert tail == b"world"
    assert bytes(server.files["new.txt"]) == b"hello, world"


def test_overwrite_middle_of_file():
    def body(api, fs_mid):
        f = yield from RemoteFile.open(api, fs_mid, "f")
        yield from f.write(b"AAAAAAAAAA")
        yield from f.seek(3)
        yield from f.write(b"BBB")
        yield from f.seek(0)
        data = yield from f.read(16)
        yield from f.close()
        return data

    _, client = run_fs(103, body)
    assert client.result == b"AAABBBAAAA"


def test_operations_on_closed_fd_fail():
    def body(api, fs_mid):
        f = yield from RemoteFile.open(api, fs_mid, "f")
        yield from f.close()
        try:
            yield from f.read(4)
        except SodaError:
            return "closed"
        return "oops"

    _, client = run_fs(104, body)
    assert client.result == "closed"


def test_two_files_have_independent_positions():
    def body(api, fs_mid):
        f1 = yield from RemoteFile.open(api, fs_mid, "a")
        f2 = yield from RemoteFile.open(api, fs_mid, "b")
        yield from f1.write(b"11111")
        yield from f2.write(b"2222222")
        yield from f1.seek(0)
        d1 = yield from f1.read(8)
        d2_pos_unaffected = yield from f2.read(8)  # at end: empty
        yield from f2.seek(0)
        d2 = yield from f2.read(8)
        return d1, d2_pos_unaffected, d2

    _, client = run_fs(105, body)
    d1, empty, d2 = client.result
    assert d1 == b"11111"
    assert empty == b""
    assert d2 == b"2222222"


def test_concurrent_clients_separate_descriptors():
    results = {}

    class Writer(ClientProgram):
        def __init__(self, name, payload):
            self.name = name
            self.payload = payload

        def task(self, api):
            fs = yield from api.discover(FILESERVER_PATTERN)
            f = yield from RemoteFile.open(api, fs.mid, self.name)
            yield from f.write(self.payload)
            yield from f.seek(0)
            results[self.name] = (yield from f.read(64))
            yield from f.close()
            yield from api.serve_forever()

    def body(api, fs_mid):
        f = yield from RemoteFile.open(api, fs_mid, "main")
        yield from f.write(b"main data")
        yield from f.seek(0)
        data = yield from f.read(64)
        yield from f.close()
        return data

    server, client = run_fs(
        106,
        body,
        extra_clients=[Writer("w1", b"one's bytes"), Writer("w2", b"two's bytes")],
    )
    assert client.result == b"main data"
    assert results == {"w1": b"one's bytes", "w2": b"two's bytes"}
    assert server.open_files == {}  # everything closed
