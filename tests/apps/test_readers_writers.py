"""Tests for the readers-writers moderator (§4.4.4)."""

from repro.apps.readers_writers import Moderator, ReaderWriterClient
from repro.core import Network

RUN_US = 300_000_000.0


def build(seed, scripts, queue_size=16):
    net = Network(seed=seed)
    moderator = Moderator(queue_size=queue_size)
    net.add_node(program=moderator)
    shared = {"readers": 0, "writers": 0, "violations": []}
    clients = []
    for i, script in enumerate(scripts):
        client = ReaderWriterClient(0, script, shared)
        clients.append(client)
        net.add_node(program=client, boot_at_us=100.0 + i * 53.0)
    return net, moderator, shared, clients


def test_mutual_exclusion_under_mixed_load():
    scripts = [
        [("read", 5_000.0, 0.0)] * 4,
        [("write", 8_000.0, 2_000.0)] * 3,
        [("read", 3_000.0, 1_000.0), ("write", 4_000.0, 0.0)] * 2,
        [("write", 2_000.0, 5_000.0), ("read", 6_000.0, 0.0)] * 2,
    ]
    net, moderator, shared, clients = build(91, scripts)
    net.run(until=RUN_US)
    assert shared["violations"] == []
    assert all(c.completed_ops == len(s) for c, s in zip(clients, scripts))


def test_readers_can_overlap():
    # Two long readers starting together should overlap (readcount 2).
    scripts = [
        [("read", 50_000.0, 0.0)],
        [("read", 50_000.0, 0.0)],
    ]
    net, moderator, shared, clients = build(92, scripts)
    net.run(until=RUN_US)
    assert shared["violations"] == []
    assert moderator.max_concurrent_readers >= 2


def test_pending_writer_blocks_new_readers():
    # Reader A holds the lock; writer W queues; reader B arriving after W
    # must be granted only after W runs (the paper's fairness rule).
    order = []
    scripts = [
        [("read", 60_000.0, 0.0)],      # A: long read
        [("write", 10_000.0, 10_000.0)],  # W: queues behind A
        [("read", 5_000.0, 25_000.0)],    # B: arrives while W pending
    ]
    net, moderator, shared, clients = build(93, scripts)
    net.run(until=RUN_US)
    assert shared["violations"] == []
    # Grant order recorded by the moderator: first read (A), then the
    # writer, then reader B.
    assert moderator.grants[:3] == ["r", "w", "r"]


def test_readers_accumulated_during_write_go_before_next_writer():
    scripts = [
        [("write", 100_000.0, 0.0)],                 # W1 runs first
        [("read", 5_000.0, 40_000.0)],               # R1 queues during W1
        [("read", 5_000.0, 44_000.0)],               # R2 queues during W1
        [("write", 5_000.0, 48_000.0)],              # W2 queues during W1
    ]
    net, moderator, shared, clients = build(94, scripts)
    net.run(until=RUN_US)
    assert shared["violations"] == []
    assert moderator.grants == ["w", "r", "r", "w"]


def test_heavy_random_load_no_violations():
    import random

    rng = random.Random(7)
    scripts = []
    for _ in range(5):
        script = []
        for _ in range(6):
            kind = "read" if rng.random() < 0.6 else "write"
            script.append((kind, rng.uniform(1_000, 8_000), rng.uniform(0, 4_000)))
        scripts.append(script)
    net, moderator, shared, clients = build(95, scripts)
    net.run(until=600_000_000.0)
    assert shared["violations"] == []
    assert all(c.completed_ops == 6 for c in clients)
    assert moderator.readcount == 0 and moderator.writecount == 0
