"""Tests for dining philosophers with deadlock detection (§4.4.3)."""

import pytest

from repro.apps.philosophers import DeadlockDetector, Philosopher
from repro.core import Network
from repro.facilities.timeservice import TimeServer


def build_table(
    seed,
    n=5,
    think_us=2_000.0,
    eat_us=2_000.0,
    meals_target=3,
    detector_interval_ms=15,
):
    """Philosophers on MIDs 0..n-1; timeserver on n; detector on n+1.

    Philosopher i's left neighbor is (i - 1) mod n.
    """
    net = Network(seed=seed)
    philosophers = []
    for i in range(n):
        philosopher = Philosopher(
            left_mid=(i - 1) % n,
            think_us=think_us,
            eat_us=eat_us,
            meals_target=meals_target,
        )
        philosophers.append(philosopher)
        net.add_node(mid=i, program=philosopher, boot_at_us=i * 20.0)
    net.add_node(mid=n, program=TimeServer())
    detector = DeadlockDetector(list(range(n)), interval_ms=detector_interval_ms)
    net.add_node(mid=n + 1, program=detector, boot_at_us=500.0)
    return net, philosophers, detector


def everyone_ate(philosophers, target):
    return all(p.meals >= target for p in philosophers)


def test_all_philosophers_eat_with_staggered_thinking():
    net, philosophers, detector = build_table(
        111, think_us=5_000.0, eat_us=3_000.0, meals_target=3
    )
    done = net.run_until(
        lambda: everyone_ate(philosophers, 3), timeout=600_000_000.0
    )
    assert done, [p.meals for p in philosophers]


def test_progress_under_heavy_contention():
    # Zero thinking time maximizes contention -- grab-left-then-right
    # with everyone synchronized is exactly the deadlock recipe; the
    # detector must keep the table live.
    net, philosophers, detector = build_table(
        112, think_us=0.0, eat_us=1_000.0, meals_target=4,
        detector_interval_ms=10,
    )
    done = net.run_until(
        lambda: everyone_ate(philosophers, 4), timeout=900_000_000.0
    )
    assert done, [p.meals for p in philosophers]


def test_deadlock_actually_detected_and_broken():
    # Synchronized hungry philosophers: with identical think times they
    # all grab their left fork together, deadlocking repeatedly.
    net, philosophers, detector = build_table(
        113, think_us=1_000.0, eat_us=1_000.0, meals_target=5,
        detector_interval_ms=10,
    )
    done = net.run_until(
        lambda: everyone_ate(philosophers, 5), timeout=900_000_000.0
    )
    assert done, [p.meals for p in philosophers]
    assert detector.probes >= 1
    # Under this much contention at least one deadlock must have formed
    # and been broken.
    assert detector.deadlocks_broken >= 1
    assert sum(p.give_backs for p in philosophers) == detector.deadlocks_broken


def test_three_philosophers_also_work():
    net, philosophers, detector = build_table(
        114, n=3, think_us=500.0, eat_us=500.0, meals_target=4,
        detector_interval_ms=10,
    )
    done = net.run_until(
        lambda: everyone_ate(philosophers, 4), timeout=600_000_000.0
    )
    assert done, [p.meals for p in philosophers]


def test_fairness_no_philosopher_starves():
    net, philosophers, detector = build_table(
        115, think_us=200.0, eat_us=2_000.0, meals_target=6,
        detector_interval_ms=10,
    )
    done = net.run_until(
        lambda: everyone_ate(philosophers, 6), timeout=1_500_000_000.0
    )
    assert done, [p.meals for p in philosophers]
    meals = [p.meals for p in philosophers]
    # All reached the target; spread stays bounded (fair victims).
    assert max(meals) - min(meals) <= 6
