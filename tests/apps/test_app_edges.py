"""Edge cases across the application programs."""

import struct

from repro.apps.bounded_buffer import BufferProducer
from repro.apps.file_server import FILESERVER_PATTERN, FileServer, RemoteFile
from repro.core import Buffer, ClientProgram, KernelConfig, Network, RequestStatus
from repro.core.errors import SodaError
from repro.core.patterns import make_well_known_pattern
from repro.facilities.rpc import RpcServer

RUN_US = 60_000_000.0
PROC = make_well_known_pattern(0o603)


def test_producer_flags_failure_when_consumer_dies():
    net = Network(seed=171, config=KernelConfig(probe_interval_us=50_000.0))

    class FlakyConsumer(ClientProgram):
        def initialization(self, api, parent_mid):
            from repro.apps.bounded_buffer import CONSUMER_PATTERN

            yield from api.advertise(CONSUMER_PATTERN)

        def handler(self, api, event):
            if event.is_arrival:
                buf = Buffer(event.put_size)
                yield from api.accept_current_put(get=buf)

    consumer_node = net.add_node(program=FlakyConsumer())
    producer = BufferProducer([b"one", b"two", b"three"], produce_us=30_000.0)
    net.add_node(program=producer, boot_at_us=100.0)
    net.sim.schedule(60_000.0, consumer_node.crash_client)
    net.run(until=RUN_US)
    assert producer.failed


def test_rpc_double_put_rejected():
    net = Network(seed=172)
    server = RpcServer({PROC: lambda data: data})
    net.add_node(program=server)
    outcome = {}

    class BadCaller(ClientProgram):
        def task(self, api):
            sig = api.server_sig(0, PROC)
            first = yield from api.b_put(sig, put=b"params")
            second = yield from api.b_put(sig, put=b"extra")  # violation
            outcome["statuses"] = (first.status, second.status)
            yield from api.serve_forever()

    net.add_node(program=BadCaller(), boot_at_us=100.0)
    net.run(until=RUN_US)
    first, second = outcome["statuses"]
    assert first is RequestStatus.COMPLETED
    assert second is RequestStatus.REJECTED


def test_file_server_unknown_operation_rejected():
    net = Network(seed=173)
    net.add_node(program=FileServer())
    outcome = {}

    class Client(ClientProgram):
        def task(self, api):
            fs = yield from api.discover(FILESERVER_PATTERN)
            f = yield from RemoteFile.open(api, fs.mid, "x")
            # Forge an operation code the server does not know.
            completion = yield from api.b_exchange(
                api.server_sig(fs.mid, f.fd_pattern), arg=99
            )
            outcome["arg"] = completion.arg
            yield from api.serve_forever()

    net.add_node(program=Client(), boot_at_us=100.0)
    net.run(until=RUN_US)
    assert outcome["arg"] < 0  # negative arguments denote errors (§4.1.2)


def test_file_server_read_empty_new_file():
    net = Network(seed=174)
    net.add_node(program=FileServer())
    outcome = {}

    class Client(ClientProgram):
        def task(self, api):
            fs = yield from api.discover(FILESERVER_PATTERN)
            f = yield from RemoteFile.open(api, fs.mid, "fresh")
            data = yield from f.read(64)
            outcome["data"] = data
            yield from f.close()
            yield from api.serve_forever()

    net.add_node(program=Client(), boot_at_us=100.0)
    net.run(until=RUN_US)
    assert outcome["data"] == b""


def test_file_server_seek_beyond_end_then_write_pads():
    net = Network(seed=175)
    server = FileServer()
    net.add_node(program=server)

    class Client(ClientProgram):
        def task(self, api):
            fs = yield from api.discover(FILESERVER_PATTERN)
            f = yield from RemoteFile.open(api, fs.mid, "sparse")
            yield from f.write(b"ab")
            yield from f.seek(5)
            yield from f.write(b"z")
            yield from f.close()
            yield from api.serve_forever()

    net.add_node(program=Client(), boot_at_us=100.0)
    net.run(until=RUN_US)
    data = bytes(server.files["sparse"])
    # Python bytearray slice-assign beyond end appends at the current
    # length; the file is 'ab' + 'z' at position 5 -> length 6 with a
    # gap, or appended -- either way 'z' is the last byte and 'ab' the
    # first two.
    assert data[:2] == b"ab"
    assert data[-1:] == b"z"


def test_remote_file_double_close_raises():
    net = Network(seed=176)
    net.add_node(program=FileServer())
    outcome = {}

    class Client(ClientProgram):
        def task(self, api):
            fs = yield from api.discover(FILESERVER_PATTERN)
            f = yield from RemoteFile.open(api, fs.mid, "x")
            yield from f.close()
            try:
                yield from f.close()
            except SodaError:
                outcome["raised"] = True
            yield from api.serve_forever()

    net.add_node(program=Client(), boot_at_us=100.0)
    net.run(until=RUN_US)
    assert outcome.get("raised")


def test_rpc_server_composability_with_other_patterns():
    """RpcServer's pieces can coexist with unrelated handler work."""
    OTHER = make_well_known_pattern(0o605)
    net = Network(seed=177)
    extra = []

    class Hybrid(RpcServer):
        def __init__(self):
            super().__init__({PROC: lambda d: d.upper()})

        def initialization(self, api, parent_mid):
            yield from super().initialization(api, parent_mid)
            yield from api.advertise(OTHER)

        def handler(self, api, event):
            if event.is_arrival and event.pattern == OTHER:
                extra.append(True)
                yield from api.accept_current_signal()
                return
            yield from super().handler(api, event)

    net.add_node(program=Hybrid())
    outcome = {}

    class Client(ClientProgram):
        def task(self, api):
            from repro.facilities.rpc import rpc_call

            yield from api.b_signal(api.server_sig(0, OTHER))
            result = yield from rpc_call(api, api.server_sig(0, PROC), b"abc", 8)
            outcome["result"] = result
            yield from api.serve_forever()

    net.add_node(program=Client(), boot_at_us=100.0)
    net.run(until=RUN_US)
    assert outcome["result"] == b"ABC"
    assert extra == [True]
