"""Tests for the four-way bounded buffer (§4.4.2)."""

from repro.apps.four_way import CTRL_Q, CTRL_S, Device, FourWayClient
from repro.core import Network

RUN_US = 900_000_000.0


def items(prefix, n):
    return [f"{prefix}{i:02d}".encode() for i in range(n)]


def build(seed, items_a, items_b, **device_kwargs):
    net = Network(seed=seed)
    dev_a = Device(items_a, **device_kwargs)
    dev_b = Device(items_b, **device_kwargs)
    net.add_node(program=FourWayClient(dev_a, other_mid=1))
    net.add_node(program=FourWayClient(dev_b, other_mid=0), boot_at_us=100.0)
    return net, dev_a, dev_b


def test_device_model_produces_and_drains():
    device = Device([b"x", b"y"], produce_interval_us=10.0, drain_interval_us=10.0)
    device.poll(100.0)
    assert device.data_available
    assert device.read() == b"x"
    device.write(100.0, b"z")
    device.poll(300.0)
    assert device.output == [b"z"]


def test_device_flow_control_signals():
    device = Device([], out_capacity=4, high_water=2, low_water=0,
                    drain_interval_us=1_000.0)
    device.write(0.0, b"a")
    device.write(0.0, b"b")  # hits high water -> ^S queued
    device.poll(1.0)
    assert device.read() == CTRL_S
    # Drain everything; ^Q follows.
    device.poll(10_000.0)
    device.poll(20_000.0)
    assert device.read() == CTRL_Q
    assert device.output == [b"a", b"b"]


def test_device_stops_on_ctrl_s_write():
    device = Device([b"1", b"2"], produce_interval_us=10.0)
    device.write(0.0, CTRL_S)
    device.poll(1_000.0)
    assert not device.data_available
    device.write(1_000.0, CTRL_Q)
    device.poll(2_000.0)
    assert device.data_available


def test_full_relay_both_directions():
    items_a = items("a", 10)
    items_b = items("b", 10)
    net, dev_a, dev_b = build(121, items_a, items_b)
    done = net.run_until(
        lambda: dev_a.output == items_b and dev_b.output == items_a,
        timeout=RUN_US,
    )
    assert done, (dev_a.output, dev_b.output)


def test_asymmetric_streams():
    items_a = items("a", 15)
    items_b = items("b", 3)
    net, dev_a, dev_b = build(122, items_a, items_b)
    done = net.run_until(
        lambda: dev_a.output == items_b and dev_b.output == items_a,
        timeout=RUN_US,
    )
    assert done, (dev_a.output, dev_b.output)


def test_flow_control_engages_with_slow_drain():
    # B's device drains very slowly: A must be told FULL and stop, yet
    # every item still arrives, in order.
    items_a = items("a", 12)
    net = Network(seed=123)
    dev_a = Device(items_a, produce_interval_us=500.0)
    dev_b = Device([], produce_interval_us=500.0, drain_interval_us=30_000.0,
                   out_capacity=4, high_water=3, low_water=1)
    client_a = FourWayClient(dev_a, other_mid=1, queue_size=3)
    client_b = FourWayClient(dev_b, other_mid=0, queue_size=3)
    net.add_node(program=client_a)
    net.add_node(program=client_b, boot_at_us=100.0)
    done = net.run_until(lambda: dev_b.output == items_a, timeout=RUN_US)
    assert done, dev_b.output
    # Backpressure was actually exercised somewhere along the chain.
    assert client_b.remote_stops_sent >= 1 or dev_b.xoff_count >= 1
