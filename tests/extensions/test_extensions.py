"""Tests for the §6.17 extension features."""

import pytest

from repro.core import Buffer, ClientProgram, KernelConfig, Network
from repro.core.errors import SodaError
from repro.core.patterns import make_well_known_pattern
from repro.extensions.bidding import (
    BiddingServerMixin,
    collect_bids,
    discover_least_loaded,
)
from repro.extensions.kernel_rmr import kernel_peek, kernel_poke
from repro.extensions.multicast import ProcessGroup, multicast_put
from repro.extensions.multipacket import BlockReceiverMixin, put_block

RUN_US = 300_000_000.0
GROUP = make_well_known_pattern(0o220)
SERVICE = make_well_known_pattern(0o221)
BLOCKS = make_well_known_pattern(0o222)


# -- multicast (§6.17.1) ----------------------------------------------------


class GroupMember(ClientProgram):
    def __init__(self):
        self.group = ProcessGroup(GROUP)
        self.got = []

    def initialization(self, api, parent_mid):
        yield from self.group.join(api)

    def handler(self, api, event):
        if event.is_arrival and event.pattern == GROUP:
            buf = Buffer(event.put_size)
            yield from api.accept_current_put(get=buf)
            self.got.append(buf.data)


def test_multicast_reaches_all_members():
    net = Network(seed=141)
    members = [GroupMember() for _ in range(4)]
    for member in members:
        net.add_node(program=member)
    outcome = {}

    class Caster(ClientProgram):
        def task(self, api):
            group = ProcessGroup(GROUP)
            result = yield from group.multicast(api, b"to everyone")
            outcome["result"] = result
            yield from api.serve_forever()

    net.add_node(program=Caster(), boot_at_us=500.0)
    net.run(until=RUN_US)
    assert outcome["result"].all_delivered
    assert outcome["result"].delivered_to == [0, 1, 2, 3]
    assert all(m.got == [b"to everyone"] for m in members)


def test_multicast_reports_failed_members():
    net = Network(seed=142)
    member = GroupMember()
    net.add_node(program=member)
    outcome = {}

    class Caster(ClientProgram):
        def task(self, api):
            # One live member plus one fabricated signature for a node
            # that never advertised the pattern.
            from repro.core.signatures import ServerSignature

            targets = [ServerSignature(0, GROUP), ServerSignature(2, GROUP)]
            result = yield from multicast_put(api, targets, b"data")
            outcome["result"] = result
            yield from api.serve_forever()

    net.add_node(name="deadbeat", mid=2)  # kernel alive, no client
    net.add_node(program=Caster(), boot_at_us=300.0, mid=3)
    net.run(until=RUN_US)
    assert outcome["result"].delivered_to == [0]
    assert outcome["result"].failed_members == [2]


# -- kernel RMR (§6.17.2) -------------------------------------------------------


class RmrHost(ClientProgram):
    def __init__(self, size=256):
        self.size = size

    def initialization(self, api, parent_mid):
        self.memory = bytearray(self.size)
        api.kernel.client_register_rmr_memory(self.memory)
        return
        yield  # pragma: no cover


def test_kernel_rmr_poke_then_peek():
    net = Network(seed=143, config=KernelConfig(kernel_rmr=True))
    host = RmrHost()
    net.add_node(program=host)
    outcome = {}

    class Prober(ClientProgram):
        def task(self, api):
            yield from kernel_poke(api, 0, 8, b"\x01\x02\x03\x04")
            outcome["read"] = yield from kernel_peek(api, 0, 8, 4)
            yield from api.serve_forever()

    net.add_node(program=Prober(), boot_at_us=100.0)
    net.run(until=RUN_US)
    assert outcome["read"] == b"\x01\x02\x03\x04"
    assert bytes(host.memory[8:12]) == b"\x01\x02\x03\x04"


def test_kernel_rmr_disabled_by_default():
    net = Network(seed=144)
    node = net.add_node()
    with pytest.raises(SodaError):
        node.kernel.client_register_rmr_memory(bytearray(16))


def test_kernel_rmr_close_gates_access():
    net = Network(seed=145, config=KernelConfig(kernel_rmr=True))

    class ClosedHost(ClientProgram):
        def initialization(self, api, parent_mid):
            self.memory = bytearray(64)
            api.kernel.client_register_rmr_memory(self.memory)
            yield from api.close()

        def task(self, api):
            yield api.compute(120_000)
            yield from api.open()
            self.opened_at = api.now
            yield from api.serve_forever()

    host = ClosedHost()
    net.add_node(program=host)
    outcome = {}

    class Prober(ClientProgram):
        def task(self, api):
            yield from kernel_poke(api, 0, 0, b"late", retries=100)
            outcome["done_at"] = api.now
            yield from api.serve_forever()

    net.add_node(program=Prober(), boot_at_us=100.0)
    net.run(until=RUN_US)
    assert outcome["done_at"] >= host.opened_at
    assert bytes(host.memory[:4]) == b"late"


def test_kernel_rmr_faster_than_library_rmr():
    """§6.17.2's claim: kernel PEEK/POKE skips handler invocation and
    client overhead at the server -- measurably faster."""
    from repro.facilities.rmr import RMR_PATTERN, MemoryServer, peek

    # Library version.
    net1 = Network(seed=146)
    net1.add_node(program=MemoryServer(size=256))
    times = {}

    class LibProber(ClientProgram):
        def task(self, api):
            sig = api.server_sig(0, RMR_PATTERN)
            yield from peek(api, sig, 0, 64)  # warmup
            t0 = api.now
            for _ in range(5):
                yield from peek(api, sig, 0, 64)
            times["library"] = (api.now - t0) / 5
            yield from api.serve_forever()

    net1.add_node(program=LibProber(), boot_at_us=100.0)
    net1.run(until=RUN_US)

    # Kernel version.
    net2 = Network(seed=146, config=KernelConfig(kernel_rmr=True))
    net2.add_node(program=RmrHost())

    class KernelProber(ClientProgram):
        def task(self, api):
            yield from kernel_peek(api, 0, 0, 64)  # warmup
            t0 = api.now
            for _ in range(5):
                yield from kernel_peek(api, 0, 0, 64)
            times["kernel"] = (api.now - t0) / 5
            yield from api.serve_forever()

    net2.add_node(program=KernelProber(), boot_at_us=100.0)
    net2.run(until=RUN_US)
    assert times["kernel"] < times["library"]


# -- multipacket (§6.17.4) -------------------------------------------------------


class BlockSink(BlockReceiverMixin, ClientProgram):
    block_pattern = BLOCKS

    def __init__(self):
        self.blocks = []

    def on_block(self, sender_mid, block_id, data):
        self.blocks.append((sender_mid, block_id, data))


def test_block_larger_than_message_maximum():
    net = Network(seed=147)
    sink = BlockSink()
    net.add_node(program=sink)
    limit = net.config.max_message_bytes
    payload = bytes(i % 251 for i in range(3 * limit + 123))
    outcome = {}

    class Sender(ClientProgram):
        def task(self, api):
            chunks = yield from put_block(
                api, api.server_sig(0, BLOCKS), payload, block_id=9
            )
            outcome["chunks"] = chunks
            yield from api.serve_forever()

    net.add_node(program=Sender(), boot_at_us=100.0)
    net.run(until=RUN_US)
    assert outcome["chunks"] == 4
    assert sink.blocks == [(1, 9, payload)]


def test_two_interleaved_blocks_from_different_senders():
    net = Network(seed=148)
    sink = BlockSink()
    net.add_node(program=sink)
    payload_a = b"A" * 5000
    payload_b = b"B" * 7000

    class Sender(ClientProgram):
        def __init__(self, payload, block_id):
            self.payload = payload
            self.block_id = block_id

        def task(self, api):
            yield from put_block(
                api, api.server_sig(0, BLOCKS), self.payload,
                block_id=self.block_id, chunk_bytes=1024,
            )
            yield from api.serve_forever()

    net.add_node(program=Sender(payload_a, 1), boot_at_us=100.0)
    net.add_node(program=Sender(payload_b, 2), boot_at_us=130.0)
    net.run(until=RUN_US)
    got = {(mid, bid): data for mid, bid, data in sink.blocks}
    assert got == {(1, 1): payload_a, (2, 2): payload_b}


def test_empty_block_round_trips():
    net = Network(seed=149)
    sink = BlockSink()
    net.add_node(program=sink)

    class Sender(ClientProgram):
        def task(self, api):
            yield from put_block(api, api.server_sig(0, BLOCKS), b"", block_id=3)
            yield from api.serve_forever()

    net.add_node(program=Sender(), boot_at_us=100.0)
    net.run(until=RUN_US)
    assert sink.blocks == [(1, 3, b"")]


# -- bidding (§6.17.5) ---------------------------------------------------------------


class LoadedServer(BiddingServerMixin, ClientProgram):
    service_pattern = SERVICE

    def __init__(self, load):
        self.current_load = load


def test_discover_least_loaded_picks_minimum():
    net = Network(seed=150)
    for load in (7, 2, 9):
        net.add_node(program=LoadedServer(load))
    outcome = {}

    class Selector(ClientProgram):
        def task(self, api):
            best = yield from discover_least_loaded(api, SERVICE)
            bids = yield from collect_bids(api, SERVICE)
            outcome["best"] = best
            outcome["bids"] = bids
            yield from api.serve_forever()

    net.add_node(program=Selector(), boot_at_us=500.0)
    net.run(until=RUN_US)
    assert outcome["best"].mid == 1  # load 2
    assert outcome["bids"] == [(2, 1), (7, 0), (9, 2)]


def test_discover_least_loaded_empty():
    net = Network(seed=151)
    outcome = {"best": "unset"}

    class Selector(ClientProgram):
        def task(self, api):
            outcome["best"] = yield from discover_least_loaded(api, SERVICE)
            yield from api.serve_forever()

    net.add_node(program=Selector())
    net.run(until=RUN_US)
    assert outcome["best"] is None
