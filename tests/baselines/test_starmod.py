"""Tests for the \\*MOD baseline runtime."""

import pytest

from repro.baselines import StarModConfig, StarModNetwork


def test_sync_call_returns_reply():
    net = StarModNetwork(2, seed=1)
    server, client = net.nodes
    server.serve_port("echo", lambda data: data[::-1])
    results = []

    def body():
        reply = yield from client.sync_call(0, "echo", b"abcdef")
        results.append(reply)

    net.sim.spawn(body())
    net.run(until=10_000_000)
    assert results == [b"fedcba"]


def test_sync_call_latency_near_published():
    net = StarModNetwork(2, seed=1)
    server, client = net.nodes
    server.serve_port("p", lambda data: b"ok")
    times = []

    def body():
        for _ in range(4):
            t0 = net.sim.now
            yield from client.sync_call(0, "p", b"\x01\x02")
            times.append((net.sim.now - t0) / 1000.0)

    net.sim.spawn(body())
    net.run(until=10_000_000)
    mean = sum(times) / len(times)
    assert mean == pytest.approx(20.7, rel=0.15)


def test_async_send_latency_near_published():
    net = StarModNetwork(2, seed=1)
    server, client = net.nodes
    server.serve_port("p", lambda data: b"")
    marks = []

    def body():
        for _ in range(8):
            yield from client.async_send(0, "p", b"\x01\x02")
            marks.append(net.sim.now)

    net.sim.spawn(body())
    net.run(until=10_000_000)
    deltas = [(b - a) / 1000.0 for a, b in zip(marks, marks[1:])]
    mean = sum(deltas) / len(deltas)
    assert mean == pytest.approx(11.1, rel=0.15)


def test_async_messages_all_arrive_in_order():
    net = StarModNetwork(2, seed=2)
    server, client = net.nodes
    got = []
    server.serve_port("sink", lambda data: got.append(data) or b"")

    def body():
        for i in range(6):
            yield from client.async_send(0, "sink", bytes([i]))

    net.sim.spawn(body())
    net.run(until=10_000_000)
    assert got == [bytes([i]) for i in range(6)]


def test_sync_call_packet_count():
    net = StarModNetwork(2, seed=3)
    server, client = net.nodes
    server.serve_port("p", lambda data: b"ok")

    def body():
        yield from client.sync_call(0, "p", b"x")

    net.sim.spawn(body())
    net.run(until=10_000_000)
    total = sum(node.packets_sent for node in net.nodes)
    assert total == 4  # CALL, ACK, REPLY, ACK -- no piggybacking


def test_retransmission_on_loss():
    from repro.net.errors import FaultPlan

    net = StarModNetwork(2, seed=4)
    net.bus.faults.drop_next(1)
    server, client = net.nodes
    server.serve_port("p", lambda data: b"ok")
    results = []

    def body():
        reply = yield from client.sync_call(0, "p", b"x")
        results.append(reply)

    net.sim.spawn(body())
    net.run(until=10_000_000)
    assert results == [b"ok"]


def test_two_servers_independent_ports():
    net = StarModNetwork(3, seed=5)
    a, b, client = net.nodes
    a.serve_port("pa", lambda data: b"from-a")
    b.serve_port("pb", lambda data: b"from-b")
    results = []

    def body():
        results.append((yield from client.sync_call(0, "pa", b"")))
        results.append((yield from client.sync_call(1, "pb", b"")))

    net.sim.spawn(body())
    net.run(until=10_000_000)
    assert results == [b"from-a", b"from-b"]
