"""Tests for the ``python -m repro`` entry point."""

import pytest

from repro.__main__ import main


def test_quickstart_runs(capsys):
    assert main(["quickstart"]) == 0
    out = capsys.readouterr().out
    assert "exchange: completed" in out
    assert "frames on the bus" in out


def test_breakdown_prints_table(capsys):
    assert main(["breakdown"]) == 0
    out = capsys.readouterr().out
    assert "client_overhead" in out
    assert "TOTAL" in out


def test_deltat_prints_scenarios(capsys):
    assert main(["deltat"]) == 0
    out = capsys.readouterr().out
    assert "take-any" in out
    assert "FAILED" not in out


def test_help_exits_zero(capsys):
    assert main(["--help"]) == 0
    assert "python -m repro" in capsys.readouterr().out


def test_unknown_command_fails(capsys):
    assert main(["bogus"]) == 1


def test_default_is_quickstart(capsys):
    assert main([]) == 0
    assert "exchange" in capsys.readouterr().out


def test_chaos_single_cell_exits_zero(capsys):
    code = main(
        ["chaos", "--workload", "echo", "--schedule", "calm", "--no-shrink"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "1/1 cell(s) clean" in out


def test_chaos_matrix_failure_exits_nonzero(capsys, monkeypatch):
    # Regression: a failed cell must flip the process exit code (CI
    # keys off it), and --no-shrink must skip the shrink pass entirely.
    import repro.chaos
    from repro.chaos.runner import CellResult

    failing = CellResult(
        workload="echo",
        schedule="calm",
        seed=1,
        horizon_us=0.0,
        liveness_problems=["span <1,1> never terminal"],
    )

    def fake_matrix(
        workloads=None, schedules=None, seeds=(1,), progress=None,
        causal=False, parallel=None,
    ):
        if progress is not None:
            progress(failing)
        return [failing]

    monkeypatch.setattr(repro.chaos, "run_matrix", fake_matrix)
    assert main(["chaos", "--matrix", "--no-shrink"]) == 1
    out = capsys.readouterr().out
    assert "0/1 cell(s) clean" in out
    assert "never terminal" in out
    assert "minimal reproducer" not in out  # --no-shrink honoured


def test_chaos_parallel_matches_serial_json(capsys, tmp_path):
    serial_path = tmp_path / "serial.json"
    parallel_path = tmp_path / "parallel.json"
    args = [
        "chaos",
        "--workload",
        "echo",
        "--schedule",
        "calm,strike",
        "--no-shrink",
    ]
    assert main(args + ["--json", str(serial_path)]) == 0
    assert (
        main(args + ["--parallel", "2", "--json", str(parallel_path)])
        == 0
    )
    capsys.readouterr()
    assert serial_path.read_bytes() == parallel_path.read_bytes()


def test_sim_bench_writes_snapshot(capsys, tmp_path):
    import json

    json_path = tmp_path / "sim.json"
    code = main(
        [
            "sim-bench",
            "--repeats",
            "1",
            "--scale",
            "0.01",
            "--json",
            str(json_path),
        ]
    )
    out = capsys.readouterr().out
    assert "timer_churn" in out
    assert "events/sec" in out
    payload = json.loads(json_path.read_text())
    assert payload["schema"] == "soda.bench/1"
    assert payload["kind"] == "sim_bench"
    assert code in (0, 1)  # verdict is wall-clock, not pinned here
    assert "trace_overhead" in payload["body"]["scenarios"]


def test_recover_demo_converges(capsys, tmp_path):
    json_path = tmp_path / "recover.json"
    assert main(["recover", "--demo", "--json", str(json_path)]) == 0
    out = capsys.readouterr().out
    assert "self-heal: converged" in out
    assert "supervisor rebooted the node" in out
    assert "failure detector:" in out

    import json

    payload = json.loads(json_path.read_text())
    counts = payload["body"]["summary"]["counts"]
    assert counts["reboots_issued"] >= 1
    assert counts["restored"] >= 1
    assert payload["body"]["selfheal_problems"] == []


def test_help_lists_every_registered_command(capsys):
    """--help renders from the COMMANDS registry, so every subcommand
    that dispatches is documented — no drift possible."""
    from repro.__main__ import COMMANDS

    assert main(["--help"]) == 0
    out = capsys.readouterr().out
    for name, command in COMMANDS.items():
        assert f"python -m repro {command.usage}" in out, name
        assert command.description
    # The registry itself is the single dispatch surface.
    for expected in (
        "quickstart", "chaos", "kv-bench", "durability-bench", "real",
    ):
        assert expected in COMMANDS


def test_durability_bench_writes_snapshot(capsys, tmp_path):
    import json

    json_path = tmp_path / "durability.json"
    assert main(["durability-bench", "--json", str(json_path)]) == 0
    out = capsys.readouterr().out
    assert "Recovery replay cost" in out
    assert "fsync always > batch >= never: True" in out
    payload = json.loads(json_path.read_text())
    assert payload["schema"] == "soda.bench/1"
    assert payload["kind"] == "durability_bench"
    assert payload["body"]["benchmark"] == "durability"
