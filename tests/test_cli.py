"""Tests for the ``python -m repro`` entry point."""

import pytest

from repro.__main__ import main


def test_quickstart_runs(capsys):
    assert main(["quickstart"]) == 0
    out = capsys.readouterr().out
    assert "exchange: completed" in out
    assert "frames on the bus" in out


def test_breakdown_prints_table(capsys):
    assert main(["breakdown"]) == 0
    out = capsys.readouterr().out
    assert "client_overhead" in out
    assert "TOTAL" in out


def test_deltat_prints_scenarios(capsys):
    assert main(["deltat"]) == 0
    out = capsys.readouterr().out
    assert "take-any" in out
    assert "FAILED" not in out


def test_help_exits_zero(capsys):
    assert main(["--help"]) == 0
    assert "python -m repro" in capsys.readouterr().out


def test_unknown_command_fails(capsys):
    assert main(["bogus"]) == 1


def test_default_is_quickstart(capsys):
    assert main([]) == 0
    assert "exchange" in capsys.readouterr().out
