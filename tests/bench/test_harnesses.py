"""Unit tests for the benchmark harness modules themselves."""

import pytest

from repro.bench.breakdown import BREAKDOWN_PAPER_MS, measure_signal_breakdown
from repro.bench.deltat_figure import deltat_scenarios
from repro.bench.perf_tables import (
    PAPER_PERFORMANCE_MS,
    WORD_SIZES,
    generate_performance_table,
    measure_cell,
)
from repro.bench.tables import format_table
from repro.bench.workloads import run_blocking_signals, run_stream


def test_paper_reference_tables_complete():
    for key, values in PAPER_PERFORMANCE_MS.items():
        assert len(values) == len(WORD_SIZES), key
        assert values == sorted(values), f"{key} should be monotone"


def test_run_stream_returns_sane_result():
    result = run_stream(10, 0, txns=8, warmup=2)
    assert result.txns == 8
    assert result.per_txn_ms > 0
    assert result.packets_per_txn > 0


def test_run_stream_deterministic_by_seed():
    a = run_stream(10, 0, txns=8, warmup=2, seed=9)
    b = run_stream(10, 0, txns=8, warmup=2, seed=9)
    assert a.per_txn_ms == b.per_txn_ms
    assert a.packets_per_txn == b.packets_per_txn


def test_run_blocking_signals_records_call_times():
    result = run_blocking_signals(txns=5, warmup=1)
    assert len(result.call_times_ms) == 4
    assert all(t > 0 for t in result.call_times_ms)
    assert result.per_txn_ms == pytest.approx(
        sum(result.call_times_ms) / len(result.call_times_ms)
    )


def test_queued_accept_slower_than_handler_accept():
    fast = run_blocking_signals(txns=6, warmup=2)
    queued = run_blocking_signals(queued_accept=True, txns=6, warmup=2)
    assert queued.per_txn_ms > fast.per_txn_ms


def test_measure_cell_signal_degenerate():
    ms, pkts = measure_cell("put", 0, pipelined=False)
    assert pkts == pytest.approx(2.0, abs=0.3)
    with pytest.raises(ValueError):
        measure_cell("bogus", 1, pipelined=False)


def test_generate_performance_table_row_shape():
    rows = generate_performance_table("put", False, sizes=[0, 100])
    assert [r.words for r in rows] == [0, 100]
    assert rows[0].paper_ms == 7
    assert rows[1].paper_ms == 11


def test_breakdown_categories_match_paper_keys():
    result = measure_signal_breakdown()
    assert set(result.measured_ms) == set(BREAKDOWN_PAPER_MS)
    assert result.total_measured_ms == pytest.approx(
        sum(result.measured_ms.values())
    )
    assert result.elapsed_call_ms > result.total_measured_ms / 2


def test_deltat_scenarios_all_ok_default_config():
    results = deltat_scenarios()
    assert set(results) == {"take_any", "duplicate", "crash_quiet"}
    assert all(s.ok for s in results.values())
    assert all(s.events for s in results.values())


def test_format_table_alignment_and_title():
    rendered = format_table(
        ["name", "value"],
        [("x", 1.234), ("longer", 10)],
        title="Demo",
    )
    lines = rendered.splitlines()
    assert lines[0] == "Demo"
    assert "name" in lines[1] and "value" in lines[1]
    assert "1.2" in rendered
    # All data rows align to the same width.
    assert len(lines[2]) == len(lines[3]) == len(lines[4])
