"""Tests for the raw-engine benchmark (repro.bench.sim_bench).

Wall-clock rates vary per host, so assertions here cover the snapshot's
*shape* and the determinism of per-scenario event counts — the same
contract CI's schema check enforces on the committed ``BENCH_sim.json``.
"""

import json

from repro.bench.sim_bench import run_sim_bench

SCENARIOS = (
    "timer_churn",
    "message_storm",
    "chaos_replay",
    "trace_overhead",
)


def test_body_shape_and_positive_rates():
    body = run_sim_bench(repeats=1, scale=0.01)
    assert set(body["scenarios"]) == set(SCENARIOS)
    for name in ("timer_churn", "message_storm", "chaos_replay"):
        cell = body["scenarios"][name]
        assert cell["events"] > 0
        assert cell["events_per_sec"] > 0
        assert cell["elapsed_s"] >= 0.0
    trace = body["scenarios"]["trace_overhead"]
    assert trace["traced"]["events"] == trace["no_trace"]["events"]
    assert trace["fast_mode_speedup"] > 0
    assert isinstance(
        body["comparison"]["no_trace_faster_than_traced"], bool
    )
    json.dumps(body)  # JSON-serializable end to end


def test_event_counts_are_deterministic_across_runs():
    one = run_sim_bench(repeats=1, scale=0.01)
    two = run_sim_bench(repeats=1, scale=0.01)
    for name in ("timer_churn", "message_storm", "chaos_replay"):
        assert (
            one["scenarios"][name]["events"]
            == two["scenarios"][name]["events"]
        )


def test_committed_snapshot_schema():
    # The committed BENCH_sim.json must carry the same shape this
    # module produces (values are wall-clock and not pinned).
    from pathlib import Path

    path = Path(__file__).resolve().parents[2] / "BENCH_sim.json"
    payload = json.loads(path.read_text())
    assert payload["schema"] == "soda.bench/1"
    assert payload["kind"] == "sim_bench"
    assert set(payload["body"]["scenarios"]) == set(SCENARIOS)
    assert payload["body"]["comparison"]["no_trace_faster_than_traced"]
