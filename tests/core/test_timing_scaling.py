"""Tests for TimingModel scaling and config interactions."""

import pytest

from repro.core.config import KernelConfig, TimingModel


def test_scaled_divides_cpu_costs():
    base = TimingModel()
    fast = base.scaled(4.0)
    assert fast.trap_us == base.trap_us / 4
    assert fast.protocol_send_us == base.protocol_send_us / 4
    assert fast.copy_byte_us == base.copy_byte_us / 4
    assert fast.context_switch_us == base.context_switch_us / 4


def test_scaled_preserves_pacing_and_structure():
    base = TimingModel()
    fast = base.scaled(10.0)
    # Protocol pacing windows are policy, not CPU speed.
    assert fast.ack_defer_us == base.ack_defer_us
    assert fast.input_buffer_hold_us == base.input_buffer_hold_us
    assert fast.word_bytes == base.word_bytes


def test_scaled_validates_factor():
    with pytest.raises(ValueError):
        TimingModel().scaled(0.0)
    with pytest.raises(ValueError):
        TimingModel().scaled(-2.0)


def test_scaled_identity():
    base = TimingModel()
    assert base.scaled(1.0) == base


def test_scaled_composes():
    base = TimingModel()
    twice = base.scaled(2.0).scaled(2.0)
    four = base.scaled(4.0)
    assert twice.trap_us == pytest.approx(four.trap_us)


def test_faster_cpu_means_faster_signal():
    from repro.bench.workloads import run_blocking_signals
    from repro.bench import workloads
    from repro.core.node import Network

    def patched_build(config):
        def build(pipelined, queued_accept, reply_bytes, seed):
            net = Network(seed=seed, config=config, keep_trace=False)
            net.add_node(program=workloads.AcceptingServer(reply_bytes=reply_bytes))
            return net

        return build

    original = workloads._build
    try:
        workloads._build = patched_build(KernelConfig())
        slow = run_blocking_signals(txns=4, warmup=1).per_txn_ms
        workloads._build = patched_build(
            KernelConfig(timing=TimingModel().scaled(8.0))
        )
        fast = run_blocking_signals(txns=4, warmup=1).per_txn_ms
    finally:
        workloads._build = original
    assert fast < slow / 3
