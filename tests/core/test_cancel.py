"""Behavioural tests for CANCEL (§3.3.3) and its races."""

from repro.core import (
    AcceptStatus,
    Buffer,
    CancelStatus,
    ClientProgram,
    Network,
    RequestStatus,
)
from repro.core.patterns import make_well_known_pattern

from tests.conftest import make_pair

RUN_US = 20_000_000.0
PATTERN = make_well_known_pattern(0o660)


class HoldingServer(ClientProgram):
    """Records arrivals; accepts only when ``accept_after_arrivals`` seen
    (never, by default)."""

    def __init__(self, accept_delay_us=None):
        self.accept_delay_us = accept_delay_us
        self.arrivals = []
        self.accept_statuses = []

    def initialization(self, api, parent_mid):
        yield from api.advertise(PATTERN)

    def handler(self, api, event):
        if event.is_arrival:
            self.arrivals.append(event.asker)
            return
        yield  # pragma: no cover

    def task(self, api):
        if self.accept_delay_us is None:
            yield from api.serve_forever()
        yield api.compute(self.accept_delay_us)
        yield from api.poll(lambda: self.arrivals)
        status = yield from api.accept_signal(self.arrivals[0])
        self.accept_statuses.append(status)
        yield from api.serve_forever()


def test_cancel_delivered_request_succeeds(network):
    server = HoldingServer()

    def body(api, self):
        sig = yield from api.discover(PATTERN)
        tid = yield from api.signal(sig)
        # Give the request time to be delivered to the server handler.
        yield api.compute(50_000)
        status = yield from api.cancel(tid)
        return status

    make_pair(network, server, body)
    network.run(until=RUN_US)
    _, client = network.nodes[0].client, network.nodes[1].client
    assert client.program.result is CancelStatus.SUCCESS


def test_accept_after_cancel_returns_cancelled(network):
    server = HoldingServer(accept_delay_us=200_000)

    def body(api, self):
        sig = yield from api.discover(PATTERN)
        tid = yield from api.signal(sig)
        yield api.compute(50_000)
        status = yield from api.cancel(tid)
        return status

    _, client = make_pair(network, server, body)
    network.run(until=RUN_US)
    assert client.result is CancelStatus.SUCCESS
    assert server.accept_statuses == [AcceptStatus.CANCELLED]


def test_cancel_after_completion_fails(network):
    class FastAccept(ClientProgram):
        def initialization(self, api, parent_mid):
            yield from api.advertise(PATTERN)

        def handler(self, api, event):
            if event.is_arrival:
                yield from api.accept_current_signal()

    def body(api, self):
        sig = yield from api.discover(PATTERN)
        completion = yield from api.b_signal(sig)
        status = yield from api.cancel(completion.tid)
        return completion.status, status

    _, client = make_pair(network, FastAccept(), body)
    network.run(until=RUN_US)
    assert client.result == (RequestStatus.COMPLETED, CancelStatus.FAIL)


def test_cancel_before_transmission_succeeds(network):
    # Three requests saturate the connection; the third is still queued
    # when cancelled, so no packets about it ever hit the wire.
    server = HoldingServer()

    def body(api, self):
        sig = yield from api.discover(PATTERN)
        yield from api.signal(sig)
        yield from api.signal(sig)
        tid3 = yield from api.signal(sig)
        status = yield from api.cancel(tid3)
        yield api.compute(100_000)
        return status, len(server.arrivals)

    _, client = make_pair(network, server, body)
    network.run(until=RUN_US)
    status, arrivals = client.result
    assert status is CancelStatus.SUCCESS
    assert arrivals == 2  # the cancelled request was never delivered


def test_cancel_of_unknown_tid_fails(network):
    server = HoldingServer()

    def body(api, self):
        status = yield from api.cancel(424242)
        return status

    _, client = make_pair(network, server, body)
    network.run(until=RUN_US)
    assert client.result is CancelStatus.FAIL


def test_cancel_race_with_accept_fails_and_completes(network):
    # The server accepts promptly; the client cancels at nearly the same
    # time.  Whatever the interleaving, the outcomes must be consistent:
    # cancel FAIL + completion delivered, or cancel SUCCESS + no
    # completion.
    class PromptServer(ClientProgram):
        def initialization(self, api, parent_mid):
            yield from api.advertise(PATTERN)

        def handler(self, api, event):
            if event.is_arrival:
                yield from api.accept_current_signal()

    completions = []

    class Racer(ClientProgram):
        def __init__(self):
            self.result = None

        def handler(self, api, event):
            if event.is_completion:
                completions.append(event.status)
            return
            yield  # pragma: no cover

        def task(self, api):
            sig = yield from api.discover(PATTERN)
            tid = yield from api.signal(sig)
            status = yield from api.cancel(tid)  # immediately
            self.result = status
            yield api.compute(200_000)
            yield from api.serve_forever()

    network.add_node(program=PromptServer())
    racer = Racer()
    network.add_node(program=racer, boot_at_us=50.0)
    network.run(until=RUN_US)
    if racer.result is CancelStatus.FAIL:
        assert completions == [RequestStatus.COMPLETED]
    else:
        assert racer.result is CancelStatus.SUCCESS
        assert completions == []


def test_double_cancel_second_succeeds(network):
    server = HoldingServer()

    def body(api, self):
        sig = yield from api.discover(PATTERN)
        tid = yield from api.signal(sig)
        yield api.compute(50_000)
        first = yield from api.cancel(tid)
        second = yield from api.cancel(tid)
        return first, second

    _, client = make_pair(network, server, body)
    network.run(until=RUN_US)
    assert client.result == (CancelStatus.SUCCESS, CancelStatus.SUCCESS)
