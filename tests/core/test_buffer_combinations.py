"""Buffer-size combinations across REQUEST and ACCEPT (§3.3.2, §4.1.2)."""

import pytest

from repro.core import Buffer, ClientProgram, Network, RequestStatus
from repro.core.patterns import make_well_known_pattern

from tests.conftest import make_pair

PATTERN = make_well_known_pattern(0o600)
RUN_US = 30_000_000.0


class SizedServer(ClientProgram):
    """Accepts with configurable buffer sizes and reply payload."""

    def __init__(self, reply=b"", accept_capacity=None):
        self.reply = reply
        self.accept_capacity = accept_capacity
        self.seen = []

    def initialization(self, api, parent_mid):
        yield from api.advertise(PATTERN)

    def handler(self, api, event):
        if not event.is_arrival:
            return
        capacity = (
            event.put_size
            if self.accept_capacity is None
            else self.accept_capacity
        )
        buf = Buffer(capacity)
        yield from api.accept_current_exchange(get=buf, put=self.reply)
        self.seen.append((buf.data, event.put_size, event.get_size))


def test_partial_final_chunk_get(network):
    # §4.1.2's file-read example: the requester offers a big buffer, the
    # server replies with a smaller final chunk; taken_get says how much.
    server = SizedServer(reply=b"tail")

    def body(api, self):
        buf = Buffer(100)
        completion = yield from api.b_get(api.server_sig(0, PATTERN), get=buf)
        return completion, buf.data

    _, client = make_pair(network, server, body)
    network.run(until=RUN_US)
    completion, data = client.result
    assert data == b"tail"
    assert completion.taken_get == 4
    assert completion.status is RequestStatus.COMPLETED


def test_requester_buffer_smaller_than_reply(network):
    # The server offers more than the requester asked for; the kernel
    # truncates to the REQUEST's get capacity.
    server = SizedServer(reply=b"0123456789")

    def body(api, self):
        buf = Buffer(4)
        completion = yield from api.b_get(api.server_sig(0, PATTERN), get=buf)
        return completion, buf.data

    _, client = make_pair(network, server, body)
    network.run(until=RUN_US)
    completion, data = client.result
    assert data == b"0123"
    assert completion.taken_get == 4


def test_server_offers_nothing_for_get(network):
    server = SizedServer(reply=b"")

    def body(api, self):
        buf = Buffer(16)
        completion = yield from api.b_get(api.server_sig(0, PATTERN), get=buf)
        return completion, buf.data

    _, client = make_pair(network, server, body)
    network.run(until=RUN_US)
    completion, data = client.result
    assert data == b""
    assert completion.taken_get == 0
    assert completion.status is RequestStatus.COMPLETED


def test_zero_capacity_accept_of_put(network):
    # The server ACCEPTs a PUT with a NIL buffer: the data is refused
    # (taken_put 0) but the transaction completes.
    server = SizedServer(accept_capacity=0)

    def body(api, self):
        completion = yield from api.b_put(
            api.server_sig(0, PATTERN), put=b"unwanted"
        )
        return completion

    _, client = make_pair(network, server, body)
    network.run(until=RUN_US)
    assert client.result.status is RequestStatus.COMPLETED
    assert client.result.taken_put == 0
    assert server.seen[0][0] == b""


def test_exchange_with_asymmetric_sizes(network):
    server = SizedServer(reply=b"abcdefgh", accept_capacity=3)

    def body(api, self):
        buf = Buffer(5)
        completion = yield from api.b_exchange(
            api.server_sig(0, PATTERN), put=b"0123456789", get=buf
        )
        return completion, buf.data

    _, client = make_pair(network, server, body)
    network.run(until=RUN_US)
    completion, data = client.result
    assert completion.taken_put == 3   # server's buffer capped at 3
    assert completion.taken_get == 5   # our buffer capped at 5
    assert data == b"abcde"
    assert server.seen[0][0] == b"012"


def test_empty_put_data_is_a_signal(network):
    server = SizedServer()

    def body(api, self):
        completion = yield from api.b_put(api.server_sig(0, PATTERN), put=b"")
        return completion

    _, client = make_pair(network, server, body)
    network.run(until=RUN_US)
    assert client.result.status is RequestStatus.COMPLETED
    assert client.result.taken_put == 0
    # Only two packets total for the transaction after discovery-free
    # direct addressing: REQUEST and ACCEPT(+ack).
    assert server.seen[0][1] == 0  # put_size seen by handler
