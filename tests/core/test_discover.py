"""DISCOVER tests (§3.4.4, §5.3, §6.16)."""

from repro.core import Buffer, ClientProgram, Network, RequestStatus
from repro.core.patterns import make_well_known_pattern

RUN_US = 30_000_000.0
SERVICE = make_well_known_pattern(0o620)


class Advertiser(ClientProgram):
    def __init__(self, pattern=SERVICE):
        self.pattern = pattern

    def initialization(self, api, parent_mid):
        yield from api.advertise(self.pattern)


def test_discover_returns_all_matching_mids():
    net = Network(seed=31)
    for mid in range(4):
        net.add_node(mid=mid, program=Advertiser())
    found = {}

    class Seeker(ClientProgram):
        def task(self, api):
            mids = yield from api.discover_all(SERVICE, max_replies=8)
            found["mids"] = mids
            yield from api.serve_forever()

    net.add_node(mid=9, program=Seeker(), boot_at_us=1_000.0)
    net.run(until=RUN_US)
    assert found["mids"] == [0, 1, 2, 3]


def test_discover_buffer_caps_replies():
    # "up to the number that will fit in the buffer" (§3.4.4)
    net = Network(seed=32)
    for mid in range(5):
        net.add_node(mid=mid, program=Advertiser())
    found = {}

    class Seeker(ClientProgram):
        def task(self, api):
            mids = yield from api.discover_all(SERVICE, max_replies=2)
            found["mids"] = mids
            yield from api.serve_forever()

    net.add_node(mid=9, program=Seeker(), boot_at_us=1_000.0)
    net.run(until=RUN_US)
    assert len(found["mids"]) == 2


def test_discover_transparent_to_server_clients():
    # "no information about a DISCOVER is ever presented to a client"
    net = Network(seed=33)
    handler_events = []

    class Watchful(ClientProgram):
        def initialization(self, api, parent_mid):
            yield from api.advertise(SERVICE)

        def handler(self, api, event):
            handler_events.append(event)
            return
            yield  # pragma: no cover

    net.add_node(program=Watchful())

    class Seeker(ClientProgram):
        def task(self, api):
            yield from api.discover_all(SERVICE)
            yield from api.serve_forever()

    net.add_node(program=Seeker(), boot_at_us=100.0)
    net.run(until=RUN_US)
    assert handler_events == []


def test_discover_nothing_returns_empty():
    net = Network(seed=34)
    found = {}

    class Seeker(ClientProgram):
        def task(self, api):
            mids = yield from api.discover_all(SERVICE)
            found["mids"] = mids
            yield from api.serve_forever()

    net.add_node(program=Seeker())
    net.run(until=RUN_US)
    assert found["mids"] == []


def test_discover_replies_are_staggered_by_mid():
    net = Network(seed=35)
    for mid in range(3):
        net.add_node(mid=mid, program=Advertiser())

    class Seeker(ClientProgram):
        def task(self, api):
            yield from api.discover_all(SERVICE)
            yield from api.serve_forever()

    net.add_node(mid=8, program=Seeker(), boot_at_us=1_000.0)
    net.run(until=RUN_US)
    replies = [
        r
        for r in net.sim.trace.records
        if r.category == "kernel.tx" and r.get("ptype") == "discover_reply"
    ]
    times = {r["mid"]: r.time for r in replies}
    assert times[0] < times[1] < times[2]
    stagger = net.config.discover_stagger_us
    assert times[1] - times[0] >= stagger * 0.9


def test_discover_counts_against_maxrequests_until_done():
    net = Network(seed=36)
    outcome = {}

    class Seeker(ClientProgram):
        def task(self, api):
            from repro.core.errors import TooManyRequestsError
            from repro.core.patterns import BROADCAST

            for _ in range(net.config.max_requests):
                yield from api.get(
                    api.server_sig(BROADCAST, SERVICE), get=Buffer(2)
                )
            try:
                yield from api.get(
                    api.server_sig(BROADCAST, SERVICE), get=Buffer(2)
                )
                outcome["extra"] = "allowed"
            except TooManyRequestsError:
                outcome["extra"] = "limited"
            yield from api.serve_forever()

    net.add_node(program=Seeker())
    net.run(until=RUN_US)
    assert outcome["extra"] == "limited"
