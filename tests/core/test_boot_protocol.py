"""Booting, killing, and SYSTEM pattern tests (§3.5)."""

from repro.core import Buffer, ClientProgram, Network, RequestStatus
from repro.core.boot import (
    DEFAULT_KILL_PATTERN,
    SYSTEM_ADD_BOOT,
    SYSTEM_DELETE_BOOT,
    SYSTEM_PATTERN,
    SYSTEM_REPLACE_KILL,
    ProgramImage,
    boot_pattern_for,
    pattern_to_bytes,
)
from repro.core.patterns import is_reserved, make_reserved_pattern, make_well_known_pattern

RUN_US = 60_000_000.0
HELLO = make_well_known_pattern(0o630)


class BootedChild(ClientProgram):
    """The program loaded over the network; advertises HELLO and serves."""

    booted_parents = []

    def initialization(self, api, parent_mid):
        BootedChild.booted_parents.append(parent_mid)
        yield from api.advertise(HELLO)

    def handler(self, api, event):
        if event.is_arrival:
            yield from api.accept_current_get(put=b"child alive")


def child_image() -> ProgramImage:
    return ProgramImage("child", BootedChild, size_bytes=2048, chunk_bytes=1024)


class ParentBooter(ClientProgram):
    """Discovers a bare node, boots BootedChild on it, then talks to it."""

    def __init__(self, machine_type="bare", kill_after=False):
        self.machine_type = machine_type
        self.kill_after = kill_after
        self.log = []

    def task(self, api):
        boot_pattern = boot_pattern_for(self.machine_type)
        target = yield from api.discover(boot_pattern)
        self.log.append(("found", target.mid))
        load_sig = yield from api.boot_node(target, child_image())
        self.log.append(("started", target.mid, load_sig.pattern))
        reply = Buffer(16)
        completion = yield from api.b_get(
            api.server_sig(target.mid, HELLO), get=reply
        )
        self.log.append(("reply", reply.data, completion.status))
        if self.kill_after:
            # A second SIGNAL on the load pattern kills the child (§3.5.2).
            yield from api.b_signal(load_sig)
            self.log.append(("killed", target.mid))
        yield from api.serve_forever()


def test_network_boot_and_talk():
    net = Network(seed=21)
    net.add_node(machine_type="bare", name="bare")  # no client: bootable
    parent = ParentBooter()
    net.add_node(program=parent, name="parent")
    BootedChild.booted_parents = []
    net.run(until=RUN_US)
    kinds = [entry[0] for entry in parent.log]
    assert kinds[:2] == ["found", "started"]
    assert ("reply", b"child alive", RequestStatus.COMPLETED) in parent.log
    # The child's Initialization saw the parent's MID (§3.7.6).
    assert BootedChild.booted_parents == [1]
    # The load pattern handed out is reserved (§3.5.2).
    load_pattern = parent.log[1][2]
    assert is_reserved(load_pattern)


def test_boot_pattern_unadvertised_after_grant():
    net = Network(seed=22)
    net.add_node(machine_type="bare")
    parent = ParentBooter()
    net.add_node(program=parent)

    late = {}

    class LateBooter(ClientProgram):
        def task(self, api):
            yield api.compute(2_000_000)  # after the first boot finished
            completion = yield from api.b_get(
                api.server_sig(0, boot_pattern_for("bare")), get=Buffer(6)
            )
            late["status"] = completion.status
            yield from api.serve_forever()

    net.add_node(program=LateBooter())
    net.run(until=RUN_US)
    assert late["status"] is RequestStatus.UNADVERTISED


def test_second_load_signal_kills_child():
    net = Network(seed=23)
    bare = net.add_node(machine_type="bare")
    parent = ParentBooter(kill_after=True)
    net.add_node(program=parent)
    net.run(until=RUN_US)
    assert ("killed", 0) in parent.log
    assert bare.kernel.client is None
    # The node is bootable again: no client patterns remain.
    assert bare.kernel.patterns.advertised() == []


def test_booted_child_discoverable_and_boot_pattern_readvertised_after_kill():
    net = Network(seed=27)
    bare = net.add_node(machine_type="bare")
    parent = ParentBooter(kill_after=True)
    net.add_node(program=parent)

    found = {}

    class Prober(ClientProgram):
        def task(self, api):
            yield api.compute(5_000_000)  # after kill
            mids = yield from api.discover_all(boot_pattern_for("bare"))
            found["bootable"] = mids
            yield from api.serve_forever()

    net.add_node(program=Prober())
    net.run(until=RUN_US)
    assert found["bootable"] == [0]


def test_kill_pattern_terminates_any_client():
    net = Network(seed=24)

    class Victim(ClientProgram):
        def initialization(self, api, parent_mid):
            yield from api.advertise(HELLO)

    victim_node = net.add_node(program=Victim())

    outcome = {}

    class Killer(ClientProgram):
        def task(self, api):
            completion = yield from api.b_signal(
                api.server_sig(0, DEFAULT_KILL_PATTERN)
            )
            outcome["status"] = completion.status
            yield from api.serve_forever()

    net.add_node(program=Killer(), boot_at_us=100.0)
    net.run(until=RUN_US)
    assert outcome["status"] is RequestStatus.COMPLETED
    assert victim_node.kernel.client is None


def test_system_pattern_requires_mid_zero():
    net = Network(seed=25)
    target = net.add_node(mid=5, machine_type="bare")

    outcome = {}

    class Impostor(ClientProgram):
        def task(self, api):
            completion = yield from api.b_put(
                api.server_sig(5, SYSTEM_PATTERN),
                arg=SYSTEM_REPLACE_KILL,
                put=pattern_to_bytes(make_reserved_pattern(99)),
            )
            outcome["status"] = completion.status
            yield from api.serve_forever()

    net.add_node(mid=3, program=Impostor())
    net.run(until=RUN_US)
    assert outcome["status"] is RequestStatus.UNADVERTISED
    assert target.kernel.kill_pattern == DEFAULT_KILL_PATTERN


def test_system_pattern_mutations_from_mid_zero():
    net = Network(seed=26)

    target = net.add_node(mid=5, machine_type="bare")
    new_boot = make_reserved_pattern(0xB007)
    new_kill = make_reserved_pattern(0xDEAD)
    old_boot = boot_pattern_for("bare")

    outcome = {}

    class Admin(ClientProgram):
        def task(self, api):
            sig = api.server_sig(5, SYSTEM_PATTERN)
            c1 = yield from api.b_put(
                sig, arg=SYSTEM_ADD_BOOT, put=pattern_to_bytes(new_boot)
            )
            c2 = yield from api.b_put(
                sig, arg=SYSTEM_DELETE_BOOT, put=pattern_to_bytes(old_boot)
            )
            c3 = yield from api.b_put(
                sig, arg=SYSTEM_REPLACE_KILL, put=pattern_to_bytes(new_kill)
            )
            outcome["statuses"] = (c1.status, c2.status, c3.status)
            yield from api.serve_forever()

    net.add_node(mid=0, program=Admin())
    net.run(until=RUN_US)
    assert outcome["statuses"] == (RequestStatus.COMPLETED,) * 3
    assert target.kernel.boot_patterns == [new_boot]
    assert target.kernel.kill_pattern == new_kill
