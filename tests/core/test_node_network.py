"""Tests for Network/SodaNode wiring and kernel bookkeeping."""

import pytest

from repro.core import ClientProgram, KernelConfig, Network, RequestStatus
from repro.core.errors import SodaError
from repro.core.patterns import make_well_known_pattern

from tests.conftest import ECHO_PATTERN, EchoServer


def test_auto_mid_assignment(network):
    a = network.add_node()
    b = network.add_node()
    c = network.add_node(mid=7)
    d = network.add_node()
    assert (a.mid, b.mid, c.mid, d.mid) == (0, 1, 7, 8)


def test_duplicate_mid_rejected(network):
    network.add_node(mid=3)
    with pytest.raises(ValueError):
        network.add_node(mid=3)


def test_node_lookup_and_repr(network):
    node = network.add_node(name="alpha")
    assert network.node(node.mid) is node
    assert "alpha" in repr(node)


def test_install_second_program_while_alive_rejected(network):
    node = network.add_node(program=EchoServer())
    network.run(until=10_000.0)
    with pytest.raises(SodaError):
        node.install_program(EchoServer())
        network.run(until=20_000.0)


def test_bare_node_advertises_boot_pattern(network):
    from repro.core.boot import boot_pattern_for

    node = network.add_node(machine_type="special")
    assert node.kernel.boot_patterns == [boot_pattern_for("special")]
    assert node.kernel._boot_active


def test_network_now_tracks_sim(network):
    network.add_node(program=EchoServer())
    network.run(until=12_345.0)
    assert network.now == 12_345.0


def test_per_node_config_override():
    net = Network(seed=1, config=KernelConfig(pipelined=False))
    node = net.add_node(config=KernelConfig(pipelined=True))
    other = net.add_node()
    assert node.kernel.config.pipelined
    assert not other.kernel.config.pipelined


def test_shared_ledger_across_nodes(network):
    done = {}

    class Pinger(ClientProgram):
        def task(self, api):
            completion = yield from api.b_signal(api.server_sig(0, ECHO_PATTERN))
            done["status"] = completion.status
            yield from api.serve_forever()

    network.add_node(program=EchoServer())
    network.add_node(program=Pinger(), boot_at_us=50.0)
    network.run(until=10_000_000.0)
    assert done["status"] is RequestStatus.COMPLETED
    # Both kernels charged the one Network-level ledger.
    assert network.ledger.total() > 0
    assert network.nodes[0].kernel.ledger is network.ledger
    assert network.nodes[1].kernel.ledger is network.ledger


def test_kernel_work_serializes_on_busy_until(network):
    kernel = network.add_node().kernel
    order = []
    kernel._kernel_work({"protocol": 100.0}, order.append, "first")
    kernel._kernel_work({"protocol": 50.0}, order.append, "second")
    network.run(until=1_000.0)
    assert order == ["first", "second"]
    # Second job starts only after the first's 100 us completes.
    assert kernel._busy_until == 150.0


def test_kernel_work_charges_categories(network):
    kernel = network.add_node().kernel
    kernel._kernel_work({"protocol": 10.0, "transmission": 5.0})
    assert network.ledger.get("protocol") == 10.0
    assert network.ledger.get("transmission") == 5.0


def test_direct_index_kernel_integration():
    # With the §5.4 table, two patterns sharing a low byte: advertising
    # the second evicts the first, observable end to end.
    net = Network(seed=8, config=KernelConfig(direct_index_patterns=True))
    p1 = make_well_known_pattern(0x0101)
    p2 = make_well_known_pattern(0x0201)  # same low byte

    class TwoPatterns(ClientProgram):
        def initialization(self, api, parent_mid):
            yield from api.advertise(p1)
            yield from api.advertise(p2)

        def handler(self, api, event):
            if event.is_arrival:
                yield from api.accept_current_signal()

    statuses = {}

    class Client(ClientProgram):
        def task(self, api):
            first = yield from api.b_signal(api.server_sig(0, p1))
            second = yield from api.b_signal(api.server_sig(0, p2))
            statuses["p1"] = first.status
            statuses["p2"] = second.status
            yield from api.serve_forever()

    net.add_node(program=TwoPatterns())
    net.add_node(program=Client(), boot_at_us=100.0)
    net.run(until=10_000_000.0)
    assert statuses["p1"] is RequestStatus.UNADVERTISED  # evicted (§5.4)
    assert statuses["p2"] is RequestStatus.COMPLETED


def test_offline_kernel_ignores_everything(network):
    node = network.add_node(program=EchoServer())
    network.run(until=10_000.0)
    node.kernel.offline_until = network.now + 1_000_000.0
    outcome = {}

    class Client(ClientProgram):
        def task(self, api):
            completion = yield from api.b_signal(api.server_sig(0, ECHO_PATTERN))
            outcome["status"] = completion.status
            yield from api.serve_forever()

    network.add_node(program=Client())
    network.run(until=5_000_000.0)
    # Never heard from the offline node: UNADVERTISED (§3.3.1).
    assert outcome["status"] is RequestStatus.UNADVERTISED
