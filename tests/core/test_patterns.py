"""Unit tests for patterns, unique ids, and the pattern table (§3.4, §5.4)."""

import pytest

from repro.core.patterns import (
    PATTERNSIZE,
    UNIQUEID_BITS,
    PatternTable,
    UniqueIdGenerator,
    is_reserved,
    is_unique_id,
    is_well_known,
    make_reserved_pattern,
    make_well_known_pattern,
)


def test_class_bits_partition_the_space():
    reserved = make_reserved_pattern(5)
    known = make_well_known_pattern(5)
    assert is_reserved(reserved) and not is_well_known(reserved)
    assert is_well_known(known) and not is_reserved(known)
    assert reserved != known


def test_unique_ids_avoid_class_bits():
    gen = UniqueIdGenerator(serial=200)
    pattern = gen.next_pattern()
    assert is_unique_id(pattern)
    assert not is_reserved(pattern)
    assert not is_well_known(pattern)
    assert pattern < (1 << UNIQUEID_BITS)


def test_unique_ids_embed_serial_and_counter():
    gen = UniqueIdGenerator(serial=7, boot_counter=100)
    p = gen.next_pattern()
    assert p >> 32 == 7
    assert p & 0xFFFFFFFF == 100


def test_unique_ids_never_repeat_across_machines():
    gen_a = UniqueIdGenerator(serial=1)
    gen_b = UniqueIdGenerator(serial=2)
    ids = {gen_a.next_pattern() for _ in range(100)}
    ids |= {gen_b.next_pattern() for _ in range(100)}
    assert len(ids) == 200


def test_tids_share_the_counter():
    gen = UniqueIdGenerator(serial=1, boot_counter=10)
    tid = gen.next_tid()
    pattern = gen.next_pattern()
    assert tid == 10
    assert pattern & 0xFFFFFFFF == 11


def test_reboot_must_be_monotonic():
    gen = UniqueIdGenerator(serial=1, boot_counter=50)
    gen.next_tid()
    gen.reboot(100)
    assert gen.next_tid() == 100
    with pytest.raises(ValueError):
        gen.reboot(5)


def test_serial_range_validated():
    with pytest.raises(ValueError):
        UniqueIdGenerator(serial=256)


def test_well_known_value_range_validated():
    with pytest.raises(ValueError):
        make_well_known_pattern(1 << 47)


def test_pattern_is_48_bits():
    top = make_reserved_pattern((1 << 46) - 1)
    assert top < (1 << PATTERNSIZE)


# -- exact-match table (ideal §3.4 semantics) -----------------------------------


def test_exact_table_advertise_unadvertise():
    table = PatternTable()
    table.advertise(0o123)
    assert table.matches(0o123)
    table.unadvertise(0o123)
    assert not table.matches(0o123)


def test_exact_table_multiple_patterns():
    table = PatternTable()
    for p in (1, 2, 256 + 1):  # 1 and 257 share the low byte
        table.advertise(p)
    assert table.matches(1)
    assert table.matches(257)
    assert sorted(table.advertised()) == [1, 2, 257]


def test_reserved_patterns_not_advertisable():
    table = PatternTable()
    with pytest.raises(ValueError):
        table.advertise(make_reserved_pattern(1))
    with pytest.raises(ValueError):
        table.unadvertise(make_reserved_pattern(1))


def test_clear_drops_everything():
    table = PatternTable()
    table.advertise(1)
    table.advertise(2)
    table.clear()
    assert not table.matches(1)
    assert table.advertised() == []


def test_unadvertise_missing_is_noop():
    table = PatternTable()
    table.unadvertise(99)  # must not raise


# -- direct-index table (the §5.4 experimental kernel) ----------------------------


def test_direct_index_overwrite_on_low_byte_collision():
    table = PatternTable(direct_index=True)
    table.advertise(0x01_01)
    table.advertise(0x02_01)  # same low byte 0x01
    assert not table.matches(0x01_01)  # overwritten, per §5.4
    assert table.matches(0x02_01)


def test_direct_index_distinct_slots_coexist():
    table = PatternTable(direct_index=True)
    table.advertise(0x01)
    table.advertise(0x02)
    assert table.matches(0x01) and table.matches(0x02)


def test_direct_index_unadvertise_only_exact():
    table = PatternTable(direct_index=True)
    table.advertise(0x02_01)
    table.unadvertise(0x01_01)  # same slot, different pattern: no-op
    assert table.matches(0x02_01)
    table.unadvertise(0x02_01)
    assert not table.matches(0x02_01)


def test_direct_index_sequential_unique_ids_get_distinct_slots():
    gen = UniqueIdGenerator(serial=3)
    table = PatternTable(direct_index=True)
    patterns = [gen.next_pattern() for _ in range(10)]
    for p in patterns:
        table.advertise(p)
    assert all(table.matches(p) for p in patterns)
