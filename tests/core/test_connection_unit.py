"""Unit tests for the Connection state machine, using a stub kernel."""

from types import SimpleNamespace

import pytest

from repro.core.config import KernelConfig
from repro.core.connection import Connection, OutboundMessage
from repro.sim import Simulator
from repro.transport.packet import NackCode, Packet, PacketType


class StubKernel:
    """Just enough kernel for a Connection: records transmissions."""

    def __init__(self, sim, config=None):
        self.sim = sim
        self.config = config or KernelConfig()
        self.mid = 0
        self.sent = []

    def transmit_packet(self, dst, packet, copy_bytes=0, sequenced=False):
        self.sent.append((dst, packet, sequenced))


def build(config=None):
    sim = Simulator(seed=3)
    kernel = StubKernel(sim, config)
    conn = Connection(kernel, peer_mid=9)
    return sim, kernel, conn


def msg(data=None, kind="request", **kwargs):
    packet = Packet(PacketType.REQUEST, tid=1, data=data)
    return OutboundMessage(packet, kind, **kwargs)


def test_stop_and_wait_one_outstanding():
    sim, kernel, conn = build()
    conn.enqueue(msg())
    conn.enqueue(msg())
    sim.run(until=1.0)
    assert len(kernel.sent) == 1
    conn.handle_ack(kernel.sent[0][1].seq)
    sim.run(until=2.0)
    assert len(kernel.sent) == 2
    # Alternating bit flipped between the two.
    assert kernel.sent[0][1].seq != kernel.sent[1][1].seq


def test_ack_for_wrong_seq_ignored():
    sim, kernel, conn = build()
    acked = []
    conn.enqueue(msg(on_acked=lambda: acked.append(True)))
    sim.run(until=1.0)
    seq = kernel.sent[0][1].seq
    conn.handle_ack(1 - seq)
    assert acked == []
    conn.handle_ack(seq)
    assert acked == [True]


def test_retransmission_until_ack_then_stop():
    sim, kernel, conn = build()
    conn.enqueue(msg())
    sim.run(until=200_000.0)
    assert len(kernel.sent) >= 2  # original + at least one retry
    count = len(kernel.sent)
    conn.handle_ack(kernel.sent[0][1].seq)
    sim.run(until=400_000.0)
    assert len(kernel.sent) == count  # no further retries


def test_data_stripped_from_retransmissions():
    sim, kernel, conn = build()
    conn.enqueue(msg(data=b"payload", data_once=True))
    sim.run(until=200_000.0)
    first = kernel.sent[0][1]
    retry = kernel.sent[1][1]
    assert first.data == b"payload"
    assert retry.data is None


def test_exhaustion_declares_peer_dead_and_fails_queue():
    sim, kernel, conn = build()
    dead = []
    conn.enqueue(msg(on_dead=lambda: dead.append("a")))
    conn.enqueue(msg(on_dead=lambda: dead.append("b")))
    sim.run(until=10_000_000.0)
    assert conn.declared_dead
    assert dead == ["a", "b"]
    attempts = kernel.config.retransmit.max_ack_attempts
    assert len(kernel.sent) == attempts  # only the head was ever sent


def test_busy_nack_triggers_slow_retry():
    sim, kernel, conn = build()
    conn.enqueue(msg(busy_retryable=True))
    sim.run(until=1.0)
    seq = kernel.sent[0][1].seq
    conn.handle_busy_nack(seq)
    sim.run(until=5_000.0)
    assert len(kernel.sent) == 2
    # Busy retries keep the same sequence number.
    assert kernel.sent[1][1].seq == seq


def test_busy_nack_on_non_request_ignored():
    sim, kernel, conn = build()
    conn.enqueue(msg(kind="accept", busy_retryable=False))
    sim.run(until=1.0)
    conn.handle_busy_nack(kernel.sent[0][1].seq)
    sim.run(until=3_000.0)
    assert len(kernel.sent) == 1  # no slow-retry path


def test_void_messages_skipped_at_pump():
    sim, kernel, conn = build()
    conn.enqueue(msg(void_check=lambda: True))
    live = msg()
    conn.enqueue(live)
    sim.run(until=1.0)
    assert len(kernel.sent) == 1
    assert kernel.sent[0][1] is live.packet or kernel.sent[0][1].tid == 1


def test_on_transmit_fires_once_at_first_send():
    sim, kernel, conn = build()
    fires = []
    conn.enqueue(msg(on_transmit=lambda: fires.append(sim.now)))
    sim.run(until=200_000.0)
    assert len(fires) == 1


def test_priority_swap_displaces_busy_parked_message():
    sim, kernel, conn = build()
    parked = msg(busy_retryable=True)
    conn.enqueue(parked)
    sim.run(until=1.0)
    conn.handle_busy_nack(kernel.sent[0][1].seq)
    # While parked, a priority DATA message takes over the channel.
    data = OutboundMessage(Packet(PacketType.DATA, tid=2, data=b"x"), "data")
    conn.enqueue_priority(data)
    sim.run(until=2.0)
    assert conn.outstanding is data
    assert conn.outbox[0] is parked
    # Ack the data; the parked request is re-pumped with a fresh seq.
    conn.handle_ack(data.packet.seq)
    sim.run(until=10_000.0)
    assert conn.outstanding is parked


def test_owed_ack_piggybacks_on_next_send():
    sim, kernel, conn = build()
    conn.note_owed_ack(0)
    conn.enqueue(msg())
    sim.run(until=1.0)
    assert kernel.sent[0][1].ack == 0
    # The deferred pure-ack timer was cancelled: no ACK packet follows.
    sim.run(until=50_000.0)
    acks = [p for _, p, _ in kernel.sent if p.ptype is PacketType.ACK]
    assert acks == []


def test_owed_ack_times_out_to_pure_ack():
    sim, kernel, conn = build()
    conn.note_owed_ack(1)
    sim.run(until=10_000.0)
    acks = [p for _, p, _ in kernel.sent if p.ptype is PacketType.ACK]
    assert len(acks) == 1
    assert acks[0].ack == 1


def test_suspend_owed_ack_holds_the_timer():
    sim, kernel, conn = build()
    conn.note_owed_ack(1)
    conn.suspend_owed_ack()
    sim.run(until=50_000.0)
    assert kernel.sent == []
    # The ack is still owed and can be taken for piggyback.
    assert conn.take_piggyback_ack() == (1, None)


def test_forget_owed_ack():
    sim, kernel, conn = build()
    conn.note_owed_ack(1)
    conn.forget_owed_ack(1)
    sim.run(until=50_000.0)
    assert kernel.sent == []
    assert conn.take_piggyback_ack() is None


def test_reset_clears_everything():
    sim, kernel, conn = build()
    conn.enqueue(msg())
    conn.enqueue(msg())
    conn.note_owed_ack(0)
    sim.run(until=1.0)
    conn.reset()
    assert conn.outstanding is None
    assert not conn.outbox
    assert conn.owed_ack is None
    assert conn.send_seq == 0
    assert not conn.heard_from_peer
