"""Crash semantics (§3.6): DIE, probes, stale ACCEPTs, node crashes."""

import pytest

from repro.core import (
    AcceptStatus,
    ClientProgram,
    KernelConfig,
    Network,
    RequestStatus,
)
from repro.core.patterns import make_well_known_pattern

from tests.conftest import make_pair

PATTERN = make_well_known_pattern(0o650)
RUN_US = 60_000_000.0


def fast_probe_config(**kwargs) -> KernelConfig:
    return KernelConfig(probe_interval_us=50_000.0, **kwargs)


class SilentServer(ClientProgram):
    """Advertises, never accepts; can die on request via a flag."""

    def __init__(self):
        self.arrivals = []

    def initialization(self, api, parent_mid):
        yield from api.advertise(PATTERN)

    def handler(self, api, event):
        if event.is_arrival:
            self.arrivals.append(event.asker)
        return
        yield  # pragma: no cover


def test_delivered_request_crashes_when_server_dies():
    net = Network(seed=2, config=fast_probe_config())
    server = SilentServer()

    def body(api, self):
        sig = yield from api.discover(PATTERN)
        completion = yield from api.b_signal(sig)
        return completion.status

    _, client = make_pair(net, server, body)
    # Kill the server client once the request has been delivered.
    net.sim.schedule(100_000.0, net.nodes[0].crash_client)
    net.run(until=RUN_US)
    assert client.result is RequestStatus.CRASHED


def test_request_to_dead_client_fails(network):
    # The server dies before the request is even issued; its kernel
    # remains alive and NACKs the unadvertised pattern.
    server = SilentServer()

    def body(api, self):
        yield api.compute(100_000)  # let the server die first
        completion = yield from api.b_signal(api.server_sig(0, PATTERN))
        return completion.status

    _, client = make_pair(network, server, body)
    network.sim.schedule(50_000.0, network.nodes[0].crash_client)
    network.run(until=RUN_US)
    assert client.result is RequestStatus.UNADVERTISED


def test_accept_of_stale_request_after_requester_reboot():
    # Requester's client crashes after its GET is delivered; a new client
    # boots on the same node.  The server's late data-carrying ACCEPT
    # must be told CRASHED (§3.6.1): the requester kernel's TID watermark
    # identifies the request as belonging to the dead incarnation.
    net = Network(seed=3, config=fast_probe_config())
    server = SilentServer()
    net.add_node(program=server, name="server")
    requester_node = net.add_node(name="requester")

    class FirstClient(ClientProgram):
        def task(self, api):
            sig = yield from api.discover(PATTERN)
            yield from api.get(sig, get=8)
            yield from api.serve_forever()

    requester_node.install_program(FirstClient(), boot_at_us=0.0)

    accept_status = []

    def crash_and_reboot():
        requester_node.crash_client()

        class SecondClient(ClientProgram):
            pass

        requester_node.client = None
        requester_node.install_program(
            SecondClient(), boot_at_us=net.sim.now + 1_000.0
        )

    net.sim.schedule(150_000.0, crash_and_reboot)

    def late_accept():
        sig = server.arrivals[0]
        kernel = net.nodes[0].kernel
        future = kernel.client_accept(sig, 0, put_data=b"too late")
        future.add_callback(lambda f: accept_status.append(f.value))

    net.sim.schedule(400_000.0, late_accept)
    net.run(until=RUN_US)
    assert accept_status == [AcceptStatus.CRASHED]


def test_node_crash_quiet_period_then_rejoin():
    cfg = fast_probe_config()
    net = Network(seed=4, config=cfg)
    from tests.conftest import ECHO_PATTERN, EchoServer

    server_node = net.add_node(program=EchoServer(), name="server")

    results = []

    class Retrier(ClientProgram):
        def task(self, api):
            sig = api.server_sig(0, ECHO_PATTERN)
            while True:
                completion = yield from api.b_signal(sig)
                results.append((api.now, completion.status))
                if (
                    completion.status is RequestStatus.COMPLETED
                    and api.now > 1_500_000.0
                ):
                    break
                yield api.compute(250_000)
            yield from api.serve_forever()

    net.add_node(program=Retrier(), boot_at_us=100.0)

    def crash_then_restore():
        server_node.crash()
        # After the quiet period the kernel rejoins with boot patterns;
        # reinstall an echo client shortly after recovery.
        quiet = cfg.deltat.crash_quiet_us
        server_node.client = None
        server_node.install_program(
            EchoServer(), boot_at_us=net.sim.now + quiet + 10_000.0
        )

    net.sim.schedule(300_000.0, crash_then_restore)
    net.run(until=RUN_US)
    statuses = [s for _, s in results]
    # Communication resumes after the quiet period with no explicit
    # reconnection (§3.6): the last transaction succeeds.  Depending on
    # timing the in-outage request either failed (CRASHED/UNADVERTISED)
    # or was masked entirely by retransmission -- both are legal; what is
    # not legal is a hang.
    assert statuses and statuses[-1] is RequestStatus.COMPLETED
    assert net.sim.trace.count("kernel.crash") == 1
    assert net.sim.trace.count("kernel.recovered") == 1
    assert net.sim.trace.count("conn.retransmit") >= 1


def test_die_clears_advertised_patterns(network):
    server = SilentServer()

    def body(api, self):
        # First discover succeeds...
        sig = yield from api.discover(PATTERN)
        # ...then the server dies; subsequent discovers find nothing.
        yield api.compute(200_000)
        mids = yield from api.discover_all(PATTERN)
        return sig.mid, mids

    _, client = make_pair(network, server, body)
    network.sim.schedule(100_000.0, network.nodes[0].crash_client)
    network.run(until=RUN_US)
    mid, mids = client.result
    assert mid == 0
    assert mids == []


def test_probe_counts_are_observable():
    # With a short probe interval, a delivered-but-unaccepted request
    # produces PROBE traffic the requester can survive.
    net = Network(seed=6, config=fast_probe_config())
    server = SilentServer()

    def body(api, self):
        sig = yield from api.discover(PATTERN)
        tid = yield from api.signal(sig)
        yield api.compute(500_000)  # several probe rounds
        status = yield from api.cancel(tid)
        return status

    _, client = make_pair(net, server, body)
    net.run(until=RUN_US)
    probes = net.sim.trace.counters.get("kernel.tx", 0)
    assert client.result.name == "SUCCESS"
    probe_packets = [
        r
        for r in net.sim.trace.records
        if r.category == "kernel.tx" and r.get("ptype") == "probe"
    ]
    assert len(probe_packets) >= 2  # probing happened and was answered
