"""Unit tests for buffers, signatures, timing model, kernel config, boot helpers."""

import pytest

from repro.core.boot import (
    ProgramImage,
    boot_pattern_for,
    mids_from_bytes,
    mids_to_bytes,
    pattern_from_bytes,
    pattern_to_bytes,
)
from repro.core.buffers import Buffer, buffer_or_nil
from repro.core.config import KernelConfig, TimingModel
from repro.core.patterns import is_reserved
from repro.core.signatures import RequesterSignature, ServerSignature


# -- Buffer -----------------------------------------------------------------


def test_buffer_write_truncates_to_capacity():
    buf = Buffer(3)
    stored = buf.write(b"abcdef")
    assert stored == 3
    assert buf.data == b"abc"


def test_buffer_nil_inhibits_transfer():
    nil = Buffer.nil()
    assert nil.capacity == 0
    assert nil.write(b"xyz") == 0
    assert nil.data == b""


def test_buffer_from_bytes_exact():
    buf = Buffer.from_bytes(b"hello")
    assert buf.capacity == 5
    assert buf.data == b"hello"


def test_buffer_for_words():
    assert Buffer.for_words(100).capacity == 200


def test_buffer_invalid_construction():
    with pytest.raises(ValueError):
        Buffer(-1)
    with pytest.raises(ValueError):
        Buffer(1, b"too long")


def test_buffer_or_nil():
    assert buffer_or_nil(None).capacity == 0
    buf = Buffer(4)
    assert buffer_or_nil(buf) is buf


def test_buffer_len_and_clear():
    buf = Buffer.from_bytes(b"xy")
    assert len(buf) == 2
    buf.clear()
    assert len(buf) == 0


# -- signatures -----------------------------------------------------------------


def test_signatures_hashable_and_distinct():
    s1 = ServerSignature(1, 0o7)
    s2 = ServerSignature(1, 0o7)
    assert s1 == s2 and hash(s1) == hash(s2)
    assert ServerSignature(2, 0o7) != s1
    r1 = RequesterSignature(1, 5)
    assert r1 == RequesterSignature(1, 5)
    assert r1 != RequesterSignature(1, 6)


# -- timing model ------------------------------------------------------------------


def test_timing_defaults_reproduce_breakdown_table():
    tm = TimingModel()
    # Two-packet SIGNAL: four packet-handling steps across two kernels.
    protocol = 4 * tm.protocol_send_us  # send == recv cost by default
    connection = 4 * tm.connection_timer_us
    retransmit = 2 * tm.retransmit_timer_us
    context = 2 * tm.context_switch_us
    client = 2 * tm.client_overhead_us()
    assert protocol == pytest.approx(2_000.0)
    assert connection == pytest.approx(1_000.0)
    assert retransmit == pytest.approx(700.0)
    assert context == pytest.approx(800.0)
    assert client == pytest.approx(2_200.0)


def test_per_word_cost_calibration():
    tm = TimingModel()
    # 12 us per word per copy; two copies plus 16 us of wire = ~40 us/word.
    word = tm.word_bytes
    assert 2 * tm.copy_cost_us(word) + word * 8.0 == pytest.approx(40.0)


def test_kernel_config_validation():
    with pytest.raises(ValueError):
        KernelConfig(max_requests=0)
    with pytest.raises(ValueError):
        KernelConfig(max_message_bytes=-1)


# -- boot helpers --------------------------------------------------------------------


def test_boot_pattern_is_reserved_and_type_specific():
    a = boot_pattern_for("pdp11")
    b = boot_pattern_for("vax750")
    assert is_reserved(a) and is_reserved(b)
    assert a != b
    assert boot_pattern_for("pdp11") == a  # deterministic


def test_pattern_round_trip_encoding():
    pattern = boot_pattern_for("anything")
    assert pattern_from_bytes(pattern_to_bytes(pattern)) == pattern


def test_pattern_from_short_bytes_rejected():
    with pytest.raises(ValueError):
        pattern_from_bytes(b"\x00\x01")


def test_mids_round_trip():
    mids = [0, 1, 513]
    assert mids_from_bytes(mids_to_bytes(mids)) == mids


def test_mids_from_odd_bytes_drops_tail():
    assert mids_from_bytes(b"\x00\x01\x00") == [1]


def test_program_image_chunks_cover_size():
    image = ProgramImage("p", program_factory=object, size_bytes=2500, chunk_bytes=1024)
    chunks = list(image.chunks())
    assert chunks == [(0, 1024), (1024, 1024), (2048, 452)]
    assert sum(n for _, n in chunks) == image.size_bytes
