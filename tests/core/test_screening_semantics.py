"""Pattern-screening semantics (§3.4.1, §6.12).

The subtle rule: "Once a REQUEST has been delivered to the server
handler, screening on the pattern is no longer applied.  Thus,
UNADVERTISE on a pattern will not affect a REQUEST that has arrived at
the server handler but not yet been ACCEPTED."  Plus the idioms §6.12
builds on screening: once-only service and load control.
"""

from repro.core import (
    AcceptStatus,
    ClientProgram,
    Network,
    RequestStatus,
)
from repro.core.patterns import make_well_known_pattern

from tests.conftest import make_pair

PATTERN = make_well_known_pattern(0o602)
RUN_US = 30_000_000.0


def test_unadvertise_does_not_affect_delivered_request(network):
    outcome = {}

    class Server(ClientProgram):
        def initialization(self, api, parent_mid):
            yield from api.advertise(PATTERN)

        def handler(self, api, event):
            if event.is_arrival:
                self.asker = event.asker
                # Unadvertise *before* accepting: must not matter.
                yield from api.unadvertise(PATTERN)

        def task(self, api):
            yield from api.poll(lambda: hasattr(self, "asker"))
            yield api.compute(20_000)
            status = yield from api.accept_signal(self.asker)
            outcome["accept"] = status
            yield from api.serve_forever()

    def body(api, self):
        completion = yield from api.b_signal(api.server_sig(0, PATTERN))
        return completion.status

    _, client = make_pair(network, Server(), body)
    network.run(until=RUN_US)
    assert client.result is RequestStatus.COMPLETED
    assert outcome["accept"] is AcceptStatus.SUCCESS


def test_once_only_service(network):
    """A server that unadvertises on first arrival serves exactly one
    requester; the rest are told UNADVERTISED (§6.12)."""

    class OneShot(ClientProgram):
        def initialization(self, api, parent_mid):
            yield from api.advertise(PATTERN)

        def handler(self, api, event):
            if event.is_arrival:
                yield from api.unadvertise(PATTERN)
                yield from api.accept_current_signal()

    results = {}

    class Contender(ClientProgram):
        def __init__(self, name):
            self.name = name

        def task(self, api):
            completion = yield from api.b_signal(api.server_sig(0, PATTERN))
            results[self.name] = completion.status
            yield from api.serve_forever()

    network.add_node(program=OneShot())
    network.add_node(program=Contender("a"), boot_at_us=100.0)
    network.add_node(program=Contender("b"), boot_at_us=40_000.0)
    network.run(until=RUN_US)
    assert results["a"] is RequestStatus.COMPLETED
    assert results["b"] is RequestStatus.UNADVERTISED


def test_load_control_via_unadvertise_and_discover():
    """§6.12: a swamped server UNADVERTISEs its pattern, steering
    DISCOVER traffic to a replica using the same pattern."""
    net = Network(seed=19)

    class Replica(ClientProgram):
        def __init__(self, advertise=True):
            self.should_advertise = advertise
            self.served = 0

        def initialization(self, api, parent_mid):
            if self.should_advertise:
                yield from api.advertise(PATTERN)

        def handler(self, api, event):
            if event.is_arrival:
                self.served += 1
                yield from api.accept_current_signal()
                if self.served >= 2:
                    # Swamped: shed load.
                    yield from api.unadvertise(PATTERN)

    first, second = Replica(), Replica()
    net.add_node(program=first)
    net.add_node(program=second)
    found = []

    class Client(ClientProgram):
        def task(self, api):
            for _ in range(4):
                mids = yield from api.discover_all(PATTERN, max_replies=4)
                target = mids[0]
                found.append(target)
                yield from api.b_signal(api.server_sig(target, PATTERN))
                yield api.compute(10_000)
            yield from api.serve_forever()

    net.add_node(program=Client(), boot_at_us=100.0)
    net.run(until=RUN_US)
    # The first two went to MID 0; once it shed load, DISCOVER returned
    # only MID 1.
    assert found[:2] == [0, 0]
    assert found[2:] == [1, 1]
    assert first.served == 2
    assert second.served == 2


def test_same_pattern_on_multiple_servers_is_legal(network):
    """'It is perfectly valid for several clients to ADVERTISE the same
    pattern' (§3.4.2): direct requests reach the named MID only."""

    class Named(ClientProgram):
        def __init__(self):
            self.hits = 0

        def initialization(self, api, parent_mid):
            yield from api.advertise(PATTERN)

        def handler(self, api, event):
            if event.is_arrival:
                self.hits += 1
                yield from api.accept_current_signal()

    a, b = Named(), Named()
    network.add_node(program=a)
    network.add_node(program=b)
    done = {}

    class Client(ClientProgram):
        def task(self, api):
            yield from api.b_signal(api.server_sig(1, PATTERN))
            done["ok"] = True
            yield from api.serve_forever()

    network.add_node(program=Client(), boot_at_us=100.0)
    network.run(until=RUN_US)
    assert done["ok"]
    assert (a.hits, b.hits) == (0, 1)


def test_request_argument_screening_is_client_business(network):
    """The kernel passes the one-word argument through untouched; the
    client screens on it (§6.11) -- here, rejecting odd arguments."""

    class Picky(ClientProgram):
        def initialization(self, api, parent_mid):
            yield from api.advertise(PATTERN)

        def handler(self, api, event):
            if event.is_arrival:
                if event.arg % 2 == 1:
                    yield from api.reject()
                else:
                    yield from api.accept_current_signal()

    def body(api, self):
        even = yield from api.b_signal(api.server_sig(0, PATTERN), arg=4)
        odd = yield from api.b_signal(api.server_sig(0, PATTERN), arg=5)
        return even.status, odd.status

    _, client = make_pair(network, Picky(), body)
    network.run(until=RUN_US)
    assert client.result == (RequestStatus.COMPLETED, RequestStatus.REJECTED)
