"""Edge-case tests for the uniprogrammed client processor."""

import pytest

from repro.core import Buffer, ClientProgram, Network, RequestStatus
from repro.core.patterns import make_well_known_pattern

from tests.conftest import ECHO_PATTERN, EchoServer

PATTERN = make_well_known_pattern(0o604)
RUN_US = 30_000_000.0


def test_handler_pauses_task(network):
    """While the handler runs, the task makes no progress."""
    timeline = []

    class Busy(ClientProgram):
        def initialization(self, api, parent_mid):
            yield from api.advertise(PATTERN)

        def handler(self, api, event):
            if event.is_arrival:
                timeline.append(("handler_start", api.now))
                yield api.compute(50_000)
                yield from api.accept_current_signal()
                timeline.append(("handler_end", api.now))

        def task(self, api):
            while True:
                timeline.append(("tick", api.now))
                yield api.compute(10_000)

    class Pinger(ClientProgram):
        def task(self, api):
            yield api.compute(30_000)
            yield from api.b_signal(api.server_sig(0, PATTERN))
            yield from api.serve_forever()

    network.add_node(program=Busy())
    network.add_node(program=Pinger(), boot_at_us=50.0)
    network.run(until=300_000.0)
    start = next(t for kind, t in timeline if kind == "handler_start")
    end = next(t for kind, t in timeline if kind == "handler_end")
    ticks_during = [
        t for kind, t in timeline if kind == "tick" and start < t < end
    ]
    assert ticks_during == []
    # And the task resumed afterwards.
    assert any(kind == "tick" and t > end for kind, t in timeline)


def test_blocking_request_in_initialization(network):
    """A B_GET inside Initialization (the consumer of §4.4.1 does a
    DISCOVER there) must work via the detach mechanism, and the task
    must only start after the continuation finishes."""
    order = []

    class DiscoveringClient(ClientProgram):
        def initialization(self, api, parent_mid):
            order.append("init_start")
            server = yield from api.discover(ECHO_PATTERN)
            self.server = server
            order.append("init_done")

        def task(self, api):
            order.append("task_start")
            completion = yield from api.b_signal(self.server)
            order.append(("signal", completion.status))
            yield from api.serve_forever()

    network.add_node(program=EchoServer())
    network.add_node(program=DiscoveringClient(), boot_at_us=100.0)
    network.run(until=RUN_US)
    assert order[0] == "init_start"
    assert order[1] == "init_done"
    assert order[2] == "task_start"
    assert order[3] == ("signal", RequestStatus.COMPLETED)


def test_arrivals_during_detached_continuation_are_serviced(network):
    """While a handler continuation (blocking request) is parked at task
    level, new arrivals still invoke the handler."""
    log = []

    class Relay(ClientProgram):
        def initialization(self, api, parent_mid):
            yield from api.advertise(PATTERN)

        def handler(self, api, event):
            if not event.is_arrival:
                return
            if event.arg == 1:
                log.append("slow_start")
                # Blocking request from the handler: detaches.
                completion = yield from api.b_signal(
                    api.server_sig(1, ECHO_PATTERN)
                )
                log.append(("slow_done", completion.status))
                yield from api.accept_signal(self.first_asker)
            else:
                log.append("fast")
                yield from api.accept_current_signal()

        def initialization_extra(self):
            pass

    relay = Relay()

    class Echo2(EchoServer):
        pass

    class Driver(ClientProgram):
        def task(self, api):
            # First signal triggers the slow (detaching) path...
            relay.first_asker = None
            tid = yield from api.signal(api.server_sig(0, PATTERN), arg=1)
            future = api.watch_completion(tid)
            yield api.compute(2_000)
            # ...and a second signal arrives while it is detached.
            fast = yield from api.b_signal(api.server_sig(0, PATTERN), arg=2)
            log.append(("fast_status", fast.status))
            yield from api.wait_completion(tid, future)
            yield from api.serve_forever()

    # Relay needs the asker of the slow request; stash it via handler.
    original_handler = Relay.handler

    def handler(self, api, event):
        if event.is_arrival and event.arg == 1:
            self.first_asker = event.asker
        result = yield from original_handler(self, api, event)

    Relay.handler = handler

    network.add_node(program=relay)
    network.add_node(program=Echo2(), boot_at_us=30.0)
    network.add_node(program=Driver(), boot_at_us=60.0)
    network.run(until=RUN_US)
    assert "slow_start" in log
    assert "fast" in log
    assert ("fast_status", RequestStatus.COMPLETED) in log
    # The fast arrival was handled before the slow continuation finished.
    assert log.index("fast") < log.index(("slow_done", RequestStatus.COMPLETED))


def test_kill_during_handler_stops_everything(network):
    progress = []

    class Victim(ClientProgram):
        def initialization(self, api, parent_mid):
            yield from api.advertise(PATTERN)

        def handler(self, api, event):
            if event.is_arrival:
                progress.append("handler_entered")
                yield api.compute(500_000)
                progress.append("handler_survived")  # must never happen

        def task(self, api):
            while True:
                yield api.compute(10_000)
                progress.append("tick")

    victim_node = network.add_node(program=Victim())

    class Pinger(ClientProgram):
        def task(self, api):
            yield from api.signal(api.server_sig(0, PATTERN))
            yield from api.serve_forever()

    network.add_node(program=Pinger(), boot_at_us=50.0)
    network.sim.schedule(100_000.0, victim_node.crash_client)
    network.run(until=1_000_000.0)
    assert "handler_entered" in progress
    assert "handler_survived" not in progress
    ticks_after = [p for p in progress if p == "tick"]
    last_len = len(progress)
    network.run(until=2_000_000.0)
    assert len(progress) == last_len  # nothing moved after the kill


def test_double_boot_rejected(network):
    node = network.add_node(program=EchoServer())
    network.run(until=10_000.0)
    with pytest.raises(RuntimeError):
        node.client.boot()


def test_repr_reflects_state(network):
    node = network.add_node(program=EchoServer())
    network.run(until=10_000.0)
    assert "task" in repr(node.client)
    node.crash_client()
    # ClientProcessor.kill leaves a dead processor behind.
    assert node.kernel.client is None
