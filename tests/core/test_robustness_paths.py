"""Robustness: stray/stale packets must never crash or confuse a kernel."""

import pytest

from repro.core import ClientProgram, Network, RequestStatus
from repro.core.patterns import make_well_known_pattern
from repro.transport.packet import NackCode, Packet, PacketType

from tests.conftest import ECHO_PATTERN, EchoServer

PATTERN = make_well_known_pattern(0o601)
RUN_US = 30_000_000.0


def inject(net, src_node, dst_mid, packet):
    """Send a raw packet from one node's kernel, bypassing its logic."""
    src_node.kernel.nic.send(dst_mid, packet, payload_bytes=packet.data_bytes)


def test_stray_ack_ignored(network):
    server = network.add_node(program=EchoServer())
    other = network.add_node()
    network.run(until=10_000.0)
    inject(network, other, 0, Packet(PacketType.ACK, ack=1))
    network.run(until=50_000.0)  # must not raise


def test_stray_error_nacks_ignored(network):
    network.add_node(program=EchoServer())
    other = network.add_node()
    network.run(until=10_000.0)
    for code in (NackCode.UNADVERTISED, NackCode.CANCELLED, NackCode.CRASHED):
        inject(
            network, other, 0,
            Packet(PacketType.NACK, nack_code=code, tid=999, ack=None),
        )
    network.run(until=50_000.0)


def test_stray_busy_nack_ignored(network):
    network.add_node(program=EchoServer())
    other = network.add_node()
    network.run(until=10_000.0)
    inject(
        network, other, 0,
        Packet(PacketType.NACK, nack_code=NackCode.BUSY, nacked_seq=0),
    )
    network.run(until=50_000.0)


def test_probe_for_unknown_request_reports_dead(network):
    node = network.add_node(program=EchoServer())
    other = network.add_node()
    network.run(until=10_000.0)
    replies = []
    original = other.kernel._process_packet

    def spy(src, packet, arrival_backlog_us=0.0, fid=None):
        if packet.ptype is PacketType.PROBE_REPLY:
            replies.append(packet.arg)
        original(src, packet, arrival_backlog_us, fid)

    other.kernel._process_packet = spy
    inject(network, other, 0, Packet(PacketType.PROBE, tid=424242))
    network.run(until=100_000.0)
    assert replies == [0]  # dead


def test_stale_discover_reply_ignored(network):
    network.add_node(program=EchoServer())
    other = network.add_node()
    network.run(until=10_000.0)
    inject(
        network, other, 0,
        Packet(PacketType.DISCOVER_REPLY, reply_mid=5, query_token=777),
    )
    network.run(until=50_000.0)


def test_cancel_reply_for_unknown_tid_ignored(network):
    network.add_node(program=EchoServer())
    other = network.add_node()
    network.run(until=10_000.0)
    inject(
        network, other, 0,
        Packet(PacketType.CANCEL_REPLY, tid=31337, arg=1),
    )
    network.run(until=50_000.0)


def test_data_packet_with_no_pending_accept_ignored(network):
    network.add_node(program=EchoServer())
    other = network.add_node()
    network.run(until=10_000.0)
    inject(
        network, other, 0,
        Packet(PacketType.DATA, tid=5, data=b"orphan", seq=0),
    )
    network.run(until=50_000.0)


def test_forged_accept_for_never_issued_tid_nacked(network):
    # A malicious client ACCEPTs a guessed signature; the victim's kernel
    # NACKs it CANCELLED (tid above the watermark but unknown).
    victim_node = network.add_node(program=EchoServer())
    attacker = network.add_node()
    network.run(until=10_000.0)
    seen = []
    original = attacker.kernel._process_packet

    def spy(src, packet, arrival_backlog_us=0.0, fid=None):
        if packet.ptype is PacketType.NACK:
            seen.append(packet.nack_code)
        original(src, packet, arrival_backlog_us, fid)

    attacker.kernel._process_packet = spy
    inject(
        network, attacker, 0,
        Packet(PacketType.ACCEPT, tid=10**6, arg=0, seq=0),
    )
    network.run(until=100_000.0)
    assert NackCode.CANCELLED in seen


def test_checkers_idiom_async_update(network):
    """§6.6: a handler silently updates a variable the task uses -- the
    reason SODA provides asynchronous receipt."""
    VALUE = make_well_known_pattern(0o606)
    observed = []

    class Searcher(ClientProgram):
        def initialization(self, api, parent_mid):
            self.best = 100
            yield from api.advertise(VALUE)

        def handler(self, api, event):
            if event.is_arrival:
                self.best = event.arg  # no polling anywhere
                yield from api.accept_current_signal()

        def task(self, api):
            # A compute loop that picks up updates with zero polling
            # overhead in the loop body.
            for _ in range(200):
                observed.append(self.best)
                yield api.compute(1_000)
            yield from api.serve_forever()

    class Improver(ClientProgram):
        def task(self, api):
            for value in (50, 20, 7):
                yield api.compute(30_000)
                yield from api.b_signal(api.server_sig(0, VALUE), arg=value)
            yield from api.serve_forever()

    network.add_node(program=Searcher())
    network.add_node(program=Improver(), boot_at_us=100.0)
    network.run(until=RUN_US)
    assert observed[0] == 100
    assert 7 in observed
    # Updates arrive monotonically in this script.
    distinct = sorted(set(observed), reverse=True)
    assert distinct == [100, 50, 20, 7]
