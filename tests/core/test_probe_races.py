"""Probe-path races (§3.6.2): lost replies, in-flight ACCEPTs, resets.

Satellite coverage for the recovery PR: the probe failure counter must
be *consecutive* (a successful reply resets it), an ACCEPT landing
while a probe is outstanding must win cleanly, and a probe racing a
client reset must distinguish "provably unexecuted" (arg=2) from
"memory lost" (arg=0).
"""

from repro.core import ClientProgram, KernelConfig, Network, RequestStatus
from repro.core.patterns import make_well_known_pattern

from tests.conftest import RecordingServer, ScriptedClient

PATTERN = make_well_known_pattern(0o651)
RUN_US = 60_000_000.0


def fast_probe_config(**kwargs) -> KernelConfig:
    return KernelConfig(probe_interval_us=50_000.0, **kwargs)


def is_probe_reply(frame) -> bool:
    ptype = getattr(frame.payload, "ptype", None)
    return ptype is not None and ptype.value == "probe_reply"


class Sponge(RecordingServer):
    """RecordingServer on this module's pattern (never accepts)."""

    def __init__(self):
        super().__init__(pattern=PATTERN)


def signal_then_cancel(wait_us):
    def body(api, self):
        sig = yield from api.discover(PATTERN)
        tid = yield from api.signal(sig)
        yield api.compute(wait_us)
        status = yield from api.cancel(tid)
        return status

    return body


def make_net(seed, body, server=None):
    net = Network(seed=seed, config=fast_probe_config())
    server = server if server is not None else Sponge()
    net.add_node(program=server, name="server")
    client = ScriptedClient(body)
    net.add_node(program=client, name="client", boot_at_us=100.0)
    return net, server, client


# ---------------------------------------------------------------------------
# Consecutive-failure threshold (probe_failures resets on success).


def test_lost_probe_replies_below_threshold_do_not_crash():
    # Drop 3 consecutive probe replies (threshold is 5), then let them
    # through: the successful reply must reset the counter to zero and
    # the request stays DELIVERED — observable because the client can
    # still CANCEL it much later.
    net, server, client = make_net(2, signal_then_cancel(2_000_000.0))
    net.faults.drop_matching(is_probe_reply, count=3)
    checked = []

    def snapshot_counter():
        record = next(iter(net.nodes[1].kernel.requests.values()), None)
        checked.append(None if record is None else record.probe_failures)

    # Well after the 3 losses and the first successful round.
    net.sim.schedule(800_000.0, snapshot_counter)
    net.run(until=RUN_US)
    assert checked == [0], "probe_failures must reset on a good reply"
    assert client.result.name == "SUCCESS"
    assert net.sim.trace.count("kernel.crash_report") == 0


def test_non_consecutive_losses_never_accumulate():
    # 4 lost replies, a good round, then 4 more lost: 8 total losses but
    # never 5 consecutive — the requester must not declare a crash.
    net, server, client = make_net(3, signal_then_cancel(3_000_000.0))
    net.faults.drop_matching(is_probe_reply, count=4)
    net.faults.drop_matching(is_probe_reply, count=4, skip=1)
    net.run(until=RUN_US)
    assert client.result.name == "SUCCESS"
    assert net.sim.trace.count("kernel.crash_report") == 0


def test_five_consecutive_lost_replies_declare_crash():
    # The threshold itself: 5 straight losses exhaust the probe budget
    # and the request fails CRASHED with the probe_timeout reason —
    # ambiguous, because a reply (not the server) may have been lost.
    def body(api, self):
        sig = yield from api.discover(PATTERN)
        completion = yield from api.b_signal(sig)
        return completion

    net, server, client = make_net(4, body)
    net.faults.drop_matching(is_probe_reply, count=5)
    net.run(until=RUN_US)
    completion = client.result
    assert completion.status is RequestStatus.CRASHED
    assert completion.not_executed is None  # ambiguous, not provable
    reports = [
        r
        for r in net.sim.trace.records
        if r.category == "kernel.crash_report"
    ]
    assert [r["reason"] for r in reports] == ["probe_timeout"]


# ---------------------------------------------------------------------------
# ACCEPT racing an in-flight probe.


def test_accept_arriving_while_probe_in_flight():
    # Arrange a probe whose reply is lost, then ACCEPT inside the
    # 60ms reply-deadline window: the ACCEPT must complete the request
    # and cleanly retire the outstanding probe timer (the liveness
    # checker would flag a leak; a stale timeout would double-complete).
    def body(api, self):
        sig = yield from api.discover(PATTERN)
        completion = yield from api.b_signal(sig)
        return completion

    net, server, client = make_net(5, body)
    probe_seen = []

    def watch(record):
        if (
            record.category == "kernel.tx"
            and record.get("ptype") == "probe"
            and not probe_seen
        ):
            probe_seen.append(record.time)
            net.faults.drop_matching(is_probe_reply, count=1)
            net.sim.schedule(5_000.0, accept_now)

    def accept_now():
        sig = server.events[0].asker
        net.nodes[0].kernel.client_accept(sig, 0)

    net.sim.trace.add_sink(watch)
    net.run(until=RUN_US)
    assert probe_seen, "the probe under test never fired"
    assert client.result.status is RequestStatus.COMPLETED
    assert net.sim.trace.count("kernel.crash_report") == 0
    # The requester's record retired; no probe machinery left behind.
    record = next(
        r
        for r in net.nodes[1].kernel.requests.values()
        if r.server_sig.mid == 0
    )
    assert record.state.value == "completed"
    assert record.probe_timer is None and record.probe_deadline is None


# ---------------------------------------------------------------------------
# Probe vs. client reset (§3.6.1): arg=2 proof vs arg=0 ambiguity.


def test_probe_after_client_reset_proves_non_execution():
    # The server's client DIEs holding the REQUEST DELIVERED; a new
    # client boots on the same (still-running) kernel.  The kernel
    # remembers the un-ACCEPTed delivery across the reset and answers
    # probes with arg=2: CRASHED, provably never executed.
    def body(api, self):
        sig = yield from api.discover(PATTERN)
        completion = yield from api.b_signal(sig)
        return completion

    net, server, client = make_net(6, body)
    server_node = net.nodes[0]

    def reset_and_replace():
        server_node.crash_client()
        server_node.client = None
        server_node.install_program(
            Sponge(), boot_at_us=net.sim.now + 5_000.0
        )

    net.sim.schedule(200_000.0, reset_and_replace)
    net.run(until=RUN_US)
    completion = client.result
    assert completion.status is RequestStatus.CRASHED
    assert completion.not_executed is True
    reports = [
        r
        for r in net.sim.trace.records
        if r.category == "kernel.crash_report"
    ]
    assert [r["reason"] for r in reports] == ["probe_crashed_unaccepted"]


def test_probe_after_power_failure_is_ambiguous():
    # A full node crash wipes the crashed-unaccepted memory with the
    # rest of the kernel: once it recovers, probes for the lost delivery
    # answer arg=0 (denied) and the failure stays ambiguous.
    def body(api, self):
        sig = yield from api.discover(PATTERN)
        completion = yield from api.b_signal(sig)
        return completion

    net, server, client = make_net(7, body)
    net.sim.schedule(200_000.0, net.nodes[0].crash)
    net.run(until=RUN_US)
    completion = client.result
    assert completion.status is RequestStatus.CRASHED
    assert completion.not_executed is None
    reports = {
        r["reason"]
        for r in net.sim.trace.records
        if r.category == "kernel.crash_report"
    }
    assert reports <= {"probe_timeout", "probe_denied"}
    assert reports, "the failure must surface as a crash report"
