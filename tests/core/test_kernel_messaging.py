"""Behavioural tests for the message-passing primitives (§3.3, §3.7).

These run complete two/three-node networks and assert on what client
programs observe: statuses, transferred bytes, ordering, and limits.
"""

import pytest

from repro.core import (
    AcceptStatus,
    Buffer,
    ClientProgram,
    KernelConfig,
    Network,
    RequestStatus,
)
from repro.core.errors import TooManyRequestsError
from repro.core.patterns import make_well_known_pattern
from repro.net.errors import FaultPlan

from tests.conftest import ECHO_PATTERN, EchoServer, ScriptedClient, make_pair

RUN_US = 10_000_000.0


def test_b_signal_success(network):
    def body(api, self):
        server = yield from api.discover(ECHO_PATTERN)
        completion = yield from api.b_signal(server)
        return completion.status

    _, client = make_pair(network, EchoServer(), body)
    network.run(until=RUN_US)
    assert client.result is RequestStatus.COMPLETED


def test_b_put_delivers_data(network):
    payload = bytes(range(64))

    def body(api, self):
        server = yield from api.discover(ECHO_PATTERN)
        completion = yield from api.b_put(server, put=payload)
        return completion

    server, client = make_pair(network, EchoServer(), body)
    network.run(until=RUN_US)
    assert client.result.status is RequestStatus.COMPLETED
    assert server.received == [payload]
    assert client.result.taken_put == len(payload)


def test_b_get_retrieves_data(network):
    def body(api, self):
        server = yield from api.discover(ECHO_PATTERN)
        buf = Buffer(32)
        completion = yield from api.b_get(server, get=buf)
        return buf.data, completion.taken_get

    server = EchoServer(greeting=b"greetings!")
    _, client = make_pair(network, server, body)
    network.run(until=RUN_US)
    data, taken = client.result
    assert data == b"greetings!"
    assert taken == len(b"greetings!")


def test_b_exchange_both_directions(network):
    def body(api, self):
        server = yield from api.discover(ECHO_PATTERN)
        buf = Buffer(32)
        completion = yield from api.b_exchange(server, put=b"outbound", get=buf)
        return buf.data, completion

    server = EchoServer(greeting=b"inbound")
    _, client = make_pair(network, server, body)
    network.run(until=RUN_US)
    data, completion = client.result
    assert data == b"inbound"
    assert server.received == [b"outbound"]
    assert completion.taken_put == 8
    assert completion.taken_get == 7


def test_accept_argument_reaches_completion(network):
    PATTERN = make_well_known_pattern(0o777)

    class ArgServer(ClientProgram):
        def initialization(self, api, parent_mid):
            yield from api.advertise(PATTERN)

        def handler(self, api, event):
            if event.is_arrival:
                yield from api.accept_current_signal(arg=event.arg * 2)

    def body(api, self):
        server = yield from api.discover(PATTERN)
        completion = yield from api.b_signal(server, arg=21)
        return completion.arg

    _, client = make_pair(network, ArgServer(), body)
    network.run(until=RUN_US)
    assert client.result == 42


def test_reject_maps_to_rejected_status(network):
    PATTERN = make_well_known_pattern(0o770)

    class Rejecting(ClientProgram):
        def initialization(self, api, parent_mid):
            yield from api.advertise(PATTERN)

        def handler(self, api, event):
            if event.is_arrival:
                yield from api.reject()

    def body(api, self):
        server = yield from api.discover(PATTERN)
        completion = yield from api.b_put(server, put=b"data")
        return completion

    _, client = make_pair(network, Rejecting(), body)
    network.run(until=RUN_US)
    assert client.result.status is RequestStatus.REJECTED
    assert client.result.rejected


def test_accept_with_smaller_buffer_truncates(network):
    PATTERN = make_well_known_pattern(0o771)
    seen = {}

    class SmallBuffer(ClientProgram):
        def initialization(self, api, parent_mid):
            yield from api.advertise(PATTERN)

        def handler(self, api, event):
            if event.is_arrival:
                buf = Buffer(4)  # smaller than the requester's PUT
                yield from api.accept_current_put(get=buf)
                seen["data"] = buf.data

    def body(api, self):
        server = yield from api.discover(PATTERN)
        completion = yield from api.b_put(server, put=b"0123456789")
        return completion

    _, client = make_pair(network, SmallBuffer(), body)
    network.run(until=RUN_US)
    assert seen["data"] == b"0123"
    assert client.result.taken_put == 4


def test_unadvertised_pattern_fails_request(network):
    GHOST = make_well_known_pattern(0o666)

    def body(api, self):
        # Node 0 exists (EchoServer) but never advertised GHOST.
        completion = yield from api.b_signal(api.server_sig(0, GHOST))
        return completion.status

    _, client = make_pair(network, EchoServer(), body)
    network.run(until=RUN_US)
    assert client.result is RequestStatus.UNADVERTISED


def test_request_to_nonexistent_machine_fails(network):
    def body(api, self):
        completion = yield from api.b_signal(api.server_sig(77, ECHO_PATTERN))
        return completion.status

    _, client = make_pair(network, EchoServer(), body)
    network.run(until=RUN_US)
    # Never heard from MID 77 at all: reported as UNADVERTISED (§3.3.1).
    assert client.result is RequestStatus.UNADVERTISED


def test_requests_delivered_in_issue_order(network):
    PATTERN = make_well_known_pattern(0o772)
    arrivals = []

    class Recorder(ClientProgram):
        def initialization(self, api, parent_mid):
            yield from api.advertise(PATTERN)

        def handler(self, api, event):
            if event.is_arrival:
                arrivals.append(event.arg)
                yield from api.accept_current_signal()

    def body(api, self):
        server = api.server_sig(0, PATTERN)
        tids = []
        for i in range(3):
            tid = yield from api.signal(server, arg=i)
            tids.append(tid)
        # Wait for all three completions.
        done = []
        self.completions = done
        yield from api.poll(lambda: len(arrivals) >= 3)
        return tids

    _, client = make_pair(network, Recorder(), body)
    network.run(until=RUN_US)
    assert arrivals == [0, 1, 2]


def test_maxrequests_enforced(network):
    def body(api, self):
        server = api.server_sig(0, ECHO_PATTERN)
        # max_requests defaults to 3; the 4th must fail.
        for i in range(3):
            yield from api.signal(server, arg=i)
        try:
            yield from api.signal(server, arg=99)
        except TooManyRequestsError:
            return "limited"
        return "unlimited"

    class NeverAccepts(ClientProgram):
        def initialization(self, api, parent_mid):
            yield from api.advertise(ECHO_PATTERN)

    _, client = make_pair(network, NeverAccepts(), body)
    network.run(until=200_000.0)
    assert client.result == "limited"


def test_accept_of_unknown_request_is_cancelled(network):
    # A client that "guesses" a requester signature cannot complete it
    # (§3.3.2 rule 6): its own kernel never saw such a request.
    def body(api, self):
        status = yield from api.accept_signal(api.requester_sig(0, 12345))
        return status

    _, client = make_pair(network, EchoServer(), body)
    network.run(until=RUN_US)
    assert client.result is AcceptStatus.CANCELLED


def test_double_accept_second_cancelled(network):
    PATTERN = make_well_known_pattern(0o773)
    statuses = []

    class DoubleAccept(ClientProgram):
        def initialization(self, api, parent_mid):
            yield from api.advertise(PATTERN)

        def handler(self, api, event):
            if event.is_arrival:
                first = yield from api.accept_current_signal()
                second = yield from api.accept_signal(event.asker)
                statuses.append((first, second))

    def body(api, self):
        server = yield from api.discover(PATTERN)
        completion = yield from api.b_signal(server)
        return completion.status

    _, client = make_pair(network, DoubleAccept(), body)
    network.run(until=RUN_US)
    assert client.result is RequestStatus.COMPLETED
    assert statuses == [(AcceptStatus.SUCCESS, AcceptStatus.CANCELLED)]


def test_nonblocking_completion_reaches_user_handler(network):
    PATTERN = make_well_known_pattern(0o774)
    completions = []

    class Accepting(ClientProgram):
        def initialization(self, api, parent_mid):
            yield from api.advertise(PATTERN)

        def handler(self, api, event):
            if event.is_arrival:
                yield from api.accept_current_signal(arg=7)

    class AsyncClient(ClientProgram):
        def handler(self, api, event):
            if event.is_completion:
                completions.append((event.asker.tid, event.arg, event.status))
            return
            yield

        def task(self, api):
            tid = yield from api.signal(api.server_sig(0, PATTERN))
            self.tid = tid
            yield from api.poll(lambda: completions)
            yield from api.serve_forever()

    network.add_node(program=Accepting())
    async_client = AsyncClient()
    network.add_node(program=async_client, boot_at_us=50.0)
    network.run(until=RUN_US)
    assert completions == [(async_client.tid, 7, RequestStatus.COMPLETED)]


def test_reliable_delivery_under_loss():
    net = Network(seed=11, faults=FaultPlan(loss_probability=0.15))
    payload = b"exactly-once-in-order"

    def body(api, self):
        server = yield from api.discover(ECHO_PATTERN)
        results = []
        for i in range(5):
            completion = yield from api.b_put(server, arg=i, put=payload + bytes([i]))
            results.append(completion.status)
        return results

    server, client = make_pair(net, EchoServer(), body)
    net.run(until=60_000_000.0)
    assert client.result == [RequestStatus.COMPLETED] * 5
    assert server.received == [payload + bytes([i]) for i in range(5)]


def test_large_message_rejected(network):
    def body(api, self):
        big = b"x" * (network.config.max_message_bytes + 1)
        try:
            yield from api.put(api.server_sig(0, ECHO_PATTERN), put=big)
        except Exception as exc:
            return type(exc).__name__
        return None

    _, client = make_pair(network, EchoServer(), body)
    network.run(until=RUN_US)
    assert client.result == "SodaError"
