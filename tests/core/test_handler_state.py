"""Handler state machine tests (§3.3.4, §3.7.5)."""

from repro.core import (
    Buffer,
    ClientProgram,
    KernelConfig,
    Network,
    RequestStatus,
)
from repro.core.patterns import make_well_known_pattern

from tests.conftest import make_pair

PATTERN = make_well_known_pattern(0o640)
RUN_US = 30_000_000.0


def test_closed_handler_delays_delivery_until_open(network):
    arrivals = []

    class ClosedServer(ClientProgram):
        def initialization(self, api, parent_mid):
            yield from api.advertise(PATTERN)
            yield from api.close()

        def handler(self, api, event):
            if event.is_arrival:
                arrivals.append(api.now)
                yield from api.accept_current_signal()

        def task(self, api):
            yield api.compute(300_000)
            self.opened_at = api.now
            yield from api.open()
            yield from api.serve_forever()

    server = ClosedServer()

    def body(api, self):
        completion = yield from api.b_signal(api.server_sig(0, PATTERN))
        return api.now, completion.status

    _, client = make_pair(network, server, body)
    network.run(until=RUN_US)
    done_at, status = client.result
    assert status is RequestStatus.COMPLETED
    # The request could only be delivered after OPEN.
    assert arrivals and arrivals[0] >= server.opened_at


def test_close_within_handler_defers_until_endhandler(network):
    # CLOSE inside the handler takes effect at ENDHANDLER (§3.3.4): the
    # *current* invocation finishes normally, and subsequent requests are
    # then held out until the task OPENs again.
    order = []

    class CloseInHandler(ClientProgram):
        def initialization(self, api, parent_mid):
            yield from api.advertise(PATTERN)

        def handler(self, api, event):
            if event.is_arrival:
                order.append(("arrival", event.arg, api.now))
                yield from api.close()
                yield from api.accept_current_signal()

        def task(self, api):
            yield api.compute(400_000)
            yield from api.open()
            self.reopened_at = api.now
            yield from api.serve_forever()

    server = CloseInHandler()

    def body(api, self):
        first = yield from api.b_signal(api.server_sig(0, PATTERN), arg=1)
        second = yield from api.b_signal(api.server_sig(0, PATTERN), arg=2)
        return first.status, second.status

    _, client = make_pair(network, server, body)
    network.run(until=RUN_US)
    assert client.result == (RequestStatus.COMPLETED, RequestStatus.COMPLETED)
    assert [arg for _, arg, _ in order] == [1, 2]
    # The second arrival was only delivered after the task reopened.
    assert order[1][2] >= server.reopened_at


def test_completions_queue_while_handler_closed(network):
    # The requester closes its handler; the server accepts; the
    # completion interrupt must be queued and delivered on OPEN.
    completions = []

    class Acceptor(ClientProgram):
        def initialization(self, api, parent_mid):
            yield from api.advertise(PATTERN)

        def handler(self, api, event):
            if event.is_arrival:
                yield from api.accept_current_signal()

    class ClosedRequester(ClientProgram):
        def handler(self, api, event):
            if event.is_completion:
                completions.append(api.now)
            return
            yield  # pragma: no cover

        def task(self, api):
            yield from api.close()
            yield from api.signal(api.server_sig(0, PATTERN))
            yield api.compute(500_000)
            self.opened_at = api.now
            yield from api.open()
            yield from api.poll(lambda: completions)
            yield from api.serve_forever()

    network.add_node(program=Acceptor())
    requester = ClosedRequester()
    network.add_node(program=requester, boot_at_us=50.0)
    network.run(until=RUN_US)
    assert completions and completions[0] >= requester.opened_at


def test_completions_before_arrivals_at_endhandler(network):
    # §3.7.5: if C1 issues an ACCEPT followed by a REQUEST to C2, the
    # ACCEPT invokes C2's handler first.  We stage it with a long first
    # handler invocation on C2 so both interrupts pend, then check order.
    events_seen = []

    class C2(ClientProgram):
        def initialization(self, api, parent_mid):
            yield from api.advertise(PATTERN)

        def handler(self, api, event):
            events_seen.append(event.reason.value)
            if event.is_arrival and event.arg == 0:
                # First arrival: issue a GET to C1 then stall so that
                # C1's ACCEPT-completion and C1's REQUEST both pend.
                yield from api.get(api.server_sig(1, PATTERN), get=4)
                yield api.compute(120_000)
            elif event.is_arrival:
                yield from api.accept_current_signal()

    class C1(ClientProgram):
        def initialization(self, api, parent_mid):
            yield from api.advertise(PATTERN)

        def handler(self, api, event):
            if event.is_arrival:
                # ACCEPT then REQUEST, back to back (§3.7.5's scenario).
                yield from api.accept_current_get(put=b"data")
                yield from api.signal(api.server_sig(0, PATTERN), arg=1)

        def task(self, api):
            yield api.compute(5_000)
            yield from api.signal(api.server_sig(0, PATTERN), arg=0)
            yield from api.serve_forever()

    network.add_node(program=C2())
    network.add_node(program=C1(), boot_at_us=50.0)
    network.run(until=RUN_US)
    # C2 saw: arrival(arg 0), then completion (the ACCEPT), then the
    # arrival of the follow-on REQUEST.
    assert events_seen[0] == "request_arrival"
    assert "request_complete" in events_seen
    complete_idx = events_seen.index("request_complete")
    later_arrivals = [
        i
        for i, r in enumerate(events_seen)
        if r == "request_arrival" and i > 0
    ]
    assert later_arrivals and all(i > complete_idx for i in later_arrivals)


def test_handler_can_issue_accept_within_handler(network):
    # "The client may execute any SODA primitive, including ACCEPT,
    # within the handler" -- exercised by every other test; here we check
    # a handler issuing an ACCEPT for a *different* pending request.
    pending = []
    accepted = []

    class TwoAtOnce(ClientProgram):
        def initialization(self, api, parent_mid):
            yield from api.advertise(PATTERN)

        def handler(self, api, event):
            if not event.is_arrival:
                return
            pending.append(event.asker)
            if len(pending) == 2:
                # Accept the FIRST request from inside the handler
                # invocation of the SECOND.
                status1 = yield from api.accept_signal(pending[0])
                status2 = yield from api.accept_current_signal()
                accepted.extend([status1, status2])

    def body(api, self):
        server = api.server_sig(0, PATTERN)
        yield from api.signal(server, arg=1)
        yield from api.signal(server, arg=2)
        yield from api.poll(lambda: len(accepted) == 2)
        return list(accepted)

    _, client = make_pair(network, TwoAtOnce(), body)
    network.run(until=RUN_US)
    assert [s.value for s in client.result] == ["success", "success"]


def test_blocking_request_inside_handler_via_detach(network):
    # The saved-PC trick (§4.1.1): a B_GET inside the handler ends the
    # invocation and continues at task level; the task proper stays
    # suspended until the continuation finishes.
    trace = []

    class Relay(ClientProgram):
        """Forwards a SIGNAL's arrival into a blocking GET upstream."""

        def initialization(self, api, parent_mid):
            yield from api.advertise(PATTERN)

        def handler(self, api, event):
            if event.is_arrival and event.pattern == PATTERN:
                asker = event.asker
                buf = Buffer(8)
                completion = yield from api.b_get(
                    api.server_sig(1, PATTERN), get=buf
                )
                trace.append(("relay_got", buf.data))
                yield from api.accept_signal(asker)

    class Upstream(ClientProgram):
        def initialization(self, api, parent_mid):
            yield from api.advertise(PATTERN)

        def handler(self, api, event):
            if event.is_arrival:
                yield from api.accept_current_get(put=b"upstream")

        def task(self, api):
            yield api.compute(5_000)
            completion = yield from api.b_signal(api.server_sig(0, PATTERN))
            trace.append(("signal_done", completion.status))
            yield from api.serve_forever()

    network.add_node(program=Relay())
    network.add_node(program=Upstream(), boot_at_us=50.0)
    network.run(until=RUN_US)
    assert ("relay_got", b"upstream") in trace
    assert ("signal_done", RequestStatus.COMPLETED) in trace


def test_pipelined_hold_expires_with_busy_nack():
    # A pipelined kernel holds one REQUEST in the input buffer; if the
    # handler stays busy past the hold time, the REQUEST is BUSY-NACKed
    # and retried -- and must still complete eventually.
    cfg = KernelConfig(pipelined=True)
    net = Network(seed=9, config=cfg)

    class SlowServer(ClientProgram):
        def initialization(self, api, parent_mid):
            yield from api.advertise(PATTERN)

        def handler(self, api, event):
            if event.is_arrival:
                if event.arg == 0:
                    yield api.compute(cfg.timing.input_buffer_hold_us * 3)
                yield from api.accept_current_signal()

    def body(api, self):
        server = api.server_sig(0, PATTERN)
        first = yield from api.signal(server, arg=0)
        second = yield from api.b_signal(server, arg=1)
        return second.status

    _, client = make_pair(net, SlowServer(), body)
    net.run(until=RUN_US)
    assert client.result is RequestStatus.COMPLETED
    assert net.sim.trace.count("kernel.hold") >= 1
    assert net.sim.trace.count("kernel.busy_nack") >= 1
