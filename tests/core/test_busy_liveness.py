"""A busy (but alive) server must never be declared crashed (§5.2.2)."""

from repro.core import ClientProgram, Network, RequestStatus
from repro.core.patterns import make_well_known_pattern

PATTERN = make_well_known_pattern(0o607)


def test_long_busy_handler_not_declared_dead():
    # The server's handler stays busy for far longer than the dead-peer
    # exhaustion window (8 attempts x ~64 ms); the client's REQUEST must
    # keep retrying on the slow schedule and complete in the end.
    net = Network(seed=191)

    class VeryBusy(ClientProgram):
        def initialization(self, api, parent_mid):
            yield from api.advertise(PATTERN)

        def handler(self, api, event):
            if event.is_arrival:
                if event.arg == 0:
                    yield api.compute(1_500_000)  # 1.5 s inside the handler
                yield from api.accept_current_signal()

    outcome = {}

    class Patient(ClientProgram):
        def task(self, api):
            first = yield from api.signal(api.server_sig(0, PATTERN), arg=0)
            future = api.watch_completion(first)
            yield api.compute(5_000)
            # This one meets the busy handler for 1.5 s of retries.
            second = yield from api.b_signal(api.server_sig(0, PATTERN), arg=1)
            outcome["second"] = second.status
            c1 = yield from api.wait_completion(first, future)
            outcome["first"] = c1.status
            yield from api.serve_forever()

    net.add_node(program=VeryBusy())
    net.add_node(program=Patient(), boot_at_us=100.0)
    net.run(until=60_000_000.0)
    assert outcome.get("first") is RequestStatus.COMPLETED
    assert outcome.get("second") is RequestStatus.COMPLETED
    assert net.sim.trace.count("conn.peer_dead") == 0
    assert net.sim.trace.count("conn.busy_retry") >= 5


def test_program_exception_surfaces_loudly():
    # A bug in client code must crash the simulation run, not vanish.
    net = Network(seed=192)

    class Broken(ClientProgram):
        def task(self, api):
            yield api.compute(1_000)
            raise ZeroDivisionError("client bug")

    net.add_node(program=Broken())
    try:
        net.run(until=1_000_000.0)
        raised = False
    except ZeroDivisionError:
        raised = True
    assert raised
