"""Kernel overload shedding (ISSUE 5): controller hysteresis, the
widened BUSY retry hint, and the OVERLOAD NACK's proof-of-non-execution
semantics end to end."""

import pytest

from repro.core import Network, RequestStatus
from repro.core.buffers import OverloadConfig, OverloadController
from repro.core.kernel import SodaKernel

from tests.conftest import EchoServer, ScriptedClient


def controller(**kwargs) -> OverloadController:
    return OverloadController(OverloadConfig(**kwargs))


# -- controller hysteresis ---------------------------------------------


def test_shed_resume_hysteresis():
    c = controller()
    assert c.observe(10_000.0) is False  # below the shed threshold
    assert c.observe(13_000.0) is True  # exceeds shed_backlog_us
    assert c.observe(5_000.0) is True  # draining, still above resume
    assert c.observe(3_000.0) is False  # below resume: admit again
    assert c.observe(5_000.0) is False  # must exceed shed again to trip


def test_disabled_controller_never_sheds():
    c = controller(enabled=False)
    assert c.observe(1e9) is False
    assert c.retry_hint_us(1_200.0) is None


# -- widened BUSY retry hint -------------------------------------------


def test_retry_hint_is_none_when_calm():
    c = controller()
    c.observe(0.0)
    assert c.retry_hint_us(1_200.0) is None


def test_retry_hint_is_none_under_mild_load():
    # At or below hint_backlog_us and not shedding: the client's own
    # decaying rate governs.
    c = controller()
    assert c.observe(2_000.0) is False
    assert c.retry_hint_us(1_200.0) is None
    # Just past the threshold the widened hint engages, well before
    # admission control would.
    assert c.observe(2_500.0) is False
    hint = c.retry_hint_us(1_200.0)
    assert hint == pytest.approx(1_200.0 * 4.0 * (1.0 + 2_500.0 / 12_000.0))


def test_retry_hint_widens_with_occupancy_and_caps():
    c = controller()
    c.observe(24_000.0)  # widen = 1 + 24/12 = 3
    assert c.retry_hint_us(1_200.0) == pytest.approx(1_200.0 * 4.0 * 3.0)
    c.observe(1e9)
    assert c.retry_hint_us(1_200.0) == pytest.approx(50_000.0)  # max_hint_us


# -- end to end: shed REQUEST -> OVERLOADED, not a crash ---------------


def test_shed_request_completes_overloaded(monkeypatch):
    # A saturated server kernel sheds the REQUEST before delivery: the
    # requester completes OVERLOADED with not_executed=True (admission
    # control is a proof of non-execution) and *no* crash report -- the
    # peer is loaded, not dead.  The handler must never see the arrival.
    net = Network(seed=71)
    server = EchoServer()
    server_node = net.add_node(program=server, name="server")

    def body(api, self):
        sig = yield from api.discover(server.pattern)
        completion = yield from api.b_signal(sig)
        return completion

    client = ScriptedClient(body)
    net.add_node(program=client, name="client", boot_at_us=100.0)

    real = SodaKernel._input_occupancy_us

    def saturated(self):
        if self.mid == server_node.mid:
            return 10.0 * self.config.overload.shed_backlog_us
        return real(self)

    monkeypatch.setattr(SodaKernel, "_input_occupancy_us", saturated)
    net.run(until=10_000_000.0)

    completion = client.result
    assert completion.status is RequestStatus.OVERLOADED
    assert completion.not_executed is True
    assert server.arrivals == 0
    assert net.sim.trace.count("kernel.shed") >= 1
    assert server_node.kernel.overload.sheds >= 1
    assert net.sim.trace.count("kernel.crash_report") == 0


def test_recovered_kernel_admits_again():
    # Hysteresis end to end: once occupancy drains below the resume
    # threshold the same kernel must accept new REQUESTs normally.
    net = Network(seed=72)
    server = EchoServer()
    server_node = net.add_node(program=server, name="server")

    def body(api, self):
        sig = yield from api.discover(server.pattern)
        completion = yield from api.b_signal(sig)
        return completion

    client = ScriptedClient(body)
    net.add_node(program=client, name="client", boot_at_us=100.0)
    # Trip the controller into shedding, then let real (calm) occupancy
    # readings drive it back below resume_backlog_us.
    server_node.kernel.overload.observe(
        2.0 * server_node.kernel.config.overload.shed_backlog_us
    )
    assert server_node.kernel.overload.shedding is True
    net.run(until=10_000_000.0)

    completion = client.result
    assert completion.status is RequestStatus.COMPLETED
    assert server.arrivals == 1
    assert server_node.kernel.overload.shedding is False
