"""Packet-count tests: the protocol shapes of §5.2.3 / §5.5.

The paper's performance table is driven by packets-per-transaction in
steady state — server ACCEPTs in its handler, and the requester keeps
MAXREQUESTS=3 non-blocking REQUESTs outstanding (§5.5: "client REQUESTS
may be queued by the kernel while the current REQUEST is being
delivered").  The expected shapes:

* PUT:      2 packets, pipelined or not;
* GET:      4 packets non-pipelined, 2 pipelined;
* EXCHANGE: 6 packets non-pipelined, 2 pipelined;
* 0-length requests degenerate to SIGNAL cost (2 packets).

These emerge from piggybacking + the BUSY-handler dance; nothing in the
kernel hard-codes them, so these tests pin the mechanism.
"""

import pytest

from repro.core import Buffer, ClientProgram, KernelConfig, Network
from repro.core.patterns import make_well_known_pattern

PATTERN = make_well_known_pattern(0o555)
STREAM_LEN = 14
WARMUP = 5
OUTSTANDING = 3


class StreamServer(ClientProgram):
    """Accepts every arrival in the handler with symmetric buffers."""

    def __init__(self, reply_bytes: int) -> None:
        self.reply = bytes(reply_bytes)

    def initialization(self, api, parent_mid):
        yield from api.advertise(PATTERN)

    def handler(self, api, event):
        if event.is_arrival:
            buf = Buffer(event.put_size)
            yield from api.accept_current_exchange(
                get=buf, put=self.reply[: event.get_size]
            )


class StreamClient(ClientProgram):
    """Keeps OUTSTANDING non-blocking requests in flight (§5.5 workload)."""

    def __init__(self, put_bytes: int, get_bytes: int, total: int = STREAM_LEN):
        self.put_bytes = put_bytes
        self.get_bytes = get_bytes
        self.total = total
        self.issued = 0
        self.marks = []

    def _issue(self, api):
        payload = bytes(self.put_bytes)
        buf = Buffer(self.get_bytes)
        self.issued += 1
        yield from api.request(
            api.server_sig(0, PATTERN), put=payload, get=buf
        )

    def task(self, api):
        for _ in range(min(OUTSTANDING, self.total)):
            yield from self._issue(api)
        yield from api.serve_forever()

    def handler(self, api, event):
        if event.is_completion:
            self.marks.append((api.now, api.kernel.nic.bus.frames_sent))
            if self.issued < self.total:
                yield from self._issue(api)


def run_stream(pipelined: bool, put_bytes: int, get_bytes: int):
    net = Network(seed=5, config=KernelConfig(pipelined=pipelined))
    net.add_node(program=StreamServer(reply_bytes=get_bytes))
    client = StreamClient(put_bytes, get_bytes)
    net.add_node(program=client, boot_at_us=100.0)
    net.run(until=120_000_000.0)
    assert len(client.marks) == STREAM_LEN, (
        f"stream did not finish: {len(client.marks)}/{STREAM_LEN}"
    )
    frames = [f for _, f in client.marks]
    times = [t for t, _ in client.marks]
    # Steady-state packets and latency per transaction (skip warmup).
    n = STREAM_LEN - WARMUP - 1
    pkts = (frames[-1] - frames[WARMUP]) / n
    ms = (times[-1] - times[WARMUP]) / n / 1000.0
    return pkts, ms


def test_put_stream_is_two_packets_nonpipelined():
    pkts, _ = run_stream(False, put_bytes=200, get_bytes=0)
    assert pkts == pytest.approx(2.0, abs=0.3)


def test_put_stream_is_two_packets_pipelined():
    pkts, _ = run_stream(True, put_bytes=200, get_bytes=0)
    assert pkts == pytest.approx(2.0, abs=0.3)


def test_get_stream_four_packets_nonpipelined():
    pkts, _ = run_stream(False, put_bytes=0, get_bytes=200)
    assert pkts == pytest.approx(4.0, abs=0.5)


def test_get_stream_two_packets_pipelined():
    pkts, _ = run_stream(True, put_bytes=0, get_bytes=200)
    assert pkts == pytest.approx(2.0, abs=0.3)


def test_exchange_stream_six_packets_nonpipelined():
    pkts, _ = run_stream(False, put_bytes=200, get_bytes=200)
    assert pkts == pytest.approx(6.0, abs=0.75)


def test_exchange_stream_two_packets_pipelined():
    pkts, _ = run_stream(True, put_bytes=200, get_bytes=200)
    assert pkts == pytest.approx(2.0, abs=0.3)


def test_signal_stream_two_packets_both_kernels():
    for pipelined in (False, True):
        pkts, _ = run_stream(pipelined, put_bytes=0, get_bytes=0)
        assert pkts == pytest.approx(2.0, abs=0.3), f"pipelined={pipelined}"


def test_pipelined_exchange_faster_than_nonpipelined():
    _, ms_np = run_stream(False, put_bytes=800, get_bytes=800)
    _, ms_p = run_stream(True, put_bytes=800, get_bytes=800)
    assert ms_p < ms_np


def test_pipelined_get_faster_than_nonpipelined():
    _, ms_np = run_stream(False, put_bytes=0, get_bytes=800)
    _, ms_p = run_stream(True, put_bytes=0, get_bytes=800)
    assert ms_p < ms_np


def test_put_latency_grows_linearly_with_size():
    _, small = run_stream(False, put_bytes=2, get_bytes=0)
    _, large = run_stream(False, put_bytes=2002, get_bytes=0)
    # ~40 us/word * 1000 words = ~40 ms of marginal cost.
    assert large - small == pytest.approx(40.0, rel=0.4)


def test_exchange_data_crosses_twice_nonpipelined():
    # Non-pipelined EXCHANGE wastes the first data transmission (§5.2.3),
    # so its per-word slope is well over twice the PUT slope.
    _, put_small = run_stream(False, put_bytes=2, get_bytes=0)
    _, put_large = run_stream(False, put_bytes=2002, get_bytes=0)
    _, ex_small = run_stream(False, put_bytes=2, get_bytes=2)
    _, ex_large = run_stream(False, put_bytes=2002, get_bytes=2002)
    put_slope = put_large - put_small
    ex_slope = ex_large - ex_small
    assert ex_slope > 2.0 * put_slope
