"""Shared fixtures and helper programs for the test suite."""

from __future__ import annotations

from typing import Callable, List, Optional

import pytest

from repro.core import Buffer, ClientProgram, KernelConfig, Network
from repro.core.patterns import make_well_known_pattern

#: A well-known pattern used by the generic echo/sink servers below.
ECHO_PATTERN = make_well_known_pattern(0o1234)
SINK_PATTERN = make_well_known_pattern(0o1235)


class EchoServer(ClientProgram):
    """Accepts every arrival, echoing received bytes back uppercased.

    Exercises EXCHANGE in both directions; also serves PUT (no reply
    data) and GET (replies with its ``greeting``).
    """

    def __init__(self, pattern=ECHO_PATTERN, greeting: bytes = b"hello") -> None:
        self.pattern = pattern
        self.greeting = greeting
        self.received: List[bytes] = []
        self.arrivals = 0

    def initialization(self, api, parent_mid):
        yield from api.advertise(self.pattern)

    def handler(self, api, event):
        if not event.is_arrival:
            return
        self.arrivals += 1
        inbuf = Buffer(event.put_size)
        if event.put_size > 0:
            yield from api.accept_current_exchange(
                get=inbuf, put=self.greeting if event.get_size else None
            )
            self.received.append(inbuf.data)
        else:
            yield from api.accept_current(
                put=self.greeting if event.get_size else None
            )


class ScriptedClient(ClientProgram):
    """Runs a user-supplied task body; records its return value."""

    def __init__(self, body: Callable) -> None:
        self.body = body
        self.result = None
        self.finished = False
        self.error: Optional[BaseException] = None

    def task(self, api):
        try:
            self.result = yield from self.body(api, self)
        except BaseException as exc:  # noqa: BLE001 - recorded for asserts
            self.error = exc
            raise
        finally:
            self.finished = True
        yield from api.serve_forever()


class RecordingServer(ClientProgram):
    """Advertises a pattern and records every handler event without
    accepting; tests drive ACCEPTs explicitly via ``actions``."""

    def __init__(self, pattern=SINK_PATTERN) -> None:
        self.pattern = pattern
        self.events = []

    def initialization(self, api, parent_mid):
        yield from api.advertise(self.pattern)

    def handler(self, api, event):
        self.events.append(event)
        return
        yield  # pragma: no cover


def pytest_addoption(parser):
    parser.addoption(
        "--check-invariants",
        action="store_true",
        default=False,
        help=(
            "replay every Network trace through the protocol invariant "
            "checker (repro.analysis.invariants) when each test finishes"
        ),
    )


@pytest.fixture(autouse=True)
def _trace_invariant_watch(request, monkeypatch):
    """Opt-in post-test trace replay (docs/ANALYSIS.md).

    Enabled by ``--check-invariants`` or the ``check_invariants`` marker
    (tests/integration applies the marker to everything it collects).
    Tests that seed protocol bugs on purpose opt out with the
    ``no_auto_invariants`` marker.
    """
    opted_in = request.config.getoption("--check-invariants") or (
        request.node.get_closest_marker("check_invariants") is not None
    )
    if not opted_in or request.node.get_closest_marker("no_auto_invariants"):
        yield
        return

    from repro.analysis.invariants import (
        check_network,
        check_network_degraded,
    )

    seen: List[Network] = []

    def track(method_name):
        original = getattr(Network, method_name)

        def tracked(self, *args, **kwargs):
            if all(net is not self for net in seen):
                seen.append(self)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(Network, method_name, tracked)

    track("run")
    track("run_until")  # soak-style runs never call plain run()
    yield
    problems = []
    for net in seen:
        if not net.sim.trace.keep_records:
            continue  # counters-only runs cannot be replayed
        if net.sim.trace.truncated:
            # Ring-buffer traces lost their prefix; full replay is
            # unsound, but counters / live state / ledger still hold.
            import warnings

            warnings.warn(
                "trace ring buffer dropped records: invariants degraded "
                "(counter balance, live timers, ledger only)",
                stacklevel=2,
            )
            for violation in check_network_degraded(net):
                problems.append("degraded: " + violation.format())
            continue
        for violation in check_network(net, strict_completion=False):
            problems.append(violation.format())
    if problems:
        pytest.fail(
            "trace invariant violations:\n" + "\n".join(problems),
            pytrace=False,
        )


@pytest.fixture
def network() -> Network:
    return Network(seed=42)


@pytest.fixture
def pipelined_network() -> Network:
    return Network(seed=42, config=KernelConfig(pipelined=True))


def run_to_quiescence(net: Network, until: float = 5_000_000.0) -> None:
    net.run(until=until)


def make_pair(net: Network, server_program, client_body):
    """One server node + one scripted client node; returns (server, client)."""
    net.add_node(program=server_program, name="server")
    client = ScriptedClient(client_body)
    net.add_node(program=client, name="client", boot_at_us=100.0)
    return server_program, client
