"""SODAL API behaviour tests (§4.1)."""

import pytest

from repro.core import Buffer, ClientProgram, Network, RequestStatus
from repro.core.errors import NotInHandlerError
from repro.core.patterns import is_unique_id, make_well_known_pattern
from repro.sodal.api import _coerce_get, _coerce_put

from tests.conftest import ECHO_PATTERN, EchoServer, make_pair

RUN_US = 30_000_000.0
PATTERN = make_well_known_pattern(0o610)


def test_coerce_put_accepts_many_types():
    assert _coerce_put(None) == b""
    assert _coerce_put(b"abc") == b"abc"
    assert _coerce_put("héllo") == "héllo".encode("utf-8")
    assert _coerce_put(bytearray(b"xy")) == b"xy"
    assert _coerce_put(Buffer.from_bytes(b"zz")) == b"zz"


def test_coerce_get_accepts_int_and_buffer():
    assert _coerce_get(None).capacity == 0
    assert _coerce_get(16).capacity == 16
    buf = Buffer(4)
    assert _coerce_get(buf) is buf


def test_getuniqueid_returns_unique_patterns(network):
    ids = []

    def body(api, self):
        for _ in range(5):
            pattern = yield from api.getuniqueid()
            ids.append(pattern)
        return ids

    _, client = make_pair(network, EchoServer(), body)
    network.run(until=RUN_US)
    assert len(set(client.result)) == 5
    assert all(is_unique_id(p) for p in client.result)


def test_accept_current_outside_handler_raises(network):
    def body(api, self):
        try:
            yield from api.accept_current_signal()
        except NotInHandlerError:
            return "raised"
        return "no-error"

    _, client = make_pair(network, EchoServer(), body)
    network.run(until=RUN_US)
    assert client.result == "raised"


def test_accept_current_on_completion_event_raises(network):
    outcome = {}

    class BadServer(ClientProgram):
        def initialization(self, api, parent_mid):
            yield from api.advertise(PATTERN)

        def handler(self, api, event):
            if event.is_arrival:
                yield from api.accept_current_signal()

    class Confused(ClientProgram):
        def handler(self, api, event):
            if event.is_completion:
                try:
                    # ACCEPT_CURRENT on a completion is illegal.
                    yield from api.accept_current_signal()
                except NotInHandlerError:
                    outcome["raised"] = True

        def task(self, api):
            yield from api.signal(api.server_sig(0, PATTERN))
            yield from api.serve_forever()

    network.add_node(program=BadServer())
    network.add_node(program=Confused(), boot_at_us=50.0)
    network.run(until=RUN_US)
    assert outcome.get("raised")


def test_my_mid_matches_node(network):
    def body(api, self):
        return api.my_mid
        yield  # pragma: no cover

    _, client = make_pair(network, EchoServer(), body)
    network.run(until=RUN_US)
    assert client.result == 1


def test_queue_helpers_charge_time(network):
    from repro.sodal import Queue

    def body(api, self):
        q = Queue(4)
        t0 = api.now
        yield from api.enqueue(q, "x")
        item = yield from api.dequeue(q)
        return item, api.now - t0

    _, client = make_pair(network, EchoServer(), body)
    network.run(until=RUN_US)
    item, elapsed = client.result
    assert item == "x"
    assert elapsed == pytest.approx(2 * network.config.timing.queue_op_us)


def test_task_return_implies_die(network):
    class ShortLived(ClientProgram):
        def initialization(self, api, parent_mid):
            yield from api.advertise(PATTERN)

        def task(self, api):
            yield api.compute(1_000)
            # returning here must trigger the implicit Die

    node = network.add_node(program=ShortLived())
    network.run(until=RUN_US)
    assert node.kernel.client is None
    assert node.kernel.patterns.advertised() == []


def test_completion_object_fields(network):
    def body(api, self):
        server = yield from api.discover(ECHO_PATTERN)
        buf = Buffer(10)
        completion = yield from api.b_exchange(server, put=b"12345", get=buf)
        return completion

    _, client = make_pair(network, EchoServer(greeting=b"abcdefgh"), body)
    network.run(until=RUN_US)
    completion = client.result
    assert completion.completed and not completion.rejected
    assert completion.taken_put == 5
    assert completion.taken_get == 8
    assert completion.tid >= 0
    assert completion.status is RequestStatus.COMPLETED


def test_poll_helper_waits_for_predicate(network):
    def body(api, self):
        flag = {"set": False}
        api.sim.schedule(5_000.0, lambda: flag.update(set=True))
        yield from api.poll(lambda: flag["set"])
        return api.now

    _, client = make_pair(network, EchoServer(), body)
    network.run(until=RUN_US)
    assert client.result >= 5_000.0
