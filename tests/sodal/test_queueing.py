"""Unit tests for the SODAL QUEUE type (§4.1.4)."""

import pytest

from repro.sodal import Queue, QueueEmptyError, QueueFullError


def test_fifo_order():
    q = Queue(3)
    for x in "abc":
        q.enqueue(x)
    assert [q.dequeue() for _ in range(3)] == ["a", "b", "c"]


def test_enqueue_full_raises():
    q = Queue(1)
    q.enqueue(1)
    with pytest.raises(QueueFullError):
        q.enqueue(2)


def test_dequeue_empty_raises():
    with pytest.raises(QueueEmptyError):
        Queue(1).dequeue()


def test_is_empty_is_full():
    q = Queue(2)
    assert q.is_empty() and not q.is_full()
    q.enqueue(1)
    assert not q.is_empty() and not q.is_full()
    q.enqueue(2)
    assert q.is_full()


def test_almost_empty_and_almost_full():
    q = Queue(3)
    q.enqueue(1)
    assert q.almost_empty()
    q.enqueue(2)
    assert q.almost_full()  # capacity 3, holds 2
    assert not q.almost_empty()


def test_almost_full_capacity_one():
    q = Queue(1)
    assert q.almost_full()  # can hold exactly one more
    q.enqueue(1)
    assert not q.almost_full()
    assert q.almost_empty()


def test_initial_items():
    q = Queue(4, items=[1, 2])
    assert len(q) == 2
    assert q.peek() == 1


def test_initial_items_overflow_raises():
    with pytest.raises(QueueFullError):
        Queue(1, items=[1, 2])


def test_remove_and_contains():
    q = Queue(4, items=["a", "b", "c"])
    assert "b" in q
    assert q.remove("b")
    assert "b" not in q
    assert not q.remove("zz")
    assert q.items() == ["a", "c"]


def test_capacity_validation():
    with pytest.raises(ValueError):
        Queue(0)


def test_peek_empty_raises():
    with pytest.raises(QueueEmptyError):
        Queue(2).peek()
