"""Tests for the ENTRY/COMPLETION dispatcher (§4.1.4.1)."""

from repro.core import ClientProgram, Network, RequestStatus
from repro.core.patterns import make_well_known_pattern
from repro.sodal import HandlerDispatcher

from tests.conftest import ECHO_PATTERN, EchoServer

PING = make_well_known_pattern(0o611)
PONG = make_well_known_pattern(0o612)
RUN_US = 30_000_000.0


class DispatchingServer(ClientProgram):
    """Two entries and a default, all via the dispatcher."""

    def __init__(self):
        self.cases = HandlerDispatcher()
        self.log = []

    def initialization(self, api, parent_mid):
        self.cases.on_entry(PING, self._ping)
        self.cases.on_entry(PONG, self._pong)
        self.cases.otherwise(self._other)
        for pattern in (PING, PONG, ECHO_PATTERN):
            yield from api.advertise(pattern)

    def _ping(self, api, event):
        self.log.append("ping")
        yield from api.accept_current_signal(arg=1)

    def _pong(self, api, event):
        self.log.append("pong")
        yield from api.accept_current_signal(arg=2)

    def _other(self, api, event):
        self.log.append("other")
        yield from api.accept_current_signal(arg=3)

    def handler(self, api, event):
        handled = yield from self.cases.dispatch(api, event)
        assert handled or not event.is_arrival


def test_entry_dispatch_by_pattern(network):
    server = DispatchingServer()
    network.add_node(program=server)
    outcome = {}

    class Client(ClientProgram):
        def task(self, api):
            args = []
            for pattern in (PONG, PING, ECHO_PATTERN):
                completion = yield from api.b_signal(api.server_sig(0, pattern))
                args.append(completion.arg)
            outcome["args"] = args
            yield from api.serve_forever()

    network.add_node(program=Client(), boot_at_us=100.0)
    network.run(until=RUN_US)
    assert outcome["args"] == [2, 1, 3]
    assert server.log == ["pong", "ping", "other"]
    assert server.cases.stats["entry_matched"] == 2
    assert server.cases.stats["entry_otherwise"] == 1
    assert server.cases.stats["unrouted"] == 0


def test_completion_dispatch_fires_once(network):
    fired = []

    class AsyncClient(ClientProgram):
        def __init__(self):
            self.cases = HandlerDispatcher()

        def handler(self, api, event):
            yield from self.cases.dispatch(api, event)

        def task(self, api):
            server = yield from api.discover(ECHO_PATTERN)
            tid = yield from api.signal(server)
            self.cases.on_completion(
                tid, lambda api, ev: fired.append(("specific", ev.status)) or None
            )
            tid2 = yield from api.signal(server)
            self.cases.on_any_completion(
                lambda api, ev: fired.append(("default", ev.asker.tid)) or None
            )
            yield from api.poll(lambda: len(fired) >= 2)
            assert self.cases.pending_completions == 0
            yield from api.serve_forever()

    network.add_node(program=EchoServer())
    network.add_node(program=AsyncClient(), boot_at_us=100.0)
    network.run(until=RUN_US)
    kinds = {k for k, _ in fired}
    assert kinds == {"specific", "default"}
    assert ("specific", RequestStatus.COMPLETED) in fired
    client = network.nodes[1].kernel.node.client.program
    assert client.cases.stats["completion_matched"] == 1
    assert client.cases.stats["completion_default"] == 1


def test_unrouted_events_return_false(network):
    results = []

    class Bare(ClientProgram):
        def __init__(self):
            self.cases = HandlerDispatcher()

        def handler(self, api, event):
            handled = yield from self.cases.dispatch(api, event)
            results.append(handled)
            if event.is_arrival:
                yield from api.reject()

        def initialization(self, api, parent_mid):
            yield from api.advertise(PING)

    network.add_node(program=Bare())

    class Client(ClientProgram):
        def task(self, api):
            yield from api.b_signal(api.server_sig(0, PING))
            yield from api.serve_forever()

    network.add_node(program=Client(), boot_at_us=100.0)
    network.run(until=RUN_US)
    assert results and results[0] is False


def test_cancel_completion_unregisters(network):
    class Client(ClientProgram):
        def __init__(self):
            self.cases = HandlerDispatcher()
            self.defaulted = []

        def handler(self, api, event):
            if event.is_completion:
                self.cases.on_any_completion(
                    lambda api, ev: self.defaulted.append(ev.asker.tid) or None
                )
            yield from self.cases.dispatch(api, event)

        def task(self, api):
            server = yield from api.discover(ECHO_PATTERN)
            tid = yield from api.signal(server)
            self.cases.on_completion(tid, lambda api, ev: None)
            self.cases.cancel_completion(tid)
            yield from api.poll(lambda: self.defaulted)
            yield from api.serve_forever()

    client = Client()
    network.add_node(program=EchoServer())
    network.add_node(program=client, boot_at_us=100.0)
    network.run(until=RUN_US)
    assert len(client.defaulted) == 1
