"""Unit tests for the simulator core."""

import pytest

from repro.sim import Simulator


def test_run_advances_clock_in_order():
    sim = Simulator()
    seen = []
    sim.schedule(10.0, lambda: seen.append(sim.now))
    sim.schedule(5.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [5.0, 10.0]


def test_run_until_time_stops_clock_at_until():
    sim = Simulator()
    sim.schedule(100.0, lambda: None)
    sim.schedule(900.0, lambda: None)
    processed = sim.run(until=500.0)
    assert processed == 1
    assert sim.now == 500.0
    # The remaining event still fires on the next run.
    assert sim.run() == 1
    assert sim.now == 900.0


def test_run_with_empty_queue_sets_now_to_until():
    sim = Simulator()
    sim.run(until=250.0)
    assert sim.now == 250.0


def test_schedule_into_past_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1.0, lambda: None)


def test_at_into_past_rejected():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.at(5.0, lambda: None)


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    seen = []

    def first():
        sim.schedule(5.0, lambda: seen.append("second"))
        seen.append("first")

    sim.schedule(1.0, first)
    sim.run()
    assert seen == ["first", "second"]


def test_max_events_guard_raises():
    sim = Simulator()

    def loop():
        sim.schedule(1.0, loop)

    sim.schedule(0.0, loop)
    with pytest.raises(RuntimeError, match="max_events"):
        sim.run(max_events=100)


def test_max_events_limit_is_exact():
    # Exactly max_events events must complete without tripping the
    # guard; one more must raise *before* the excess event executes.
    sim = Simulator()
    fired = []
    for i in range(100):
        sim.schedule(float(i), fired.append, i)
    assert sim.run(max_events=100) == 100
    assert len(fired) == 100

    sim = Simulator()
    fired = []
    for i in range(101):
        sim.schedule(float(i), fired.append, i)
    with pytest.raises(RuntimeError, match="max_events"):
        sim.run(max_events=100)
    assert len(fired) == 100  # the 101st never ran


def test_run_until_livelock_guard():
    # Regression: run_until used to bypass the runaway guard entirely —
    # a livelocked protocol plus a never-true predicate spun forever.
    sim = Simulator()

    def loop():
        sim.schedule(1.0, loop)

    sim.schedule(0.0, loop)
    with pytest.raises(RuntimeError, match="max_events"):
        sim.run_until(lambda: False, timeout=1e9, max_events=100)


def test_run_until_backwards_time_guard():
    # Regression: run_until used to skip the backwards-clock check.
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.run()
    assert sim.now == 10.0
    sim.queue.push(5.0, lambda: None)  # corrupt: behind the clock
    with pytest.raises(RuntimeError, match="backwards"):
        sim.run_until(lambda: False, timeout=100.0)


def test_run_until_predicate():
    sim = Simulator()
    state = {"done": False}
    sim.schedule(50.0, lambda: state.update(done=True))
    sim.schedule(500.0, lambda: None)
    assert sim.run_until(lambda: state["done"], timeout=1_000.0)
    assert sim.now == 50.0


def test_run_until_predicate_timeout():
    sim = Simulator()
    assert not sim.run_until(lambda: False, timeout=100.0)
    assert sim.now == 100.0


def test_run_until_advances_clock_when_queue_drains_early():
    # Regression: with the queue drained before the deadline, run_until
    # left `now` at the last event time instead of the deadline —
    # inconsistent with run(until=...), and a later mixed run() call
    # started from a stale clock.
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    assert not sim.run_until(lambda: False, timeout=500.0)
    assert sim.now == 500.0

    # Mixing run_until and run on one simulator stays consistent.
    sim.schedule(100.0, lambda: None)  # fires at t=600
    assert sim.run(until=1_000.0) == 1
    assert sim.now == 1_000.0
    assert not sim.run_until(lambda: False, timeout=250.0)
    assert sim.now == 1_250.0


def test_run_until_stops_at_predicate_not_deadline():
    sim = Simulator()
    state = {"done": False}
    sim.schedule(50.0, lambda: state.update(done=True))
    assert sim.run_until(lambda: state["done"], timeout=1_000.0)
    # Satisfied predicates stop the clock at the satisfying event.
    assert sim.now == 50.0


def test_determinism_same_seed_same_trace():
    def build(seed: int):
        sim = Simulator(seed=seed)
        values = []
        for i in range(20):
            delay = sim.rng.uniform("jitter", 0.0, 100.0)
            sim.schedule(delay, values.append, i)
        sim.run()
        return values

    assert build(7) == build(7)
    assert build(7) != build(8)


def test_events_processed_counter():
    sim = Simulator()
    for _ in range(5):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.events_processed == 5
