"""Unit tests for RNG streams, tracing, the cost ledger, and clock utils."""

import pytest

from repro.sim.clock import format_us, ms_to_us, us_to_ms
from repro.sim.rng import RngStreams
from repro.sim.tracing import CostLedger, Tracer


# -- RNG ------------------------------------------------------------------


def test_streams_are_reproducible():
    a = RngStreams(5).stream("x")
    b = RngStreams(5).stream("x")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_streams_are_independent_by_name():
    streams = RngStreams(5)
    seq_x = [streams.stream("x").random() for _ in range(5)]
    streams2 = RngStreams(5)
    # Interleave draws from another stream; "x" must be unaffected.
    for _ in range(3):
        streams2.stream("y").random()
    seq_x2 = [streams2.stream("x").random() for _ in range(5)]
    assert seq_x == seq_x2


def test_different_seeds_differ():
    assert RngStreams(1).stream("x").random() != RngStreams(2).stream("x").random()


def test_chance_extremes():
    streams = RngStreams(0)
    assert not streams.chance("c", 0.0)
    assert streams.chance("c", 1.0)


def test_uniform_within_bounds():
    streams = RngStreams(0)
    for _ in range(100):
        value = streams.uniform("u", 3.0, 7.0)
        assert 3.0 <= value <= 7.0


# -- Tracer -----------------------------------------------------------------


def test_tracer_counts_and_records():
    tracer = Tracer()
    tracer.record(1.0, "pkt", kind="a")
    tracer.record(2.0, "pkt", kind="b")
    tracer.record(3.0, "other")
    assert tracer.count("pkt") == 2
    assert len(tracer.select("pkt")) == 2
    assert tracer.select("pkt", kind="b")[0].time == 2.0


def test_tracer_last():
    tracer = Tracer()
    tracer.record(1.0, "x", n=1)
    tracer.record(2.0, "x", n=2)
    assert tracer.last("x")["n"] == 2
    assert tracer.last("missing") is None


def test_tracer_without_records_still_counts():
    tracer = Tracer(keep_records=False)
    tracer.record(1.0, "x")
    assert tracer.count("x") == 1
    assert tracer.records == []


def test_tracer_reset():
    tracer = Tracer()
    tracer.record(1.0, "x")
    tracer.reset()
    assert tracer.count("x") == 0
    assert tracer.records == []


def test_ring_buffer_keeps_recent_records():
    tracer = Tracer(max_records=3)
    for i in range(5):
        tracer.record(float(i), "x", n=i)
    assert tracer.count("x") == 5  # counters stay exact
    assert [rec["n"] for rec in tracer.records] == [2, 3, 4]
    assert tracer.dropped_records == 2
    assert tracer.truncated
    # select / iter_category / last see only the retained window.
    assert [rec["n"] for rec in tracer.select("x")] == [2, 3, 4]
    assert [rec["n"] for rec in tracer.iter_category("x")] == [2, 3, 4]
    assert tracer.last("x")["n"] == 4


def test_ring_buffer_not_truncated_until_full():
    tracer = Tracer(max_records=10)
    for i in range(10):
        tracer.record(float(i), "x")
    assert not tracer.truncated
    tracer.record(10.0, "x")
    assert tracer.truncated


def test_ring_buffer_reset_clears_drops():
    tracer = Tracer(max_records=1)
    tracer.record(1.0, "x")
    tracer.record(2.0, "x")
    assert tracer.truncated
    tracer.reset()
    assert not tracer.truncated
    assert tracer.dropped_records == 0
    assert list(tracer.records) == []


def test_ring_buffer_rejects_nonpositive_size():
    with pytest.raises(ValueError):
        Tracer(max_records=0)
    with pytest.raises(ValueError):
        Tracer(max_records=-5)


def test_sink_sees_all_records_despite_ring():
    seen = []
    tracer = Tracer(max_records=2)
    tracer.add_sink(seen.append)
    for i in range(4):
        tracer.record(float(i), "x", n=i)
    assert [rec["n"] for rec in seen] == [0, 1, 2, 3]
    tracer.remove_sink(seen.append)
    tracer.record(4.0, "x", n=4)
    assert len(seen) == 4


def test_sink_works_without_record_retention():
    seen = []
    tracer = Tracer(keep_records=False)
    tracer.add_sink(seen.append)
    tracer.record(1.0, "x", n=1)
    assert tracer.records == []
    assert len(seen) == 1 and seen[0]["n"] == 1


def test_record_get_default():
    tracer = Tracer()
    tracer.record(1.0, "x", a=1)
    rec = tracer.records[0]
    assert rec["a"] == 1
    assert rec.get("b", "dflt") == "dflt"


# -- CostLedger ---------------------------------------------------------------


def test_ledger_accumulates_and_totals():
    ledger = CostLedger()
    ledger.charge("protocol", 500.0)
    ledger.charge("protocol", 250.0)
    ledger.charge("transmission", 100.0)
    assert ledger.get("protocol") == 750.0
    assert ledger.total() == 850.0


def test_ledger_rejects_negative():
    with pytest.raises(ValueError):
        CostLedger().charge("protocol", -1.0)


def test_ledger_snapshot_diff():
    ledger = CostLedger()
    ledger.charge("protocol", 100.0)
    snap = ledger.snapshot()
    ledger.charge("protocol", 50.0)
    ledger.charge("context_switch", 25.0)
    diff = ledger.diff(snap)
    assert diff == {"protocol": 50.0, "context_switch": 25.0}


def test_ledger_reset():
    ledger = CostLedger()
    ledger.charge("protocol", 1.0)
    ledger.reset()
    assert ledger.total() == 0.0


# -- clock --------------------------------------------------------------------


def test_unit_conversions():
    assert us_to_ms(7100.0) == 7.1
    assert ms_to_us(7.1) == 7100.0


def test_format_us_scales():
    assert format_us(16.0).endswith("us")
    assert format_us(7100.0) == "7.100ms"
    assert format_us(2_500_000.0) == "2.500s"
