"""Unit tests for coroutine processes."""

import pytest

from repro.sim import Process, ProcessKilled, Simulator


def test_delay_yields_advance_time():
    sim = Simulator()
    marks = []

    def body():
        yield 10.0
        marks.append(sim.now)
        yield 5.0
        marks.append(sim.now)

    sim.spawn(body())
    sim.run()
    assert marks == [10.0, 15.0]


def test_yield_none_continues_same_instant():
    sim = Simulator()
    marks = []

    def body():
        yield None
        marks.append(sim.now)

    sim.spawn(body())
    sim.run()
    assert marks == [0.0]


def test_future_wait_receives_value():
    sim = Simulator()
    future = sim.new_future()
    got = []

    def body():
        value = yield future
        got.append(value)

    sim.spawn(body())
    sim.schedule(30.0, future.resolve, "payload")
    sim.run()
    assert got == ["payload"]


def test_future_failure_raises_in_generator():
    sim = Simulator()
    future = sim.new_future()
    caught = []

    def body():
        try:
            yield future
        except ValueError as exc:
            caught.append(str(exc))

    sim.spawn(body())
    sim.schedule(1.0, future.fail, ValueError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_process_return_value_resolves_done_future():
    sim = Simulator()

    def body():
        yield 1.0
        return 42

    proc = sim.spawn(body())
    sim.run()
    assert proc.state == Process.DONE
    assert proc.result == 42
    assert proc.done_future.value == 42


def test_kill_throws_process_killed():
    sim = Simulator()
    cleaned = []

    def body():
        try:
            yield 100.0
        except ProcessKilled:
            cleaned.append(True)
            raise

    proc = sim.spawn(body())
    sim.schedule(10.0, proc.kill)
    sim.run()
    assert proc.state == Process.KILLED
    assert cleaned == [True]


def test_kill_before_start_runs_nothing():
    sim = Simulator()
    ran = []

    def body():
        ran.append(True)
        yield 1.0

    proc = Process(sim, body())
    proc.kill()
    sim.run()
    assert not ran
    assert proc.state == Process.KILLED


def test_self_kill_abandons_continuation():
    sim = Simulator()
    after = []

    def body():
        yield 1.0
        proc.kill()
        after.append("this line runs (kill defers)")
        yield 1.0
        after.append("but the process never resumes")

    proc = Process(sim, body())
    proc.start()
    sim.run()
    assert after == ["this line runs (kill defers)"]
    assert proc.state == Process.KILLED


def test_pause_defers_delay_resumption():
    sim = Simulator()
    marks = []

    def body():
        yield 10.0
        marks.append(sim.now)

    proc = sim.spawn(body())
    sim.schedule(5.0, proc.pause)
    sim.schedule(50.0, proc.resume)
    sim.run()
    assert marks == [50.0]


def test_pause_defers_future_resolution():
    sim = Simulator()
    future = sim.new_future()
    marks = []

    def body():
        value = yield future
        marks.append((sim.now, value))

    proc = sim.spawn(body())
    proc.pause()
    sim.schedule(5.0, future.resolve, "x")
    sim.schedule(20.0, proc.resume)
    sim.run()
    assert marks == [(20.0, "x")]


def test_resume_without_pause_is_noop():
    sim = Simulator()

    def body():
        yield 1.0

    proc = sim.spawn(body())
    proc.resume()
    sim.run()
    assert proc.state == Process.DONE


def test_unsupported_yield_raises():
    sim = Simulator()

    def body():
        yield "nonsense"

    sim.spawn(body())
    with pytest.raises(TypeError, match="unsupported"):
        sim.run()


def test_double_start_rejected():
    sim = Simulator()

    def body():
        yield 1.0

    proc = sim.spawn(body())
    with pytest.raises(RuntimeError):
        proc.start()


def test_future_double_resolve_rejected():
    sim = Simulator()
    future = sim.new_future()
    future.resolve(1)
    with pytest.raises(RuntimeError):
        future.resolve(2)


def test_future_callback_after_resolution_fires_immediately():
    sim = Simulator()
    future = sim.new_future()
    future.resolve("done")
    seen = []
    future.add_callback(lambda f: seen.append(f.value))
    assert seen == ["done"]
