"""Unit tests for the event queue."""

from repro.sim.events import Event, EventQueue


def test_push_pop_in_time_order():
    q = EventQueue()
    fired = []
    q.push(5.0, fired.append, ("b",))
    q.push(1.0, fired.append, ("a",))
    q.push(9.0, fired.append, ("c",))
    order = []
    while True:
        event = q.pop()
        if event is None:
            break
        order.append(event.time)
    assert order == [1.0, 5.0, 9.0]


def test_same_time_fifo_order():
    q = EventQueue()
    events = [q.push(3.0, lambda: None, ()) for _ in range(5)]
    popped = [q.pop() for _ in range(5)]
    assert [e.seq for e in popped] == [e.seq for e in events]


def test_priority_breaks_time_ties():
    q = EventQueue()
    low = q.push(3.0, lambda: None, (), priority=5)
    high = q.push(3.0, lambda: None, (), priority=-5)
    assert q.pop() is high
    assert q.pop() is low


def test_cancelled_events_are_skipped():
    q = EventQueue()
    keep = q.push(1.0, lambda: None, ())
    drop = q.push(0.5, lambda: None, ())
    drop.cancel()
    assert q.pop() is keep
    assert q.pop() is None


def test_cancel_is_idempotent():
    q = EventQueue()
    event = q.push(1.0, lambda: None, ())
    event.cancel()
    event.cancel()
    assert q.pop() is None


def test_len_ignores_cancelled():
    q = EventQueue()
    a = q.push(1.0, lambda: None, ())
    q.push(2.0, lambda: None, ())
    assert len(q) == 2
    a.cancel()
    assert len(q) == 1


def test_peek_time_skips_cancelled():
    q = EventQueue()
    first = q.push(1.0, lambda: None, ())
    q.push(2.0, lambda: None, ())
    first.cancel()
    assert q.peek_time() == 2.0


def test_peek_time_empty_is_none():
    assert EventQueue().peek_time() is None


def test_clear_empties_queue():
    q = EventQueue()
    q.push(1.0, lambda: None, ())
    q.clear()
    assert q.pop() is None


def test_len_is_exact_under_mixed_push_cancel_pop():
    # The live-size counter is O(1); it must agree with a full scan
    # through an arbitrary interleaving of push/cancel/pop.
    q = EventQueue()
    held = []
    for i in range(200):
        held.append(q.push(float(i % 13), lambda: None, ()))
        if i % 3 == 0:
            held[i // 2].cancel()
        if i % 7 == 0:
            q.pop()
    scan = sum(1 for event in q._heap if not event.cancelled)
    assert len(q) == scan

    while q.pop() is not None:
        pass
    assert len(q) == 0


def test_cancel_is_idempotent_for_len():
    q = EventQueue()
    event = q.push(1.0, lambda: None, ())
    q.push(2.0, lambda: None, ())
    event.cancel()
    event.cancel()
    assert len(q) == 1


def test_cancel_after_pop_does_not_corrupt_len():
    q = EventQueue()
    event = q.push(1.0, lambda: None, ())
    q.push(2.0, lambda: None, ())
    assert q.pop() is event
    event.cancel()  # already out of the queue: must not double-count
    assert len(q) == 1


def test_cancel_after_clear_is_safe():
    q = EventQueue()
    event = q.push(1.0, lambda: None, ())
    q.clear()
    event.cancel()
    assert len(q) == 0


def test_compaction_when_cancelled_dominate():
    # Cancel-heavy churn (the retransmission-timer pattern) must not
    # inflate the heap: once dead entries dominate, the queue rebuilds.
    q = EventQueue()
    survivors = []
    for i in range(500):
        doomed = q.push(1_000.0 + i, lambda: None, ())
        if i % 50 == 0:
            survivors.append(q.push(2_000.0 + i, lambda: None, ()))
        doomed.cancel()
    assert len(q) == len(survivors)
    assert len(q._heap) <= 2 * len(survivors) + EventQueue.COMPACT_MIN

    # Compaction preserves ordering: survivors pop in schedule order.
    popped = [q.pop() for _ in range(len(survivors))]
    assert popped == survivors
    assert q.pop() is None


def test_cancel_then_peek_compacts_front():
    q = EventQueue()
    first = q.push(1.0, lambda: None, ())
    second = q.push(2.0, lambda: None, ())
    first.cancel()
    assert q.peek_time() == 2.0
    # peek discarded the cancelled front entry outright.
    assert q._heap == [second]
    assert len(q) == 1


def test_event_repr_mentions_state():
    event = Event(1.0, 0, 0, lambda: None, ())
    assert "pending" in repr(event)
    event.cancel()
    assert "cancelled" in repr(event)
