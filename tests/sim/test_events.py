"""Unit tests for the event queue."""

from repro.sim.events import Event, EventQueue


def test_push_pop_in_time_order():
    q = EventQueue()
    fired = []
    q.push(5.0, fired.append, ("b",))
    q.push(1.0, fired.append, ("a",))
    q.push(9.0, fired.append, ("c",))
    order = []
    while True:
        event = q.pop()
        if event is None:
            break
        order.append(event.time)
    assert order == [1.0, 5.0, 9.0]


def test_same_time_fifo_order():
    q = EventQueue()
    events = [q.push(3.0, lambda: None, ()) for _ in range(5)]
    popped = [q.pop() for _ in range(5)]
    assert [e.seq for e in popped] == [e.seq for e in events]


def test_priority_breaks_time_ties():
    q = EventQueue()
    low = q.push(3.0, lambda: None, (), priority=5)
    high = q.push(3.0, lambda: None, (), priority=-5)
    assert q.pop() is high
    assert q.pop() is low


def test_cancelled_events_are_skipped():
    q = EventQueue()
    keep = q.push(1.0, lambda: None, ())
    drop = q.push(0.5, lambda: None, ())
    drop.cancel()
    assert q.pop() is keep
    assert q.pop() is None


def test_cancel_is_idempotent():
    q = EventQueue()
    event = q.push(1.0, lambda: None, ())
    event.cancel()
    event.cancel()
    assert q.pop() is None


def test_len_ignores_cancelled():
    q = EventQueue()
    a = q.push(1.0, lambda: None, ())
    q.push(2.0, lambda: None, ())
    assert len(q) == 2
    a.cancel()
    assert len(q) == 1


def test_peek_time_skips_cancelled():
    q = EventQueue()
    first = q.push(1.0, lambda: None, ())
    q.push(2.0, lambda: None, ())
    first.cancel()
    assert q.peek_time() == 2.0


def test_peek_time_empty_is_none():
    assert EventQueue().peek_time() is None


def test_clear_empties_queue():
    q = EventQueue()
    q.push(1.0, lambda: None, ())
    q.clear()
    assert q.pop() is None


def test_event_repr_mentions_state():
    event = Event(1.0, 0, 0, lambda: None, ())
    assert "pending" in repr(event)
    event.cancel()
    assert "cancelled" in repr(event)
