"""Safe client-side retry (repro.recovery.retry).

The discipline under test (docs/RECOVERY.md): re-issue only what
provably never executed; gate ambiguous re-issues on a fresh server
incarnation; otherwise surface MAYBE rather than risking a double
execution.
"""

from repro.core import Buffer, ClientProgram, KernelConfig, Network
from repro.core.patterns import make_well_known_pattern
from repro.recovery import FailureDetector, RetryOutcome, RetryPolicy, retry_request

from tests.conftest import ScriptedClient

PATTERN = make_well_known_pattern(0o713)
RUN_US = 30_000_000.0


def fast_probe_config() -> KernelConfig:
    return KernelConfig(probe_interval_us=50_000.0)


class PayloadServer(ClientProgram):
    """Echo server recording the payload of every executed exchange;
    optionally stalls in the handler before ACCEPTing."""

    def __init__(self, accept_delay_us: float = 0.0):
        self.accept_delay_us = accept_delay_us
        self.payloads = []

    def initialization(self, api, parent_mid):
        yield from api.advertise(PATTERN)

    def handler(self, api, event):
        if not event.is_arrival:
            return
        if self.accept_delay_us:
            yield api.compute(self.accept_delay_us)
        buf = Buffer(event.put_size)
        yield from api.accept_current_exchange(get=buf, put=b"pong")
        self.payloads.append(buf.data)


def retry_body(policy=None, detector=None):
    def body(api, self):
        outcome = yield from retry_request(
            api, PATTERN, put=b"op", get=16, policy=policy, detector=detector
        )
        return outcome

    return body


def test_fault_free_completes_first_attempt():
    net = Network(seed=3)
    server = PayloadServer()
    net.add_node(program=server, name="server")
    client = ScriptedClient(retry_body())
    net.add_node(program=client, name="client", boot_at_us=100.0)
    net.run(until=RUN_US)

    outcome = client.result
    assert isinstance(outcome, RetryOutcome)
    assert outcome.status == "completed" and outcome.completed
    assert outcome.attempts == 1
    assert server.payloads == [b"op"]
    assert net.sim.trace.count("recovery.retry") == 0


def test_no_server_ever_fails_without_attempting():
    net = Network(seed=4)
    policy = RetryPolicy(max_attempts=3, deadline_us=800_000.0)
    client = ScriptedClient(retry_body(policy))
    net.add_node(program=client, name="client", boot_at_us=100.0)
    net.run(until=RUN_US)

    outcome = client.result
    assert outcome.status == "failed"
    assert outcome.attempts == 0  # nothing resolved, nothing issued


def test_probe_proof_failure_is_retried_to_completion():
    # The server's client DIEs holding the REQUEST DELIVERED-but-not-
    # ACCEPTed; a fresh incarnation boots on the node.  The probe answers
    # arg=2 ("provably never executed"), so the shim re-issues against
    # the new incarnation and the op executes exactly once overall.
    net = Network(seed=5, config=fast_probe_config())
    first = PayloadServer(accept_delay_us=400_000.0)
    second = PayloadServer()
    server_node = net.add_node(program=first, name="server")
    client = ScriptedClient(retry_body())
    net.add_node(program=client, name="client", boot_at_us=100.0)

    def die_and_replace():
        server_node.crash_client()
        server_node.client = None
        server_node.install_program(second, boot_at_us=net.sim.now + 10_000.0)

    net.sim.schedule(100_000.0, die_and_replace)  # inside the stall
    net.run(until=RUN_US)

    outcome = client.result
    assert outcome.status == "completed"
    assert outcome.attempts == 2
    assert first.payloads == []  # the dead incarnation never executed it
    assert second.payloads == [b"op"]  # exactly once, on the new one
    retries = [
        r for r in net.sim.trace.records if r.category == "recovery.retry"
    ]
    assert len(retries) == 1 and retries[0]["reason"] == "crashed"


def test_power_failure_without_detector_resolves_to_maybe():
    # A node crash wipes the crashed-unaccepted memory (§3.6.1), so the
    # requester cannot prove non-execution.  With no epoch witness the
    # shim must NOT blindly re-issue: the outcome is MAYBE.
    net = Network(seed=6, config=fast_probe_config())
    server = PayloadServer(accept_delay_us=400_000.0)
    server_node = net.add_node(program=server, name="server")
    client = ScriptedClient(retry_body())
    net.add_node(program=client, name="client", boot_at_us=100.0)

    net.sim.schedule(100_000.0, server_node.crash)
    net.run(until=RUN_US)

    outcome = client.result
    assert outcome.status == "maybe" and outcome.maybe
    assert outcome.attempts == 1
    assert server.payloads == []  # and it was never executed twice
    assert net.sim.trace.count("recovery.maybe") == 1
    assert net.sim.trace.count("recovery.retry") == 0


def test_ambiguous_retry_waits_for_epoch_bump():
    # Same power failure, but a FailureDetector supplies incarnation
    # epochs: once the node boots a fresh client (epoch +1), the wiped
    # state makes a re-issue safe and the op completes.
    net = Network(seed=7, config=fast_probe_config())
    first = PayloadServer(accept_delay_us=400_000.0)
    second = PayloadServer()
    server_node = net.add_node(program=first, name="server")
    detector = FailureDetector().install(net)
    client = ScriptedClient(retry_body(detector=detector))
    net.add_node(program=client, name="client", boot_at_us=100.0)

    def crash():
        server_node.crash()
        quiet = net.config.deltat.crash_quiet_us
        server_node.client = None
        server_node.install_program(
            second, boot_at_us=net.sim.now + quiet + 50_000.0
        )

    net.sim.schedule(100_000.0, crash)
    net.run(until=RUN_US)

    outcome = client.result
    assert outcome.status == "completed"
    assert outcome.attempts == 2
    assert second.payloads == [b"op"]
    assert detector.epoch(0) == 2
    retries = [
        r for r in net.sim.trace.records if r.category == "recovery.retry"
    ]
    assert [r["reason"] for r in retries] == ["epoch_advanced"]


def test_backoff_is_capped():
    policy = RetryPolicy(
        backoff_base_us=100.0, backoff_factor=10.0, backoff_max_us=5_000.0
    )
    assert policy.backoff_us(0) == 100.0
    assert policy.backoff_us(1) == 1_000.0
    assert policy.backoff_us(5) == 5_000.0
