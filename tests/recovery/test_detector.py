"""FailureDetector: per-(node, epoch) liveness from trace records."""

from repro.core import KernelConfig, Network
from repro.recovery import FailureDetector, NodeState
from repro.sim.tracing import TraceRecord

from tests.conftest import ECHO_PATTERN, EchoServer, ScriptedClient, make_pair


def rec(time, category, **fields):
    return TraceRecord(time, category, fields)


# ---------------------------------------------------------------------------
# Pure state-machine behaviour (synthetic records).


def test_boot_advances_epoch_and_marks_alive():
    det = FailureDetector().ingest([rec(10.0, "kernel.boot_handler", mid=3)])
    view = det.view(3)
    assert (view.epoch, view.state, view.boots) == (1, NodeState.ALIVE, 1)
    assert det.alive(3)


def test_crash_report_makes_suspect_and_counts_false_suspicion():
    det = FailureDetector().ingest(
        [
            rec(0.0, "kernel.boot_handler", mid=0),
            rec(5.0, "kernel.crash_report", mid=1, peer=0),
        ]
    )
    assert det.state(0) is NodeState.SUSPECT
    assert det.suspected(0)
    # The node was ALIVE per ground truth, so the report is a false
    # suspicion (legitimate only under injected faults).
    assert det.false_suspicions == 1
    assert det.total_crash_reports == 1


def test_ground_truth_death_beats_crash_reports():
    det = FailureDetector().ingest(
        [
            rec(0.0, "kernel.boot_handler", mid=0),
            rec(5.0, "kernel.die", mid=0),
            rec(9.0, "kernel.crash_report", mid=1, peer=0),
        ]
    )
    # Reports about a known-dead incarnation are not suspicions: the
    # detector already knows, and DEAD is sticky until the next boot.
    assert det.state(0) is NodeState.DEAD
    assert det.false_suspicions == 0
    assert det.view(0).deaths == 1


def test_reboot_starts_a_fresh_incarnation():
    det = FailureDetector().ingest(
        [
            rec(0.0, "kernel.boot_handler", mid=0),
            rec(5.0, "kernel.crash_report", mid=1, peer=0),
            rec(8.0, "kernel.die", mid=0),
            rec(20.0, "kernel.boot_handler", mid=0),
        ]
    )
    view = det.view(0)
    # Epoch advanced; per-epoch report count reset; lifetime totals kept.
    assert (view.epoch, view.state) == (2, NodeState.ALIVE)
    assert view.crash_reports == 0
    assert view.total_crash_reports == 1


def test_restored_corroborates_alive():
    det = FailureDetector().ingest(
        [
            rec(0.0, "kernel.boot_handler", mid=0),
            rec(5.0, "kernel.crash_report", mid=2, peer=0),
            rec(9.0, "recovery.restored", mid=1, service_mid=0),
        ]
    )
    assert det.state(0) is NodeState.ALIVE
    assert det.view(0).crash_reports == 0


def test_summary_is_deterministic_and_sorted():
    records = [
        rec(0.0, "kernel.boot_handler", mid=2),
        rec(1.0, "kernel.boot_handler", mid=0),
        rec(2.0, "kernel.crash_report", mid=0, peer=2),
    ]
    one = FailureDetector().ingest(records).summary()
    two = FailureDetector().ingest(records).summary()
    assert one == two
    assert [node["mid"] for node in one["nodes"]] == [0, 2]


# ---------------------------------------------------------------------------
# Live observation of a real network (satellite: epoch bump on reboot).


def test_epoch_bumps_on_observed_reboot():
    net = Network(seed=5, config=KernelConfig(probe_interval_us=50_000.0))
    detector = FailureDetector().install(net)
    server_node = net.add_node(program=EchoServer(), name="server")

    def body(api, self):
        sig = yield from api.discover(ECHO_PATTERN)
        completion = yield from api.b_signal(sig)
        return completion.status

    net.add_node(program=ScriptedClient(body), name="client", boot_at_us=100.0)

    def die_then_reboot():
        server_node.crash_client()
        server_node.client = None
        server_node.install_program(
            EchoServer(), boot_at_us=net.sim.now + 100_000.0
        )

    net.sim.schedule(500_000.0, die_then_reboot)
    net.run(until=5_000_000.0)

    view = detector.view(0)
    assert view.epoch == 2  # first boot + reboot
    assert view.boots == 2
    assert view.deaths == 1
    assert view.state is NodeState.ALIVE  # the new incarnation is up
    # The DIE itself was ground truth, not a peer report.
    assert detector.false_suspicions == 0


def test_install_is_exclusive_and_uninstall_detaches():
    net = Network(seed=1)
    detector = FailureDetector().install(net)
    try:
        detector.install(net)
    except RuntimeError:
        pass
    else:  # pragma: no cover
        raise AssertionError("double install must raise")
    detector.uninstall()
    net.add_node(program=EchoServer(), name="server")
    net.run(until=200_000.0)
    assert detector.views == {}  # detached before the boot record


def test_fault_free_run_has_zero_crash_reports(network):
    detector = FailureDetector().install(network)
    server = EchoServer()

    def body(api, self):
        sig = yield from api.discover(ECHO_PATTERN)
        completion = yield from api.b_exchange(sig, put=b"hi", get=16)
        return completion.status

    make_pair(network, server, body)
    network.run(until=5_000_000.0)
    assert detector.total_crash_reports == 0
    assert detector.false_suspicions == 0
    assert detector.state(0) is NodeState.ALIVE
