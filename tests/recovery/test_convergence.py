"""The self-heal judgment and the recovery digest (repro.recovery.convergence)."""

from repro.analysis.workloads import build_workload
from repro.chaos import GRACE_US, ClientDie, Scenario
from repro.recovery import SELF_HEAL_BOUND_US, check_self_heal, recovery_summary
from repro.sim.tracing import TraceRecord


def rec(time, category, **fields):
    return TraceRecord(time, category, fields)


def test_unsupervised_workload_is_exempt():
    built = build_workload("echo")
    built.net.run(until=built.spec.until_us)
    assert check_self_heal(built, 0.0) == []


def test_unhealed_crash_is_a_problem():
    # Kill the server and gag the supervisor's reboot path by pointing
    # its one service at a mid that never advertises — the detection
    # then has no matching restore and the bound expires.
    built = build_workload("supervised")
    supervisor = built.net.nodes[1].kernel.client.program
    service = supervisor.services[0]
    object.__setattr__(service, "mid", 9)  # frozen dataclass, test-only
    scenario = Scenario("kill", (ClientDie(15_000.0, role="server"),))
    scenario.apply(built)
    built.net.run(
        until=max(
            built.spec.until_us, scenario.last_action_us + 2 * GRACE_US
        )
    )
    problems = check_self_heal(built, scenario.last_action_us)
    assert problems, "a dead supervised service must fail the judgment"
    assert any("no live client" in p or "not restored" in p for p in problems)


def test_restore_outside_bound_is_a_problem():
    built = build_workload("supervised")
    built.net.run(until=100_000.0)  # healthy; we fake the trace below
    records = built.net.sim.trace.records
    records.append(rec(50_000.0, "recovery.crash_detected", mid=1, service_mid=0))
    records.append(
        rec(
            60_000.0 + 2 * SELF_HEAL_BOUND_US,
            "recovery.restored",
            mid=1,
            service_mid=0,
        )
    )
    problems = check_self_heal(built, last_fault_us=50_000.0)
    assert any("not restored within" in p for p in problems)
    # With a bound generous enough to cover the gap, the same trace passes.
    assert check_self_heal(
        built, last_fault_us=50_000.0, bound_us=3 * SELF_HEAL_BOUND_US
    ) == []


def test_recovery_summary_counts_and_epochs():
    summary = recovery_summary(
        [
            rec(0.0, "kernel.boot_handler", mid=0),
            rec(1.0, "kernel.boot_handler", mid=1),
            rec(4.0, "kernel.die", mid=0),
            rec(5.0, "kernel.crash_report", mid=1, peer=0),
            rec(6.0, "recovery.crash_detected", mid=1, service_mid=0),
            rec(7.0, "recovery.reboot", mid=1, service_mid=0),
            rec(8.0, "kernel.boot_handler", mid=0),
            rec(9.0, "recovery.restored", mid=1, service_mid=0),
            rec(10.0, "recovery.retry", mid=2, target=0),
            rec(11.0, "recovery.maybe", mid=2),
        ]
    )
    assert summary["counts"] == {
        "ambiguous_maybes": 1,
        "crash_reports": 1,
        "crashes_detected": 1,
        "escalations": 0,
        "reboots_issued": 1,
        "restored": 1,
        "retries": 1,
    }
    assert summary["epochs"] == {"0": 2, "1": 1}
    assert summary["false_suspicions"] == 0
