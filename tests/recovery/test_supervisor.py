"""Supervision: DISCOVER health polls, BOOT/LOAD reboots, escalation."""

from repro.analysis.workloads import build_workload
from repro.chaos import GRACE_US, ClientDie, NodeCrash, Scenario
from repro.recovery import RestartPolicy, SupervisorProgram, check_self_heal


def run_supervised(actions, until_us=10_000_000.0, policy=None):
    built = build_workload("supervised")
    if policy is not None:
        supervisor = built.net.nodes[1].kernel.client.program
        assert isinstance(supervisor, SupervisorProgram)
        supervisor.policy = policy
    scenario = Scenario("scripted", tuple(actions))
    scenario.apply(built)
    horizon = max(until_us, scenario.last_action_us + 2 * GRACE_US)
    built.net.run(until=horizon)
    return built, scenario


def supervisor_of(built) -> SupervisorProgram:
    return built.net.nodes[1].kernel.client.program


def test_die_is_detected_and_rebooted():
    built, scenario = run_supervised([ClientDie(15_000.0, role="server")])
    trace = built.net.sim.trace
    assert trace.count("recovery.crash_detected") == 1
    assert trace.count("recovery.reboot") >= 1
    assert trace.count("recovery.restored") >= 1
    assert trace.count("recovery.escalated") == 0
    # The healed service is advertised again at the horizon.
    assert check_self_heal(built, scenario.last_action_us) == []
    run = supervisor_of(built).runtime["server"]
    assert run.crashes_detected == 1
    assert run.reboots >= 1
    assert not run.down


def test_power_failure_is_detected_and_rebooted():
    # A NodeCrash loses the whole kernel; the node re-advertises its boot
    # pattern after the Delta-t quiet period and the supervisor rebuilds
    # the service from its ProgramImage.
    built, scenario = run_supervised([NodeCrash(334_000.0, role="server")])
    trace = built.net.sim.trace
    assert trace.count("kernel.crash") == 1
    assert trace.count("recovery.reboot") >= 1
    assert trace.count("recovery.restored") >= 1
    assert check_self_heal(built, scenario.last_action_us) == []


def test_restore_ordering_detect_then_reboot_then_restore():
    built, _ = run_supervised([ClientDie(15_000.0, role="server")])
    times = {}
    for record in built.net.sim.trace.records:
        if record.category in (
            "recovery.suspect",
            "recovery.crash_detected",
            "recovery.reboot",
            "recovery.restored",
        ):
            times.setdefault(record.category, record.time)
    assert (
        times["recovery.suspect"]
        <= times["recovery.crash_detected"]
        <= times["recovery.reboot"]
        <= times["recovery.restored"]
    )


def test_exhausted_restart_budget_escalates():
    # One restart allowed: the second crash exhausts the budget and the
    # supervisor gives the service up (and the self-heal judgment calls
    # that a failure — a supervised service must not stay down).
    built, scenario = run_supervised(
        [
            ClientDie(15_000.0, role="server"),
            ClientDie(2_500_000.0, role="server"),
        ],
        policy=RestartPolicy(max_restarts=1),
    )
    trace = built.net.sim.trace
    assert trace.count("recovery.escalated") == 1
    run = supervisor_of(built).runtime["server"]
    assert run.escalated
    assert run.reboots == 1  # the budget, fully spent
    problems = check_self_heal(built, scenario.last_action_us)
    assert any("escalated" in p for p in problems)
    # After escalation the supervisor stops polling the service: no
    # reboot attempts follow the escalation record.
    escalated_at = next(
        r.time
        for r in trace.records
        if r.category == "recovery.escalated"
    )
    late_attempts = [
        r
        for r in trace.records
        if r.category == "recovery.reboot_attempt" and r.time > escalated_at
    ]
    assert late_attempts == []


def test_single_missed_poll_does_not_reboot():
    # Fault-free run: the supervisor never suspects, never reboots.
    built, scenario = run_supervised([])
    trace = built.net.sim.trace
    assert trace.count("recovery.suspect") == 0
    assert trace.count("recovery.crash_detected") == 0
    assert trace.count("recovery.reboot_attempt") == 0
    assert check_self_heal(built, scenario.last_action_us) == []
