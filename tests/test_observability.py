"""Tier-1 gate for the observability subsystem (repro.obs).

Runs canned workloads through the metrics hub and checks the contract
the docs promise: spans match completed transactions, bus utilization is
sane, live and post-hoc collection agree, and exports are deterministic.
"""

import json

from repro.analysis.workloads import run_workload
from repro.obs import MetricsHub
from repro.__main__ import main


def _report(name):
    return MetricsHub().ingest(run_workload(name))


def test_span_count_matches_completed_transactions():
    net = run_workload("echo")
    report = MetricsHub().ingest(net)
    client = net.nodes[1].kernel.node.client.program
    completed = [
        span
        for span in report.completed_spans
        if not span.is_discover
    ]
    # The echo client ran 4 blocking exchanges to completion.
    assert len(client.completions) == 4
    assert len(completed) == 4
    assert all(span.verb == "exchange" for span in completed)
    # Every reconstructed span completion is also counted by the kernel.
    assert net.sim.trace.count("kernel.complete") == len(
        report.completed_spans
    )


def test_bus_utilization_in_unit_interval():
    report = _report("echo")
    utilization = report.snapshot["bus.utilization"]["value"]
    assert 0.0 < utilization <= 1.0


def test_key_metrics_present():
    report = _report("echo")
    names = set(report.snapshot)
    for required in (
        "kernel.tx_packets",
        "kernel.rx_packets",
        "kernel.requests",
        "kernel.completions",
        "bus.utilization",
        "cost.total_us",
        "transport.rtt_us",
        "txn.latency_ms.exchange",
    ):
        assert required in names, required


def test_live_and_posthoc_collection_agree():
    from repro.analysis.workloads import build_workload

    # Live: attach the hub before the run via a tracer sink.
    built = build_workload("echo")
    live_hub = MetricsHub()
    live_hub.install(built.net)
    net_live = built.run()
    live = live_hub.report()

    posthoc = MetricsHub().ingest(run_workload("echo"))
    assert live.snapshot == posthoc.snapshot
    assert [s.to_dict() for s in live.spans] == [
        s.to_dict() for s in posthoc.spans
    ]
    assert net_live.sim.trace.count("kernel.request") > 0


def test_records_only_ingest_matches_network_ingest():
    """ingest_records (no live network) produces the same record-driven
    metrics and spans as a full ingest; only pull-collected layer gauges
    are absent, and the supplied ledger flows to the report."""
    net = run_workload("echo")
    full = MetricsHub().ingest(net)
    bare = MetricsHub().ingest_records(
        net.sim.trace.records, ledger=net.ledger.snapshot()
    )
    assert bare.ledger == full.ledger
    assert [s.to_dict() for s in bare.spans] == [
        s.to_dict() for s in full.spans
    ]
    for name, data in bare.snapshot.items():
        if data["type"] in ("counter", "histogram") or name.startswith(
            "txn."
        ):
            assert full.snapshot[name] == data, name
    # Pull-only gauges need live layer objects and are rightly absent.
    assert "bus.utilization" in full.snapshot
    assert "bus.utilization" not in bare.snapshot


def test_same_seed_runs_export_identically():
    first = _report("signal").to_dict()
    second = _report("signal").to_dict()
    assert json.dumps(first, sort_keys=True) == json.dumps(
        second, sort_keys=True
    )


def test_metrics_cli(capsys, tmp_path):
    json_path = tmp_path / "BENCH_metrics.json"
    jsonl_path = tmp_path / "metrics.jsonl"
    rc = main(
        [
            "metrics",
            "signal",
            "--json",
            str(json_path),
            "--jsonl",
            str(jsonl_path),
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0
    # Latency histogram and cost breakdown both printed.
    assert "txn.latency_ms.signal" in out
    assert "Cost breakdown" in out
    assert "protocol" in out
    payload = json.loads(json_path.read_text())
    assert payload["schema"] == "soda.bench/1"
    assert payload["kind"] == "metrics"
    assert payload["meta"] == {"workload": "signal"}
    assert payload["body"]["spans"]["completed"] == 6
    assert jsonl_path.exists()
    lines = jsonl_path.read_text().splitlines()
    assert lines and all(json.loads(line)["name"] for line in lines)


def test_metrics_cli_rejects_unknown_workload(capsys):
    rc = main(["metrics", "nope"])
    assert rc == 1
    assert "unknown workload" in capsys.readouterr().out
