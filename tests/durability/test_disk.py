"""Disk backends and the fault disk's crash-consistency model.

The FaultDisk is the instrument every durability claim is measured
with, so its own semantics get pinned first: writes pend until fsync,
power loss drops (or tears) the pending stream, fsync lies exactly as
scripted, bit-rot touches only durable bytes, and the full-disk budget
rejects without corrupting.
"""

import pytest

from repro.durability.disk import (
    DiskError,
    DiskFaultPlan,
    DiskFullError,
    FaultDisk,
    FileDisk,
    SimDisk,
)
from repro.sim.tracing import CostLedger


# -- honest backends ----------------------------------------------------


@pytest.fixture(params=["sim", "file"])
def disk(request, tmp_path):
    if request.param == "sim":
        return SimDisk()
    return FileDisk(str(tmp_path / "disk"))


def test_write_read_roundtrip(disk):
    disk.write("f", 0, b"hello")
    assert disk.read("f") == b"hello"
    assert disk.size("f") == 5
    assert disk.exists("f")
    assert "f" in disk.list_files()


def test_append_returns_offset(disk):
    assert disk.append("f", b"abc") == 0
    assert disk.append("f", b"def") == 3
    assert disk.read("f") == b"abcdef"


def test_write_past_end_zero_fills(disk):
    disk.write("f", 4, b"xy")
    assert disk.read("f") == b"\x00\x00\x00\x00xy"


def test_overwrite_in_place(disk):
    disk.write("f", 0, b"aaaa")
    disk.write("f", 1, b"bb")
    assert disk.read("f") == b"abba"


def test_truncate(disk):
    disk.write("f", 0, b"abcdef")
    disk.truncate("f", 2)
    assert disk.read("f") == b"ab"


def test_rename_replaces_target(disk):
    disk.write("a", 0, b"one")
    disk.write("b", 0, b"two")
    disk.rename("a", "b")
    assert disk.read("b") == b"one"
    assert not disk.exists("a")


def test_delete_is_forgiving(disk):
    disk.delete("nope")
    disk.write("f", 0, b"x")
    disk.delete("f")
    assert not disk.exists("f")


def test_read_missing_raises(disk):
    with pytest.raises(DiskError):
        disk.read("missing")
    with pytest.raises(DiskError):
        disk.size("missing")


def test_rename_missing_raises(disk):
    with pytest.raises(DiskError):
        disk.rename("missing", "other")


def test_filedisk_rejects_path_escapes(tmp_path):
    disk = FileDisk(str(tmp_path / "d"))
    for bad in ("../evil", "a/b", ".hidden"):
        with pytest.raises(DiskError):
            disk.write(bad, 0, b"x")


def test_simdisk_charges_disk_io_to_ledger():
    ledger = CostLedger()
    disk = SimDisk(ledger=ledger)
    disk.write("f", 0, b"x" * 100)
    disk.fsync("f")
    disk.read("f")
    charged = ledger.get("disk_io")
    assert charged > 0
    # The category is registered: the invariant checker treats unknown
    # categories as a ledger violation.
    assert "disk_io" in CostLedger.CATEGORIES


# -- fault disk: page-cache semantics -----------------------------------


def test_unsynced_writes_visible_but_not_durable():
    fd = FaultDisk(SimDisk())
    fd.write("f", 0, b"data")
    assert fd.read("f") == b"data"  # the program sees its own writes
    fd.power_loss()
    assert fd.read("f") == b""  # ...but nothing was durable


def test_fsync_makes_writes_durable():
    fd = FaultDisk(SimDisk())
    fd.write("f", 0, b"data")
    fd.fsync("f")
    fd.write("f", 4, b"more")
    fd.power_loss()
    assert fd.read("f") == b"data"  # synced prefix survives, tail gone


def test_power_loss_with_torn_writes_keeps_a_strict_prefix():
    plan = DiskFaultPlan(seed=3, torn_write_probability=1.0)
    fd = FaultDisk(SimDisk(), plan)
    fd.write("f", 0, b"aaaa")
    fd.write("f", 4, b"bbbb")
    fd.power_loss()
    survived = fd.read("f")
    assert b"aaaabbbb".startswith(survived)
    # Deterministic: same seed, same tear point.
    plan2 = DiskFaultPlan(seed=3, torn_write_probability=1.0)
    fd2 = FaultDisk(SimDisk(), plan2)
    fd2.write("f", 0, b"aaaa")
    fd2.write("f", 4, b"bbbb")
    fd2.power_loss()
    assert fd2.read("f") == survived


def test_dropped_fsync_lies():
    plan = DiskFaultPlan(fsync_drop_next=1)
    fd = FaultDisk(SimDisk(), plan)
    fd.write("f", 0, b"data")
    fd.fsync("f")  # reports success, persists nothing
    assert plan.fsyncs_dropped == 1
    fd.power_loss()
    assert fd.read("f") == b""
    # The strike is spent: the next fsync is honest.
    fd.write("f", 0, b"data")
    fd.fsync("f")
    fd.power_loss()
    assert fd.read("f") == b"data"


def test_partial_fsync_persists_a_prefix_of_pending_writes():
    plan = DiskFaultPlan(seed=5, fsync_partial_probability=1.0)
    fd = FaultDisk(SimDisk(), plan)
    for i in range(8):
        fd.write("f", i, bytes([65 + i]))
    fd.fsync("f")
    assert plan.fsyncs_partial == 1
    fd.power_loss()
    assert b"ABCDEFGH".startswith(fd.read("f"))


def test_bitrot_flips_durable_bits_only():
    plan = DiskFaultPlan(seed=9)
    fd = FaultDisk(SimDisk(), plan)
    fd.write("wal-0.log", 0, b"\x00" * 64)
    fd.fsync("wal-0.log")
    fd.write("wal-0.log", 64, b"\x00" * 8)  # pending, must stay clean
    flipped = fd.flip_bits("wal", 2)
    assert flipped == 2 and plan.bits_flipped == 2
    durable = fd.inner.read("wal-0.log")
    assert sum(bin(b).count("1") for b in durable) == 2
    # The pending overlay is untouched.
    assert fd.read("wal-0.log")[64:] == b"\x00" * 8


def test_bitrot_without_matching_durable_files_is_a_noop():
    fd = FaultDisk(SimDisk(), DiskFaultPlan(seed=1))
    fd.write("other", 0, b"x")  # pending only
    assert fd.flip_bits("wal", 3) == 0


def test_full_disk_rejects_writes_after_budget():
    plan = DiskFaultPlan(full_after_bytes=10)
    fd = FaultDisk(SimDisk(), plan)
    fd.write("f", 0, b"12345")  # 5 of 10
    fd.write("f", 5, b"12345")  # 10 of 10
    with pytest.raises(DiskFullError):
        fd.write("f", 10, b"x")
    assert plan.writes_rejected_full == 1
    fd.fsync("f")
    assert fd.read("f") == b"1234512345"  # accepted bytes intact


def test_rename_is_atomic_install_over_pending_state():
    fd = FaultDisk(SimDisk())
    fd.write("snap.tmp", 0, b"blob")
    fd.fsync("snap.tmp")
    fd.rename("snap.tmp", "snap-1")
    fd.power_loss()
    assert fd.read("snap-1") == b"blob"
    assert not fd.exists("snap.tmp")


def test_fault_disk_over_filedisk(tmp_path):
    """The same fault model runs over real files (netreal backend)."""
    fd = FaultDisk(FileDisk(str(tmp_path / "d")), DiskFaultPlan(seed=2))
    fd.write("f", 0, b"keep")
    fd.fsync("f")
    fd.write("f", 4, b"lose")
    fd.power_loss()
    assert fd.read("f") == b"keep"


def test_plan_validates_probabilities():
    with pytest.raises(ValueError):
        DiskFaultPlan(torn_write_probability=1.5)
    with pytest.raises(ValueError):
        DiskFaultPlan(fsync_partial_probability=-0.1)
