"""End-to-end recovery: replicas reboot from disk instead of amnesia.

These run whole KV workloads through the sim, crash nodes (with and
without durable disks), and judge the merged trace with the same
consistency checker the chaos matrix uses.  The regression pinned
here: a full-cluster crash used to silently empty the store — every
acknowledged write vanished and no checker noticed.
"""

import pytest

from repro.analysis.workloads import build_workload
from repro.chaos.runner import run_cell
from repro.chaos.scenario import GRACE_US, DiskFault, PowerLoss, Scenario
from repro.replication.consistency import check_kv_consistency

KV_ROLES = ("replica0", "replica1", "replica2")


def _run(workload, scenario=None, durable=True, seed=1):
    built = build_workload(workload, seed=seed, durable=durable)
    last = 0.0
    if scenario is not None:
        scenario.apply(built)
        last = scenario.last_action_us
    built.net.run(until=max(built.spec.until_us, last + 2 * GRACE_US))
    return built


def _records(built, category):
    return [r for r in built.net.sim.trace.records if r.category == category]


def _outcomes(built):
    return built.net.nodes[built.mid_of("client")].kernel.client.program.outcomes


def test_rebooted_replica_recovers_from_disk_not_amnesia():
    scenario = Scenario(
        name="one_power_loss",
        actions=(PowerLoss(at_us=2_000_000.0, roles=("replica1",)),),
    )
    built = _run("kvstore", scenario)
    recovers = _records(built, "kv.recover")
    from_disk = [r for r in recovers if r.fields.get("source") != "amnesia"]
    assert from_disk, "rebooted replica should have found its WAL"
    assert any(int(r.fields.get("entries", 0)) > 0 for r in from_disk)
    assert check_kv_consistency(built.net.sim.trace.records) == []


def test_full_cluster_power_loss_keeps_acknowledged_writes():
    """Every replica loses power at once; after reboot the cluster must
    still hold everything it acknowledged before the outage."""
    scenario = Scenario(
        name="blackout",
        actions=(PowerLoss(at_us=2_500_000.0, roles=KV_ROLES),),
    )
    built = _run("kvstore", scenario)
    assert check_kv_consistency(built.net.sim.trace.records) == []
    outcomes = _outcomes(built)
    assert outcomes and "ok" in set(outcomes.values())
    # Recovery actually replayed state: post-reboot applies re-cover
    # the pre-crash log rather than starting from zero.
    recovers = _records(built, "kv.recover")
    assert sum(int(r.fields.get("entries", 0)) for r in recovers) > 0


@pytest.mark.no_auto_invariants
def test_regression_amnesiac_cluster_crash_is_flagged_not_silent():
    """The bug this PR fixes: with diskless replicas, a full-cluster
    crash after acknowledged writes silently emptied the store.  The
    checker must now call that out explicitly — and stay silent when
    the same schedule runs over durable disks."""
    blackout = Scenario(
        name="late_blackout",
        actions=(PowerLoss(at_us=6_000_000.0, roles=KV_ROLES),),
    )
    amnesiac = _run("kvstore", blackout, durable=False)
    problems = check_kv_consistency(amnesiac.net.sim.trace.records)
    assert problems, "silent acknowledged-write loss went undetected"
    assert any("total state loss" in p for p in problems)

    durable = _run("kvstore", blackout, durable=True)
    assert check_kv_consistency(durable.net.sim.trace.records) == []


def test_torn_write_on_primary_recovers_cleanly():
    scenario = Scenario(
        name="torn_primary",
        actions=(
            DiskFault(at_us=0.0, role="replica0", kind="torn_write"),
            PowerLoss(at_us=2_000_000.0, roles=("replica0",)),
        ),
    )
    built = _run("kvstore", scenario)
    assert check_kv_consistency(built.net.sim.trace.records) == []


def test_bitrot_on_backup_detected_and_survived():
    result = run_cell("kvstore", "bitrot_backup", seed=1)
    assert result.ok, result.consistency_problems
    assert result.faults.get("disk_bits_flipped", 0) > 0


def test_cluster_power_loss_schedule_reports_zero_write_loss():
    """The acceptance cell: torn-write fault plans armed on every
    replica disk, whole-cluster power loss mid-load, zero acknowledged
    writes lost."""
    result = run_cell("kvstore", "cluster_power_loss", seed=1)
    assert result.ok, result.consistency_problems
    assert not any(
        "acknowledged write lost" in p for p in result.consistency_problems
    )
    assert result.faults.get("disk_torn_writes", 0) >= 1
