"""ReplicaStorage: WAL-over-snapshot recovery under injected crashes."""

import pytest

from repro.durability.disk import (
    DiskFaultPlan,
    FaultDisk,
    SimDisk,
)
from repro.durability.snapshot import snap_name
from repro.durability.state import ReplicaStorage
from repro.durability.wal import wal_name


def entry(i, epoch=1):
    return (epoch, 1, i % 4, 1000 + i, 0)


def reopen(disk, **kwargs):
    """A reboot: fresh storage over the same media."""
    return ReplicaStorage(disk, **kwargs)


def test_empty_disk_recovers_to_amnesia():
    assert ReplicaStorage(SimDisk()).recover() is None


def test_wal_only_recovery_roundtrip():
    disk = SimDisk()
    st = ReplicaStorage(disk, snapshot_interval=10**9)
    for i in range(5):
        st.log_entry(i, entry(i))
    st.log_epoch(3)
    st.log_commit(4)
    st.sync()
    r = reopen(disk).recover()
    assert r is not None and r.clean and r.source == "wal"
    assert r.epoch == 3 and r.commit == 4
    assert r.log == [entry(i) for i in range(5)]


def test_snapshot_plus_wal_recovery():
    disk = SimDisk()
    st = ReplicaStorage(disk, snapshot_interval=4)
    log = []
    for i in range(10):
        log.append(entry(i))
        st.log_entry(i, entry(i))
        st.log_commit(i + 1)
        st.maybe_snapshot(1, i + 1, log)
    st.sync()
    assert st.snapshots >= 1
    r = reopen(disk).recover()
    assert r is not None and r.source == "snapshot+wal"
    assert r.log == log and r.commit == 10
    # Old generations were garbage-collected.
    assert len([n for n in disk.list_files() if n.startswith("wal-")]) == 1
    assert len([n for n in disk.list_files() if n.startswith("snap-")]) == 1


def test_truncate_and_overwrite_replay():
    disk = SimDisk()
    st = ReplicaStorage(disk, snapshot_interval=10**9)
    for i in range(6):
        st.log_entry(i, entry(i, epoch=1))
    st.log_commit(3)
    # Conflict: truncate the uncommitted suffix, graft epoch-2 entries.
    st.log_truncate(3)
    st.log_entry(3, entry(30, epoch=2))
    st.log_entry(4, entry(31, epoch=2))
    st.sync()
    r = reopen(disk).recover()
    assert r is not None
    assert r.log == [entry(0), entry(1), entry(2), entry(30, 2), entry(31, 2)]


def test_entry_overwrite_at_existing_index_truncates_after():
    disk = SimDisk()
    st = ReplicaStorage(disk, snapshot_interval=10**9)
    for i in range(5):
        st.log_entry(i, entry(i, epoch=1))
    # An ENTRY record at index 2 implies everything after it is gone.
    st.log_entry(2, entry(99, epoch=2))
    st.sync()
    r = reopen(disk).recover()
    assert r.log == [entry(0), entry(1), entry(99, 2)]


def test_commit_clamped_to_log_length():
    disk = SimDisk()
    st = ReplicaStorage(disk, snapshot_interval=10**9)
    st.log_entry(0, entry(0))
    st.log_commit(40)  # bogus/torn state must not produce commit > len
    st.sync()
    r = reopen(disk).recover()
    assert r.commit == 1


def test_unsynced_tail_lost_on_power_loss_but_synced_prefix_survives():
    disk = FaultDisk(SimDisk(), DiskFaultPlan(seed=1))
    st = ReplicaStorage(disk, snapshot_interval=10**9)
    st.log_entry(0, entry(0))
    st.log_entry(1, entry(1))
    st.sync()
    st.log_entry(2, entry(2))  # never synced
    disk.power_loss()
    r = reopen(disk).recover()
    assert r is not None and r.clean
    assert r.log == [entry(0), entry(1)]


def test_torn_tail_recovery_is_clean_prefix_and_reusable():
    disk = FaultDisk(SimDisk(), DiskFaultPlan(seed=2, torn_write_probability=1.0))
    st = ReplicaStorage(disk, snapshot_interval=10**9)
    st.log_entry(0, entry(0))
    st.sync()
    st.log_entry(1, entry(1))
    st.log_entry(2, entry(2))
    disk.power_loss()  # tears the unsynced stream mid-record
    st2 = reopen(disk)
    r = st2.recover()
    assert r is not None
    assert r.log == [entry(i) for i in range(len(r.log))]  # honest prefix
    # The store keeps working after a torn recovery.
    nxt = len(r.log)
    st2.log_entry(nxt, entry(nxt))
    st2.sync()
    r2 = reopen(disk).recover()
    assert r2.clean and len(r2.log) == nxt + 1


def test_crash_between_snapshot_install_and_new_segment_falls_back():
    """The install dance can crash after the snapshot rename but before
    the fresh WAL segment exists; recovery must use the previous
    generation, which has not been GC'd yet."""
    disk = SimDisk()
    st = ReplicaStorage(disk, snapshot_interval=4)
    log = []
    for i in range(6):
        log.append(entry(i))
        st.log_entry(i, entry(i))
        st.log_commit(i + 1)
        st.maybe_snapshot(1, i + 1, log)
    st.sync()
    # Simulate the torn install: a newer snapshot appears with no
    # matching WAL segment.
    from repro.durability.snapshot import write_snapshot

    write_snapshot(disk, 99, b'{"e":9,"c":0,"log":[]}')
    assert not disk.exists(wal_name(99))
    r = reopen(disk).recover()
    assert r is not None and r.log == log  # generation 99 was skipped


def test_bitrotted_snapshot_falls_back_or_goes_amnesiac():
    disk = SimDisk()
    st = ReplicaStorage(disk, snapshot_interval=2)
    log = []
    for i in range(4):
        log.append(entry(i))
        st.log_entry(i, entry(i))
        st.log_commit(i + 1)
        st.maybe_snapshot(1, i + 1, log)
    st.sync()
    snaps = [n for n in disk.list_files() if n.startswith("snap-")]
    assert snaps
    data = bytearray(disk.read(snaps[0]))
    data[len(data) // 2] ^= 0x04
    disk.write(snaps[0], 0, bytes(data))
    r = reopen(disk).recover()
    # The rotted snapshot must never deserialize; with no older
    # generation the store honestly reports amnesia (anti-entropy
    # repairs it at the replication layer).
    assert r is None


def test_full_disk_degrades_without_crashing():
    plan = DiskFaultPlan(full_after_bytes=64)
    disk = FaultDisk(SimDisk(), plan)
    st = ReplicaStorage(disk, snapshot_interval=10**9)
    for i in range(20):
        st.log_entry(i, entry(i))  # eventually hits the budget
        st.sync()
    assert st.degraded
    assert plan.writes_rejected_full >= 1
    # Further mutation and sync are silent no-ops, not errors.
    st.log_entry(99, entry(99))
    st.sync()
    counters = st.counter_snapshot()
    assert counters["degraded"] is True


def test_fsync_policies():
    always = ReplicaStorage(SimDisk(), fsync_policy="always")
    always.log_entry(0, entry(0))
    assert always.syncs == 1  # one barrier per record

    batch = ReplicaStorage(SimDisk(), fsync_policy="batch")
    batch.log_entry(0, entry(0))
    assert batch.syncs == 0
    batch.sync()
    assert batch.syncs == 1
    batch.sync()  # not dirty: no extra barrier
    assert batch.syncs == 1

    never = ReplicaStorage(SimDisk(), fsync_policy="never")
    never.log_entry(0, entry(0))
    never.sync()
    assert never.syncs == 0

    with pytest.raises(ValueError):
        ReplicaStorage(SimDisk(), fsync_policy="sometimes")
    with pytest.raises(ValueError):
        ReplicaStorage(SimDisk(), snapshot_interval=0)


def test_snapshot_failure_on_full_disk_keeps_old_generation():
    plan = DiskFaultPlan()
    disk = FaultDisk(SimDisk(), plan)
    st = ReplicaStorage(disk, snapshot_interval=2)
    log = [entry(0), entry(1), entry(2)]
    for i, e in enumerate(log):
        st.log_entry(i, e)
    st.sync()
    plan.full_after_bytes = 4  # snapshot blob cannot fit
    assert st.maybe_snapshot(1, 3, log) is False
    assert st.snapshot_failures == 1
    plan.full_after_bytes = None
    r = reopen(disk).recover()
    assert r is not None and r.log == log  # WAL generation intact
    assert not disk.exists(snap_name(1))
