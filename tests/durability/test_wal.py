"""WAL codec framing, replay, and atomic snapshot installation."""

import pytest

from repro.durability.disk import DiskFaultPlan, FaultDisk, SimDisk
from repro.durability.snapshot import (
    parse_snap_seq,
    read_snapshot,
    snap_name,
    write_snapshot,
)
from repro.durability.wal import (
    MAX_RECORD_BYTES,
    WriteAheadLog,
    decode_records,
    encode_record,
    parse_wal_seq,
    wal_name,
)


def test_encode_decode_roundtrip():
    frames = b"".join(
        encode_record(i, bytes([i]) * i) for i in range(0, 10)
    )
    records, consumed, clean = decode_records(frames)
    assert clean and consumed == len(frames)
    assert records == [(i, bytes([i]) * i) for i in range(0, 10)]


def test_encode_validates_inputs():
    with pytest.raises(ValueError):
        encode_record(256, b"")
    with pytest.raises(ValueError):
        encode_record(-1, b"")
    with pytest.raises(ValueError):
        encode_record(1, b"x" * (MAX_RECORD_BYTES + 1))


def test_truncated_tail_decodes_as_clean_prefix():
    data = encode_record(1, b"first") + encode_record(2, b"second")
    records, consumed, clean = decode_records(data[:-3])
    assert not clean
    assert records == [(1, b"first")]
    assert consumed == len(encode_record(1, b"first"))


def test_flipped_bit_breaks_exactly_that_frame():
    good = encode_record(1, b"payload")
    corrupt = bytearray(good + encode_record(2, b"next"))
    corrupt[len(good) + 7] ^= 0x10  # inside the second frame
    records, _consumed, clean = decode_records(bytes(corrupt))
    assert not clean
    assert records == [(1, b"payload")]


def test_oversize_length_field_is_corruption_not_allocation():
    import struct

    bogus = struct.pack("!BBII", 0xA5, 1, MAX_RECORD_BYTES + 1, 0)
    records, consumed, clean = decode_records(bogus + b"\x00" * 64)
    assert records == [] and consumed == 0 and not clean


def test_wal_replay_truncates_torn_tail_so_appends_are_reachable():
    disk = SimDisk()
    wal = WriteAheadLog(disk, "wal-0.log")
    wal.append(1, b"alpha")
    wal.append(2, b"beta")
    # Tear the tail: keep the first record plus half the second frame.
    first = len(encode_record(1, b"alpha"))
    disk.truncate("wal-0.log", first + 4)

    records, clean = wal.replay()
    assert not clean
    assert records == [(1, b"alpha")]
    # Post-recovery appends land after the truncation point and are
    # visible to the next replay — the property that makes recovery
    # followed by new writes safe.
    wal.append(3, b"gamma")
    records2, clean2 = wal.replay()
    assert clean2
    assert records2 == [(1, b"alpha"), (3, b"gamma")]


def test_wal_replay_on_missing_file_is_empty_and_clean():
    records, clean = WriteAheadLog(SimDisk(), "wal-0.log").replay()
    assert records == [] and clean


def test_wal_names_roundtrip():
    assert parse_wal_seq(wal_name(7)) == 7
    assert parse_snap_seq(snap_name(7)) == 7
    for bogus in ("wal-x.log", "wal-.log", "snap-", "snap-1.tmp", "other"):
        assert parse_wal_seq(bogus) is None or parse_snap_seq(bogus) is None
    assert parse_wal_seq("snap-1") is None
    assert parse_snap_seq("wal-1.log") is None


# -- snapshots ----------------------------------------------------------


def test_snapshot_roundtrip():
    disk = SimDisk()
    write_snapshot(disk, 3, b"state blob")
    assert read_snapshot(disk, 3) == b"state blob"
    assert not disk.exists("snap-3.tmp")


def test_snapshot_missing_or_corrupt_returns_none():
    disk = SimDisk()
    assert read_snapshot(disk, 1) is None
    write_snapshot(disk, 1, b"blob")
    data = bytearray(disk.read("snap-1"))
    data[len(data) // 2] ^= 0x01
    disk.write("snap-1", 0, bytes(data))
    assert read_snapshot(disk, 1) is None


def test_crash_before_rename_leaves_no_snapshot():
    """Power loss mid-install: the tmp file is junk recovery ignores."""
    plan = DiskFaultPlan()
    fd = FaultDisk(SimDisk(), plan)
    # Reproduce write_snapshot's steps, but lose power before rename.
    fd.write("snap-1.tmp", 0, encode_record(0x01, b"blob"))
    fd.power_loss()  # no fsync happened: contents were never durable
    assert read_snapshot(fd, 1) is None


def test_dropped_fsync_then_rename_installs_corrupt_snapshot_detectably():
    """The fault plan can make the install dance itself lie: rename
    succeeds but the content fsync persisted nothing.  The CRC framing
    must reject the resulting empty/garbage snapshot."""
    plan = DiskFaultPlan(fsync_drop_next=1)
    fd = FaultDisk(SimDisk(), plan)
    write_snapshot(fd, 1, b"blob")
    fd.power_loss()
    assert read_snapshot(fd, 1) is None  # rejected, not deserialized
