"""Durability bench: schema and determinism (modeled time, not wall)."""

from repro.durability.bench import run_durability_bench


def test_bench_schema_and_determinism():
    payload = run_durability_bench()
    assert payload["benchmark"] == "durability"
    assert "disk I/O" in payload["units"]

    replay = payload["replay"]
    assert [row["log_entries"] for row in replay] == [200, 1000, 5000]
    for row in replay:
        assert row["wal_records_replayed"] > 0
        assert row["replay_disk_us"] > 0
        assert row["entries_recovered"] == row["log_entries"]
    # More log means more replay work — the curve the bench exists to show.
    times = [row["replay_disk_us"] for row in replay]
    assert times == sorted(times) and times[0] < times[-1]

    intervals = payload["snapshot_intervals"]
    assert [row["snapshot_interval"] for row in intervals] == [16, 64, 256]
    for row in intervals:
        assert row["snapshots_taken"] >= 1
        assert row["replay_disk_us"] >= 0
        assert row["entries_recovered"] == 2000
    # Tighter snapshot cadence buys cheaper replay at higher runtime cost.
    assert intervals[0]["runtime_disk_us"] > intervals[-1]["runtime_disk_us"]

    policies = {row["fsync_policy"]: row for row in payload["fsync_policies"]}
    assert set(policies) == {"always", "batch", "never"}
    assert policies["never"]["fsyncs"] == 0
    assert policies["always"]["fsyncs"] > policies["batch"]["fsyncs"] > 0
    assert (
        policies["always"]["runtime_disk_us"]
        > policies["batch"]["runtime_disk_us"]
        >= policies["never"]["runtime_disk_us"]
    )

    # Modeled time is deterministic: a second run is byte-identical.
    assert run_durability_bench() == payload
