"""Tier-1 gate: shipped programs lint clean, configs are present.

This is the enforcement point for the sodalint conventions: any app or
example that starts violating a SODA rule fails the suite, and the bad
fixtures guarantee the linter itself still has teeth.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import lint_paths
from repro.analysis.linter import has_errors

ROOT = Path(__file__).resolve().parents[1]


def test_shipped_programs_lint_clean():
    diags = lint_paths([ROOT / "src" / "repro" / "apps", ROOT / "examples"])
    assert not has_errors(diags), "\n".join(d.format() for d in diags)


def test_bad_fixtures_still_fail_the_linter():
    fixtures = ROOT / "tests" / "analysis" / "fixtures"
    bad = sorted(fixtures.glob("bad_*.py"))
    assert len(bad) >= 6, "expected one violating fixture per rule"
    for path in bad:
        assert has_errors(lint_paths([path])), (
            f"{path.name} should fail the linter"
        )


def test_pyproject_carries_static_analysis_config():
    text = (ROOT / "pyproject.toml").read_text(encoding="utf-8")
    assert "[tool.ruff]" in text
    assert "[tool.mypy]" in text
    assert "check_invariants" in text
