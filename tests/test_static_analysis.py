"""Tier-1 gate: shipped programs lint clean, configs are present.

This is the enforcement point for the sodalint conventions: any app or
example that starts violating a SODA rule fails the suite, and the bad
fixtures guarantee the linter itself still has teeth.  The causal-rule
fixtures below play the same role for the SODA010+ trace rules: each
seeded bug must keep producing its exact diagnostic, and the streaming
checker must keep agreeing with the batch checker on a real run.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import lint_paths
from repro.analysis.linter import has_errors

ROOT = Path(__file__).resolve().parents[1]


def test_shipped_programs_lint_clean():
    diags = lint_paths([ROOT / "src" / "repro" / "apps", ROOT / "examples"])
    assert not has_errors(diags), "\n".join(d.format() for d in diags)


def test_bad_fixtures_still_fail_the_linter():
    fixtures = ROOT / "tests" / "analysis" / "fixtures"
    bad = sorted(fixtures.glob("bad_*.py"))
    assert len(bad) >= 6, "expected one violating fixture per rule"
    for path in bad:
        assert has_errors(lint_paths([path])), (
            f"{path.name} should fail the linter"
        )


def test_pyproject_carries_static_analysis_config():
    text = (ROOT / "pyproject.toml").read_text(encoding="utf-8")
    assert "[tool.ruff]" in text
    assert "[tool.mypy]" in text
    assert "check_invariants" in text
    assert "repro.analysis.causal" in text


# -- causal trace rules keep their teeth (seeded-bug fixtures) ---------


def _causal_fixture(rows):
    from repro.sim.tracing import Tracer

    trace = Tracer()
    for time, category, fields in rows:
        trace.record(time, category, **fields)
    return list(trace.records)


def _fired(records, with_order=False):
    from repro.analysis.causal import (
        build_causal_order,
        detect_deadlocks,
        find_races,
    )

    order = build_causal_order(records) if with_order else None
    return find_races(records, order) + detect_deadlocks(records)


def test_seeded_causality_inversion_fires_soda010():
    records = _causal_fixture([
        (0.0, "kernel.request", dict(mid=0, tid=5, dst=1)),
        # Delivery with no wire edge back to the REQUEST.
        (20.0, "kernel.delivered_state",
         dict(mid=1, src=0, tid=5, state="delivered")),
    ])
    diags = _fired(records, with_order=True)
    assert [d.rule_id for d in diags] == ["SODA010"], diags
    assert diags[0].witness


def test_seeded_accept_reset_race_fires_soda011():
    records = _causal_fixture([
        (0.0, "kernel.request", dict(mid=0, tid=5, dst=1)),
        (10.0, "kernel.client_reset", dict(mid=0, epoch=1)),
        (20.0, "kernel.complete", dict(mid=0, tid=5, status="completed")),
    ])
    diags = _fired(records)
    assert [d.rule_id for d in diags] == ["SODA011"], diags


def test_seeded_state_resurrection_fires_soda012():
    records = _causal_fixture([
        (0.0, "kernel.delivered_state",
         dict(mid=1, src=0, tid=5, state="delivered")),
        (10.0, "kernel.client_reset", dict(mid=1, epoch=1)),
        (20.0, "kernel.delivered_state",
         dict(mid=1, src=0, tid=5, state="accepted")),
    ])
    diags = _fired(records)
    assert [d.rule_id for d in diags] == ["SODA012"], diags


def test_seeded_wait_for_cycle_fires_soda013():
    records = _causal_fixture([
        (0.0, "kernel.request", dict(mid=0, tid=1, dst=1)),
        (10.0, "kernel.request", dict(mid=1, tid=1, dst=0)),
    ])
    diags = _fired(records)
    assert [d.rule_id for d in diags] == ["SODA013"], diags


def test_streaming_checker_agrees_with_batch_on_a_real_run():
    from repro.analysis import check_network, check_stream
    from repro.analysis.workloads import run_workload

    net = run_workload("echo")
    batch = [v.format() for v in check_network(net, strict_completion=True)]
    stream = [
        v.format()
        for v in check_stream(
            list(net.sim.trace.records),
            network=net,
            strict_completion=True,
            ledger=net.ledger,
        )
    ]
    assert stream == batch == []
