"""C1-C2: the §5.5 comparison against \\*MOD on identical hardware.

Published: B_SIGNAL 8.5 ms (handler accept) / 10.0 ms (queued) versus
\\*MOD synchronous remote port call 20.7 ms; non-blocking SIGNAL 4.9 ms /
5.8 ms queued versus \\*MOD asynchronous port call 11.1 ms.  The claims
to preserve: every SODA variant beats its \\*MOD counterpart by roughly
2x, and queueing at the server adds a sub-millisecond-to-1.5 ms tax.
"""

import pytest

from repro.bench.comparison import measure_comparison
from repro.bench.tables import format_table

from conftest import register_payload, register_result


def test_starmod_comparison(benchmark):
    rows = benchmark.pedantic(measure_comparison, rounds=1, iterations=1)
    by_name = {row.scenario: row for row in rows}
    rendered = format_table(
        ["scenario", "measured ms", "paper ms"],
        [(r.scenario, r.measured_ms, r.paper_ms) for r in rows],
        title="SODA vs *MOD, single-word transactions",
    )
    sync_ratio = (
        by_name["starmod_sync_call"].measured_ms
        / by_name["soda_b_signal_queued"].measured_ms
    )
    async_ratio = (
        by_name["starmod_async_send"].measured_ms
        / by_name["soda_signal_stream_queued"].measured_ms
    )
    rendered += (
        f"\nsync speedup (queued SODA vs *MOD): {sync_ratio:.2f}x"
        f"  (paper: {20.7 / 10.0:.2f}x)"
        f"\nasync speedup (queued SODA vs *MOD): {async_ratio:.2f}x"
        f"  (paper: {11.1 / 5.8:.2f}x)"
    )
    register_result("C1-C2 *MOD comparison", rendered)
    register_payload(
        "starmod_comparison", {"rows": [r.to_dict() for r in rows]}
    )

    # Absolute values within 20% of publication.
    for row in rows:
        assert row.measured_ms == pytest.approx(row.paper_ms, rel=0.20), (
            row.scenario
        )
    # The paper's qualitative claims.
    assert by_name["soda_b_signal"].measured_ms < by_name[
        "soda_b_signal_queued"
    ].measured_ms
    assert by_name["soda_signal_stream"].measured_ms < by_name[
        "soda_b_signal"
    ].measured_ms
    assert sync_ratio > 1.5
    assert async_ratio > 1.5
