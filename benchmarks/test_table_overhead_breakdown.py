"""T4: the "Breakdown of Communications Overhead" table (p. 116).

One 2-packet SIGNAL, cost-accounted by category.  Every category must
land within 25% of the published value and the total near 7.1 ms.
"""

import pytest

from repro.bench.breakdown import measure_signal_breakdown
from repro.bench.tables import format_table

from conftest import register_payload, register_result


def test_overhead_breakdown(benchmark):
    result = benchmark.pedantic(measure_signal_breakdown, rounds=1, iterations=1)
    rows = [
        (name, result.measured_ms[name], result.paper_ms[name])
        for name in result.paper_ms
    ]
    rows.append(("TOTAL", result.total_measured_ms, result.total_paper_ms))
    rendered = format_table(
        ["category", "measured ms", "paper ms"],
        rows,
        title="Breakdown of protocol time, 2 packets per SIGNAL",
    )
    rendered += f"\nelapsed B_SIGNAL call: {result.elapsed_call_ms:.2f} ms"
    register_result("T4 overhead breakdown", rendered)
    register_payload("overhead_breakdown", result.to_dict())

    for name, paper_ms in result.paper_ms.items():
        assert result.measured_ms[name] == pytest.approx(paper_ms, rel=0.25), name
    assert result.total_measured_ms == pytest.approx(
        result.total_paper_ms, rel=0.15
    )
