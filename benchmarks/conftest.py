"""Benchmark-suite plumbing.

Each benchmark registers the table/figure it reproduced with
:func:`register_result`; a terminal-summary hook prints everything at the
end of the run, so ``pytest benchmarks/ --benchmark-only | tee ...``
captures the reproduced tables alongside pytest-benchmark's timings.

Benchmarks may also call :func:`register_payload` with a JSON-ready dict;
running with ``--bench-json PATH`` writes all registered payloads as one
``soda.bench/1`` snapshot (see docs/OBSERVABILITY.md).
"""

from __future__ import annotations

from typing import Any, Dict, List

_RESULTS: Dict[str, str] = {}
_ORDER: List[str] = []
_PAYLOADS: Dict[str, Any] = {}


def register_result(name: str, rendered: str) -> None:
    if name not in _RESULTS:
        _ORDER.append(name)
    _RESULTS[name] = rendered


def register_payload(name: str, payload: Any) -> None:
    """Register the machine-readable form of a reproduced result."""
    _PAYLOADS[name] = payload


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json",
        default=None,
        metavar="PATH",
        help="write registered benchmark payloads as one JSON snapshot",
    )


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if _RESULTS:
        terminalreporter.section("reproduced paper tables and figures")
        for name in _ORDER:
            terminalreporter.write_line("")
            terminalreporter.write_line(f"=== {name} ===")
            for line in _RESULTS[name].splitlines():
                terminalreporter.write_line(line)
    target = config.getoption("--bench-json")
    if target and _PAYLOADS:
        from repro.obs.export import emit_snapshot

        body = {name: _PAYLOADS[name] for name in sorted(_PAYLOADS)}
        emit_snapshot(
            target,
            "benchmark_suite",
            body,
            out=lambda line: terminalreporter.write_line(
                f"benchmark payloads: {line}"
            ),
        )
