"""Benchmark-suite plumbing.

Each benchmark registers the table/figure it reproduced with
:func:`register_result`; a terminal-summary hook prints everything at the
end of the run, so ``pytest benchmarks/ --benchmark-only | tee ...``
captures the reproduced tables alongside pytest-benchmark's timings.
"""

from __future__ import annotations

from typing import Dict, List

_RESULTS: Dict[str, str] = {}
_ORDER: List[str] = []


def register_result(name: str, rendered: str) -> None:
    if name not in _RESULTS:
        _ORDER.append(name)
    _RESULTS[name] = rendered


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _RESULTS:
        return
    terminalreporter.section("reproduced paper tables and figures")
    for name in _ORDER:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"=== {name} ===")
        for line in _RESULTS[name].splitlines():
            terminalreporter.write_line(line)
