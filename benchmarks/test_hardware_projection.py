"""§5.5.1: projected performance on better hardware.

The paper lists its simulation's bottlenecks: a ~170k instr/s PDP-11, a
1 Mbit/s bus, software interrupts.  This bench sweeps CPU speed and bus
bandwidth to show where each regime is bound:

* small messages are CPU-bound: faster silicon, not a faster bus, cuts
  SIGNAL latency;
* large messages split between the wire and the per-byte memory copies
  (both ~16 us/word at baseline): a 10 Mbit bus removes the wire share,
  and only the CPU upgrade removes the copy share — the paper's
  scatter-gather observation (§5.5.1 item 6) in numbers.
"""

import dataclasses

import pytest

from repro.bench.tables import format_table
from repro.bench.workloads import AcceptingServer, StreamingRequester
from repro.core.config import KernelConfig, TimingModel
from repro.core.node import Network

from conftest import register_result


def _measure(cpu_factor: float, bandwidth_bps: int, put_words: int) -> float:
    timing = TimingModel().scaled(cpu_factor)
    net = Network(
        seed=5,
        config=KernelConfig(timing=timing),
        bandwidth_bps=bandwidth_bps,
        keep_trace=False,
    )
    net.add_node(program=AcceptingServer())
    client = StreamingRequester(put_words * 2, 0, total=12)
    net.add_node(program=client, boot_at_us=100.0)
    net.run(until=120_000_000.0)
    times = [t for t, _ in client.marks]
    return (times[-1] - times[4]) / (len(times) - 5) / 1000.0


def test_hardware_projection(benchmark):
    def run():
        grid = {}
        for cpu in (1, 8):
            for mbit in (1, 10):
                for words in (1, 1000):
                    grid[(cpu, mbit, words)] = _measure(
                        cpu, mbit * 1_000_000, words
                    )
        return grid

    grid = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (f"{cpu}x", f"{mbit} Mbit", words, grid[(cpu, mbit, words)])
        for cpu in (1, 8)
        for mbit in (1, 10)
        for words in (1, 1000)
    ]
    register_result(
        "Hardware projection (§5.5.1)",
        format_table(["CPU", "bus", "words", "ms/PUT"], rows,
                     title="PUT latency under projected hardware"),
    )
    # Small messages: CPU dominates.
    small_cpu_gain = grid[(1, 1, 1)] / grid[(8, 1, 1)]
    small_bus_gain = grid[(1, 1, 1)] / grid[(1, 10, 1)]
    assert small_cpu_gain > 3.0
    assert small_bus_gain < 1.5
    # Large messages: the bus upgrade removes the wire share (~16 ms of
    # ~46); the copy share needs the CPU upgrade.
    large_bus_gain = grid[(1, 1, 1000)] / grid[(1, 10, 1000)]
    assert large_bus_gain > 1.3
    large_cpu_gain = grid[(1, 1, 1000)] / grid[(8, 1, 1000)]
    assert large_cpu_gain > 1.8
    # Both together approach the sum of savings.
    assert grid[(8, 10, 1000)] < grid[(1, 1, 1000)] / 4
