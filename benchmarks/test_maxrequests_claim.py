"""§5.5's MAXREQUESTS claim, verified.

"All measurements were made with MAXREQUESTS set to three ...
MAXREQUESTS values other than one produced the same results.  With
MAXREQUESTS set to one, all REQUESTS become blocking so no advantage due
to double buffering accrues."
"""

import pytest

from repro.bench.tables import format_table
from repro.bench.workloads import (
    AcceptingServer,
    StreamingRequester,
)
from repro.core.config import KernelConfig
from repro.core.node import Network

from conftest import register_result


def _measure(max_requests: int, put_words: int = 100) -> float:
    net = Network(
        seed=5,
        config=KernelConfig(max_requests=max_requests),
        keep_trace=False,
    )
    net.add_node(program=AcceptingServer())
    client = StreamingRequester(put_words * 2, 0, total=14)
    # The streaming requester primes min(OUTSTANDING, total) requests but
    # the kernel caps at max_requests; prime accordingly.
    import repro.bench.workloads as workloads

    original = workloads.OUTSTANDING
    workloads.OUTSTANDING = max_requests
    try:
        net.add_node(program=client, boot_at_us=100.0)
        net.run(until=240_000_000.0)
    finally:
        workloads.OUTSTANDING = original
    times = [t for t, _ in client.marks]
    assert len(times) == 14
    return (times[-1] - times[5]) / (len(times) - 6) / 1000.0


def test_maxrequests_sweep(benchmark):
    def run():
        return {n: _measure(n) for n in (1, 2, 3, 5)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    register_result(
        "MAXREQUESTS sweep (§5.5 claim)",
        format_table(
            ["MAXREQUESTS", "ms per 100-word PUT"],
            sorted(results.items()),
            title="Double buffering: per-transaction latency vs. "
                  "outstanding requests",
        ),
    )
    # MAXREQUESTS=1 is measurably slower (no overlap)...
    assert results[1] > results[2] * 1.15
    # ...and every value above one performs the same (within 5%).
    assert results[2] == pytest.approx(results[3], rel=0.05)
    assert results[3] == pytest.approx(results[5], rel=0.05)
