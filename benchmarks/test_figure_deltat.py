"""F1: the "Typical Delta-t Situations" figure (p. 106).

Three scripted scenarios against live kernels: take-any expiry after
silence, duplicate suppression while a record lives, and the post-crash
quiet period.  Each must complete with the protocol behaving as the
figure describes.
"""

from repro.bench.deltat_figure import deltat_scenarios

from conftest import register_payload, register_result


def test_deltat_scenarios(benchmark):
    results = benchmark.pedantic(deltat_scenarios, rounds=1, iterations=1)
    lines = []
    for scenario in results.values():
        lines.append(f"{scenario.name}: {'ok' if scenario.ok else 'FAILED'}")
        for t_ms, event in scenario.events:
            lines.append(f"    t={t_ms:9.1f} ms  {event}")
    register_result("F1 Delta-t situations", "\n".join(lines))
    register_payload(
        "deltat_scenarios",
        {name: s.to_dict() for name, s in sorted(results.items())},
    )
    assert all(s.ok for s in results.values()), {
        name: s.ok for name, s in results.items()
    }
