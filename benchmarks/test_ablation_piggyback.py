"""Ablations of the design choices DESIGN.md calls out (§5.2.3, §6).

The paper attributes SODA's competitive numbers to piggybacking:
acknowledgements deferred to ride on ACCEPTs and follow-on REQUESTs, and
put-data riding on the first REQUEST transmission.  Disabling each
feature must cost measurable packets and/or latency:

* ``ack_defer_us = 0`` — every ack is a separate pure-ACK packet;
* ``data_with_request = False`` — every PUT's data goes through the
  ACCEPT-time pull (extra DATA round trip).
"""

import dataclasses

import pytest

from repro.bench.tables import format_table
from repro.bench.workloads import run_stream
from repro.core.config import KernelConfig, TimingModel

from conftest import register_result


def _run(config_kwargs=None, timing_kwargs=None, put_words=100):
    timing = TimingModel(**(timing_kwargs or {}))
    config = KernelConfig(timing=timing, **(config_kwargs or {}))
    # run_stream builds its own Network; inject the config via a small
    # shim around the workload module.
    from repro.bench import workloads

    original = workloads._build

    def patched(pipelined, queued_accept, reply_bytes, seed):
        from repro.core.node import Network

        net = Network(seed=seed, config=config, keep_trace=False)
        server = workloads.AcceptingServer(reply_bytes=reply_bytes)
        net.add_node(program=server)
        return net

    workloads._build = patched
    try:
        return run_stream(put_words, 0)
    finally:
        workloads._build = original


def test_ablation_ack_piggybacking(benchmark):
    def run():
        baseline = _run()
        no_defer = _run(timing_kwargs={"ack_defer_us": 0.0})
        return baseline, no_defer

    baseline, no_defer = benchmark.pedantic(run, rounds=1, iterations=1)
    rendered = format_table(
        ["variant", "ms/PUT", "packets/PUT"],
        [
            ("piggybacked acks (default)", baseline.per_txn_ms, baseline.packets_per_txn),
            ("immediate pure acks", no_defer.per_txn_ms, no_defer.packets_per_txn),
        ],
        title="Ablation: deferred-ack piggybacking (100-word PUT stream)",
    )
    register_result("Ablation ack piggybacking", rendered)
    # Without deferral, each transaction needs extra pure-ACK packets.
    assert no_defer.packets_per_txn > baseline.packets_per_txn + 0.5
    assert baseline.packets_per_txn == pytest.approx(2.0, abs=0.3)


def test_ablation_data_with_request(benchmark):
    def run():
        baseline = _run()
        pull_only = _run(config_kwargs={"data_with_request": False})
        return baseline, pull_only

    baseline, pull_only = benchmark.pedantic(run, rounds=1, iterations=1)
    rendered = format_table(
        ["variant", "ms/PUT", "packets/PUT"],
        [
            ("data on first REQUEST (default)", baseline.per_txn_ms, baseline.packets_per_txn),
            ("ACCEPT-time data pull", pull_only.per_txn_ms, pull_only.packets_per_txn),
        ],
        title="Ablation: put-data on the first REQUEST (100-word PUT stream)",
    )
    register_result("Ablation data-with-request", rendered)
    assert pull_only.packets_per_txn > baseline.packets_per_txn + 0.9
    assert pull_only.per_txn_ms > baseline.per_txn_ms


def test_ablation_busy_backoff(benchmark):
    """The decaying BUSY retry rate (§5.2.3) trades latency for bus load:
    a much slower base rate must cost GET latency (it sits on the
    non-pipelined GET critical path)."""
    from repro.transport.retransmit import RetransmitPolicy

    def run():
        fast = _run_get(RetransmitPolicy())
        slow = _run_get(
            RetransmitPolicy(busy_retry_base_us=8_000.0, busy_retry_growth=1.0)
        )
        return fast, slow

    def _run_get(policy):
        from repro.bench import workloads
        from repro.core.node import Network

        config = KernelConfig(retransmit=policy)
        original = workloads._build

        def patched(pipelined, queued_accept, reply_bytes, seed):
            net = Network(seed=seed, config=config, keep_trace=False)
            net.add_node(program=workloads.AcceptingServer(reply_bytes=reply_bytes))
            return net

        workloads._build = patched
        try:
            return run_stream(0, 100)
        finally:
            workloads._build = original

    fast, slow = benchmark.pedantic(run, rounds=1, iterations=1)
    rendered = format_table(
        ["variant", "ms/GET", "packets/GET"],
        [
            ("default busy backoff", fast.per_txn_ms, fast.packets_per_txn),
            ("8 ms flat busy backoff", slow.per_txn_ms, slow.packets_per_txn),
        ],
        title="Ablation: BUSY retry pacing (100-word non-pipelined GET stream)",
    )
    register_result("Ablation busy backoff", rendered)
    assert slow.per_txn_ms > fast.per_txn_ms + 3.0
