"""T1-T3: the "SODA Performance" table (p. 115).

Milliseconds per PUT / GET / EXCHANGE against payload size, for the
non-pipelined and pipelined kernels.  Asserts the paper's *shape*:

* packets per transaction: PUT 2/2, GET 4/2, EXCHANGE 6/2
  (non-pipelined/pipelined);
* zero-word requests cost SIGNAL money regardless of verb;
* latency grows linearly, with the non-pipelined EXCHANGE slope more
  than double PUT's (its data crosses the wire twice);
* measured milliseconds within 40% of the published cells.
"""

import pytest

from repro.bench.perf_tables import (
    PAPER_PACKETS,
    PAPER_PERFORMANCE_MS,
    generate_performance_table,
)
from repro.bench.tables import format_table

from conftest import register_payload, register_result

#: Subset of the paper's 12 columns used for benching (keeps wall time
#: reasonable; examples/performance_tables.py regenerates all 12).
BENCH_SIZES = [0, 1, 100, 500, 1000]

VARIANTS = [
    (verb, pipelined)
    for verb in ("put", "get", "exchange")
    for pipelined in (False, True)
]


def _variant_id(variant):
    verb, pipelined = variant
    return f"{verb}-{'pipelined' if pipelined else 'nonpipelined'}"


@pytest.mark.parametrize("variant", VARIANTS, ids=_variant_id)
def test_performance_table(benchmark, variant):
    verb, pipelined = variant
    rows = benchmark.pedantic(
        generate_performance_table,
        args=(verb, pipelined),
        kwargs={"sizes": BENCH_SIZES},
        rounds=1,
        iterations=1,
    )
    rendered = format_table(
        ["words", "measured ms", "paper ms", "packets/txn"],
        [(r.words, r.measured_ms, r.paper_ms, r.packets) for r in rows],
        title=f"{verb.upper()} ({'pipelined' if pipelined else 'non-pipelined'})",
    )
    register_result(f"T1-T3 {_variant_id(variant)}", rendered)
    register_payload(
        f"performance.{_variant_id(variant)}", [r.to_dict() for r in rows]
    )

    expected_packets = PAPER_PACKETS[(verb, pipelined)]
    for row in rows:
        if row.words == 0:
            # Zero-length degenerates to SIGNAL: always 2 packets.
            assert row.packets == pytest.approx(2.0, abs=0.4)
            continue
        assert row.packets == pytest.approx(expected_packets, abs=0.75), (
            f"{verb} {row.words}w: {row.packets} packets"
        )
        # Small pipelined transfers overlap more deeply in our kernel
        # than the paper's measured implementation did (its held request
        # was only picked up at ENDHANDLER after a full accept turn-
        # around), so those cells run faster; allow them more slack.
        tolerance = 0.60 if pipelined and row.words <= 100 else 0.40
        assert row.measured_ms == pytest.approx(row.paper_ms, rel=tolerance), (
            f"{verb} {row.words}w: measured {row.measured_ms:.1f} "
            f"paper {row.paper_ms:.1f}"
        )
    # Monotone growth with size.
    latencies = [r.measured_ms for r in rows]
    assert latencies == sorted(latencies)


def test_pipelining_wins_where_paper_says(benchmark):
    def run():
        out = {}
        for verb in ("get", "exchange"):
            np_rows = generate_performance_table(verb, False, sizes=[500])
            p_rows = generate_performance_table(verb, True, sizes=[500])
            out[verb] = (np_rows[0].measured_ms, p_rows[0].measured_ms)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = []
    for verb, (np_ms, p_ms) in out.items():
        lines.append(
            f"{verb:9s} 500 words: non-pipelined {np_ms:6.1f} ms -> "
            f"pipelined {p_ms:6.1f} ms ({np_ms / p_ms:.2f}x)"
        )
        assert p_ms < np_ms
    # EXCHANGE benefits more than GET (6->2 packets vs 4->2).
    assert (
        out["exchange"][0] / out["exchange"][1]
        > out["get"][0] / out["get"][1]
    )
    register_result("T1-T3 pipelining speedups", "\n".join(lines))
