"""Ablation: kernel-level vs. library-level remote memory reference.

§6.17.2 sketches a kernel handler for PEEK/POKE "More highly optimized
PEEK and POKE primitives could be provided".  The kernel version skips
the server's handler invocation (context switch) and ACCEPT invocation
(client overhead), so a PEEK must be measurably cheaper.
"""

import pytest

from repro.bench.tables import format_table
from repro.core import ClientProgram, KernelConfig, Network
from repro.extensions.kernel_rmr import kernel_peek
from repro.facilities.rmr import RMR_PATTERN, MemoryServer, peek

from conftest import register_result

N_CALLS = 8
PEEK_BYTES = 64


def _measure_library() -> float:
    net = Network(seed=31, keep_trace=False)
    net.add_node(program=MemoryServer(size=256))
    out = {}

    class Prober(ClientProgram):
        def task(self, api):
            sig = api.server_sig(0, RMR_PATTERN)
            yield from peek(api, sig, 0, PEEK_BYTES)
            t0 = api.now
            for _ in range(N_CALLS):
                yield from peek(api, sig, 0, PEEK_BYTES)
            out["per_call"] = (api.now - t0) / N_CALLS
            yield from api.serve_forever()

    net.add_node(program=Prober(), boot_at_us=100.0)
    net.run(until=120_000_000.0)
    return out["per_call"] / 1000.0


def _measure_kernel() -> float:
    net = Network(seed=31, config=KernelConfig(kernel_rmr=True), keep_trace=False)

    class Host(ClientProgram):
        def initialization(self, api, parent_mid):
            api.kernel.client_register_rmr_memory(bytearray(256))
            return
            yield  # pragma: no cover

    net.add_node(program=Host())
    out = {}

    class Prober(ClientProgram):
        def task(self, api):
            yield from kernel_peek(api, 0, 0, PEEK_BYTES)
            t0 = api.now
            for _ in range(N_CALLS):
                yield from kernel_peek(api, 0, 0, PEEK_BYTES)
            out["per_call"] = (api.now - t0) / N_CALLS
            yield from api.serve_forever()

    net.add_node(program=Prober(), boot_at_us=100.0)
    net.run(until=120_000_000.0)
    return out["per_call"] / 1000.0


def test_kernel_rmr_vs_library_rmr(benchmark):
    def run():
        return _measure_library(), _measure_kernel()

    library_ms, kernel_ms = benchmark.pedantic(run, rounds=1, iterations=1)
    rendered = format_table(
        ["variant", "ms per 32-word PEEK"],
        [
            ("library RMR (client handler)", library_ms),
            ("kernel RMR (reserved pattern)", kernel_ms),
        ],
        title="Ablation: remote memory reference placement (§6.17.2)",
    )
    rendered += f"\nspeedup: {library_ms / kernel_ms:.2f}x"
    register_result("Ablation kernel RMR", rendered)
    # Skipping the handler invocation + server-side ACCEPT must save at
    # least a context switch plus one client overhead (~1.5 ms).
    assert kernel_ms < library_ms - 1.0
