#!/usr/bin/env python3
"""The "Typical SODA Network" figure (§1.3) brought to life.

One bus carrying:

* a **file server** (the figure's VAX-750 with a disk);
* a **time server** (VAX-750 with a clock);
* a **tty driver** buffering lines typed at a terminal;
* a bare PDP-11 waiting to be booted;
* a **command interpreter** that boots a **worker** onto the bare node,
  then drives a session: read a command from the tty, run it via RPC on
  the worker with a timeout alarm armed, and log the result to a file.

Run:  python examples/typical_network.py
"""

from repro.apps.file_server import FILESERVER_PATTERN, FileServer, RemoteFile
from repro.core import Buffer, ClientProgram, Network
from repro.core.boot import ProgramImage, boot_pattern_for
from repro.core.patterns import make_well_known_pattern
from repro.facilities.ports import port_write
from repro.facilities.rpc import RpcServer, rpc_call
from repro.facilities.timeservice import ALARM_CLOCK, TimeServer, set_alarm
from repro.sodal.queueing import Queue

TTY_PORT = make_well_known_pattern(0o701)
EVAL_PROC = make_well_known_pattern(0o702)


def log(api, who: str, message: str) -> None:
    print(f"[{api.now/1000:9.2f} ms] {who}: {message}")


class LineTty(ClientProgram):
    """Tty driver: buffers lines from the terminal; readers B_GET them."""

    def __init__(self):
        self.lines = Queue(16)
        self.waiting_readers = Queue(8)

    def initialization(self, api, parent_mid):
        yield from api.advertise(TTY_PORT)
        log(api, "tty", "up")

    def handler(self, api, event):
        if not event.is_arrival:
            return
        if event.put_size > 0:
            # A write from the terminal side.
            buf = Buffer(event.put_size)
            yield from api.accept_current_put(get=buf)
            yield from api.enqueue(self.lines, buf.data)
        else:
            # A read (GET): serve once a line is available.
            yield from api.enqueue(self.waiting_readers, event.asker)

    def task(self, api):
        while True:
            yield from api.poll(
                lambda: not self.lines.is_empty()
                and not self.waiting_readers.is_empty()
            )
            line = yield from api.dequeue(self.lines)
            reader = yield from api.dequeue(self.waiting_readers)
            yield from api.accept_get(reader, put=line)


class Terminal(ClientProgram):
    """A stand-in for the human at the keyboard."""

    def __init__(self, tty_mid: int, lines):
        self.tty_mid = tty_mid
        self.lines = lines

    def task(self, api):
        yield api.compute(30_000)
        for line in self.lines:
            yield api.compute(25_000)  # typing takes a while
            yield from port_write(
                api, api.server_sig(self.tty_mid, TTY_PORT), line
            )
            log(api, "terminal", f"typed {line!r}")
        yield from api.serve_forever()


class Worker(RpcServer):
    """The program booted onto the bare node: evaluates 'sum 1..N'."""

    def __init__(self):
        super().__init__({EVAL_PROC: self._evaluate})

    @staticmethod
    def _evaluate(params: bytes) -> bytes:
        n = int(params.decode().split("..")[1])
        return str(sum(range(1, n + 1))).encode()


class CommandInterpreter(ClientProgram):
    """Boots the worker, then: read command -> RPC -> log to file."""

    def __init__(self, tty_mid: int):
        self.tty_mid = tty_mid
        self.alarm_tid = None

    def handler(self, api, event):
        if event.is_completion and event.asker.tid == self.alarm_tid:
            log(api, "shell", "(alarm expired -- would CANCEL a stuck call)")
        return
        yield  # pragma: no cover

    def task(self, api):
        fs = yield from api.discover(FILESERVER_PATTERN)
        ts = yield from api.discover(ALARM_CLOCK)
        log(api, "shell", f"found file server at MID {fs.mid}, clock at {ts.mid}")

        bare = yield from api.discover(boot_pattern_for("pdp11"))
        image = ProgramImage("worker", Worker, size_bytes=4096)
        load_sig = yield from api.boot_node(bare, image)
        log(api, "shell", f"booted worker on MID {bare.mid}")

        logfile = yield from RemoteFile.open(api, fs.mid, "session.log")
        while True:
            buf = Buffer(128)
            completion = yield from api.b_get(
                api.server_sig(self.tty_mid, TTY_PORT), get=buf
            )
            if not completion.completed:
                continue
            command = buf.data
            log(api, "shell", f"command: {command!r}")
            if command == b"halt":
                break
            # Guard the remote call with an alarm (§4.3.2's timeout idiom).
            self.alarm_tid = yield from set_alarm(api, ts, delay_ms=500)
            result = yield from rpc_call(
                api, api.server_sig(bare.mid, EVAL_PROC), command, 64
            )
            log(api, "shell", f"worker answered: {result.decode()}")
            yield from logfile.write(command + b" -> " + result + b"\n")

        yield from api.b_signal(load_sig)  # second SIGNAL kills the worker
        log(api, "shell", "worker killed")
        yield from logfile.seek(0)
        session = yield from logfile.read(512)
        yield from logfile.close()
        log(api, "shell", "session log:")
        for line in session.decode().splitlines():
            print(f"               | {line}")
        yield from api.serve_forever()


def main() -> None:
    net = Network(seed=11)
    net.add_node(program=FileServer(), name="file-server", machine_type="vax750")
    net.add_node(program=TimeServer(), name="time-server", machine_type="vax750")
    tty_node = net.add_node(program=LineTty(), name="tty", machine_type="pdp11tty")
    net.add_node(name="bare-pdp11", machine_type="pdp11")  # bootable
    net.add_node(
        program=CommandInterpreter(tty_mid=tty_node.mid),
        name="shell",
        machine_type="m68000",
        boot_at_us=200.0,
    )
    net.add_node(
        program=Terminal(tty_node.mid, [b"sum 1..100", b"sum 1..1000", b"halt"]),
        name="terminal",
        boot_at_us=400.0,
    )
    net.run(until=120_000_000.0)
    print(f"\ndone at t={net.now/1000:.2f} ms; {net.bus.frames_sent} frames")


if __name__ == "__main__":
    main()
