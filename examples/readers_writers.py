#!/usr/bin/env python3
"""The readers-writers moderator (§4.4.4) under mixed load.

Five clients hammer a moderated resource with random reads and writes;
the run prints the grant schedule and verifies the exclusion invariant
and the paper's fairness rules on the way.

Run:  python examples/readers_writers.py
"""

import random

from repro.apps.readers_writers import Moderator, ReaderWriterClient
from repro.core import Network


def main() -> None:
    rng = random.Random(3)
    net = Network(seed=17)
    moderator = Moderator()
    net.add_node(program=moderator, name="moderator")

    shared = {"readers": 0, "writers": 0, "violations": []}
    clients = []
    for i in range(5):
        script = []
        for _ in range(5):
            kind = "read" if rng.random() < 0.65 else "write"
            script.append(
                (kind, rng.uniform(2_000, 10_000), rng.uniform(0, 6_000))
            )
        client = ReaderWriterClient(0, script, shared)
        clients.append(client)
        net.add_node(program=client, name=f"client{i}", boot_at_us=100.0 + 41.0 * i)

    net.run(until=600_000_000.0)

    print("grant schedule:", "".join(moderator.grants))
    print(f"operations completed: {sum(c.completed_ops for c in clients)}/25")
    print(f"max concurrent readers: {moderator.max_concurrent_readers}")
    print(f"invariant violations: {len(shared['violations'])}")
    assert shared["violations"] == []
    assert moderator.readcount == 0 and moderator.writecount == 0
    print("exclusion invariant held throughout.")


if __name__ == "__main__":
    main()
