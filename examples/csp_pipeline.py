#!/usr/bin/env python3
"""CSP with output guards over SODA (§4.2.5): a rendezvous pipeline.

Three CSP processes form a pipeline with *symmetric* rendezvous at each
stage — both parties run alternative commands with output AND input
guards, the configuration that deadlocks naive implementations.
Bernstein's MID-ordering keeps it live; the producer pushes numbers, the
doubler transforms, the printer consumes.

Run:  python examples/csp_pipeline.py
"""

import struct

from repro.core import ClientProgram, Network
from repro.core.patterns import make_well_known_pattern
from repro.facilities.rendezvous import CspGuard, CspProcess

NAME = [make_well_known_pattern(0o740 + i) for i in range(3)]
TYPE_NUM = 1


class Stage(ClientProgram):
    def __init__(self, index: int, body):
        self.csp = CspProcess(NAME[index])
        self.body = body
        self.index = index

    def initialization(self, api, parent_mid):
        yield from self.csp.install(api)

    def handler(self, api, event):
        consumed = yield from self.csp.handle_arrival(api, event)
        if consumed:
            return

    def task(self, api):
        yield from self.body(api, self)
        yield from api.serve_forever()


def producer(api, self):
    for value in (3, 7, 11, 25):
        out = CspGuard(
            kind="output", msg_type=TYPE_NUM,
            peer=api.server_sig(1, NAME[1]),
            value=struct.pack(">i", value),
        )
        while (yield from self.csp.alternative(api, [out])) is None:
            yield api.compute(2_000)
        print(f"[{api.now/1000:8.2f} ms] producer: sent {value}")


def doubler(api, self):
    for _ in range(4):
        take = CspGuard(kind="input", msg_type=TYPE_NUM, capacity=4)
        while (yield from self.csp.alternative(api, [take])) is None:
            yield api.compute(2_000)
        (value,) = struct.unpack(">i", take.received)
        give = CspGuard(
            kind="output", msg_type=TYPE_NUM,
            peer=api.server_sig(2, NAME[2]),
            value=struct.pack(">i", value * 2),
        )
        while (yield from self.csp.alternative(api, [give])) is None:
            yield api.compute(2_000)
        print(f"[{api.now/1000:8.2f} ms] doubler:  {value} -> {value * 2}")


def printer(api, self):
    got = []
    while len(got) < 4:
        take = CspGuard(kind="input", msg_type=TYPE_NUM, capacity=4)
        if (yield from self.csp.alternative(api, [take])) is None:
            yield api.compute(2_000)
            continue
        (value,) = struct.unpack(">i", take.received)
        got.append(value)
        print(f"[{api.now/1000:8.2f} ms] printer:  got {value}")
    print(f"\npipeline delivered: {got}")
    assert got == [6, 14, 22, 50]


def main() -> None:
    net = Network(seed=23)
    net.add_node(program=Stage(0, producer))
    net.add_node(program=Stage(1, doubler), boot_at_us=50.0)
    net.add_node(program=Stage(2, printer), boot_at_us=100.0)
    net.run(until=120_000_000.0)


if __name__ == "__main__":
    main()
