#!/usr/bin/env python3
"""Regenerate the full "SODA Performance" table (p. 115).

All twelve payload sizes for PUT / GET / EXCHANGE, non-pipelined and
pipelined, side by side with the paper's published milliseconds, plus
the overhead-breakdown table and the \\*MOD comparison.

Run:  python examples/performance_tables.py          (full, ~2 min)
      python examples/performance_tables.py --quick  (5 sizes, ~30 s)
"""

import sys

from repro.bench import (
    WORD_SIZES,
    format_table,
    generate_performance_table,
    measure_comparison,
    measure_signal_breakdown,
)


def main() -> None:
    quick = "--quick" in sys.argv
    sizes = [0, 1, 100, 500, 1000] if quick else WORD_SIZES

    for verb in ("put", "get", "exchange"):
        for pipelined in (False, True):
            rows = generate_performance_table(verb, pipelined, sizes=sizes)
            title = (
                f"Milliseconds per {verb.upper()} "
                f"({'pipelined' if pipelined else 'non-pipelined'})"
            )
            print(
                format_table(
                    ["words", "measured ms", "paper ms", "packets/txn"],
                    [
                        (r.words, r.measured_ms, r.paper_ms, r.packets)
                        for r in rows
                    ],
                    title=title,
                )
            )
            print()

    breakdown = measure_signal_breakdown()
    rows = [
        (name, breakdown.measured_ms[name], breakdown.paper_ms[name])
        for name in breakdown.paper_ms
    ]
    rows.append(("TOTAL", breakdown.total_measured_ms, breakdown.total_paper_ms))
    print(
        format_table(
            ["category", "measured ms", "paper ms"],
            rows,
            title="Breakdown of protocol time (2 packets per SIGNAL)",
        )
    )
    print(f"elapsed B_SIGNAL call: {breakdown.elapsed_call_ms:.2f} ms\n")

    comparison = measure_comparison()
    print(
        format_table(
            ["scenario", "measured ms", "paper ms"],
            [(r.scenario, r.measured_ms, r.paper_ms) for r in comparison],
            title="SODA vs *MOD (single-word transactions)",
        )
    )


if __name__ == "__main__":
    main()
