#!/usr/bin/env python3
"""Reproduce the "Typical Delta-t Situations" figure (p. 106).

Three scripted scenarios against live kernels show the connectionless
protocol's timers at work: take-any expiry after silence, duplicate
suppression under a lost acknowledgement, and the post-crash quiet
period.

Run:  python examples/deltat_scenarios.py
"""

from repro.bench.deltat_figure import deltat_scenarios
from repro.transport.deltat import DeltaTConfig


def main() -> None:
    deltat = DeltaTConfig(mpl_us=20_000.0, r_us=60_000.0, a_us=5_000.0)
    print(
        f"Delta-t parameters: MPL={deltat.mpl_us/1000:.0f} ms, "
        f"R={deltat.r_us/1000:.0f} ms, A={deltat.a_us/1000:.0f} ms"
    )
    print(
        f"  -> take-any after {deltat.take_any_after_us/1000:.0f} ms of "
        f"silence; crash quiet period {deltat.crash_quiet_us/1000:.0f} ms\n"
    )
    for scenario in deltat_scenarios(deltat).values():
        status = "ok" if scenario.ok else "FAILED"
        print(f"{scenario.name} [{status}]")
        for t_ms, event in scenario.events:
            print(f"    t={t_ms:9.1f} ms  {event}")
        print()


if __name__ == "__main__":
    main()
