#!/usr/bin/env python3
"""Quickstart: a two-node SODA network.

A server advertises a well-known pattern and echoes EXCHANGEs; a client
DISCOVERs it, exchanges a message, and prints what happened.  This is
the smallest end-to-end use of the library: patterns, DISCOVER, blocking
requests, and ACCEPT_CURRENT.

Run:  python examples/quickstart.py
"""

from repro import Buffer, ClientProgram, Network, make_well_known_pattern

ECHO = make_well_known_pattern(0o346)


class EchoServer(ClientProgram):
    """Accepts every EXCHANGE, replying with the uppercased payload."""

    def initialization(self, api, parent_mid):
        yield from api.advertise(ECHO)
        print(f"[{api.now/1000:8.2f} ms] server: advertised ECHO on MID {api.my_mid}")

    def handler(self, api, event):
        if not event.is_arrival:
            return
        inbuf = Buffer(event.put_size)
        # Peek nothing -- ACCEPT moves the data and unblocks the client.
        yield from api.accept_current_exchange(get=inbuf, put=None)
        print(
            f"[{api.now/1000:8.2f} ms] server: accepted {len(inbuf.data)}B "
            f"from {event.asker}"
        )
        # Reply via a separate PUT to demonstrate an active SEND from a
        # server (SODA servers are ordinary clients).


class EchoClient(ClientProgram):
    def task(self, api):
        server = yield from api.discover(ECHO)
        print(f"[{api.now/1000:8.2f} ms] client: discovered server at {server}")
        reply = Buffer(64)
        completion = yield from api.b_exchange(
            server, put=b"hello, soda!", get=reply
        )
        print(
            f"[{api.now/1000:8.2f} ms] client: exchange {completion.status.value}, "
            f"sent {completion.taken_put}B"
        )
        completion = yield from api.b_signal(server)
        print(
            f"[{api.now/1000:8.2f} ms] client: follow-up SIGNAL "
            f"{completion.status.value}"
        )


def main() -> None:
    net = Network(seed=7)
    net.add_node(program=EchoServer(), name="server")
    net.add_node(program=EchoClient(), name="client", boot_at_us=100.0)
    net.run(until=5_000_000.0)
    print(
        f"\ndone at t={net.now/1000:.2f} ms; "
        f"{net.bus.frames_sent} frames crossed the bus"
    )


if __name__ == "__main__":
    main()
