#!/usr/bin/env python3
"""The paper's dining-philosophers solution (§4.4.3), live.

Five philosopher nodes (each owning its right fork), a timeserver, and
the deadlock-detector process.  Thinking times are deliberately
synchronized so the table deadlocks repeatedly; watch the detector probe
the ring and break each deadlock by asking a fair victim to give its
left fork back.

Run:  python examples/dining_philosophers.py
"""

from repro.apps.philosophers import DeadlockDetector, Philosopher
from repro.core import Network
from repro.facilities.timeservice import TimeServer

N = 5
MEALS = 4


def main() -> None:
    net = Network(seed=13)
    philosophers = []
    for i in range(N):
        philosopher = Philosopher(
            left_mid=(i - 1) % N,
            think_us=1_000.0,   # everyone gets hungry together
            eat_us=1_500.0,
            meals_target=MEALS,
        )
        philosophers.append(philosopher)
        net.add_node(mid=i, program=philosopher, boot_at_us=i * 20.0)
    net.add_node(mid=N, program=TimeServer())
    detector = DeadlockDetector(list(range(N)), interval_ms=10)
    net.add_node(mid=N + 1, program=detector, boot_at_us=500.0)

    done = net.run_until(
        lambda: all(p.meals >= MEALS for p in philosophers),
        timeout=900_000_000.0,
    )
    print(f"finished: {done} at t={net.now/1000:.1f} ms\n")
    for i, p in enumerate(philosophers):
        print(
            f"philosopher {i}: ate {p.meals} times, "
            f"gave a fork back {p.give_backs} time(s)"
        )
    print(
        f"\ndetector: {detector.probes} probe rounds, "
        f"{detector.deadlocks_broken} deadlock(s) broken"
    )


if __name__ == "__main__":
    main()
