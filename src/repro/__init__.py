"""repro: a reproduction of Kepecs & Solomon's SODA (1984).

SODA is a communications adaptor that doubles as the kernel of a
distributed operating system.  This package provides:

* :mod:`repro.sim` — a deterministic discrete-event simulator;
* :mod:`repro.net` — the 1 Mbit/s broadcast bus (Megalink stand-in);
* :mod:`repro.transport` — Delta-t records, packets, retransmission;
* :mod:`repro.core` — the SODA kernel, client processor, nodes/networks;
* :mod:`repro.sodal` — the SODAL programming layer (blocking requests,
  queues, ACCEPT_CURRENT, DISCOVER);
* :mod:`repro.facilities` — ports, RPC, remote memory reference, links,
  CSP rendezvous, timeouts (Chapter 4's higher-level facilities);
* :mod:`repro.apps` — the paper's five programmed examples;
* :mod:`repro.baselines` — a *MOD-style port runtime for comparison;
* :mod:`repro.bench` — harnesses that regenerate the paper's tables.

Quickstart::

    from repro import Network, ClientProgram, make_well_known_pattern

    PING = make_well_known_pattern(0o346)

    class Server(ClientProgram):
        def initialization(self, api, parent_mid):
            yield from api.advertise(PING)
        def handler(self, api, event):
            if event.is_arrival:
                yield from api.accept_current_signal()

    class Client(ClientProgram):
        def task(self, api):
            server = yield from api.discover(PING)
            completion = yield from api.b_signal(server)
            print("signal status:", completion.status)

    net = Network(seed=7)
    net.add_node(program=Server())
    net.add_node(program=Client())
    net.run(until=1_000_000)
"""

from repro.core import (
    AcceptStatus,
    BROADCAST,
    Buffer,
    CancelStatus,
    ClientProcessor,
    ClientProgram,
    HandlerEvent,
    HandlerReason,
    KernelConfig,
    Network,
    Pattern,
    RequestStatus,
    RequesterSignature,
    ServerSignature,
    SodaKernel,
    SodaNode,
    TimingModel,
    make_reserved_pattern,
    make_well_known_pattern,
)
from repro.sodal import OK, Completion, Queue, SodalApi

__version__ = "1.0.0"

__all__ = [
    "AcceptStatus",
    "BROADCAST",
    "Buffer",
    "CancelStatus",
    "ClientProcessor",
    "ClientProgram",
    "Completion",
    "HandlerEvent",
    "HandlerReason",
    "KernelConfig",
    "Network",
    "OK",
    "Pattern",
    "Queue",
    "RequestStatus",
    "RequesterSignature",
    "ServerSignature",
    "SodaKernel",
    "SodaNode",
    "SodalApi",
    "TimingModel",
    "__version__",
    "make_reserved_pattern",
    "make_well_known_pattern",
]
