"""Adaptive retransmission policy: RTT estimation + congestion backoff.

The static policy of :mod:`repro.transport.retransmit` retransmits on a
fixed 60 ms timer — spuriously early on slow (CPU-scaled or queued)
paths, and many RTTs too late on fast ones.  :class:`AdaptivePolicy`
replaces the constant with the classic Jacobson/Karels estimator
(RFC 6298 coefficients), maintained per connection by an
:class:`RttEstimator`:

    SRTT    <- (1 - 1/8) * SRTT   + 1/8 * sample
    RTTVAR  <- (1 - 1/4) * RTTVAR + 1/4 * |SRTT - sample|
    RTO     =  SRTT + 4 * RTTVAR

to which the policy adds the per-byte wire term the static policy
already charged, a floor of one maximum-size frame's wire time
(``min_timeout_us``), and per-message exponential backoff with a
*collapse cap*: under consecutive losses the retry interval doubles but
never exceeds ``backoff_cap_us``, so a congested bus sees a decaying —
not collapsing — retry rate.

**Karn's rule** is enforced at the sampling site
(:meth:`repro.core.connection.Connection.handle_ack`): an
acknowledgement that releases a message which was *retransmitted* never
contributes a sample — the ack cannot be attributed to one particular
copy — so backed-off timeouts cannot poison the estimate.

**Delta-t consistency.**  Delta-t's correctness condition ties the
receiver's record lifetime to ``R``, the sender's *maximum total
retransmission time* (§5.2.2).  A policy that stretches its retry window
must stretch ``R`` with it, or a receiver can forget a connection while
the sender is still retransmitting into it and misclassify a duplicate
as new.  :func:`deltat_for_policy` derives a consistent
:class:`~repro.transport.deltat.DeltaTConfig` from any policy's
:meth:`~repro.transport.retransmit.RetransmitPolicy.retry_window_bound_us`;
the chaos harness uses it whenever it enables the adaptive policy.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import ClassVar, Optional

from repro.transport.deltat import DeltaTConfig
from repro.transport.retransmit import RetransmitPolicy


class RttEstimator:
    """Per-connection SRTT/RTTVAR state (Jacobson/Karels, RFC 6298)."""

    __slots__ = ("srtt_us", "rttvar_us", "samples", "backoff_scale")

    #: RFC 6298 smoothing coefficients.
    ALPHA = 0.125
    BETA = 0.25
    #: Ceiling on the persistent backoff multiplier; the computed delay
    #: is capped at ``backoff_cap_us`` anyway, this just keeps the float
    #: bounded over long loss plateaus.
    MAX_BACKOFF_SCALE = 64.0

    def __init__(self) -> None:
        self.srtt_us: Optional[float] = None
        self.rttvar_us: float = 0.0
        self.samples: int = 0
        #: RFC 6298 §5.6: Karn's rule alone deadlocks on a path slower
        #: than the current RTO — every message gets retransmitted, so
        #: no ack ever yields a clean sample and the estimate never
        #: rises.  Retaining the backed-off timeout *across messages*
        #: until a clean sample arrives breaks the cycle: eventually a
        #: first transmission outlives the true RTT unretransmitted and
        #: the estimator converges.
        self.backoff_scale: float = 1.0

    def sample(self, rtt_us: float) -> None:
        """Feed one clean (never-retransmitted, Karn-safe) RTT sample."""
        rtt_us = max(rtt_us, 0.0)
        if self.srtt_us is None:
            self.srtt_us = rtt_us
            self.rttvar_us = rtt_us / 2.0
        else:
            self.rttvar_us = (1.0 - self.BETA) * self.rttvar_us + (
                self.BETA * abs(self.srtt_us - rtt_us)
            )
            self.srtt_us = (1.0 - self.ALPHA) * self.srtt_us + (
                self.ALPHA * rtt_us
            )
        self.samples += 1
        self.backoff_scale = 1.0

    def back_off(self, growth: float = 2.0) -> None:
        """A retransmission fired: retain the backoff for later messages
        too, until a clean sample resets it (RFC 6298 §5.6)."""
        self.backoff_scale = min(
            self.backoff_scale * growth, self.MAX_BACKOFF_SCALE
        )

    def rto_us(self) -> Optional[float]:
        """``srtt + 4·rttvar``, or None before the first sample."""
        if self.srtt_us is None:
            return None
        return self.srtt_us + 4.0 * self.rttvar_us


@dataclass(frozen=True)
class AdaptivePolicy(RetransmitPolicy):
    """RTT-estimated acknowledgement timeouts with capped backoff.

    Inherited fields keep their meaning: ``ack_timeout_us`` becomes the
    *initial* timeout used before the first RTT sample, and the per-byte
    and jitter terms apply unchanged.  The BUSY retry regime is
    inherited verbatim — BUSY is flow control, not loss, and the paper's
    decaying-rate rule already adapts it.
    """

    kind: ClassVar[str] = "adaptive"

    #: Hard floor for any computed timeout: one maximum-size frame's
    #: wire time (4096 bytes at 8 us/byte on the 1 Mbit/s Megalink).
    #: An estimator fed only tiny-message RTTs must never time out a
    #: maximum-size frame while it is still serializing.
    min_timeout_us: float = 33_000.0
    #: Per-message exponential backoff under consecutive losses.  1.5
    #: rather than the textbook 2.0: the Megalink is a single shared
    #: bus, not the open Internet — decaying the retry rate is what
    #: §5.2.3 asks for, and the gentler curve keeps loss-recovery
    #: latency ahead of the static 60 ms timer through three
    #: consecutive losses.
    backoff_growth: float = 1.5
    #: The collapse cap.  Must stay safely below the Delta-t take-any
    #: window (305 ms at the default DeltaTConfig) so one lost
    #: retransmission — two consecutive gaps — cannot silence the
    #: connection long enough for the receiver to forget it; see
    #: :func:`deltat_for_policy` for the harmonized configuration.
    backoff_cap_us: float = 140_000.0

    def make_estimator(self) -> RttEstimator:
        return RttEstimator()

    def ack_retry_delay(
        self,
        attempt: int,
        rng,
        data_bytes: int = 0,
        estimator: Optional[RttEstimator] = None,
    ) -> float:
        if attempt < 1:
            raise ValueError("attempts are 1-based")
        rto = estimator.rto_us() if estimator is not None else None
        if rto is None:
            rto = self.ack_timeout_us
            if estimator is not None:
                # Persistent backoff (RFC 6298 §5.6), pre-convergence
                # only: with no sample yet, a path slower than the
                # initial timeout would retransmit every message and
                # Karn's rule would block every sample — the estimator
                # could never learn.  Retaining the backed-off timeout
                # across messages until the first clean sample breaks
                # that cycle.  Once converged, the scale is ignored:
                # under *loss* (rather than slowness) retransmissions
                # are genuine, and widening every first-attempt timeout
                # would just slow loss recovery.
                rto *= estimator.backoff_scale
        rto += self.ack_timeout_per_byte_us * data_bytes
        delay = min(
            rto * (self.backoff_growth ** (attempt - 1)),
            self.backoff_cap_us,
        )
        delay = max(delay, self.min_timeout_us)
        return delay + rng.uniform(0.0, self.ack_jitter_us)

    def retry_window_bound_us(self, count: int, data_bytes: int = 0) -> float:
        """Upper bound on the span of ``count`` transmissions.

        Every inter-transmission delay is capped at
        ``max(backoff_cap_us, min_timeout_us) + jitter``; the per-byte
        term is applied *inside* the cap (see :meth:`ack_retry_delay`),
        so ``data_bytes`` cannot stretch the window further.
        """
        per_try = (
            max(self.backoff_cap_us, self.min_timeout_us)
            + self.ack_jitter_us
        )
        return count * per_try

    def as_dict(self) -> dict:
        knobs = super().as_dict()
        knobs.update(
            {
                "min_timeout_us": self.min_timeout_us,
                "backoff_growth": self.backoff_growth,
                "backoff_cap_us": self.backoff_cap_us,
            }
        )
        return knobs


def deltat_for_policy(
    policy: RetransmitPolicy,
    max_message_bytes: int = 4096,
    base: Optional[DeltaTConfig] = None,
) -> DeltaTConfig:
    """A :class:`DeltaTConfig` whose ``R`` covers the policy's true
    maximum total retransmission time (the paper's consistency
    condition for Delta-t, §5.2.2)."""
    base = base or DeltaTConfig()
    r_us = policy.retry_window_bound_us(
        policy.max_ack_attempts, max_message_bytes
    )
    return replace(base, r_us=max(base.r_us, r_us))
