"""Retransmission policy (§5.2.2-§5.2.3).

Two distinct retry regimes exist:

* **Acknowledgement retries** — a sequenced message unacknowledged after a
  timeout is retransmitted after a random backoff; the number of attempts
  is bounded, and exhausting them declares the destination dead.
* **BUSY retries** — a REQUEST rejected with a BUSY NACK is retried at a
  *slower*, decaying rate ("the rate of REQUEST retransmission decreases
  with the number of retransmission attempts to avoid flooding the bus
  needlessly"); these retries are unbounded because a client looping in
  its handler is not considered crashed.

The policy is pluggable: :class:`RetransmitPolicy` (aliased
:data:`StaticPolicy`) is the paper-faithful fixed-timer policy the
benchmarks use, and :class:`repro.transport.adaptive.AdaptivePolicy`
subclasses it with an RTT-estimated timeout and capped exponential
backoff for the chaos/soak runs.  A subclass overrides
:meth:`~RetransmitPolicy.make_estimator` to hand each connection its
estimator state and receives it back through the ``estimator`` argument
of :meth:`~RetransmitPolicy.ack_retry_delay`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar


@dataclass(frozen=True)
class RetransmitPolicy:
    """Timing knobs for both retry regimes, in microseconds."""

    #: Policy discriminator for traces/metrics ("static" / "adaptive").
    kind: ClassVar[str] = "static"

    #: Base acknowledgement timeout.  Must cover a maximum-size frame's
    #: serialization in each direction plus the receiver's deferred-ack
    #: window, or large PUTs trigger spurious retransmissions.
    ack_timeout_us: float = 60_000.0
    ack_jitter_us: float = 4_000.0
    #: Additional timeout per byte of data carried (wire time at
    #: 1 Mbit/s is 8 us/byte; allow for the reply direction too).
    ack_timeout_per_byte_us: float = 16.0
    max_ack_attempts: int = 8

    busy_retry_base_us: float = 1_200.0
    busy_retry_growth: float = 1.3
    busy_retry_max_us: float = 50_000.0
    busy_jitter_us: float = 200.0

    def make_estimator(self):
        """Per-connection estimator state, or None for a fixed timer."""
        return None

    def ack_retry_delay(
        self, attempt: int, rng, data_bytes: int = 0, estimator=None
    ) -> float:
        """Delay before retransmission ``attempt`` (1-based) for an ack.

        ``estimator`` is whatever :meth:`make_estimator` returned for
        this connection; the static policy ignores it.
        """
        if attempt < 1:
            raise ValueError("attempts are 1-based")
        return (
            self.ack_timeout_us
            + self.ack_timeout_per_byte_us * data_bytes
            + rng.uniform(0.0, self.ack_jitter_us)
        )

    def retry_window_bound_us(self, count: int, data_bytes: int = 0) -> float:
        """Upper bound on the time span of ``count`` transmissions of
        one message (used by the INV-DELTAT trace check and to derive a
        consistent Delta-t ``R``)."""
        per_try = (
            self.ack_timeout_us
            + self.ack_timeout_per_byte_us * data_bytes
            + self.ack_jitter_us
        )
        return count * per_try

    def busy_retry_delay(self, attempt: int, rng) -> float:
        """Delay before BUSY retry ``attempt`` (1-based), decaying rate."""
        if attempt < 1:
            raise ValueError("attempts are 1-based")
        delay = self.busy_retry_base_us * (self.busy_retry_growth ** (attempt - 1))
        delay = min(delay, self.busy_retry_max_us)
        return delay + rng.uniform(0.0, self.busy_jitter_us)

    def exhausted(self, attempts: int) -> bool:
        return attempts >= self.max_ack_attempts

    def as_dict(self) -> dict:
        """Policy knobs for benchmark-snapshot metadata (repro.obs)."""
        return {
            "kind": self.kind,
            "ack_timeout_us": self.ack_timeout_us,
            "ack_jitter_us": self.ack_jitter_us,
            "ack_timeout_per_byte_us": self.ack_timeout_per_byte_us,
            "max_ack_attempts": self.max_ack_attempts,
            "busy_retry_base_us": self.busy_retry_base_us,
            "busy_retry_growth": self.busy_retry_growth,
            "busy_retry_max_us": self.busy_retry_max_us,
            "busy_jitter_us": self.busy_jitter_us,
        }


#: The paper-faithful fixed-timer policy under its pluggable-policy name.
StaticPolicy = RetransmitPolicy
