"""Transport-level building blocks.

The SODA kernel's wire protocol (Chapter 5) is built from:

* :mod:`repro.transport.packet` — the packet vocabulary, with the
  piggyback combinations the paper's flows use (REQUEST+DATA, ACCEPT+ACK,
  DATA+ACK, BUSY/ERROR NACKs, probes, discover query/reply);
* :mod:`repro.transport.deltat` — Delta-t connection records: implicit
  connection establishment, the take-any-sequence-number timer, and the
  post-crash quiet period (§5.2.2);
* :mod:`repro.transport.retransmit` — retransmission backoff policy,
  including the slower retry rate used against BUSY handlers (§5.2.3).

The per-peer alternating-bit machinery itself lives with the kernel in
:mod:`repro.core.connection` because every piggybacking decision is made
by kernel logic.
"""

from repro.transport.deltat import DeltaTConfig, DeltaTRecord, DeltaTState
from repro.transport.packet import NackCode, Packet, PacketType
from repro.transport.retransmit import RetransmitPolicy

__all__ = [
    "DeltaTConfig",
    "DeltaTRecord",
    "DeltaTState",
    "NackCode",
    "Packet",
    "PacketType",
    "RetransmitPolicy",
]
