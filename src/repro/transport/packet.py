"""Packet vocabulary for the SODA kernel protocol.

A packet is one transport message; the paper's protocol leans hard on
piggybacking, so a single packet can simultaneously carry a REQUEST, data,
and an acknowledgement of the previous inbound message.  We model this
with a primary :class:`PacketType` plus an optional piggybacked ``ack``
(the alternating-bit being acknowledged) and optional data payloads.

Data is carried as real ``bytes`` so the reproduction can assert
end-to-end integrity, not just timing.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional


class PacketType(enum.Enum):
    """Primary role of a packet."""

    REQUEST = "request"          # REQUEST (+ optional put-direction data)
    ACCEPT = "accept"            # ACCEPT (+ optional get-direction data)
    DATA = "data"                # requester's put data pulled by an ACCEPT
    ACK = "ack"                  # pure acknowledgement
    NACK = "nack"                # negative acknowledgement (code below)
    PROBE = "probe"              # is this delivered REQUEST still alive?
    PROBE_REPLY = "probe_reply"
    CANCEL = "cancel"            # requester withdraws a delivered REQUEST
    CANCEL_REPLY = "cancel_reply"  # server's verdict (arg: 1 ok / 0 too late)
    DISCOVER_QUERY = "discover_query"    # broadcast pattern inquiry
    DISCOVER_REPLY = "discover_reply"


class NackCode(enum.Enum):
    """Why a message was negatively acknowledged."""

    BUSY = "busy"                  # server handler BUSY/CLOSED; retry later
    OVERLOAD = "overload"          # kernel shed the REQUEST before delivery
    UNADVERTISED = "unadvertised"  # pattern not advertised at the server
    CANCELLED = "cancelled"        # no such live request (completed/cancelled)
    CRASHED = "crashed"            # requester rebooted since REQUEST issued
    DEAD = "dead"                  # probed request no longer known


_packet_ids = itertools.count(1)


@dataclass
class Packet:
    """One transport message.

    Field groups (unused fields stay None):

    * reliability: ``seq`` is the alternating bit of a sequenced message;
      ``ack`` piggybacks the acknowledgement of the peer's last sequenced
      message; ``connection_open`` mirrors the Delta-t header bit that
      prevents a stray ACK from being mistaken for a live connection's.
    * request fields: ``pattern``, ``tid``, ``arg``, ``put_size``,
      ``get_size``, plus ``data`` when put-direction data rides along.
    * accept fields: ``tid`` names the request being completed, ``arg`` is
      the ACCEPT argument, ``data`` carries get-direction data,
      ``pull_data`` asks the requester to ship put-direction data that was
      stripped from a retransmission, ``taken_put``/``taken_get`` report
      how much data moved each way.
    * nack fields: ``nack_code`` plus ``tid`` of the affected message.
    """

    ptype: PacketType
    seq: Optional[int] = None
    ack: Optional[int] = None
    connection_open: bool = True

    pattern: Optional[int] = None
    tid: Optional[int] = None
    requester_mid: Optional[int] = None
    arg: int = 0
    put_size: int = 0
    get_size: int = 0
    data: Optional[bytes] = None
    pull_data: bool = False
    taken_put: int = 0
    taken_get: int = 0
    nack_code: Optional[NackCode] = None
    nacked_seq: Optional[int] = None
    #: BUSY NACKs carry the server's retry hint: the requester must not
    #: retransmit the nacked REQUEST sooner than this (an overloaded
    #: kernel widens it to shed load; sodalint rule SODA007 asserts
    #: clients honor it).
    retry_hint_us: Optional[float] = None

    #: Transmission timestamp of this copy, stamped by the sending
    #: connection, and its echo on acknowledgements (Eifel-style): an
    #: ack answering an *older* copy than the last one transmitted
    #: exposes that retransmission as spurious.
    tx_us: Optional[float] = None
    echo_tx_us: Optional[float] = None

    #: DISCOVER support: replying kernel's MID, and an opaque echo token
    #: that lets the requester kernel match replies to queries.
    reply_mid: Optional[int] = None
    query_token: Optional[int] = None

    #: Incarnation of the sending kernel's client, carried on probe
    #: replies so the requester (and the causal analysis engine) can
    #: tell which life of the server vouched for the answer.
    epoch: Optional[int] = None

    #: Boot support: an executable image rides the data path (see
    #: repro.core.boot); the bytes in ``data`` stand in for its size.
    image: Any = None

    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    @property
    def data_bytes(self) -> int:
        return len(self.data) if self.data is not None else 0

    def wire_payload_bytes(self) -> int:
        """Bytes this packet adds beyond the fixed frame header."""
        return self.data_bytes

    def describe(self) -> str:
        parts = [self.ptype.value]
        if self.data is not None:
            parts.append(f"+{self.data_bytes}B")
        if self.ack is not None:
            parts.append(f"+ack{self.ack}")
        if self.pull_data:
            parts.append("+pull")
        if self.nack_code is not None:
            parts.append(f"({self.nack_code.value})")
        return "".join(parts)

    def __repr__(self) -> str:
        return f"<Pkt#{self.packet_id} {self.describe()} seq={self.seq} tid={self.tid}>"
