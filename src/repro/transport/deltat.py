"""Delta-t connection management (§5.2.2).

Delta-t replaces explicit connection establishment with timers.  With

* ``R``   — maximum total time a message is retransmitted,
* ``MPL`` — maximum packet lifetime,
* ``A``   — maximum delay before acknowledging,

the paper defines ``Δt = MPL + R + A`` and derives:

* a receiver that has heard nothing from a peer for ``MPL + Δt`` destroys
  its connection record and will again accept *any* sequence number from
  that peer ("take-any" state);
* a crashed node must stay quiet for ``2·MPL + Δt`` after recovering
  before sending, so all old traffic and acknowledgements have died out.

:class:`DeltaTRecord` tracks one peer's receive-direction state; the
kernel consults it to decide whether an incoming sequence number is
acceptable and to purge stale state.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class DeltaTConfig:
    """Timer bounds, in microseconds."""

    mpl_us: float = 50_000.0          # maximum packet lifetime
    r_us: float = 200_000.0           # maximum total retransmission time
    a_us: float = 5_000.0             # maximum ack delay

    @property
    def delta_t_us(self) -> float:
        return self.mpl_us + self.r_us + self.a_us

    @property
    def take_any_after_us(self) -> float:
        """Silence after which the receive record is destroyed."""
        return self.mpl_us + self.delta_t_us

    @property
    def crash_quiet_us(self) -> float:
        """How long a recovering node must stay silent before sending."""
        return 2 * self.mpl_us + self.delta_t_us


class DeltaTState(enum.Enum):
    TAKE_ANY = "take_any"      # no record: accept any sequence number
    SYNCHRONIZED = "synchronized"  # record live: enforce alternation


class DeltaTRecord:
    """Receive-direction connection record for one peer."""

    def __init__(self, config: DeltaTConfig) -> None:
        self.config = config
        self.state = DeltaTState.TAKE_ANY
        self.expected_seq: Optional[int] = None
        self.last_heard_us: Optional[float] = None
        #: Lifetime instrumentation counters (read by repro.obs): how
        #: often this record expired back to take-any, and how often it
        #: (re)synchronized.  Cumulative across crashes/destroys.
        self.expiries = 0
        self.synchronizations = 0

    def _maybe_expire(self, now_us: float) -> None:
        if (
            self.state is DeltaTState.SYNCHRONIZED
            and self.last_heard_us is not None
            and now_us - self.last_heard_us >= self.config.take_any_after_us
        ):
            self.state = DeltaTState.TAKE_ANY
            self.expected_seq = None
            self.expiries += 1

    def heard(self, now_us: float) -> None:
        """Note any traffic from the peer (refreshes the take-any timer)."""
        self._maybe_expire(now_us)
        self.last_heard_us = now_us

    def peek(self, seq: int, now_us: float) -> str:
        """Classification verdict without consuming the sequence number.

        Used to recognize duplicates of already-delivered messages even
        when the new-message path is unavailable (BUSY handler): a
        duplicate must be re-acknowledged, never negatively acknowledged.
        """
        self._maybe_expire(now_us)
        if self.state is DeltaTState.TAKE_ANY:
            return "new"
        return "new" if seq == self.expected_seq else "duplicate"

    def classify(self, seq: int, now_us: float) -> str:
        """Classify an incoming sequenced message.

        Returns ``"new"`` (deliver it), ``"duplicate"`` (discard,
        re-acknowledge), and updates the record.  In TAKE_ANY state any
        sequence number is accepted and synchronizes the record, exactly
        as the paper prescribes.
        """
        self._maybe_expire(now_us)
        self.last_heard_us = now_us
        if self.state is DeltaTState.TAKE_ANY:
            self.state = DeltaTState.SYNCHRONIZED
            self.expected_seq = 1 - seq
            self.synchronizations += 1
            return "new"
        if seq == self.expected_seq:
            self.expected_seq = 1 - seq
            return "new"
        return "duplicate"

    def current_state(self, now_us: float) -> DeltaTState:
        self._maybe_expire(now_us)
        return self.state

    def destroy(self) -> None:
        self.state = DeltaTState.TAKE_ANY
        self.expected_seq = None
        self.last_heard_us = None
