"""Trace records, counters, and the cost ledger.

Two observability mechanisms coexist:

* :class:`Tracer` — an append-only log of structured records plus named
  counters.  Tests and benchmarks use it to count packets per transaction,
  observe handler invocations, etc.
* :class:`CostLedger` — an accumulator of *simulated time charged to a
  named cost category*.  The SODA kernel charges every microsecond of
  simulated work to a category (``protocol``, ``connection_timers``,
  ``retransmit_timers``, ``context_switch``, ``transmission``,
  ``client_overhead``), which is exactly what the paper's "Breakdown of
  Communications Overhead" table reports.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, MutableSequence, Optional


@dataclass
class TraceRecord:
    """One structured trace entry."""

    time: float
    category: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)


class Tracer:
    """Structured event log with counters.

    Tracing is cheap but not free; large benchmark runs can disable record
    retention (``keep_records=False``) and still use counters.  Soak runs
    that want *recent* records without unbounded growth set
    ``max_records``: retention becomes a ring buffer and
    :attr:`dropped_records` counts what fell off the front (a trace with
    drops is :attr:`truncated` and cannot be replayed by the invariant
    checker).

    Sinks (:meth:`add_sink`) stream every record to a live consumer —
    the observability hub uses one — independent of retention.  With no
    sinks installed the per-record cost is a single falsy check.
    """

    def __init__(
        self,
        keep_records: bool = True,
        max_records: Optional[int] = None,
    ) -> None:
        if max_records is not None and max_records <= 0:
            raise ValueError(f"max_records must be positive: {max_records}")
        self.keep_records = keep_records
        self.max_records = max_records
        self.records: MutableSequence[TraceRecord] = (
            deque(maxlen=max_records) if max_records is not None else []
        )
        self.counters: Counter = Counter()
        self.dropped_records = 0
        self._sinks: List[Callable[[TraceRecord], None]] = []
        # Precomputed fast-mode flag: with retention off and no sinks,
        # record() never constructs a TraceRecord — it only bumps the
        # category counter.  Kept in sync by add_sink/remove_sink.
        self._passive = not keep_records

    @property
    def truncated(self) -> bool:
        """True if ring-buffer mode has dropped any records."""
        return self.dropped_records > 0

    def add_sink(self, sink: Callable[[TraceRecord], None]) -> None:
        """Stream every future record to ``sink`` (live metrics)."""
        self._sinks.append(sink)
        self._passive = False

    def remove_sink(self, sink: Callable[[TraceRecord], None]) -> None:
        self._sinks.remove(sink)
        self._passive = not self.keep_records and not self._sinks

    def record(self, time: float, category: str, **fields: Any) -> None:
        self.counters[category] += 1
        if self._passive:
            return
        entry = TraceRecord(time, category, fields)
        if self.keep_records:
            if (
                self.max_records is not None
                and len(self.records) >= self.max_records
            ):
                self.dropped_records += 1
            self.records.append(entry)
        for sink in self._sinks:
            sink(entry)

    def count(self, category: str) -> int:
        return self.counters[category]

    def select(self, category: str, **match: Any) -> List[TraceRecord]:
        """All retained records of a category whose fields match ``match``."""
        out = []
        for record in self.records:
            if record.category != category:
                continue
            if all(record.get(key) == value for key, value in match.items()):
                out.append(record)
        return out

    def iter_category(self, category: str):
        """Lazily yield retained records of one category, in time order."""
        for record in self.records:
            if record.category == category:
                yield record

    def categories(self) -> List[str]:
        """All categories seen so far (retained or counted), sorted."""
        return sorted(self.counters)

    def last(self, category: str) -> Optional[TraceRecord]:
        for record in reversed(self.records):
            if record.category == category:
                return record
        return None

    def reset(self) -> None:
        self.records.clear()
        self.counters.clear()
        self.dropped_records = 0


class CostLedger:
    """Accumulates simulated time per cost category.

    Categories mirror the paper's overhead-breakdown table.  ``charge`` is
    called by the kernel and client runtime at the moment work is modelled,
    so `total()` equals the sum of all modelled busy time.
    """

    CATEGORIES = (
        "connection_timers",
        "retransmit_timers",
        "context_switch",
        "transmission",
        "client_overhead",
        "protocol",
        "disk_io",
    )

    def __init__(self) -> None:
        self._charges: Counter = Counter()

    def charge(self, category: str, microseconds: float) -> None:
        if microseconds < 0:
            raise ValueError(f"negative charge: {microseconds}")
        self._charges[category] += microseconds

    def get(self, category: str) -> float:
        return float(self._charges[category])

    def total(self) -> float:
        return float(sum(self._charges.values()))

    def snapshot(self) -> Dict[str, float]:
        return {key: float(value) for key, value in self._charges.items()}

    def diff(self, earlier: Dict[str, float]) -> Dict[str, float]:
        """Charges accumulated since an earlier :meth:`snapshot`."""
        out: Dict[str, float] = {}
        for key, value in self._charges.items():
            delta = float(value) - earlier.get(key, 0.0)
            if delta:
                out[key] = delta
        return out

    def reset(self) -> None:
        self._charges.clear()
