"""Deterministic discrete-event simulation engine.

This package is the lowest substrate of the reproduction: everything else
(the bus, the transport protocol, the SODA kernel, client programs) runs
inside a :class:`~repro.sim.engine.Simulator`.  Time is virtual and
expressed in microseconds; all randomness flows through named, seeded
streams so a run is reproducible from ``(seed,)`` alone.
"""

from repro.sim.clock import MICROSECOND, MILLISECOND, SECOND, format_us
from repro.sim.engine import Simulator
from repro.sim.events import Event, EventQueue
from repro.sim.interface import SchedulerBackend, TimerHandle
from repro.sim.process import Process, ProcessKilled, SimFuture
from repro.sim.rng import RngStreams
from repro.sim.tracing import CostLedger, TraceRecord, Tracer

__all__ = [
    "MICROSECOND",
    "MILLISECOND",
    "SECOND",
    "CostLedger",
    "Event",
    "EventQueue",
    "Process",
    "ProcessKilled",
    "RngStreams",
    "SchedulerBackend",
    "SimFuture",
    "Simulator",
    "TimerHandle",
    "TraceRecord",
    "Tracer",
    "format_us",
]
