"""The scheduler backend interface (ROADMAP item 3).

Everything above the simulator — the bus, :class:`~repro.core.kernel.SodaKernel`,
:class:`~repro.core.connection.Connection`, the client runtime, the
retransmit policies — talks to time through a small duck-typed surface.
This module names that surface explicitly so alternative backends (the
wall-clock asyncio scheduler in :mod:`repro.netreal.scheduler`) implement
a *contract* rather than a convention:

* :class:`TimerHandle` — what ``schedule``/``at`` return.  Holders keep
  the handle to ``cancel()`` it; the degraded invariant auditor inspects
  ``cancelled`` on timers the kernel retains.
* :class:`SchedulerBackend` — the clock/timer/process surface itself.
  Time is float **microseconds**; what one microsecond *means* (a queue
  pop, or a real wall-clock microsecond) is the backend's business.

Semantics every backend must honor:

* ``now`` is monotonically non-decreasing and starts at 0.0.
* ``schedule(delay, ...)`` rejects negative delays; ``at(time, ...)``
  never fires before ``time`` *in the backend's own timeline* (a
  wall-clock backend may clamp an already-past instant to "as soon as
  possible" — real time advances between computing a deadline and
  arming it, which virtual time cannot).
* cancelling a fired or cancelled timer is a no-op.
* ``rng`` exposes the named, seeded streams of
  :class:`~repro.sim.rng.RngStreams`; determinism of the *decisions*
  (loss coins, jitter draws) is preserved even when event *timing* is
  not reproducible.
* ``trace`` is a live :class:`~repro.sim.tracing.Tracer`; all records
  carry ``now`` at emission.

:class:`~repro.sim.engine.Simulator` is the reference implementation
(virtual time, deterministic); both it and the wall-clock backend are
asserted against this protocol in tests.
"""

from __future__ import annotations

import sys
from typing import TYPE_CHECKING, Any, Callable, Generator

if sys.version_info >= (3, 8):
    from typing import Protocol, runtime_checkable
else:  # pragma: no cover - py3.7 fallback never hit (requires-python >=3.9)
    from typing_extensions import Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.process import Process, SimFuture
    from repro.sim.rng import RngStreams
    from repro.sim.tracing import Tracer


@runtime_checkable
class TimerHandle(Protocol):
    """A cancellable pending callback (returned by ``schedule``/``at``)."""

    #: True once :meth:`cancel` has been called; a cancelled timer's
    #: callback never runs.  Stays False after the callback fires.
    cancelled: bool

    def cancel(self) -> None: ...


@runtime_checkable
class SchedulerBackend(Protocol):
    """The clock/timer/process surface the SODA stack runs against."""

    now: float
    rng: "RngStreams"
    trace: "Tracer"

    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> TimerHandle: ...

    def at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> TimerHandle: ...

    def spawn(self, gen: Generator, name: str = "proc") -> "Process": ...

    def new_future(self) -> "SimFuture": ...
