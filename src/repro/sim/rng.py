"""Deterministic named random streams.

Every stochastic decision in the simulation (packet loss, backoff jitter,
broadcast stagger, philosopher victim choice, ...) draws from a *named*
stream so that adding a new consumer of randomness never perturbs the draws
seen by existing consumers.  Streams are derived from the master seed and
the stream name only.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def _derive_seed(master_seed: int, name: str) -> int:
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngStreams:
    """A factory of independent, reproducible ``random.Random`` streams."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(_derive_seed(self.master_seed, name))
            self._streams[name] = rng
        return rng

    def uniform(self, name: str, low: float, high: float) -> float:
        return self.stream(name).uniform(low, high)

    def chance(self, name: str, probability: float) -> bool:
        """True with the given probability (0 disables the draw entirely)."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self.stream(name).random() < probability

    def choice(self, name: str, seq):
        return self.stream(name).choice(seq)
