"""Coroutine processes on top of the event queue.

A process wraps a Python generator.  The generator models a locus of
control (a client task, a client interrupt handler, a workload driver) and
communicates with the engine by *yielding*:

``yield <number>``
    Consume that many microseconds of simulated time, then continue.

``yield <SimFuture>``
    Suspend until the future is resolved; the resolved value is sent back
    into the generator (an exception set on the future is raised there).

``yield None``
    A pure scheduling point: continue at the same instant, but give the
    engine a chance to deliver interrupts first.  Busy-wait loops (the
    paper's ``idle()``) are written as ``yield IDLE_POLL_US``.

Processes can be *paused* (used to suspend a client task while its handler
runs) and *killed* (a :class:`ProcessKilled` is thrown into the generator,
modelling the KILL pattern / processor crash).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator


class ProcessKilled(BaseException):
    """Thrown into a process generator when the process is killed.

    Derives from BaseException so that application code catching broad
    ``Exception`` cannot accidentally survive its own death.
    """


class SimFuture:
    """A one-shot synchronization cell.

    ``resolve``/``fail`` may be called exactly once; waiters registered via
    ``add_callback`` (or by a process yielding the future) run at the
    moment of resolution, in registration order.
    """

    __slots__ = ("sim", "resolved", "value", "exception", "_callbacks")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.resolved = False
        self.value: Any = None
        self.exception: Optional[BaseException] = None
        self._callbacks: List[Callable[["SimFuture"], None]] = []

    def resolve(self, value: Any = None) -> None:
        if self.resolved:
            raise RuntimeError("future already resolved")
        self.resolved = True
        self.value = value
        self._fire()

    def fail(self, exception: BaseException) -> None:
        if self.resolved:
            raise RuntimeError("future already resolved")
        self.resolved = True
        self.exception = exception
        self._fire()

    def add_callback(self, fn: Callable[["SimFuture"], None]) -> None:
        if self.resolved:
            fn(self)
        else:
            self._callbacks.append(fn)

    def _fire(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)


class Process:
    """Drives a generator against the simulator clock."""

    NEW = "new"
    RUNNING = "running"
    DONE = "done"
    KILLED = "killed"
    FAILED = "failed"

    def __init__(
        self,
        sim: "Simulator",
        gen: Generator,
        name: str = "proc",
    ) -> None:
        self.sim = sim
        self.gen = gen
        self.name = name
        self.state = Process.NEW
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.done_future = SimFuture(sim)
        self._paused = False
        # Continuation deferred because the process was paused when it
        # became runnable: ("value"|"throw", payload) or None.
        self._deferred: Optional[tuple] = None
        self._pending_event = None
        self._in_step = False

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "Process":
        if self.state is not Process.NEW:
            raise RuntimeError(f"process {self.name} already started")
        self.state = Process.RUNNING
        self._pending_event = self.sim.schedule(0.0, self._step, "value", None)
        return self

    def kill(self) -> None:
        """Terminate the process; its generator sees ProcessKilled."""
        if self.state in (Process.DONE, Process.KILLED, Process.FAILED):
            return
        if self._pending_event is not None:
            self._pending_event.cancel()
            self._pending_event = None
        self._deferred = None
        self._paused = False
        was_new = self.state is Process.NEW
        self.state = Process.KILLED
        if self._in_step:
            # The process is killing itself (e.g. DIE from client code):
            # the generator frame is live, so it cannot be thrown into.
            # It simply never resumes past its next yield.
            pass
        elif not was_new:
            try:
                self.gen.throw(ProcessKilled())
            except (ProcessKilled, StopIteration):
                pass
        else:
            self.gen.close()
        if not self.done_future.resolved:
            self.done_future.fail(ProcessKilled())

    def pause(self) -> None:
        """Defer further execution until :meth:`resume`."""
        self._paused = True

    def resume(self) -> None:
        if not self._paused:
            return
        self._paused = False
        if self._deferred is not None and self.state is Process.RUNNING:
            kind, payload = self._deferred
            self._deferred = None
            self._pending_event = self.sim.schedule(0.0, self._step, kind, payload)

    @property
    def alive(self) -> bool:
        return self.state in (Process.NEW, Process.RUNNING)

    # -- engine plumbing -----------------------------------------------

    def _step(self, kind: str, payload: Any) -> None:
        self._pending_event = None
        if self.state is not Process.RUNNING:
            return
        if self._paused:
            self._deferred = (kind, payload)
            return
        self._in_step = True
        try:
            if kind == "throw":
                yielded = self.gen.throw(payload)
            else:
                yielded = self.gen.send(payload)
        except StopIteration as stop:
            if self.state is Process.RUNNING:
                self.state = Process.DONE
                self.result = stop.value
                self.done_future.resolve(stop.value)
            return
        except ProcessKilled:
            self.state = Process.KILLED
            if not self.done_future.resolved:
                self.done_future.fail(ProcessKilled())
            return
        except Exception as exc:  # pragma: no cover - surfaced to caller
            self.state = Process.FAILED
            self.error = exc
            self.done_future.fail(exc)
            raise
        finally:
            self._in_step = False
        if self.state is not Process.RUNNING:
            # Killed itself during this step; abandon the continuation.
            return
        self._arm(yielded)

    def _arm(self, yielded: Any) -> None:
        if yielded is None:
            self._pending_event = self.sim.schedule(0.0, self._step, "value", None)
        elif isinstance(yielded, (int, float)):
            self._pending_event = self.sim.schedule(
                float(yielded), self._step, "value", None
            )
        elif isinstance(yielded, SimFuture):
            yielded.add_callback(self._on_future)
        else:
            raise TypeError(
                f"process {self.name} yielded unsupported value {yielded!r}"
            )

    def _on_future(self, future: SimFuture) -> None:
        if self.state is not Process.RUNNING:
            return
        if future.exception is not None:
            self._pending_event = self.sim.schedule(
                0.0, self._step, "throw", future.exception
            )
        else:
            self._pending_event = self.sim.schedule(
                0.0, self._step, "value", future.value
            )

    def __repr__(self) -> str:
        return f"<Process {self.name} {self.state}>"
