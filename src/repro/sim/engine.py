"""The simulator core: a clock, an event queue, processes, RNG, and traces."""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.sim.events import Event, EventQueue
from repro.sim.process import Process, SimFuture
from repro.sim.rng import RngStreams
from repro.sim.tracing import Tracer


class Simulator:
    """A deterministic discrete-event simulator.

    One Simulator instance models one *run* of a SODA network.  All
    components (bus, kernels, clients) share this instance for time,
    scheduling, randomness, and tracing.
    """

    def __init__(
        self,
        seed: int = 0,
        keep_trace: bool = True,
        max_trace_records: Optional[int] = None,
    ) -> None:
        self.now: float = 0.0
        self.queue = EventQueue()
        self.rng = RngStreams(seed)
        self.trace = Tracer(
            keep_records=keep_trace, max_records=max_trace_records
        )
        self._events_processed = 0

    # -- scheduling ------------------------------------------------------

    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Run ``fn(*args)`` after ``delay`` microseconds of virtual time."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.queue.push(self.now + delay, fn, args, priority)

    def at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Run ``fn(*args)`` at absolute virtual ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule into the past (t={time} < {self.now})")
        return self.queue.push(time, fn, args, priority)

    # -- processes and futures --------------------------------------------

    def spawn(self, gen: Generator, name: str = "proc") -> Process:
        """Create and start a process driving ``gen``."""
        return Process(self, gen, name=name).start()

    def new_future(self) -> SimFuture:
        return SimFuture(self)

    # -- execution ---------------------------------------------------------

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 10_000_000,
    ) -> int:
        """Process events until the queue drains or ``until`` is reached.

        Returns the number of events processed by this call.  ``max_events``
        is a runaway guard: exceeding it raises RuntimeError rather than
        spinning forever on a livelocked protocol.
        """
        processed = 0
        while True:
            next_time = self.queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self.now = until
                break
            event = self.queue.pop()
            assert event is not None
            if event.time < self.now:  # pragma: no cover - defensive
                raise RuntimeError("event queue went backwards")
            self.now = event.time
            event.fn(*event.args)
            processed += 1
            self._events_processed += 1
            if processed > max_events:
                raise RuntimeError(
                    f"run() exceeded max_events={max_events}; "
                    "likely a protocol livelock"
                )
        if until is not None and self.now < until:
            self.now = until
        return processed

    def run_until(self, predicate: Callable[[], bool], timeout: float) -> bool:
        """Advance until ``predicate()`` is true or ``timeout`` elapses.

        Returns True if the predicate became true.  Checks the predicate
        after every event; intended for tests.
        """
        deadline = self.now + timeout
        while not predicate():
            next_time = self.queue.peek_time()
            if next_time is None or next_time > deadline:
                self.now = min(deadline, self.now if next_time is None else deadline)
                return predicate()
            event = self.queue.pop()
            assert event is not None
            self.now = event.time
            event.fn(*event.args)
            self._events_processed += 1
        return True

    @property
    def events_processed(self) -> int:
        return self._events_processed
