"""The simulator core: a clock, an event queue, processes, RNG, and traces."""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Optional, Tuple

from repro.sim.events import Event, EventQueue
from repro.sim.process import Process, SimFuture
from repro.sim.rng import RngStreams
from repro.sim.tracing import Tracer


class Simulator:
    """A deterministic discrete-event simulator.

    One Simulator instance models one *run* of a SODA network.  All
    components (bus, kernels, clients) share this instance for time,
    scheduling, randomness, and tracing.
    """

    __slots__ = ("now", "queue", "rng", "trace", "_events_processed")

    def __init__(
        self,
        seed: int = 0,
        keep_trace: bool = True,
        max_trace_records: Optional[int] = None,
    ) -> None:
        self.now: float = 0.0
        self.queue = EventQueue()
        self.rng = RngStreams(seed)
        self.trace = Tracer(
            keep_records=keep_trace, max_records=max_trace_records
        )
        self._events_processed = 0

    # -- scheduling ------------------------------------------------------

    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Run ``fn(*args)`` after ``delay`` microseconds of virtual time."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.queue.push(self.now + delay, fn, args, priority)

    def at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Run ``fn(*args)`` at absolute virtual ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule into the past (t={time} < {self.now})")
        return self.queue.push(time, fn, args, priority)

    # -- processes and futures --------------------------------------------

    def spawn(self, gen: Generator, name: str = "proc") -> Process:
        """Create and start a process driving ``gen``."""
        return Process(self, gen, name=name).start()

    def new_future(self) -> SimFuture:
        return SimFuture(self)

    # -- execution ---------------------------------------------------------

    def _run_core(
        self,
        deadline: Optional[float],
        max_events: int,
        predicate: Optional[Callable[[], bool]],
    ) -> Tuple[int, bool]:
        """The one guarded event loop behind :meth:`run` and
        :meth:`run_until`.

        Processes live events up to ``deadline`` (exclusive of events
        beyond it), enforcing the backwards-time guard and the exact
        ``max_events`` runaway guard; with a ``predicate`` it is checked
        before every event.  Returns ``(processed, satisfied)`` where
        ``satisfied`` is the final predicate verdict (always False with
        no predicate).  On exit the clock has advanced to ``deadline``
        unless the predicate stopped the loop first.

        This is the engine's hot path: the heap is accessed directly
        (bypassing :meth:`EventQueue.pop`'s per-call overhead) with
        pre-bound locals.  ``EventQueue`` compaction mutates the heap
        list in place, so the ``heap`` alias stays valid even when a
        handler cancels events mid-loop.
        """
        queue = self.queue
        heap = queue._heap
        heappop = heapq.heappop
        processed = 0
        try:
            while True:
                if predicate is not None and predicate():
                    return processed, True
                # Drop cancelled entries until a live event fronts the heap.
                while heap and heap[0].cancelled:
                    heappop(heap)
                if not heap:
                    break
                event = heap[0]
                event_time = event.time
                if deadline is not None and event_time > deadline:
                    break
                if processed >= max_events:
                    raise RuntimeError(
                        f"run() exceeded max_events={max_events}; "
                        "likely a protocol livelock"
                    )
                if event_time < self.now:
                    raise RuntimeError("event queue went backwards")
                heappop(heap)
                event._queue = None
                queue._live -= 1
                self.now = event_time
                event.fn(*event.args)
                processed += 1
        finally:
            self._events_processed += processed
        if deadline is not None and self.now < deadline:
            self.now = deadline
        satisfied = predicate is not None and predicate()
        return processed, satisfied

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 10_000_000,
    ) -> int:
        """Process events until the queue drains or ``until`` is reached.

        Returns the number of events processed by this call.  ``max_events``
        is a runaway guard: the call processes at most that many events and
        raises RuntimeError rather than spinning forever on a livelocked
        protocol.  The limit is exact — a run that needs exactly
        ``max_events`` events completes.
        """
        processed, _ = self._run_core(until, max_events, None)
        return processed

    def run_until(
        self,
        predicate: Callable[[], bool],
        timeout: float,
        max_events: int = 10_000_000,
    ) -> bool:
        """Advance until ``predicate()`` is true or ``timeout`` elapses.

        Returns True if the predicate became true.  Checks the predicate
        after every event; intended for tests.  Like :meth:`run`, the
        clock lands on ``now + timeout`` when the predicate stays false
        (even if the queue drains early), and the same backwards-time
        and ``max_events`` guards apply — a livelocked predicate raises
        instead of spinning forever.
        """
        _, satisfied = self._run_core(self.now + timeout, max_events, predicate)
        return satisfied

    @property
    def events_processed(self) -> int:
        return self._events_processed
