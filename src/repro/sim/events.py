"""Event queue for the discrete-event engine.

Events are ordered by ``(time, priority, seq)``.  The sequence number makes
ordering total and deterministic: two events scheduled for the same instant
fire in the order they were scheduled (or by explicit priority).

Cancellation is lazy — ``Event.cancel`` marks the entry and the heap
discards it when it reaches the front — but the queue keeps an O(1)
*live* counter so ``len()`` never scans, and compacts the heap when
cancelled entries outnumber live ones (timer-heavy protocols cancel
almost every retransmission timer they arm, so a lazy-only heap can
grow far past its live population).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional


class Event:
    """A scheduled callback.

    Holding a reference to the event allows cancellation; the queue lazily
    discards cancelled entries when they are popped.
    """

    __slots__ = ("time", "priority", "seq", "fn", "args", "cancelled", "_queue")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._queue: Optional["EventQueue"] = None

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        queue = self._queue
        if queue is not None:
            self._queue = None
            queue._on_cancel()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.3f} prio={self.priority} {state} {self.fn!r}>"


class EventQueue:
    """A binary-heap event queue with lazy cancellation.

    ``len()`` is O(1): the queue tracks its live population as events are
    pushed, popped, and cancelled.  When dead entries dominate a
    non-trivial heap the queue rebuilds it in place (amortized O(1) per
    cancellation) so pathological cancel churn cannot inflate push/pop
    cost.
    """

    #: Heaps at or below this size are never compacted; the scan is not
    #: worth saving.
    COMPACT_MIN = 64

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def push(
        self,
        time: float,
        fn: Callable[..., Any],
        args: tuple = (),
        priority: int = 0,
    ) -> Event:
        """Schedule ``fn(*args)`` at absolute ``time``; returns the Event."""
        event = Event(time, priority, next(self._counter), fn, args)
        event._queue = self
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or None if empty."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)
            if not event.cancelled:
                event._queue = None
                self._live -= 1
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event, or None if empty."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        if not heap:
            return None
        return heap[0].time

    def clear(self) -> None:
        for event in self._heap:
            event._queue = None
        self._heap.clear()
        self._live = 0

    def _on_cancel(self) -> None:
        """Account a cancellation; compact when dead entries dominate.

        The rebuild mutates ``_heap`` in place (slice assignment) so that
        aliases held by the engine's hot loop stay valid even when a
        handler cancels events mid-run.
        """
        self._live -= 1
        heap = self._heap
        if len(heap) > self.COMPACT_MIN and self._live * 2 < len(heap):
            heap[:] = [event for event in heap if not event.cancelled]
            heapq.heapify(heap)
