"""Event queue for the discrete-event engine.

Events are ordered by ``(time, priority, seq)``.  The sequence number makes
ordering total and deterministic: two events scheduled for the same instant
fire in the order they were scheduled (or by explicit priority).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional


class Event:
    """A scheduled callback.

    Holding a reference to the event allows cancellation; the queue lazily
    discards cancelled entries when they are popped.
    """

    __slots__ = ("time", "priority", "seq", "fn", "args", "cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.3f} prio={self.priority} {state} {self.fn!r}>"


class EventQueue:
    """A binary-heap event queue with lazy cancellation."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def push(
        self,
        time: float,
        fn: Callable[..., Any],
        args: tuple = (),
        priority: int = 0,
    ) -> Event:
        """Schedule ``fn(*args)`` at absolute ``time``; returns the Event."""
        event = Event(time, priority, next(self._counter), fn, args)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or None if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event, or None if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def clear(self) -> None:
        self._heap.clear()
