"""Virtual-time units and helpers.

The simulator measures time in **microseconds** stored as floats.  The
constants below make call sites read like the paper's prose ("7.1 ms per
SIGNAL", "MPL bounded by a few milliseconds").
"""

MICROSECOND = 1.0
MILLISECOND = 1_000.0
SECOND = 1_000_000.0


def us_to_ms(us: float) -> float:
    """Convert microseconds to milliseconds."""
    return us / MILLISECOND


def ms_to_us(ms: float) -> float:
    """Convert milliseconds to microseconds."""
    return ms * MILLISECOND


def format_us(us: float) -> str:
    """Render a duration in the most readable unit.

    >>> format_us(7100.0)
    '7.100ms'
    >>> format_us(16.0)
    '16.000us'
    >>> format_us(2_500_000.0)
    '2.500s'
    """
    if us >= SECOND:
        return f"{us / SECOND:.3f}s"
    if us >= MILLISECOND:
        return f"{us / MILLISECOND:.3f}ms"
    return f"{us:.3f}us"
