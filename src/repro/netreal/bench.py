"""Sim-vs-real benchmark (``python -m repro real-bench``).

Runs the same ping-pong programs on both backends — the discrete-event
simulator and the wall-clock UDP backend — under the same nominal 10%
loss, once per retransmit policy, and emits ``BENCH_real.json``
(``soda.bench/1``) with the four-cell table: backend × policy, each
cell carrying the RTT distribution, goodput, and retransmit counts.

The real cells run *in-process* (every node on one event loop, real
sockets over loopback) so the bench is hermetic and CI-friendly; the
multi-process path is exercised by ``python -m repro real`` instead.

Unlike the sim-only benches, real-cell numbers are wall-clock and vary
run to run — the snapshot is not byte-diffable.  What must hold, and
what the ``comparison`` verdict gates on, is the *qualitative* claim on
the real backend: the adaptive policy's tighter RTO (Jacobson
estimation vs the static 60ms timeout) completes the sweep at a higher
goodput with no more spurious retransmits under injected loss.

To make that A/B comparison repeatable on a wall clock, the real cells
inject loss *deterministically* (every Nth delivery per sender is
dropped) rather than by coin flip: with probabilistic loss the two
policies draw different loss sequences — and even the same policy draws
differently across runs, because datagram counts depend on timing — so
the verdict can flip on scheduling noise alone.  Periodic drops give
both policies the same workload-relative loss pattern, and the verdict
is then decided by what we actually claim: recovery wait per loss
(adaptive's estimated RTO ≈ tens of ms vs the static 60ms + backoff).
"""

from __future__ import annotations

import time
from typing import Any, Dict, List

from repro.chaos.liveness import percentile
from repro.chaos.runner import chaos_config
from repro.net.errors import FaultPlan
from repro.netreal.node import RealNetwork
from repro.netreal.udp import Impairments
from repro.netreal.workloads import PingClient, PingServer
from repro.obs.spans import build_spans
from repro.transport.adaptive import AdaptivePolicy
from repro.transport.retransmit import RetransmitPolicy, StaticPolicy

#: Nominal injected loss for every cell, both backends.
BENCH_LOSS = 0.10

#: Real cells drop every Nth delivery per sender — same nominal 10%
#: rate, but deterministic so the policy A/B is repeatable (see module
#: docstring).
BENCH_DROP_EVERY = 10

#: Exchanges per client; two clients per cell.
BENCH_ROUNDS = 25

#: Wall-clock safety net per real cell (also the sim horizon), µs.
BENCH_HORIZON_US = 30_000_000.0

#: Post-finish drain so the server's final ACKs complete their spans.
BENCH_GRACE_US = 300_000.0


def _summarize(records, wall_elapsed_s: float) -> Dict[str, Any]:
    spans = build_spans(records)
    completed = [
        span
        for span in spans
        if span.completed and not span.is_discover
    ]
    latencies = [
        span.latency_us
        for span in completed
        if span.latency_us is not None
    ]
    rtts = [
        rec["rtt_us"] for rec in records if rec.category == "conn.acked"
    ]
    waits = [
        rec["waited_us"]
        for rec in records
        if rec.category == "conn.retransmit"
    ]
    return {
        "completed_exchanges": len(completed),
        "spans_total": len(spans),
        "latency_p50_us": percentile(latencies, 0.50) if latencies else None,
        "latency_p99_us": percentile(latencies, 0.99) if latencies else None,
        "rtt_samples": len(rtts),
        "rtt_p50_us": percentile(rtts, 0.50) if rtts else None,
        "rtt_p99_us": percentile(rtts, 0.99) if rtts else None,
        "rtt_mean_us": (sum(rtts) / len(rtts)) if rtts else None,
        "retransmits": len(waits),
        "recovery_wait_mean_us": (
            sum(waits) / len(waits) if waits else None
        ),
        "recovery_wait_p99_us": percentile(waits, 0.99) if waits else None,
        "spurious_retransmits": sum(
            1
            for rec in records
            if rec.category == "conn.spurious_retransmit"
        ),
        "elapsed_s": wall_elapsed_s,
        "goodput_exchanges_per_s": (
            len(completed) / wall_elapsed_s if wall_elapsed_s > 0 else None
        ),
    }


def _sim_cell(policy: RetransmitPolicy, seed: int) -> Dict[str, Any]:
    from repro.core.node import Network

    net = Network(
        seed=seed,
        config=chaos_config(policy),
        faults=FaultPlan(loss_probability=BENCH_LOSS),
    )
    clients: List[PingClient] = []
    net.add_node(program=PingServer(), name="server")
    for index in range(2):
        client = PingClient(rounds=BENCH_ROUNDS)
        clients.append(client)
        net.add_node(
            program=client,
            name=f"ping{index + 1}",
            boot_at_us=50_000.0 + 30_000.0 * index,
        )
    net.run_until(
        lambda: all(client.finished for client in clients),
        timeout=BENCH_HORIZON_US,
    )
    net.run(until=net.now + BENCH_GRACE_US)
    summary = _summarize(net.sim.trace.records, net.now / 1e6)
    summary["sim_now_us"] = net.now
    return summary


def _real_cell(policy: RetransmitPolicy, seed: int) -> Dict[str, Any]:
    with RealNetwork(
        seed=seed,
        config=chaos_config(policy),
        impairments=Impairments(drop_every=BENCH_DROP_EVERY),
    ) as net:
        clients: List[PingClient] = []
        net.add_node(program=PingServer(), name="server")
        for index in range(2):
            client = PingClient(rounds=BENCH_ROUNDS)
            clients.append(client)
            net.add_node(
                program=client,
                name=f"ping{index + 1}",
                boot_at_us=50_000.0 + 30_000.0 * index,
            )
        started = time.monotonic()
        finished = net.run_until(
            lambda: all(client.finished for client in clients),
            timeout=BENCH_HORIZON_US,
        )
        elapsed = time.monotonic() - started
        net.run(until=net.now + BENCH_GRACE_US)
        summary = _summarize(net.sim.trace.records, elapsed)
        summary["all_finished"] = finished
    return summary


def run_real_bench(seed: int = 1, out=print) -> Dict[str, Any]:
    """The ``BENCH_real.json`` body: backend × policy cells + verdict."""
    policies: Dict[str, RetransmitPolicy] = {
        "static": StaticPolicy(),
        "adaptive": AdaptivePolicy(),
    }
    body: Dict[str, Any] = {
        "loss": BENCH_LOSS,
        "real_drop_every": BENCH_DROP_EVERY,
        "rounds_per_client": BENCH_ROUNDS,
        "clients": 2,
        "seed": seed,
        "backends": {"sim": {}, "real": {}},
    }
    for policy_name, policy in policies.items():
        out(f"real-bench: sim/{policy_name} ...")
        body["backends"]["sim"][policy_name] = _sim_cell(policy, seed)
        out(f"real-bench: real/{policy_name} ...")
        body["backends"]["real"][policy_name] = _real_cell(policy, seed)
    real_static = body["backends"]["real"]["static"]
    real_adaptive = body["backends"]["real"]["adaptive"]
    static_wait = real_static["recovery_wait_mean_us"]
    adaptive_wait = real_adaptive["recovery_wait_mean_us"]
    body["comparison"] = {
        # The headline gate: per lost frame, how long did each policy
        # sit on its hands before retransmitting?  This is the direct
        # mechanism measurement — adaptive's Jacobson RTO tracks the
        # ~ms loopback RTT down to its 33ms floor while static waits a
        # flat 60ms (then backs off) — and it is robust on a wall
        # clock, unlike goodput or a latency percentile, both of which
        # flip when the event loop stalls through one unlucky exchange.
        "adaptive_recovers_faster_real": (
            static_wait is not None
            and adaptive_wait is not None
            and adaptive_wait < static_wait
        ),
        "recovery_wait_mean_us": {
            "static": static_wait,
            "adaptive": adaptive_wait,
        },
        # Context, not gates: wall-clock throughput and spurious counts
        # are reported per cell above; both are noisy run-to-run on a
        # shared machine (a 30ms scheduler stall reads as a loss to an
        # RTO that tight), so they do not decide the verdict.
        "goodput_exchanges_per_s": {
            "static": real_static["goodput_exchanges_per_s"],
            "adaptive": real_adaptive["goodput_exchanges_per_s"],
        },
        "policy_knobs": {
            "static": StaticPolicy().as_dict(),
            "adaptive": AdaptivePolicy().as_dict(),
        },
    }
    return body
