"""Real datagrams: :class:`UdpMedium` / :class:`UdpNic`.

The pair mirrors the simulated :class:`~repro.net.medium.BroadcastBus` /
:class:`~repro.net.nic.NetworkInterface` surface exactly where the stack
touches it — ``nic.send``/``nic.deliver``/``nic.bus.serialization_us`` —
so :class:`~repro.core.kernel.SodaKernel` runs over it unmodified.

Differences from the bus, all consequences of being real:

* **Addressing.**  There is no shared medium; a *registry* maps MID ->
  ``(host, port)``.  Unicast is one ``sendto``; broadcast is a unicast
  fan-out to every registered peer but the sender (loopback interfaces
  have no useful L2 broadcast, and the registry is the runner's source
  of truth anyway).
* **Arbitration.**  The kernel's ledger still charges the *model*
  serialization time (``serialization_us`` keeps the 1 Mbit/s Megalink
  figure) so sim-vs-real cost breakdowns stay comparable, but the OS
  owns actual queueing; ``busy_time_us`` accumulates the model figure.
* **Faults.**  Real loopback never drops, so chaos-style impairment is
  a userspace shim on the send path: seeded drop/delay/reorder per
  delivery (netem's model), drawing from the scheduler's named RNG
  streams so fault *decisions* replay deterministically even though
  timing does not.
* **Decode errors.**  A datagram that fails :func:`~repro.netreal.wire.
  decode_frame` is counted and traced (``netreal.decode_error``) and
  dropped right there — the exception never crosses the NIC boundary.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.net.frame import BROADCAST_MID, Frame, sender_frame_ids
from repro.net.nic import NetworkInterface
from repro.netreal.wire import WireDecodeError, decode_frame, encode_frame

if TYPE_CHECKING:  # pragma: no cover
    from repro.netreal.scheduler import WallClockScheduler

Address = Tuple[str, int]


@dataclass
class Impairments:
    """Seeded userspace link impairment (netem-style).

    Applied independently per delivery on the send path: a broadcast to
    three peers draws three loss coins.  ``delay_us`` + uniform jitter
    holds a datagram in the scheduler before the socket write; a
    reorder strike adds ``reorder_extra_us`` on top, letting a later
    send overtake this one.
    """

    loss_probability: float = 0.0
    delay_us: float = 0.0
    jitter_us: float = 0.0
    reorder_probability: float = 0.0
    reorder_extra_us: float = 2_000.0
    #: Deliver a fraction of datagrams twice, the copy this much later —
    #: the real-socket mirror of the sim's ``DuplicateWindow``.
    duplicate_probability: float = 0.0
    duplicate_delay_us: float = 2_000.0
    #: Deterministic alternative to ``loss_probability``: drop every
    #: Nth delivery per sender (0 = off).  The sim-vs-real bench uses
    #: this so both policies face the *same* loss pattern — coin-flip
    #: losses make wall-clock A/B comparisons unrepeatable.
    drop_every: int = 0

    @property
    def active(self) -> bool:
        return (
            self.loss_probability > 0.0
            or self.delay_us > 0.0
            or self.jitter_us > 0.0
            or self.reorder_probability > 0.0
            or self.duplicate_probability > 0.0
            or self.drop_every > 0
        )


class UdpNic(NetworkInterface):
    """A node's attachment point to :class:`UdpMedium`.

    Only :meth:`send` differs from the simulated interface: frame ids
    come from the per-sender namespace so ids stay unique across the OS
    processes of one run (the causal engine joins tx/rx by frame id).
    """

    def __init__(self, medium: "UdpMedium", mid: int) -> None:
        super().__init__(medium, mid)
        self._frame_ids = sender_frame_ids(mid)

    def send(self, dst: int, payload, payload_bytes: int = 0) -> Frame:
        frame = Frame(
            self.mid,
            dst,
            payload,
            payload_bytes,
            frame_id=next(self._frame_ids),
        )
        self.frames_sent += 1
        self.bytes_sent += frame.wire_bytes
        self.bus.send(frame)
        return frame


class _NicProtocol(asyncio.DatagramProtocol):
    """One datagram endpoint, bound to one local NIC."""

    def __init__(self, medium: "UdpMedium", nic: UdpNic) -> None:
        self.medium = medium
        self.nic = nic
        self.transport: Optional[asyncio.DatagramTransport] = None

    def connection_made(self, transport) -> None:
        self.transport = transport

    def datagram_received(self, data: bytes, addr: Address) -> None:
        self.medium._on_datagram(self.nic, data)

    def error_received(self, exc) -> None:  # pragma: no cover - ICMP noise
        self.medium.socket_errors += 1


class UdpMedium:
    """All local NICs' shared view of the real network.

    Duck-types the :class:`~repro.net.medium.BroadcastBus` attributes
    the stack and the observability layer read (``serialization_us``,
    ``frames_sent``, ``bytes_sent``, ``busy_time_us``, ``utilization``,
    ``queue_depth``, ``peak_queue_depth``, ``attach``/``detach``).

    One medium serves every NIC in this process: the in-process loopback
    tests run a whole network on one event loop, the multi-process
    runner one NIC per process.  :meth:`open` (async) binds a socket
    per attached NIC; :meth:`set_registry` installs/updates the MID ->
    address map once the runner has collected everyone's port.
    """

    def __init__(
        self,
        sim: "WallClockScheduler",
        bandwidth_bps: int = 1_000_000,
        impairments: Optional[Impairments] = None,
        host: str = "127.0.0.1",
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        self.sim = sim
        self.bandwidth_bps = bandwidth_bps
        self.impairments = impairments or Impairments()
        self.host = host
        self.registry: Dict[int, Address] = {}
        self._interfaces: Dict[int, UdpNic] = {}
        self._protocols: Dict[int, _NicProtocol] = {}
        self.frames_sent = 0
        self.bytes_sent = 0
        self.busy_time_us = 0.0
        self.peak_queue_depth = 0  # OS-owned; kept for obs compatibility
        self.datagrams_received = 0
        self.decode_errors = 0
        self.socket_errors = 0
        self.frames_impaired_lost = 0
        self.frames_delayed = 0
        self.frames_reordered = 0
        self.frames_duplicated = 0
        self.mid_screened = 0
        self._deliveries_by_sender: Dict[int, int] = {}
        self._closed = False

    # -- topology -----------------------------------------------------------

    def attach(self, nic: UdpNic) -> None:
        if nic.mid in self._interfaces:
            raise ValueError(f"MID {nic.mid} already attached")
        self._interfaces[nic.mid] = nic

    def detach(self, mid: int) -> None:
        self._interfaces.pop(mid, None)

    def interface(self, mid: int) -> Optional[UdpNic]:
        return self._interfaces.get(mid)

    @property
    def mids(self) -> List[int]:
        return sorted(self._interfaces)

    async def open(self) -> Dict[int, Address]:
        """Bind one UDP socket per attached NIC; returns mid -> address.

        Local NICs are entered into the registry immediately, so a
        single-process network is fully connected after ``open`` alone.
        """
        loop = self.sim.loop
        for mid, nic in sorted(self._interfaces.items()):
            if mid in self._protocols:
                continue
            protocol: _NicProtocol
            _, protocol = await loop.create_datagram_endpoint(
                lambda nic=nic: _NicProtocol(self, nic),
                local_addr=(self.host, 0),
            )
            self._protocols[mid] = protocol
            assert protocol.transport is not None
            self.registry[mid] = protocol.transport.get_extra_info(
                "sockname"
            )[:2]
        return {
            mid: self.registry[mid] for mid in self._protocols
        }

    def set_registry(self, registry: Dict[int, Address]) -> None:
        """Install the cross-process MID -> (host, port) map."""
        self.registry.update(
            {int(mid): (host, int(port)) for mid, (host, port) in registry.items()}
        )

    def close(self) -> None:
        self._closed = True
        for protocol in self._protocols.values():
            if protocol.transport is not None:
                protocol.transport.close()
        self._protocols.clear()

    # -- bus-compatible accounting ------------------------------------------

    def serialization_us(self, frame: Frame) -> float:
        """Model serialization time (the ledger's transmission charge)."""
        return frame.wire_bytes * 8.0 * 1_000_000.0 / self.bandwidth_bps

    @property
    def queue_depth(self) -> int:
        return 0

    def utilization(self, now_us: float) -> float:
        if now_us <= 0:
            return 0.0
        return min(1.0, self.busy_time_us / now_us)

    # -- transmission -------------------------------------------------------

    def send(self, frame: Frame) -> None:
        """Encode once, deliver per target (with optional impairment)."""
        self.frames_sent += 1
        self.bytes_sent += frame.wire_bytes
        self.busy_time_us += self.serialization_us(frame)
        self.sim.trace.record(
            self.sim.now,
            "net.tx",
            src=frame.src,
            dst=frame.dst,
            bytes=frame.wire_bytes,
            frame_id=frame.frame_id,
        )
        datagram = encode_frame(frame)
        if frame.is_broadcast:
            targets = [
                mid for mid in sorted(self.registry) if mid != frame.src
            ]
        else:
            # Unknown destinations vanish, like the bus's absent-MID
            # screening: real discovery works the same way.
            targets = [frame.dst] if frame.dst in self.registry else []
        for mid in targets:
            self._deliver_one(frame, datagram, mid)

    def _deliver_one(
        self, frame: Frame, datagram: bytes, dst_mid: int
    ) -> None:
        impair = self.impairments
        if impair.active:
            if impair.drop_every > 0:
                count = self._deliveries_by_sender.get(frame.src, 0) + 1
                self._deliveries_by_sender[frame.src] = count
                if count % impair.drop_every == 0:
                    self.frames_impaired_lost += 1
                    self.sim.trace.record(
                        self.sim.now,
                        "net.drop",
                        src=frame.src,
                        dst=dst_mid,
                        frame_id=frame.frame_id,
                    )
                    return
            # Per-sender streams: in a multi-process run every process
            # shares the master seed, so a single shared stream name
            # would give all senders the *same* coin sequence.
            rng = self.sim.rng.stream(f"netreal.impair.{frame.src}")
            if rng.random() < impair.loss_probability:
                self.frames_impaired_lost += 1
                self.sim.trace.record(
                    self.sim.now,
                    "net.drop",
                    src=frame.src,
                    dst=dst_mid,
                    frame_id=frame.frame_id,
                )
                return
            delay_us = impair.delay_us
            if impair.jitter_us > 0.0:
                delay_us += rng.uniform(0.0, impair.jitter_us)
            if (
                impair.reorder_probability > 0.0
                and rng.random() < impair.reorder_probability
            ):
                delay_us += impair.reorder_extra_us
                self.frames_reordered += 1
            if (
                impair.duplicate_probability > 0.0
                and rng.random() < impair.duplicate_probability
            ):
                # Second copy of the same datagram, later: a replayed
                # frame the receiver must treat as stale, not new work.
                self.frames_duplicated += 1
                self.sim.trace.record(
                    self.sim.now,
                    "net.replay",
                    src=frame.src,
                    dst=dst_mid,
                    frame_id=frame.frame_id,
                    kind="dup",
                )
                self.sim.schedule(
                    delay_us + impair.duplicate_delay_us,
                    self._sendto, frame.src, datagram, dst_mid,
                )
            if delay_us > 0.0:
                self.frames_delayed += 1
                self.sim.schedule(
                    delay_us, self._sendto, frame.src, datagram, dst_mid
                )
                return
        self._sendto(frame.src, datagram, dst_mid)

    def _sendto(self, src_mid: int, datagram: bytes, dst_mid: int) -> None:
        if self._closed:
            # A timer callback (retransmit, replication round, delayed
            # duplicate) racing the shutdown path: the socket is gone,
            # the datagram simply never leaves — exactly like pulling a
            # real cable.
            return
        address = self.registry.get(dst_mid)
        if address is None:  # peer vanished after a delay strike
            return
        transport = self._transport_for_send(src_mid)
        if transport is None:
            raise RuntimeError(
                "UdpMedium.send before open(): no socket is bound"
            )
        transport.sendto(datagram, address)

    def _transport_for_send(
        self, src_mid: int
    ) -> Optional[asyncio.DatagramTransport]:
        protocol = self._protocols.get(src_mid)
        if protocol is not None and protocol.transport is not None:
            return protocol.transport
        for protocol in self._protocols.values():  # pragma: no cover
            if protocol.transport is not None:
                return protocol.transport
        return None

    # -- reception ----------------------------------------------------------

    def _on_datagram(self, nic: UdpNic, data: bytes) -> None:
        self.datagrams_received += 1
        try:
            frame = decode_frame(data)
        except WireDecodeError as exc:
            self.decode_errors += 1
            self.sim.trace.record(
                self.sim.now,
                "netreal.decode_error",
                mid=nic.mid,
                octets=len(data),
                error=str(exc),
            )
            return
        if frame.dst not in (nic.mid, BROADCAST_MID) or frame.src == nic.mid:
            # MID screening (§6.12): sockets are per-MID so this only
            # catches confused or hostile senders.
            self.mid_screened += 1
            return
        nic.deliver(frame)
