"""A SODA network over real sockets: :class:`RealNetwork`.

Mirrors :class:`repro.core.node.Network` — same ``add_node`` /
``run`` / ``run_until`` surface, same :class:`~repro.core.node.SodaNode`
objects (with a :class:`~repro.netreal.udp.UdpNic` injected) — but time
is the wall clock and frames are UDP datagrams.  A single RealNetwork
hosts *all* nodes of an in-process loopback run, or exactly *one* node
of a multi-process run (the runner wires the registry and shared epoch
across processes).

The kernel, connection machinery, transport policies, and client
programs are byte-for-byte the simulator's; only the substrate below
``SchedulerBackend`` + NIC differs.  That is the tentpole claim of
ROADMAP item 3, and the loopback smoke test asserts it by running the
standard invariant checker over the resulting trace.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Dict, Optional

from repro.core.client import ClientProgram
from repro.core.config import KernelConfig
from repro.core.node import SodaNode
from repro.netreal.scheduler import WallClockScheduler
from repro.netreal.udp import Impairments, UdpMedium, UdpNic
from repro.sim.tracing import CostLedger


class RealNetwork:
    """A SODA network whose medium is localhost UDP."""

    def __init__(
        self,
        seed: int = 0,
        config: Optional[KernelConfig] = None,
        bandwidth_bps: int = 1_000_000,
        impairments: Optional[Impairments] = None,
        host: str = "127.0.0.1",
        keep_trace: bool = True,
        max_trace_records: Optional[int] = None,
    ) -> None:
        self.sim = WallClockScheduler(
            seed=seed,
            keep_trace=keep_trace,
            max_trace_records=max_trace_records,
        )
        self.config = config or KernelConfig()
        self.bus = UdpMedium(
            self.sim,
            bandwidth_bps=bandwidth_bps,
            impairments=impairments,
            host=host,
        )
        self.ledger = CostLedger()
        self.nodes: Dict[int, SodaNode] = {}
        self._next_mid = 0
        self._opened = False

    def add_node(
        self,
        mid: Optional[int] = None,
        program: Optional[ClientProgram] = None,
        machine_type: str = "generic",
        config: Optional[KernelConfig] = None,
        name: Optional[str] = None,
        boot_at_us: float = 0.0,
    ) -> SodaNode:
        """Create a node on this process's event loop."""
        if mid is None:
            mid = self._next_mid
        if mid in self.nodes:
            raise ValueError(f"MID {mid} already in use")
        self._next_mid = max(self._next_mid, mid + 1)
        node = SodaNode(
            self,  # type: ignore[arg-type]  # duck-typed Network surface
            mid,
            machine_type=machine_type,
            config=config,
            name=name,
            nic=UdpNic(self.bus, mid),
        )
        self.nodes[mid] = node
        if program is not None:
            node.install_program(program, boot_at_us=boot_at_us)
        return node

    def node(self, mid: int) -> SodaNode:
        return self.nodes[mid]

    # -- lifecycle ----------------------------------------------------------

    async def open(self) -> Dict[int, tuple]:
        """Bind every node's UDP socket; returns mid -> (host, port)."""
        addresses = await self.bus.open()
        self._opened = True
        return addresses

    def _ensure_open(self) -> None:
        if not self._opened:
            self.sim.loop.run_until_complete(self.open())

    async def run_async(
        self, until: float, epoch_monotonic: Optional[float] = None
    ) -> None:
        """Run to the wall-clock horizon ``until`` (µs past the epoch)."""
        if not self._opened:
            await self.open()
        if not self.sim.started:
            self.sim.start(epoch_monotonic)
        await self.sim.sleep_until(until)

    # -- Network-compatible surface ----------------------------------------

    @property
    def now(self) -> float:
        return self.sim.now

    def run(self, until: Optional[float] = None, max_events: int = 0) -> int:
        """Blocking run to ``until`` microseconds of wall time."""
        if until is None:
            raise ValueError(
                "a wall-clock run needs an explicit horizon (until=...)"
            )
        self._ensure_open()
        before = self.sim.events_processed
        self.sim.loop.run_until_complete(self.run_async(until))
        return self.sim.events_processed - before

    def run_until(
        self, predicate: Callable[[], bool], timeout: float
    ) -> bool:
        """Blocking: poll ``predicate`` until true or ``timeout`` µs."""
        self._ensure_open()
        if not self.sim.started:
            self.sim.start()
        return self.sim.loop.run_until_complete(
            self.sim.wait_until(predicate, timeout)
        )

    def close(self) -> None:
        """Close sockets and the event loop (idempotent)."""
        self.bus.close()
        if not self.sim.loop.is_closed():
            # Let transport close callbacks run before dropping the loop.
            self.sim.loop.run_until_complete(asyncio.sleep(0))
        self.sim.close()

    def __enter__(self) -> "RealNetwork":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
