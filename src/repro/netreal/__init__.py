"""repro.netreal — the SODA stack over real sockets and wall-clock time.

The simulator's :class:`~repro.sim.interface.SchedulerBackend` duck
type is the seam: :class:`~repro.netreal.scheduler.WallClockScheduler`
implements it over an asyncio event loop, and :class:`~repro.netreal.
udp.UdpMedium` replaces the broadcast bus with localhost UDP datagrams
carrying the :mod:`repro.netreal.wire` binary frame codec.  The kernel,
connections, transport policies, and client programs are untouched.

Entry points: ``python -m repro real <workload>`` (multi-process,
:mod:`repro.netreal.runner`), ``python -m repro real-bench``
(:mod:`repro.netreal.bench`), or in-process via :class:`~repro.netreal.
node.RealNetwork`.  See docs/NET.md.
"""

from repro.netreal.node import RealNetwork
from repro.netreal.scheduler import WallClockScheduler, WallClockTimer
from repro.netreal.trace_io import (
    dump_trace,
    load_trace,
    merge_records,
    merge_traces,
    tracer_from_records,
)
from repro.netreal.udp import Impairments, UdpMedium, UdpNic
from repro.netreal.wire import (
    MAX_DATAGRAM_BYTES,
    WIRE_VERSION,
    WireDecodeError,
    WireEncodeError,
    decode_frame,
    encode_frame,
)

__all__ = [
    "RealNetwork",
    "WallClockScheduler",
    "WallClockTimer",
    "dump_trace",
    "load_trace",
    "merge_records",
    "merge_traces",
    "tracer_from_records",
    "Impairments",
    "UdpMedium",
    "UdpNic",
    "MAX_DATAGRAM_BYTES",
    "WIRE_VERSION",
    "WireDecodeError",
    "WireEncodeError",
    "decode_frame",
    "encode_frame",
]
