"""Workloads for the real backend (``python -m repro real <name>``).

Specs reuse the :class:`~repro.analysis.workloads.WorkloadSpec` /
:class:`~repro.analysis.workloads.WorkloadRole` vocabulary — MID = role
index, boot offsets in microseconds — but horizons here are *wall
clock*: ``until_us=2_000_000`` really is two seconds of your life.  The
client programs are ordinary :class:`~repro.core.client.ClientProgram`
subclasses and run unchanged on either backend; the real-vs-sim bench
exploits exactly that.

Factories must be resolvable by role index from a fresh interpreter
(each node is its own OS process), which is why everything here is a
module-level class or function.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.workloads import WorkloadRole, WorkloadSpec
from repro.core.buffers import Buffer
from repro.core.client import ClientProgram
from repro.core.patterns import make_well_known_pattern

#: The pattern ping-pong servers advertise.
PING_PATTERN = make_well_known_pattern(0o350)


class PingServer(ClientProgram):
    """Echoes every exchange with ``b"pong"``."""

    def initialization(self, api, parent_mid):
        yield from api.advertise(PING_PATTERN)

    def handler(self, api, event):
        if event.is_arrival:
            buf = Buffer(event.put_size)
            yield from api.accept_current_exchange(get=buf, put=b"pong")


class PingClient(ClientProgram):
    """DISCOVERs the server, then runs ``rounds`` blocking exchanges.

    ``completions`` records each exchange's terminal status so runner
    and tests can assert every round actually finished.
    """

    def __init__(self, rounds: int = 3) -> None:
        self.rounds = rounds
        self.completions: List[str] = []

    @property
    def finished(self) -> bool:
        return len(self.completions) >= self.rounds

    def task(self, api):
        server = yield from api.discover(PING_PATTERN)
        for i in range(self.rounds):
            reply = Buffer(16)
            completion = yield from api.b_exchange(
                server, put=b"ping%d" % i, get=reply
            )
            self.completions.append(completion.status.value)
        yield from api.serve_forever()


def _pinger(rounds: int):
    return lambda: PingClient(rounds=rounds)


def _kv_replica0():
    from repro.replication import KvReplica

    return KvReplica(0, (1, 2), claim_primary=True)


def _kv_replica1():
    from repro.replication import KvReplica

    return KvReplica(1, (0, 2))


def _kv_replica2():
    from repro.replication import KvReplica

    return KvReplica(2, (0, 1))


def _kv_client():
    from repro.replication import KvClient

    return KvClient(total=12)


#: Real-backend workloads.  ``pingpong`` is the acceptance workload:
#: one server + two clients = three OS processes under the runner.
REAL_WORKLOADS: Dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in (
        WorkloadSpec(
            "pingpong",
            seed=31,
            until_us=2_000_000.0,
            roles=(
                WorkloadRole("server", PingServer),
                WorkloadRole("ping1", _pinger(3), boot_at_us=50_000.0),
                WorkloadRole("ping2", _pinger(3), boot_at_us=80_000.0),
            ),
        ),
        WorkloadSpec(
            "burst",
            seed=32,
            until_us=6_000_000.0,
            roles=(
                WorkloadRole("server", PingServer),
                WorkloadRole("burst1", _pinger(25), boot_at_us=50_000.0),
                WorkloadRole("burst2", _pinger(25), boot_at_us=80_000.0),
            ),
        ),
        # The replicated KV store over real sockets: the same programs
        # the sim's kvstore workload runs, one OS process per replica.
        # Role index = MID, so replica peer lists are the other two
        # role indexes.
        WorkloadSpec(
            "kvstore",
            seed=33,
            until_us=6_000_000.0,
            roles=(
                WorkloadRole("replica0", _kv_replica0),
                WorkloadRole("replica1", _kv_replica1, boot_at_us=20_000.0),
                WorkloadRole("replica2", _kv_replica2, boot_at_us=40_000.0),
                WorkloadRole("client", _kv_client, boot_at_us=250_000.0),
            ),
        ),
    )
}


def get_real_spec(name: str) -> WorkloadSpec:
    try:
        return REAL_WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown real workload {name!r}; choose from "
            f"{', '.join(sorted(REAL_WORKLOADS))}"
        ) from None
