"""Multi-process runner: one OS process per SODA node.

``python -m repro real <workload>`` drives the parent side; each child
is ``python -m repro real-node ...`` (internal).  The choreography:

1. parent opens a TCP *control socket* on loopback and spawns one child
   per workload role;
2. each child builds a single-node :class:`~repro.netreal.node.
   RealNetwork`, binds its UDP socket, and sends ``hello`` (mid + port);
3. once all hellos are in, the parent broadcasts ``start``: the full
   MID -> address registry, a shared CLOCK_MONOTONIC *epoch* a moment
   in the future, and the horizon; every child anchors t=0µs to that
   epoch, so boot offsets and trace timestamps agree across processes;
4. children run to the horizon, dump their traces as JSONL
   (:mod:`repro.netreal.trace_io`), report ``done``, and exit;
5. the parent merges the traces by wall-clock timestamp and runs the
   *standard* analysis stack over the merged stream: the batch
   invariant checker (INV-SEQ/DELTAT/HANDLER/COMPLETE/LEDGER, SODA007),
   the causal engine (SODA010-013), and a post-hoc
   :class:`~repro.obs.instrument.MetricsHub`.

Every wait carries a hard timeout and stragglers are killed: a wedged
child can fail the run but never hang it.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.netreal.node import RealNetwork
from repro.netreal.trace_io import dump_trace, merge_traces, tracer_from_records
from repro.netreal.udp import Impairments
from repro.netreal.workloads import get_real_spec
from repro.transport.retransmit import RetransmitPolicy

#: Seconds between spawning children and the shared epoch.
START_GRACE_S = 0.75

#: Seconds past the horizon before stragglers are declared wedged.
DONE_GRACE_S = 15.0


def _kill_group(child: subprocess.Popen) -> None:
    """SIGKILL a child's whole process group (it leads its own session)."""
    if child.poll() is not None:
        return
    try:
        os.killpg(os.getpgid(child.pid), signal.SIGKILL)
    except (ProcessLookupError, PermissionError):  # pragma: no cover
        child.kill()


def policy_for(name: str) -> RetransmitPolicy:
    from repro.transport.adaptive import AdaptivePolicy
    from repro.transport.retransmit import StaticPolicy

    if name == "static":
        return StaticPolicy()
    if name == "adaptive":
        return AdaptivePolicy()
    raise ValueError(f"unknown policy {name!r} (static|adaptive)")


def _config_for(policy_name: str):
    # chaos_config harmonizes Delta-t windows with the retransmit
    # policy, exactly as the chaos harness runs the sim backend.
    from repro.chaos.runner import chaos_config

    return chaos_config(policy_for(policy_name))


@dataclass
class RealRunResult:
    """Everything the parent learned from one multi-process run."""

    workload: str
    seed: int
    policy: str
    loss: float
    processes: int
    records: int
    invariant_violations: List[str] = field(default_factory=list)
    causal_diagnostics: List[str] = field(default_factory=list)
    runner_problems: List[str] = field(default_factory=list)
    #: KV linearizability verdicts over the merged trace (empty for
    #: workloads without ``kv.*`` records).
    consistency_problems: List[str] = field(default_factory=list)
    kv: Dict[str, Any] = field(default_factory=dict)
    #: When a child wedged or died, the tail of whatever trace records
    #: it *did* write — evidence attached to the failed run.
    partial_trace_tail: List[Dict[str, Any]] = field(default_factory=list)
    send_edges: int = 0
    unmatched_rx: int = 0
    spans_total: int = 0
    spans_completed: int = 0
    rtt_p50_us: Optional[float] = None
    rtt_p99_us: Optional[float] = None
    spurious_retransmits: int = 0
    retransmits: int = 0
    decode_errors: int = 0
    impaired_losses: int = 0

    @property
    def ok(self) -> bool:
        return not (
            self.invariant_violations
            or self.causal_diagnostics
            or self.runner_problems
            or self.consistency_problems
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "seed": self.seed,
            "policy": self.policy,
            "loss": self.loss,
            "processes": self.processes,
            "records": self.records,
            "ok": self.ok,
            "invariant_violations": self.invariant_violations,
            "causal_diagnostics": self.causal_diagnostics,
            "runner_problems": self.runner_problems,
            "consistency_problems": self.consistency_problems,
            "kv": self.kv,
            "partial_trace_tail": self.partial_trace_tail,
            "send_edges": self.send_edges,
            "unmatched_rx": self.unmatched_rx,
            "spans": {
                "total": self.spans_total,
                "completed": self.spans_completed,
            },
            "rtt_p50_us": self.rtt_p50_us,
            "rtt_p99_us": self.rtt_p99_us,
            "spurious_retransmits": self.spurious_retransmits,
            "retransmits": self.retransmits,
            "decode_errors": self.decode_errors,
            "impaired_losses": self.impaired_losses,
        }


def analyze_merged(
    records, ledger, policy: RetransmitPolicy, result: RealRunResult
) -> None:
    """Run the standard analysis stack over one merged record stream."""
    from repro.analysis.causal import (
        build_causal_order,
        detect_deadlocks,
        find_races,
    )
    from repro.analysis.invariants import InvariantChecker
    from repro.obs.instrument import MetricsHub

    from repro.replication.consistency import check_kv_consistency, kv_summary

    summary = kv_summary(records)
    kv_run = bool(summary["ops_invoked"])
    # KV workloads replicate forever — there is always an APPEND in
    # flight when the horizon guillotines the run — so they get the
    # same non-strict completion the sim chaos harness uses; their real
    # completion story is the linearizability verdict below.
    checker = InvariantChecker(policy=policy, strict_completion=not kv_run)
    result.invariant_violations = [
        v.format() for v in checker.check(tracer_from_records(records), ledger=ledger)
    ]
    order = build_causal_order(records)
    diagnostics = find_races(records, order) + detect_deadlocks(records)
    result.causal_diagnostics = [d.format() for d in diagnostics]
    result.send_edges = order.send_edges
    result.unmatched_rx = order.unmatched_rx

    # The merged stream feeds the standard hub (records-only mode): the
    # same metric names and span construction as a sim run.
    report = MetricsHub().ingest_records(records, ledger=ledger.snapshot())
    result.spans_total = len(report.spans)
    result.spans_completed = len(report.completed_spans)
    rtt = report.snapshot.get("transport.rtt_us")
    if rtt is not None and rtt.get("count"):
        result.rtt_p50_us = rtt["p50"]
        result.rtt_p99_us = rtt["p99"]
    result.spurious_retransmits = sum(
        1 for rec in records if rec.category == "conn.spurious_retransmit"
    )
    result.retransmits = sum(
        1 for rec in records if rec.category == "conn.retransmit"
    )
    result.decode_errors = sum(
        1 for rec in records if rec.category == "netreal.decode_error"
    )
    result.impaired_losses = sum(
        1 for rec in records if rec.category == "net.drop"
    )

    # The KV consistency verdict runs on the same merged stream the sim
    # chaos harness checks — that is the whole point of the design.
    if kv_run:
        result.kv = summary
        result.consistency_problems = check_kv_consistency(records)


# ---------------------------------------------------------------------------
# parent
# ---------------------------------------------------------------------------


async def _parent(
    workload: str,
    seed: int,
    policy_name: str,
    loss: float,
    trace_dir: Path,
    out,
    horizon_us: Optional[float],
    durable: Optional[str] = None,
    power_loss_at_us: Optional[float] = None,
) -> RealRunResult:
    spec = get_real_spec(workload)
    horizon = float(horizon_us) if horizon_us else spec.until_us
    count = len(spec.roles)
    result = RealRunResult(
        workload=workload,
        seed=seed,
        policy=policy_name,
        loss=loss,
        processes=count,
        records=0,
    )

    hellos: Dict[int, Dict[str, Any]] = {}
    dones: Dict[int, Dict[str, Any]] = {}
    writers: Dict[int, asyncio.StreamWriter] = {}
    progress = asyncio.Event()

    async def handle(reader, writer) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    return
                message = json.loads(line)
                if "hello" in message:
                    hello = message["hello"]
                    hellos[int(hello["mid"])] = hello
                    writers[int(hello["mid"])] = writer
                elif "done" in message:
                    done = message["done"]
                    dones[int(done["mid"])] = done
                    progress.set()
                    return  # the child is about to exit
                progress.set()
        except (ConnectionError, asyncio.CancelledError):
            return
        finally:
            writer.close()

    server = await asyncio.start_server(handle, "127.0.0.1", 0)
    control_port = server.sockets[0].getsockname()[1]

    trace_paths = [trace_dir / f"trace-{mid}.jsonl" for mid in range(count)]
    children: List[subprocess.Popen] = []
    for mid in range(count):
        argv = [
            sys.executable,
            "-m",
            "repro",
            "real-node",
            "--workload",
            workload,
            "--role",
            str(mid),
            "--seed",
            str(seed),
            "--policy",
            policy_name,
            "--loss",
            repr(loss),
            "--control",
            str(control_port),
            "--trace",
            str(trace_paths[mid]),
        ]
        if durable:
            argv += ["--durable", durable]
        if power_loss_at_us is not None:
            argv += ["--power-loss-at", repr(power_loss_at_us)]
        # Each child leads its own session/process group so a wedged
        # child — including anything it may have forked — can be killed
        # as a group rather than orphaned.
        children.append(subprocess.Popen(argv, start_new_session=True))

    async def gather(
        have, needed: int, timeout_s: float, phase: str
    ) -> bool:
        deadline = time.monotonic() + timeout_s
        while len(have) < needed:
            dead = [
                mid
                for mid, child in enumerate(children)
                if child.poll() is not None and mid not in dones
            ]
            if dead:
                result.runner_problems.append(
                    f"{phase}: node process(es) {dead} exited early "
                    f"(exit codes {[children[m].poll() for m in dead]})"
                )
                return False
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                wedged = sorted(
                    mid for mid in range(len(children)) if mid not in have
                )
                result.runner_problems.append(
                    f"{phase}: timed out after {timeout_s:.0f}s waiting "
                    f"for node process(es) {wedged}; killing their "
                    f"process groups"
                )
                for mid in wedged:
                    _kill_group(children[mid])
                return False
            progress.clear()
            try:
                await asyncio.wait_for(
                    progress.wait(), timeout=min(remaining, 0.2)
                )
            except asyncio.TimeoutError:
                pass
        return True

    try:
        if await gather(hellos, count, 30.0, "startup"):
            registry = {
                str(mid): ["127.0.0.1", int(hello["port"])]
                for mid, hello in hellos.items()
            }
            start = {
                "start": {
                    "registry": registry,
                    "epoch_monotonic": time.monotonic() + START_GRACE_S,
                    "horizon_us": horizon,
                }
            }
            payload = (json.dumps(start) + "\n").encode("utf-8")
            for mid in sorted(writers):
                writers[mid].write(payload)
                await writers[mid].drain()
            out(
                f"real: {workload} across {count} OS process(es) "
                f"[policy={policy_name}, loss={loss:g}, "
                f"horizon={horizon / 1e6:.1f}s]"
            )
            await gather(
                dones,
                count,
                START_GRACE_S + horizon / 1e6 + DONE_GRACE_S,
                "run",
            )
    finally:
        server.close()
        await server.wait_closed()
        # Children that reported done exit on their own momentarily;
        # give them that moment before reaching for terminate().
        for mid, child in enumerate(children):
            if mid in dones:
                try:
                    child.wait(timeout=5)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    pass
        for child in children:
            if child.poll() is None:
                child.terminate()
        for child in children:
            try:
                child.wait(timeout=5)
            except subprocess.TimeoutExpired:  # pragma: no cover
                _kill_group(child)
                child.wait()

    failed = [
        mid
        for mid, child in enumerate(children)
        if child.returncode != 0 or mid not in dones
    ]
    if failed and not result.runner_problems:
        result.runner_problems.append(
            f"node process(es) {failed} did not finish cleanly"
        )

    present = [path for path in trace_paths if path.exists()]
    if len(present) == count:
        metas, merged, ledger = merge_traces(present)
        result.records = len(merged)
        out(
            f"  merged {len(merged)} trace records from "
            f"{len(present)} process(es)"
        )
        analyze_merged(merged, ledger, policy_for(policy_name), result)
    else:
        # A child wedged or died before dumping.  The run is failed,
        # but whatever the survivors wrote is still evidence: merge it
        # and attach the tail so the failure report shows where the
        # trace stops.
        if not result.runner_problems:  # pragma: no cover - defensive
            result.runner_problems.append(
                f"only {len(present)}/{count} trace file(s) were written"
            )
        if present:
            _metas, merged, _ledger = merge_traces(present)
            result.records = len(merged)
            result.partial_trace_tail = [
                {"time": rec.time, "category": rec.category, **rec.fields}
                for rec in merged[-40:]
            ]
            out(
                f"  partial: merged {len(merged)} record(s) from "
                f"{len(present)}/{count} trace file(s)"
            )
    return result


def run_real(
    workload: str,
    seed: int = 1,
    policy: str = "adaptive",
    loss: float = 0.0,
    out=print,
    horizon_us: Optional[float] = None,
    keep_traces: Optional[str] = None,
    durable: Optional[str] = None,
    power_loss_at_us: Optional[float] = None,
) -> RealRunResult:
    """Run one workload across real OS processes and analyze the merge.

    ``durable`` roots each replica role's WAL + snapshots in real files
    under ``<durable>/<role>`` (a :class:`~repro.durability.disk.
    FileDisk` behind the standard fault disk); ``power_loss_at_us``
    power-fails every durable node at that run time and reboots it
    half a second later, so the cluster must recover from disk.
    """
    if power_loss_at_us is not None and not durable:
        raise ValueError("--power-loss-at requires --durable DIR")
    if durable:
        Path(durable).mkdir(parents=True, exist_ok=True)
    if keep_traces:
        trace_dir = Path(keep_traces)
        trace_dir.mkdir(parents=True, exist_ok=True)
        return asyncio.run(
            _parent(
                workload, seed, policy, loss, trace_dir, out, horizon_us,
                durable=durable, power_loss_at_us=power_loss_at_us,
            )
        )
    with tempfile.TemporaryDirectory(prefix="repro-real-") as tmp:
        return asyncio.run(
            _parent(
                workload, seed, policy, loss, Path(tmp), out, horizon_us,
                durable=durable, power_loss_at_us=power_loss_at_us,
            )
        )


# ---------------------------------------------------------------------------
# child (``python -m repro real-node``, internal)
# ---------------------------------------------------------------------------


async def _child(
    net: RealNetwork,
    workload: str,
    role_index: int,
    seed: int,
    policy_name: str,
    loss: float,
    control_port: int,
    trace_path: str,
    durable_dir: Optional[str] = None,
    power_loss_at_us: Optional[float] = None,
) -> None:
    spec = get_real_spec(workload)
    role = spec.roles[role_index]
    node = net.add_node(
        mid=role_index,
        program=role.factory(),
        name=role.name,
        boot_at_us=role.boot_at_us,
    )
    if durable_dir and role.name.startswith("replica"):
        from repro.durability.disk import DiskFaultPlan, FaultDisk, FileDisk

        node.disk = FaultDisk(
            FileDisk(os.path.join(durable_dir, role.name)),
            DiskFaultPlan(seed=100 + role_index),
        )
        if power_loss_at_us is not None:
            # Scripted blackout: power-fail this node mid-run, then
            # reboot it from its factory half a second later — state
            # must come back from the FileDisk, not memory.
            def _cut() -> None:
                if node.kernel.offline_until is None:
                    node.crash()

            def _reboot() -> None:
                boot_at = net.sim.now
                if node.kernel.offline_until is not None:
                    boot_at = node.kernel.offline_until
                node.install_program(role.factory(), boot_at_us=boot_at)

            net.sim.at(power_loss_at_us, _cut)
            net.sim.at(power_loss_at_us + 500_000.0, _reboot)
    addresses = await net.open()

    reader, writer = await asyncio.open_connection("127.0.0.1", control_port)
    hello = {
        "hello": {"mid": role_index, "port": addresses[role_index][1]}
    }
    writer.write((json.dumps(hello) + "\n").encode("utf-8"))
    await writer.drain()

    line = await asyncio.wait_for(reader.readline(), timeout=60.0)
    if not line:
        raise RuntimeError("control socket closed before start")
    start = json.loads(line)["start"]
    net.bus.set_registry(
        {int(mid): tuple(addr) for mid, addr in start["registry"].items()}
    )
    await net.run_async(
        float(start["horizon_us"]),
        epoch_monotonic=float(start["epoch_monotonic"]),
    )

    records = list(net.sim.trace.records)
    dump_trace(
        trace_path,
        records,
        meta={
            "mid": role_index,
            "role": role.name,
            "workload": workload,
            "seed": seed,
            "policy": policy_name,
            "loss": loss,
            "ledger": net.ledger.snapshot(),
            "records": len(records),
        },
    )
    done = {"done": {"mid": role_index, "records": len(records)}}
    writer.write((json.dumps(done) + "\n").encode("utf-8"))
    await writer.drain()
    writer.close()
    net.bus.close()


def run_real_node(argv: List[str]) -> int:
    """Entry point for one node process (not for interactive use)."""
    args: Dict[str, str] = {}
    key: Optional[str] = None
    for token in argv:
        if token.startswith("--"):
            key = token[2:]
        elif key is not None:
            args[key] = token
            key = None
    workload = args["workload"]
    role_index = int(args["role"])
    seed = int(args.get("seed", "1"))
    policy_name = args.get("policy", "adaptive")
    loss = float(args.get("loss", "0"))
    durable_dir = args.get("durable")
    power_loss_text = args.get("power-loss-at")
    impairments = (
        Impairments(loss_probability=loss) if loss > 0.0 else None
    )
    net = RealNetwork(
        seed=seed, config=_config_for(policy_name), impairments=impairments
    )
    try:
        # The whole child — control handshake included — runs on the
        # scheduler's own event loop: the UDP endpoints and kernel
        # timers must share one loop.
        net.sim.loop.run_until_complete(
            _child(
                net,
                workload,
                role_index,
                seed,
                policy_name,
                loss,
                int(args["control"]),
                args["trace"],
                durable_dir=durable_dir,
                power_loss_at_us=(
                    float(power_loss_text) if power_loss_text else None
                ),
            )
        )
    finally:
        net.close()
    return 0
