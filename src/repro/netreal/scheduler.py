"""Wall-clock scheduler: the :class:`~repro.sim.interface.SchedulerBackend`
contract over asyncio.

The SODA stack asks its scheduler for exactly four things — a float
microsecond clock, cancellable timers, generator processes, and one-shot
futures (see :mod:`repro.sim.interface`).  This module answers them with
real time: ``now`` is ``loop.time()`` (CLOCK_MONOTONIC) relative to an
*epoch*, timers are ``loop.call_at`` handles, and processes/futures are
the unmodified :mod:`repro.sim.process` classes — they only ever touch
``sim.schedule``, so they run over either backend.

The epoch is what makes multi-process traces mergeable: Linux's
CLOCK_MONOTONIC is system-wide (time since boot), so the parent runner
picks one monotonic instant slightly in the future and every node
process anchors t=0µs to it.  Two records from two processes then sort
into one consistent timeline by their plain ``time`` field.

Divergences from the virtual-time engine, all inherent to real time:

* ``at()`` with an instant that has just slipped into the past fires
  as soon as possible instead of raising — between *computing* a
  deadline and *arming* it, a wall clock advances; a virtual clock
  cannot.
* tie-breaking ``priority`` degrades to asyncio's FIFO ordering of
  ready callbacks.
* ``run(until=None)`` (run to queue exhaustion) is not meaningful and
  raises; wall-clock runs always need a horizon.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Generator, List, Optional

from repro.sim.process import Process, SimFuture
from repro.sim.rng import RngStreams
from repro.sim.tracing import Tracer

#: Seconds per simulated microsecond.
_US = 1e-6

#: Poll period for ``run_until`` predicates, in seconds.  Coarse on
#: purpose: predicates are test conveniences, not protocol timers.
_POLL_S = 0.002


class WallClockTimer:
    """A pending callback; satisfies :class:`repro.sim.interface.TimerHandle`.

    Mirrors :class:`repro.sim.events.Event` where holders can see it:
    ``cancel()`` is idempotent and ``cancelled`` stays False once the
    callback has fired (the degraded invariant auditor distinguishes a
    *disarmed* timer from a *spent* one).
    """

    __slots__ = ("cancelled", "_handle")

    def __init__(self) -> None:
        self.cancelled = False
        self._handle: Optional[asyncio.TimerHandle] = None

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None


class WallClockScheduler:
    """Run the SODA stack against real time on one asyncio event loop.

    Timers armed before :meth:`start` (program boots, kernel init work)
    are parked and flushed onto the loop when the epoch is fixed, so
    network construction code is identical to the simulator's.
    """

    def __init__(
        self,
        seed: int = 0,
        keep_trace: bool = True,
        max_trace_records: Optional[int] = None,
        loop: Optional[asyncio.AbstractEventLoop] = None,
    ) -> None:
        self.loop = loop or asyncio.new_event_loop()
        self.rng = RngStreams(seed)
        self.trace = Tracer(
            keep_records=keep_trace, max_records=max_trace_records
        )
        self._events_processed = 0
        #: loop.time() that t=0µs maps to; None until started.
        self._epoch_s: Optional[float] = None
        #: (time_us, fn, args, timer) armed before the epoch existed.
        self._parked: List[tuple] = []

    # -- the clock ---------------------------------------------------------

    @property
    def started(self) -> bool:
        return self._epoch_s is not None

    @property
    def now(self) -> float:
        """Float microseconds since the epoch (0.0 before start).

        Clamped at 0.0: a multi-process run fixes the epoch slightly in
        the future so all nodes begin together, and pre-epoch bookkeeping
        must not see negative time.
        """
        if self._epoch_s is None:
            return 0.0
        return max(0.0, (self.loop.time() - self._epoch_s) * 1e6)

    def start(self, epoch_monotonic: Optional[float] = None) -> None:
        """Fix the epoch and arm all parked timers.

        ``epoch_monotonic`` is an absolute ``loop.time()``/
        ``time.monotonic()`` instant (the cross-process rendezvous); by
        default the epoch is *now*.
        """
        if self._epoch_s is not None:
            raise RuntimeError("scheduler already started")
        self._epoch_s = (
            self.loop.time() if epoch_monotonic is None else epoch_monotonic
        )
        parked, self._parked = self._parked, []
        for time_us, fn, args, timer in parked:
            self._arm(time_us, fn, args, timer)

    # -- timers ------------------------------------------------------------

    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> WallClockTimer:
        """Run ``fn(*args)`` after ``delay`` microseconds of real time."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.at(self.now + delay, fn, *args, priority=priority)

    def at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> WallClockTimer:
        """Run ``fn(*args)`` at absolute microsecond ``time``.

        An instant already in the past fires as soon as possible (see
        module docstring); the simulator's ValueError is unreachable
        here because real time moves under the caller.
        """
        timer = WallClockTimer()
        if self._epoch_s is None:
            self._parked.append((time, fn, args, timer))
        else:
            self._arm(time, fn, args, timer)
        return timer

    def _arm(self, time_us: float, fn, args, timer: WallClockTimer) -> None:
        if timer.cancelled:
            return
        when = self._epoch_s + time_us * _US

        def fire() -> None:
            timer._handle = None
            if timer.cancelled:  # pragma: no cover - handle.cancel() races
                return
            self._events_processed += 1
            fn(*args)

        timer._handle = self.loop.call_at(max(when, self.loop.time()), fire)

    # -- processes and futures ---------------------------------------------

    def spawn(self, gen: Generator, name: str = "proc") -> Process:
        return Process(self, gen, name=name).start()  # type: ignore[arg-type]

    def new_future(self) -> SimFuture:
        return SimFuture(self)  # type: ignore[arg-type]

    # -- execution ---------------------------------------------------------

    async def sleep_until(self, until_us: float) -> None:
        """Let the loop run (and timers fire) until ``until_us``."""
        if self._epoch_s is None:
            self.start()
        while True:
            remaining = until_us - self.now
            if remaining <= 0:
                return
            await asyncio.sleep(remaining * _US)

    async def wait_until(
        self, predicate: Callable[[], bool], timeout_us: float
    ) -> bool:
        """Poll ``predicate`` until true or ``timeout_us`` elapses."""
        if self._epoch_s is None:
            self.start()
        deadline = self.now + timeout_us
        while not predicate():
            if self.now >= deadline:
                return predicate()
            await asyncio.sleep(min(_POLL_S, (deadline - self.now) * _US))
        return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 10_000_000,
    ) -> int:
        """Drive the loop for ``until`` microseconds of wall time.

        Mirrors ``Simulator.run`` closely enough for single-process
        tests; the multi-process runner drives :meth:`sleep_until` on an
        already-running loop instead.  ``max_events`` keeps the
        signature; wall-clock runs are bounded by time, not event count.
        """
        if until is None:
            raise ValueError(
                "a wall-clock run needs an explicit horizon (until=...)"
            )
        before = self._events_processed
        self.loop.run_until_complete(self.sleep_until(until))
        return self._events_processed - before

    def run_until(
        self, predicate: Callable[[], bool], timeout: float
    ) -> bool:
        return self.loop.run_until_complete(
            self.wait_until(predicate, timeout)
        )

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def close(self) -> None:
        if not self.loop.is_closed():
            self.loop.close()
