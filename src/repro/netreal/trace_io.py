"""Per-process JSONL traces and the wall-clock merge.

Each node process dumps its :class:`~repro.sim.tracing.Tracer` records
to one JSONL file: a ``meta`` header line (mid, seed, ledger snapshot,
policy name), then one ``{"t": ..., "c": ..., "f": {...}}`` line per
record.  The parent merges the files into a single stream ordered by
``(time, process, arrival)`` — records within one process keep their
emission order even when wall-clock floats tie, and across processes
the shared CLOCK_MONOTONIC epoch makes plain time comparable.

Timestamp typing is preserved exactly (the satellite fix of ISSUE 7):
simulated traces carry integer-valued microseconds, wall-clock traces
arbitrary floats, and JSON keeps ``int`` vs ``float`` distinct in both
directions — nothing in this path (or in the invariant checker and span
builder downstream, see tests/netreal/test_trace_io.py) coerces through
``int()``, which would silently collapse sub-microsecond wall-clock
orderings.

Field values must be JSON-representable.  Kernel trace records only
carry scalars (MIDs, tids, byte counts, status strings); anything else
is rejected loudly at dump time rather than corrupted quietly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.sim.tracing import CostLedger, TraceRecord, Tracer

PathLike = Union[str, Path]


def dump_trace(
    path: PathLike,
    records: Iterable[TraceRecord],
    meta: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write one process's records (plus a meta header) as JSONL."""
    target = Path(path)
    with target.open("w", encoding="utf-8") as fh:
        header = {"kind": "meta"}
        header.update(meta or {})
        fh.write(json.dumps(header, sort_keys=True) + "\n")
        for record in records:
            fh.write(
                json.dumps(
                    {
                        "t": record.time,
                        "c": record.category,
                        "f": record.fields,
                    },
                    sort_keys=True,
                )
                + "\n"
            )
    return target


def load_trace(
    path: PathLike,
) -> Tuple[Dict[str, Any], List[TraceRecord]]:
    """Read one JSONL trace back; returns ``(meta, records)``."""
    meta: Dict[str, Any] = {}
    records: List[TraceRecord] = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            entry = json.loads(line)
            if entry.get("kind") == "meta":
                meta = entry
                continue
            records.append(
                TraceRecord(entry["t"], entry["c"], entry.get("f", {}))
            )
    return meta, records


def merge_records(
    streams: Sequence[Sequence[TraceRecord]],
) -> List[TraceRecord]:
    """Merge per-process record streams into one wall-clock timeline.

    Each input stream must already be in emission order (a Tracer's
    retained records are).  The sort key is ``(time, stream index,
    position)``: time orders across processes, and the two tiebreakers
    keep the merge deterministic and stable without ever rounding a
    timestamp.
    """
    keyed = (
        ((record.time, index, position), record)
        for index, stream in enumerate(streams)
        for position, record in enumerate(stream)
    )
    # Each per-stream subsequence is sorted by construction; a full sort
    # is simplest and the key already makes it total.
    return [record for _, record in sorted(keyed, key=lambda item: item[0])]


def merge_traces(
    paths: Sequence[PathLike],
) -> Tuple[List[Dict[str, Any]], List[TraceRecord], CostLedger]:
    """Load and merge several trace files.

    Returns ``(metas, merged records, pooled ledger)`` — the pooled
    ledger sums every process's cost-category charges so INV-LEDGER
    still audits the merged run.
    """
    metas: List[Dict[str, Any]] = []
    streams: List[List[TraceRecord]] = []
    ledger = CostLedger()
    for path in paths:
        meta, records = load_trace(path)
        metas.append(meta)
        streams.append(records)
        for category, charge_us in (meta.get("ledger") or {}).items():
            ledger.charge(category, charge_us)
    return metas, merge_records(streams), ledger


def tracer_from_records(records: Sequence[TraceRecord]) -> Tracer:
    """Wrap merged records in a Tracer for the batch invariant checker."""
    tracer = Tracer()
    for record in records:
        tracer.counters[record.category] += 1
        tracer.records.append(record)
    return tracer


__all__ = [
    "dump_trace",
    "load_trace",
    "merge_records",
    "merge_traces",
    "tracer_from_records",
]
