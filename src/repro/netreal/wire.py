"""Binary wire codec for :class:`repro.net.frame.Frame`.

The simulator hands Python objects between NICs; a real UDP backend
needs bytes.  One frame maps to one datagram:

.. code-block:: text

    octets  field
    2       magic  "SW"
    1       version (1)
    4       CRC-32 of everything after this field
    1       packet type (PacketType index)
    4+4     src MID, dst MID        (signed; dst may be BROADCAST_MID)
    8       frame id                (per-sender namespaced, see
                                     repro.net.frame.sender_frame_ids)
    4       field-presence flags
    ...     optional packet fields, in FIELD table order
    4+N     length-prefixed data bytes (present iff FLAG_DATA)

Only fields whose flag bit is set are on the wire, so a pure ACK is 28
octets.  Two boolean fields ride in the flags word itself
(``connection_open``, ``pull_data``) rather than as separate octets.

Decoding is fuzz-safe by construction: every failure mode — truncation,
bad magic, version skew, CRC mismatch, unknown enum index, oversized
length prefix, trailing garbage — raises :class:`WireDecodeError` and
nothing else.  The UDP NIC catches that single type at the datagram
boundary, counts it, and drops the datagram; a corrupt packet can never
crash a kernel (the Megalink's CRC-discard behaviour, §6.12).

Deliberately not serializable: ``image`` (a
:class:`~repro.core.boot.ProgramImage` carries a live program *factory*;
shipping code objects between processes is out of scope — the bytes in
``data`` already stand in for the image's size on the wire), and
``packet_id`` (a process-local identity; the decoder mints a fresh one).
"""

from __future__ import annotations

import struct
import zlib
from typing import Any, Callable, List, Optional, Tuple

from repro.net.frame import Frame
from repro.transport.packet import NackCode, Packet, PacketType

__all__ = [
    "MAX_DATAGRAM_BYTES",
    "WIRE_VERSION",
    "WireDecodeError",
    "WireEncodeError",
    "decode_frame",
    "encode_frame",
]

WIRE_MAGIC = b"SW"
WIRE_VERSION = 1

#: Sanity bound on one datagram; far above ``max_message_bytes`` (4096)
#: plus headers, far below the 64 KiB UDP limit.
MAX_DATAGRAM_BYTES = 32_768

_PREFIX = struct.Struct("!2sBI")  # magic, version, crc32
_FIXED = struct.Struct("!BiiQI")  # ptype, src, dst, frame_id, flags
_LEN = struct.Struct("!I")

_PTYPES = tuple(PacketType)
_NACKS = tuple(NackCode)

#: Boolean fields carried as flag bits (bit, attribute, default).
_BOOL_FLAGS = (
    (1 << 0, "connection_open", True),
    (1 << 1, "pull_data", False),
)
_FLAG_DATA = 1 << 2

#: Optional scalar fields: (bit, attribute, struct, to_wire, from_wire).
#: ``None``-valued attributes (or default-valued counters) stay off the
#: wire; order here is the wire order.
_ident: Callable[[Any], Any] = lambda value: value  # noqa: E731
_FIELDS: Tuple[Tuple[int, str, struct.Struct, Callable, Callable], ...] = (
    (1 << 3, "seq", struct.Struct("!B"), _ident, _ident),
    (1 << 4, "ack", struct.Struct("!B"), _ident, _ident),
    (1 << 5, "pattern", struct.Struct("!Q"), _ident, _ident),
    (1 << 6, "tid", struct.Struct("!I"), _ident, _ident),
    (1 << 7, "requester_mid", struct.Struct("!i"), _ident, _ident),
    (1 << 8, "arg", struct.Struct("!q"), _ident, _ident),
    (1 << 9, "put_size", struct.Struct("!I"), _ident, _ident),
    (1 << 10, "get_size", struct.Struct("!I"), _ident, _ident),
    (1 << 11, "taken_put", struct.Struct("!I"), _ident, _ident),
    (1 << 12, "taken_get", struct.Struct("!I"), _ident, _ident),
    (
        1 << 13,
        "nack_code",
        struct.Struct("!B"),
        lambda code: _NACKS.index(code),
        lambda index: _nack_from_index(index),
    ),
    (1 << 14, "nacked_seq", struct.Struct("!B"), _ident, _ident),
    (1 << 15, "retry_hint_us", struct.Struct("!d"), _ident, _ident),
    (1 << 16, "tx_us", struct.Struct("!d"), _ident, _ident),
    (1 << 17, "echo_tx_us", struct.Struct("!d"), _ident, _ident),
    (1 << 18, "reply_mid", struct.Struct("!i"), _ident, _ident),
    (1 << 19, "query_token", struct.Struct("!q"), _ident, _ident),
    (1 << 20, "epoch", struct.Struct("!I"), _ident, _ident),
)

#: Integer fields above whose *dataclass* default is 0, not None: absent
#: on the wire means 0, and 0 is never encoded.
_ZERO_DEFAULTS = frozenset(
    {"arg", "put_size", "get_size", "taken_put", "taken_get"}
)

_KNOWN_FLAGS = (
    _FLAG_DATA
    | sum(bit for bit, _, _ in _BOOL_FLAGS)
    | sum(bit for bit, _, _, _, _ in _FIELDS)
)


class WireEncodeError(ValueError):
    """The frame cannot be represented on the wire (e.g. boot images)."""


class WireDecodeError(ValueError):
    """The datagram is not a valid frame; never escapes the NIC."""


def _nack_from_index(index: int) -> NackCode:
    try:
        return _NACKS[index]
    except IndexError:
        raise WireDecodeError(f"unknown nack code index {index}") from None


def encode_frame(frame: Frame) -> bytes:
    """One frame -> one datagram."""
    packet = frame.payload
    if not isinstance(packet, Packet):
        raise WireEncodeError(
            f"frame payload is not a Packet: {type(packet).__name__}"
        )
    if packet.image is not None:
        raise WireEncodeError(
            "boot images do not cross the real wire (see module docstring)"
        )
    flags = 0
    parts: List[bytes] = []
    for bit, name, default in _BOOL_FLAGS:
        if bool(getattr(packet, name)) != default:
            flags |= bit
    for bit, name, fmt, to_wire, _ in _FIELDS:
        value = getattr(packet, name)
        if value is None or (name in _ZERO_DEFAULTS and value == 0):
            continue
        flags |= bit
        try:
            parts.append(fmt.pack(to_wire(value)))
        except (struct.error, ValueError) as exc:
            raise WireEncodeError(f"field {name}={value!r}: {exc}") from exc
    if packet.data is not None:
        flags |= _FLAG_DATA
        parts.append(_LEN.pack(len(packet.data)))
        parts.append(packet.data)
    try:
        body = _FIXED.pack(
            _PTYPES.index(packet.ptype),
            frame.src,
            frame.dst,
            frame.frame_id,
            flags,
        ) + b"".join(parts)
    except struct.error as exc:
        raise WireEncodeError(f"frame header: {exc}") from exc
    datagram = _PREFIX.pack(WIRE_MAGIC, WIRE_VERSION, zlib.crc32(body)) + body
    if len(datagram) > MAX_DATAGRAM_BYTES:
        raise WireEncodeError(
            f"datagram too large: {len(datagram)} > {MAX_DATAGRAM_BYTES}"
        )
    return datagram


def decode_frame(datagram: bytes) -> Frame:
    """One datagram -> one frame, or :class:`WireDecodeError`."""
    if len(datagram) < _PREFIX.size + _FIXED.size:
        raise WireDecodeError(f"short datagram ({len(datagram)} octets)")
    if len(datagram) > MAX_DATAGRAM_BYTES:
        raise WireDecodeError(f"oversized datagram ({len(datagram)} octets)")
    magic, version, crc = _PREFIX.unpack_from(datagram)
    if magic != WIRE_MAGIC:
        raise WireDecodeError(f"bad magic {magic!r}")
    if version != WIRE_VERSION:
        raise WireDecodeError(f"unsupported wire version {version}")
    body = datagram[_PREFIX.size :]
    if zlib.crc32(body) != crc:
        raise WireDecodeError("CRC mismatch")
    ptype_index, src, dst, frame_id, flags = _FIXED.unpack_from(body)
    if ptype_index >= len(_PTYPES):
        raise WireDecodeError(f"unknown packet type index {ptype_index}")
    if flags & ~_KNOWN_FLAGS:
        raise WireDecodeError(f"unknown flag bits 0x{flags:08x}")
    offset = _FIXED.size
    fields: dict = {"ptype": _PTYPES[ptype_index]}
    for bit, name, default in _BOOL_FLAGS:
        fields[name] = (not default) if flags & bit else default
    for bit, name, fmt, _, from_wire in _FIELDS:
        if not flags & bit:
            continue
        try:
            (raw,) = fmt.unpack_from(body, offset)
        except struct.error:
            raise WireDecodeError(f"truncated at field {name}") from None
        offset += fmt.size
        fields[name] = from_wire(raw)
    data: Optional[bytes] = None
    if flags & _FLAG_DATA:
        try:
            (length,) = _LEN.unpack_from(body, offset)
        except struct.error:
            raise WireDecodeError("truncated at data length") from None
        offset += _LEN.size
        if length > len(body) - offset:
            raise WireDecodeError(
                f"data length {length} exceeds datagram"
            )
        data = bytes(body[offset : offset + length])
        offset += length
    if offset != len(body):
        raise WireDecodeError(
            f"{len(body) - offset} trailing octet(s) after payload"
        )
    packet = Packet(data=data, **fields)
    return Frame(
        src,
        dst,
        packet,
        payload_bytes=packet.data_bytes,
        frame_id=frame_id,
    )
