"""Higher-level communications facilities built on SODA (§4.2).

Everything here is *client code*: the kernel knows nothing about ports,
RPC, links, or rendezvous.  That is the paper's point — a bufferless,
two-phase REQUEST/ACCEPT kernel is enough to express all of these as
libraries.
"""

from repro.facilities.connector import (
    ConnectedProgram,
    ModuleSpec,
    Switchboard,
    Wiring,
    lookup_service,
    register_service,
    run_connector,
)
from repro.facilities.ports import InputPort, PriorityPort, port_write
from repro.facilities.rmr import MemoryServer, peek, poke
from repro.facilities.rpc import RpcClient, RpcServer, rpc_call
from repro.facilities.links import LinkEnd, LinkService
from repro.facilities.rendezvous import CspGuard, CspProcess
from repro.facilities.timeservice import TimeServer, set_alarm, sleep_via

# The supervision facility lives in repro.recovery (it ships with the
# failure detector and retry shim) but is, like everything here, pure
# client code over BOOT/LOAD — re-exported as a facility.
from repro.recovery.supervisor import (
    RestartPolicy,
    SupervisedService,
    SupervisorProgram,
)

__all__ = [
    "ConnectedProgram",
    "RestartPolicy",
    "SupervisedService",
    "SupervisorProgram",
    "CspGuard",
    "CspProcess",
    "InputPort",
    "ModuleSpec",
    "Switchboard",
    "Wiring",
    "lookup_service",
    "register_service",
    "run_connector",
    "LinkEnd",
    "LinkService",
    "MemoryServer",
    "PriorityPort",
    "RpcClient",
    "RpcServer",
    "TimeServer",
    "peek",
    "poke",
    "port_write",
    "rpc_call",
    "set_alarm",
    "sleep_via",
]
