"""Connection methods (§4.3.1): the connector and the switchboard.

Three ways clients obtain entry points:

* **compile-time**: well-known patterns plus broadcast DISCOVER — that is
  the core library's default path;
* **load-time**: a **connector** process "loads processes on different
  machines and establishes communications paths between processes": it
  boots the right number of machines, mints a fresh GETUNIQUEID pattern
  per declared connection, and patches each client's core image with the
  specific signatures it should use ("a linkage editor which ... links
  modules loosely together by establishing entry points used for
  intermodule communication");
* **run-time**: a **switchboard** process interrogated while running.

The simulated equivalent of "modifying the core image" is constructing
each program from a factory that receives its :class:`Wiring` — the
patterns it must advertise and the signatures of its declared peers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Sequence, Tuple

from repro.core.boot import ProgramImage, boot_pattern_for
from repro.core.client import ClientProgram
from repro.core.errors import SodaError
from repro.core.patterns import Pattern, make_well_known_pattern
from repro.core.signatures import ServerSignature


# ======================================================================
# the connector (load-time interconnection)
# ======================================================================


@dataclass
class Wiring:
    """What the connector patched into one module's core image."""

    #: Patterns this module must ADVERTISE (it is the target of these
    #: connections).
    exports: List[Pattern] = field(default_factory=list)
    #: Peer-name -> the signature to use when talking to that peer.
    peers: Dict[str, ServerSignature] = field(default_factory=dict)


@dataclass
class ModuleSpec:
    """One module in the connector's specification file."""

    name: str
    #: fn(wiring) -> ClientProgram; the wiring stands in for core-image
    #: patching.
    factory: Callable[[Wiring], ClientProgram]
    machine_type: str = "generic"
    image_bytes: int = 4096


class ConnectedProgram(ClientProgram):
    """Convenience base: advertises its wiring's exports at boot.

    Subclasses receive ``wiring`` and may use ``self.wiring.peers`` in
    their task/handler; override :meth:`setup` for extra initialization.
    """

    def __init__(self, wiring: Wiring):
        self.wiring = wiring

    def initialization(self, api, parent_mid):
        for pattern in self.wiring.exports:
            yield from api.advertise(pattern)
        extra = self.setup(api)
        if extra is not None:
            yield from extra

    def setup(self, api):
        """Optional extra initialization (may be a generator)."""
        return None


def run_connector(
    api,
    modules: Sequence[ModuleSpec],
    connections: Sequence[Tuple[str, str]],
) -> Generator:
    """Boot every module and wire the declared connections (§4.3.1).

    ``connections`` are ``(from_name, to_name)`` pairs; for each, a fresh
    unique pattern is minted, exported at ``to`` and handed to ``from``
    as ``wiring.peers[to_name]``.  Returns {module name -> MID}.
    """
    by_name = {spec.name: spec for spec in modules}
    for frm, to in connections:
        if frm not in by_name or to not in by_name:
            raise SodaError(f"connection names unknown module: {frm}->{to}")
    # 1. Obtain a machine for every module (boot pattern GET reserves it).
    claimed: Dict[str, ServerSignature] = {}
    used_mids = set()
    for spec in modules:
        boot_pattern = boot_pattern_for(spec.machine_type)
        target = None
        for _attempt in range(50):
            mids = yield from api.discover_all(boot_pattern, max_replies=16)
            free = [m for m in mids if m not in used_mids]
            if free:
                target = ServerSignature(free[0], boot_pattern)
                break
            yield api.compute(10_000)
        if target is None:
            raise SodaError(
                f"no free {spec.machine_type!r} machine for {spec.name!r}"
            )
        used_mids.add(target.mid)
        claimed[spec.name] = target
    # 2. Mint a pattern per connection; build each module's wiring.
    wirings: Dict[str, Wiring] = {spec.name: Wiring() for spec in modules}
    for frm, to in connections:
        pattern = yield from api.getuniqueid()
        wirings[to].exports.append(pattern)
        wirings[frm].peers[to] = ServerSignature(claimed[to].mid, pattern)
    # 3. Load every patched image first, start only afterwards (and in
    # reverse declaration order), so that by the time earlier-declared
    # modules run their tasks, later-declared ones have advertised.
    # Cyclic topologies still need retry loops in the modules themselves.
    mids: Dict[str, int] = {}
    load_sigs: Dict[str, ServerSignature] = {}
    for spec in modules:
        wiring = wirings[spec.name]
        image = ProgramImage(
            spec.name,
            (lambda s=spec, w=wiring: s.factory(w)),
            size_bytes=spec.image_bytes,
        )
        load_sigs[spec.name] = yield from api.boot_node(
            claimed[spec.name], image, start=False
        )
        mids[spec.name] = claimed[spec.name].mid
    for spec in reversed(modules):
        yield from api.boot_start(load_sigs[spec.name])
    return mids


# ======================================================================
# the switchboard (run-time interconnection)
# ======================================================================

#: A reply cannot depend on the same EXCHANGE's put data (§3.3.2 rule 2:
#: "There is no way for a server to inspect the first buffer before
#: sending the second in a single ACCEPT"), so the switchboard speaks
#: the PUT-then-GET remote-procedure protocol of §4.2.2.
SWITCHBOARD_REGISTER: Pattern = make_well_known_pattern(0o470)
SWITCHBOARD_LOOKUP: Pattern = make_well_known_pattern(0o471)


def _encode_entry(sig: ServerSignature) -> bytes:
    return sig.mid.to_bytes(2, "big") + int(sig.pattern).to_bytes(6, "big")


def _decode_entry(data: bytes) -> ServerSignature:
    return ServerSignature(
        int.from_bytes(data[:2], "big"), int.from_bytes(data[2:8], "big")
    )


class Switchboard(ClientProgram):
    """A name service: REGISTER and LOOKUP as remote procedures."""

    def __init__(self):
        from repro.facilities.rpc import RpcServer

        self.directory: Dict[bytes, ServerSignature] = {}
        self._rpc = RpcServer(
            {
                SWITCHBOARD_REGISTER: self._register,
                SWITCHBOARD_LOOKUP: self._lookup,
            }
        )

    def _register(self, params: bytes) -> bytes:
        name, entry = params[:-8], params[-8:]
        self.directory[name] = _decode_entry(entry)
        return b"\x01"

    def _lookup(self, params: bytes) -> bytes:
        entry = self.directory.get(params)
        return _encode_entry(entry) if entry is not None else b""

    # Delegation, not re-entry: the kernel dispatched THIS program's
    # entry point, which forwards to the composed RpcServer's same-named
    # method in the same invocation.
    def initialization(self, api, parent_mid):
        yield from self._rpc.initialization(api, parent_mid)  # sodalint: disable=SODA004

    def handler(self, api, event):
        yield from self._rpc.handler(api, event)  # sodalint: disable=SODA004

    def task(self, api):
        yield from self._rpc.task(api)


def register_service(
    api, switchboard_mid: int, name, sig: ServerSignature
) -> Generator:
    """Publish ``name -> sig`` at the switchboard."""
    from repro.facilities.rpc import rpc_call

    payload = bytes(name) + _encode_entry(sig)
    result = yield from rpc_call(
        api, ServerSignature(switchboard_mid, SWITCHBOARD_REGISTER), payload, 1
    )
    if result != b"\x01":
        raise SodaError("register failed")


def lookup_service(
    api, switchboard_mid: int, name, retries: int = 30
) -> Generator:
    """Resolve ``name``; retries until registered.  Returns a signature."""
    from repro.facilities.rpc import rpc_call

    for _attempt in range(retries):
        result = yield from rpc_call(
            api, ServerSignature(switchboard_mid, SWITCHBOARD_LOOKUP),
            bytes(name), 8,
        )
        if len(result) == 8:
            return _decode_entry(result)
        yield api.compute(10_000)
    raise SodaError(f"lookup of {name!r} failed")
