"""Remote procedure call over SODA (§4.2.2).

The caller PUTs the in-parameters and then issues a blocking GET for the
results; both use the pattern bound to the remote procedure.  The server
ACCEPTs the PUT to obtain the parameters, runs the procedure when both
the PUT and the GET have arrived, and ACCEPTs the GET with the out
parameters, which unblocks the caller.

The paper's sketch serves one procedure and one caller at a time; this
implementation dispatches on the pattern (one procedure per pattern) and
queues concurrent callers per procedure.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Generator, Optional

from repro.core.buffers import Buffer
from repro.core.client import ClientProgram
from repro.core.errors import AcceptStatus, RequestStatus, SodaError
from repro.core.patterns import Pattern
from repro.core.signatures import RequesterSignature, ServerSignature


@dataclass
class _CallState:
    """One caller's in-progress invocation."""

    caller_mid: int
    in_params: Optional[bytes] = None
    result_asker: Optional[RequesterSignature] = None

    @property
    def ready(self) -> bool:
        return self.in_params is not None and self.result_asker is not None


@dataclass
class _Procedure:
    fn: Callable[[bytes], bytes]
    #: Calls being assembled, keyed by caller MID (the PUT and GET of one
    #: invocation come from the same machine, in order).
    assembling: Dict[int, _CallState] = field(default_factory=dict)
    #: Fully-assembled calls awaiting execution.
    ready: Deque[_CallState] = field(default_factory=deque)


class RpcServer(ClientProgram):
    """Serves remote procedures; one pattern per procedure.

    ``procedures`` maps pattern -> fn(bytes) -> bytes.  Subclass or
    compose; to combine with other handler work, call
    :meth:`rpc_handle_arrival` from your handler and
    :meth:`rpc_serve_forever` from your task.
    """

    def __init__(self, procedures: Dict[Pattern, Callable[[bytes], bytes]]):
        self._procedures = {
            pattern: _Procedure(fn) for pattern, fn in procedures.items()
        }
        self.calls_served = 0

    def initialization(self, api, parent_mid):
        for pattern in self._procedures:
            yield from api.advertise(pattern)

    def handler(self, api, event):
        if event.is_arrival and event.pattern in self._procedures:
            yield from self.rpc_handle_arrival(api, event)

    def task(self, api):
        yield from self.rpc_serve_forever(api)

    # -- composable pieces ---------------------------------------------------

    def rpc_handle_arrival(self, api, event) -> Generator:
        procedure = self._procedures[event.pattern]
        state = procedure.assembling.get(event.asker.mid)
        if state is None:
            state = _CallState(caller_mid=event.asker.mid)
            procedure.assembling[event.asker.mid] = state
        if event.put_size > 0 and state.in_params is None:
            buf = Buffer(event.put_size)
            status = yield from api.accept_current_put(get=buf)
            if status is AcceptStatus.SUCCESS:
                state.in_params = buf.data
        elif event.get_size > 0 and state.result_asker is None:
            state.result_asker = event.asker
        else:
            # Protocol violation (e.g. two PUTs): reject it.
            yield from api.reject()
            return
        if state.ready:
            del procedure.assembling[event.asker.mid]
            procedure.ready.append(state)

    def rpc_serve_forever(self, api) -> Generator:
        while True:
            yield from api.poll(lambda: self._has_ready_call())
            pattern, procedure, state = self._next_ready()
            out = procedure.fn(state.in_params)
            yield from api.accept_get(state.result_asker, put=out)
            self.calls_served += 1

    def _has_ready_call(self) -> bool:
        return any(p.ready for p in self._procedures.values())

    def _next_ready(self):
        for pattern, procedure in self._procedures.items():
            if procedure.ready:
                return pattern, procedure, procedure.ready.popleft()
        raise RuntimeError("no ready call")  # pragma: no cover


def rpc_call(
    api,
    procedure: ServerSignature,
    in_params,
    out_capacity: int,
) -> Generator:
    """Client-side RPC: PUT parameters, blocking-GET results (§4.2.2).

    Returns the result bytes.  Raises SodaError if the remote machine
    crashed or rejected the call — "should the machine executing the
    remote subroutine crash, the caller should be informed so that the
    call may be repeated using a different machine".
    """
    completion = yield from api.b_put(procedure, put=in_params)
    if completion.status is not RequestStatus.COMPLETED:
        raise SodaError(f"rpc parameter transfer failed: {completion.status.value}")
    buf = Buffer(out_capacity)
    completion = yield from api.b_get(procedure, get=buf)
    if completion.status is not RequestStatus.COMPLETED:
        raise SodaError(f"rpc result transfer failed: {completion.status.value}")
    return buf.data


class RpcClient:
    """A small convenience wrapper binding an api to a remote procedure."""

    def __init__(self, api, procedure: ServerSignature, out_capacity: int = 1024):
        self.api = api
        self.procedure = procedure
        self.out_capacity = out_capacity

    def call(self, in_params) -> Generator:
        result = yield from rpc_call(
            self.api, self.procedure, in_params, self.out_capacity
        )
        return result
