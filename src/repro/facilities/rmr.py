"""Remote memory reference: PEEK and POKE (§4.2.3).

The server establishes a well-known RMR entry point; PEEK is a GET and
POKE is a PUT, with the REQUEST argument naming the memory address and
the buffer size giving the transfer length.  Synchronization of critical
sections is by CLOSE/OPEN or by scheduling ACCEPTs — here the handler
services each reference atomically (handlers do not nest), which is the
strongest of those options.
"""

from __future__ import annotations

from typing import Generator

from repro.core.buffers import Buffer
from repro.core.client import ClientProgram
from repro.core.errors import RequestStatus, SodaError
from repro.core.patterns import Pattern, make_well_known_pattern
from repro.core.signatures import ServerSignature

#: Default well-known RMR entry point.
RMR_PATTERN: Pattern = make_well_known_pattern(0o520)


class MemoryServer(ClientProgram):
    """Exposes ``size`` bytes of memory for remote PEEK/POKE."""

    def __init__(self, size: int = 4096, pattern: Pattern = RMR_PATTERN):
        self.memory = bytearray(size)
        self.pattern = pattern
        self.peeks = 0
        self.pokes = 0

    def initialization(self, api, parent_mid):
        yield from api.advertise(self.pattern)

    def handler(self, api, event):
        if not (event.is_arrival and event.pattern == self.pattern):
            return
        address = event.arg
        if address < 0 or address > len(self.memory):
            yield from api.reject()
            return
        if event.put_size > 0:
            # POKE: install the incoming bytes at `address`.
            nbytes = min(event.put_size, len(self.memory) - address)
            buf = Buffer(nbytes)
            yield from api.accept_current_put(get=buf)
            self.memory[address : address + len(buf.data)] = buf.data
            self.pokes += 1
        else:
            # PEEK: return `get_size` bytes starting at `address`.
            nbytes = min(event.get_size, len(self.memory) - address)
            data = bytes(self.memory[address : address + nbytes])
            yield from api.accept_current_get(put=data)
            self.peeks += 1


def peek(api, server: ServerSignature, address: int, size: int) -> Generator:
    """Read ``size`` bytes of remote memory at ``address``."""
    buf = Buffer(size)
    completion = yield from api.b_get(server, arg=address, get=buf)
    if completion.status is not RequestStatus.COMPLETED:
        raise SodaError(f"peek failed: {completion.status.value}")
    return buf.data


def poke(api, server: ServerSignature, address: int, value) -> Generator:
    """Write ``value`` (bytes) into remote memory at ``address``."""
    completion = yield from api.b_put(server, arg=address, put=value)
    if completion.status is not RequestStatus.COMPLETED:
        raise SodaError(f"poke failed: {completion.status.value}")
    return completion.taken_put
