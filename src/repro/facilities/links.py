"""Virtual circuits ("links") with transparent moving (§4.2.4).

A link is a logical duplex channel between two processes whose ends can
be rebound at run time.  Each end is represented locally by a table
entry holding the peer's ``<machine, pattern>`` plus a MASTER/SLAVE role
bit; the local end is itself addressable by a pattern advertised here.

The paper's protocol, reproduced here:

* one end holds MASTER, the other SLAVE; only a MASTER may move its end,
  so a SLAVE first asks to become master (a GET with argument ``-1``);
* a moving end installs a new end at the destination via an EXCHANGE on
  the destination's LINK_SERVICE pattern, tells the stationary partner
  the new address (a PUT with argument ``-2``), and finally tells the
  new end that installation is complete (a SIGNAL with argument ``-3``);
* REQUESTs issued over a link in transit are REJECTed and retried once
  the ``-2`` update has landed;
* a destroyed end notifies its partner (SIGNAL ``-4``); subsequent sends
  fail.

Argument values ``>= 0`` are user data tags.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Generator, Optional, Tuple

from repro.core.buffers import Buffer
from repro.core.errors import AcceptStatus, RequestStatus, SodaError
from repro.core.patterns import Pattern, make_well_known_pattern
from repro.core.signatures import RequesterSignature, ServerSignature
from repro.sodal.queueing import Queue

#: The well-known entry point every link-speaking client advertises.
LINK_SERVICE: Pattern = make_well_known_pattern(0o510)

ARG_BECOME_MASTER = -1
ARG_MOVED = -2
ARG_INSTALLED = -3
ARG_DESTROYED = -4


class LinkRole(enum.Enum):
    MASTER = 1
    SLAVE = 0


class LinkState(enum.Enum):
    INSTALLED = "installed"
    BEING_INSTALLED = "being_installed"
    DESTROYED = "destroyed"


@dataclass
class LinkEnd:
    """One end of a link, as stored in the local link table."""

    link_id: int
    local_pattern: Pattern
    peer_mid: int
    peer_pattern: Pattern
    role: LinkRole
    state: LinkState = LinkState.INSTALLED
    moving: bool = False
    #: Incremented whenever the peer address changes (-2 update); send
    #: retries watch this to know when to re-attempt.
    version: int = 0
    inbox: Queue = field(default_factory=lambda: Queue(16))
    want_to_move: Optional[RequesterSignature] = None

    @property
    def peer_sig(self) -> ServerSignature:
        return ServerSignature(self.peer_mid, self.peer_pattern)


def _encode_end(role: LinkRole, mid: int, pattern: Pattern) -> bytes:
    return bytes([role.value]) + mid.to_bytes(2, "big") + int(pattern).to_bytes(6, "big")


def _decode_end(data: bytes) -> Tuple[LinkRole, int, Pattern]:
    role = LinkRole(data[0])
    mid = int.from_bytes(data[1:3], "big")
    pattern = int.from_bytes(data[3:9], "big")
    return role, mid, pattern


class LinkService:
    """Per-client link machinery; embed one in a ClientProgram.

    Handler integration::

        def handler(self, api, event):
            if (yield from self.links.handle_arrival(api, event)):
                return
            ...  # other patterns

    Task-side operations: connect, send, recv, move, destroy, introduce.
    """

    def __init__(self) -> None:
        self.ends: Dict[int, LinkEnd] = {}
        self._by_pattern: Dict[Pattern, LinkEnd] = {}
        self._next_id = 1
        self._installed = False

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------

    def install(self, api) -> Generator:
        yield from api.advertise(LINK_SERVICE)
        self._installed = True

    def _new_end(
        self, api, peer_mid: int, peer_pattern: Pattern, role: LinkRole,
        state: LinkState,
    ) -> Generator:
        pattern = yield from api.getuniqueid()
        yield from api.advertise(pattern)
        end = LinkEnd(
            link_id=self._next_id,
            local_pattern=pattern,
            peer_mid=peer_mid,
            peer_pattern=peer_pattern,
            role=role,
            state=state,
        )
        self._next_id += 1
        self.ends[end.link_id] = end
        self._by_pattern[pattern] = end
        return end

    def _drop_end(self, api, end: LinkEnd) -> Generator:
        yield from api.unadvertise(end.local_pattern)
        self.ends.pop(end.link_id, None)
        self._by_pattern.pop(end.local_pattern, None)

    # ------------------------------------------------------------------
    # handler side
    # ------------------------------------------------------------------

    def handle_arrival(self, api, event) -> Generator:
        """Process a link-related arrival; returns True if consumed."""
        if not event.is_arrival:
            return False
        if event.pattern == LINK_SERVICE:
            yield from self._install_end_request(api, event)
            return True
        end = self._by_pattern.get(event.pattern)
        if end is None:
            return False
        if event.arg >= 0:
            yield from self._data_arrival(api, end, event)
        elif event.arg == ARG_BECOME_MASTER:
            yield from self._become_master_request(api, end, event)
        elif event.arg == ARG_MOVED:
            yield from self._moved_notice(api, end, event)
        elif event.arg == ARG_INSTALLED:
            yield from api.accept_current_signal()
            end.state = LinkState.INSTALLED
        elif event.arg == ARG_DESTROYED:
            yield from api.accept_current_signal()
            end.state = LinkState.DESTROYED
        else:
            yield from api.reject()
        return True

    def _install_end_request(self, api, event) -> Generator:
        # A mover (or introducer/connector) asks us to host a link end.
        buf = Buffer(9)
        end = yield from self._new_end(
            api, peer_mid=0, peer_pattern=0,
            role=LinkRole.SLAVE, state=LinkState.BEING_INSTALLED,
        )
        status = yield from api.accept_current_exchange(
            get=buf, put=_encode_end(LinkRole.SLAVE, api.my_mid, end.local_pattern)
        )
        if status is not AcceptStatus.SUCCESS or len(buf.data) < 9:
            yield from self._drop_end(api, end)
            return
        role, mid, pattern = _decode_end(buf.data)
        end.role = role
        end.peer_mid = mid
        end.peer_pattern = pattern
        if pattern == 0:
            # Partner address follows later (introduction step 3).
            end.state = LinkState.BEING_INSTALLED
        # Receiving is legal immediately; sending waits for ARG_INSTALLED.

    def _data_arrival(self, api, end: LinkEnd, event) -> Generator:
        if end.moving or end.state is LinkState.DESTROYED:
            # "REQUESTS issued over it are REJECTED and must be reissued
            # when the link has completed its move."
            yield from api.reject()
            return
        if end.inbox.is_full():
            yield from api.reject()
            return
        yield from api.enqueue(end.inbox, (event.asker, event.arg, event.put_size))

    def _become_master_request(self, api, end: LinkEnd, event) -> Generator:
        if end.role is not LinkRole.MASTER:
            # We are not master (race with a concurrent move); reject so
            # the asker retries against the real master.
            yield from api.reject()
            return
        if not end.moving:
            yield from api.accept_current_get(put=b"\x01")
            end.role = LinkRole.SLAVE
        else:
            # We are mid-move: delay the asker until the move completes.
            end.want_to_move = event.asker

    def _moved_notice(self, api, end: LinkEnd, event) -> Generator:
        buf = Buffer(9)
        status = yield from api.accept_current_put(get=buf)
        if status is AcceptStatus.SUCCESS and len(buf.data) >= 9:
            _role, mid, pattern = _decode_end(buf.data)
            end.peer_mid = mid
            end.peer_pattern = pattern
            end.version += 1
            if end.state is LinkState.BEING_INSTALLED:
                end.state = LinkState.INSTALLED

    # ------------------------------------------------------------------
    # task side
    # ------------------------------------------------------------------

    def connect(self, api, peer_mid: int) -> Generator:
        """Create a fresh link to ``peer_mid``; we hold the MASTER end."""
        end = yield from self._new_end(
            api, peer_mid=peer_mid, peer_pattern=0,
            role=LinkRole.MASTER, state=LinkState.BEING_INSTALLED,
        )
        buf = Buffer(9)
        completion = yield from api.b_exchange(
            ServerSignature(peer_mid, LINK_SERVICE),
            put=_encode_end(LinkRole.SLAVE, api.my_mid, end.local_pattern),
            get=buf,
        )
        if completion.status is not RequestStatus.COMPLETED or len(buf.data) < 9:
            yield from self._drop_end(api, end)
            raise SodaError(f"link connect to {peer_mid} failed")
        _role, mid, pattern = _decode_end(buf.data)
        end.peer_mid = mid
        end.peer_pattern = pattern
        end.state = LinkState.INSTALLED
        yield from api.b_signal(end.peer_sig, arg=ARG_INSTALLED)
        return end.link_id

    def send(
        self, api, link_id: int, data, tag: int = 0, max_retries: int = 60
    ) -> Generator:
        """Blocking send over a link; retries across moves."""
        if tag < 0:
            raise ValueError("negative tags are reserved for link control")
        end = self._require(link_id)
        for _attempt in range(max_retries):
            if end.state is LinkState.DESTROYED:
                raise SodaError("link destroyed")
            yield from api.poll(lambda: end.state is LinkState.INSTALLED or
                                end.state is LinkState.DESTROYED)
            if end.state is LinkState.DESTROYED:
                raise SodaError("link destroyed")
            completion = yield from api.b_put(end.peer_sig, arg=tag, put=data)
            if completion.status is RequestStatus.COMPLETED:
                return completion
            if completion.status is RequestStatus.REJECTED:
                # Link in transit: wait for the -2 update (or just retry).
                version = end.version
                for _ in range(200):
                    if end.version != version:
                        break
                    yield api.compute(2_000)
                continue
            if completion.status in (
                RequestStatus.UNADVERTISED,
                RequestStatus.CRASHED,
            ):
                # The end moved away before we heard about it; wait for
                # the update then retry.
                version = end.version
                for _ in range(200):
                    if end.version != version:
                        break
                    yield api.compute(2_000)
                continue
        raise SodaError("link send retries exhausted")

    def recv(self, api, link_id: int, max_bytes: int = 1024) -> Generator:
        """Blocking receive: accept the next data request on the link."""
        end = self._require(link_id)
        yield from api.poll(lambda: not end.inbox.is_empty())
        asker, tag, put_size = yield from api.dequeue(end.inbox)
        buf = Buffer(min(put_size, max_bytes))
        status = yield from api.accept_put(asker, get=buf)
        if status is not AcceptStatus.SUCCESS:
            return (yield from self.recv(api, link_id, max_bytes))
        return buf.data, tag

    def become_master(self, api, link_id: int) -> Generator:
        end = self._require(link_id)
        while end.role is LinkRole.SLAVE:
            buf = Buffer(1)
            completion = yield from api.b_get(
                end.peer_sig, arg=ARG_BECOME_MASTER, get=buf
            )
            if (
                completion.status is RequestStatus.COMPLETED
                and buf.data == b"\x01"
            ):
                end.role = LinkRole.MASTER
                return
            # REJECTED or FAILED: master moved or is moving; retry.
            yield api.compute(2_000)

    def move(self, api, link_id: int, via_link_id: int) -> Generator:
        """Move our end of ``link_id`` to the partner of ``via_link_id``.

        Transparent to the stationary partner of ``link_id`` (§4.2.4).
        After the move our local end is gone.
        """
        end = self._require(link_id)
        new_home = self._require(via_link_id).peer_mid
        end.moving = True
        yield from self.become_master(api, link_id)
        # Install the new MASTER end at its new home.
        buf = Buffer(9)
        completion = yield from api.b_exchange(
            ServerSignature(new_home, LINK_SERVICE),
            put=_encode_end(LinkRole.MASTER, end.peer_mid, end.peer_pattern),
            get=buf,
        )
        if completion.status is not RequestStatus.COMPLETED or len(buf.data) < 9:
            end.moving = False
            raise SodaError("link move: destination refused")
        _role, new_mid, new_pattern = _decode_end(buf.data)
        # Tell the stationary partner where its peer went.
        yield from self.send_control(
            api, end.peer_sig, ARG_MOVED,
            _encode_end(LinkRole.MASTER, new_mid, new_pattern),
        )
        # Tell the new end the move is complete.
        yield from api.b_signal(
            ServerSignature(new_mid, new_pattern), arg=ARG_INSTALLED
        )
        # Release a delayed become-master request, telling it to retry.
        if end.want_to_move is not None:
            yield from api.accept_get(end.want_to_move, put=b"\x00")
            end.want_to_move = None
        yield from self._drop_end(api, end)

    def send_control(self, api, sig: ServerSignature, arg: int, data) -> Generator:
        completion = yield from api.b_put(sig, arg=arg, put=data)
        if completion.status is not RequestStatus.COMPLETED:
            raise SodaError(
                f"link control message {arg} failed: {completion.status.value}"
            )

    def destroy(self, api, link_id: int) -> Generator:
        """Destroy our end; the partner is notified (§2.1 LINKS)."""
        end = self._require(link_id)
        end.state = LinkState.DESTROYED
        yield from api.b_signal(end.peer_sig, arg=ARG_DESTROYED)
        yield from self._drop_end(api, end)

    def introduce(self, api, link_a: int, link_b: int) -> Generator:
        """Give the partners of two of our links a link of their own."""
        mid_a = self._require(link_a).peer_mid
        mid_b = self._require(link_b).peer_mid
        # Host an end at A (MASTER), peer address to follow.
        buf_a = Buffer(9)
        completion = yield from api.b_exchange(
            ServerSignature(mid_a, LINK_SERVICE),
            put=_encode_end(LinkRole.MASTER, mid_b, 0),
            get=buf_a,
        )
        if completion.status is not RequestStatus.COMPLETED:
            raise SodaError("introduce: first partner refused")
        _r, _m, pattern_a = _decode_end(buf_a.data)
        # Host an end at B (SLAVE) pointing at A's new end.
        buf_b = Buffer(9)
        completion = yield from api.b_exchange(
            ServerSignature(mid_b, LINK_SERVICE),
            put=_encode_end(LinkRole.SLAVE, mid_a, pattern_a),
            get=buf_b,
        )
        if completion.status is not RequestStatus.COMPLETED:
            raise SodaError("introduce: second partner refused")
        _r, _m, pattern_b = _decode_end(buf_b.data)
        # Complete A's end with B's address (the -2 update), then mark
        # both installed.
        yield from self.send_control(
            api,
            ServerSignature(mid_a, pattern_a),
            ARG_MOVED,
            _encode_end(LinkRole.SLAVE, mid_b, pattern_b),
        )
        yield from api.b_signal(ServerSignature(mid_a, pattern_a), arg=ARG_INSTALLED)
        yield from api.b_signal(ServerSignature(mid_b, pattern_b), arg=ARG_INSTALLED)

    def _require(self, link_id: int) -> LinkEnd:
        end = self.ends.get(link_id)
        if end is None:
            raise SodaError(f"no such link: {link_id}")
        return end

    def link_for_pattern(self, pattern: Pattern) -> Optional[LinkEnd]:
        return self._by_pattern.get(pattern)
