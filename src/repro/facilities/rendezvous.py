"""Symmetric rendezvous: CSP with output guards via Bernstein's algorithm
(§4.2.5).

Each CSP process advertises a name pattern and is in one of three states:

* ACTIVE — executing ordinary statements;
* QUERYING — evaluating an alternative command, probing its output
  guards one at a time with blocking PUTs ("queries");
* WAITING — all output guards probed without success; parked until an
  incoming query matches one of its input guards.

The deadlock-avoidance rule: a process that receives a query while
itself QUERYING *delays* the querier if its own MID is larger (the
querier blocks), and REJECTS it otherwise.  Cycles of queries therefore
always contain at least one rejection, which unblocks the cycle; the
rejected process then accepts a delayed query if one matches an input
guard.  See the paper's worked example (P1, P2, P3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Generator, List, Optional, Sequence

from repro.core.buffers import Buffer
from repro.core.errors import RequestStatus
from repro.core.patterns import Pattern
from repro.core.signatures import ServerSignature
from repro.sodal.queueing import Queue


class CspState(enum.Enum):
    ACTIVE = "active"
    QUERYING = "querying"
    WAITING = "waiting"


@dataclass
class CspGuard:
    """One guarded command of an alternative command.

    Exactly one of the three shapes:

    * pure: neither input nor output command (``peer is None``);
    * output guard: ``peer`` names the partner, ``value`` is sent;
    * input guard: ``peer`` names the acceptable source MID (or None for
      any), ``capacity`` sizes the receive buffer.

    ``msg_type`` is the type tag both sides must agree on (the paper
    matches on the types of the communicated objects).  ``condition`` is
    the boolean part of the guard.
    """

    kind: str  # "pure" | "output" | "input"
    msg_type: int = 0
    peer: Optional[ServerSignature] = None
    source_mid: Optional[int] = None
    value: bytes = b""
    capacity: int = 64
    condition: Callable[[], bool] = lambda: True

    #: Filled on an input match.
    received: Optional[bytes] = None

    def matches_arrival(self, asker_mid: int, msg_type: int) -> bool:
        if self.kind != "input":
            return False
        if self.msg_type != msg_type:
            return False
        return self.source_mid is None or self.source_mid == asker_mid


class CspProcess:
    """Bernstein-algorithm engine; embed one per CSP client.

    Handler integration::

        def handler(self, api, event):
            if (yield from self.csp.handle_arrival(api, event)):
                return

    Task side: ``yield from self.csp.alternative(api, guards)`` returns
    the index of the executed guard (or None if all guards failed).
    """

    def __init__(self, name_pattern: Pattern) -> None:
        self.name_pattern = name_pattern
        self.state = CspState.ACTIVE
        self.query_pending = False
        self.delayed: Queue = Queue(8)
        self._active_inputs: List[CspGuard] = []
        self._matched: Optional[CspGuard] = None
        self.rendezvous_count = 0

    def install(self, api) -> Generator:
        yield from api.advertise(self.name_pattern)

    # ------------------------------------------------------------------
    # handler side
    # ------------------------------------------------------------------

    def handle_arrival(self, api, event) -> Generator:
        if not (event.is_arrival and event.pattern == self.name_pattern):
            return False
        guard = self._matching_input(event.asker.mid, event.arg)
        if self.state is CspState.WAITING and guard is not None:
            buf = Buffer(guard.capacity)
            yield from api.accept_current_put(get=buf)
            guard.received = buf.data
            self._matched = guard
            self.state = CspState.ACTIVE
            return True
        if (
            self.state is CspState.QUERYING
            and guard is not None
            and self.query_pending
            and api.my_mid > event.asker.mid
        ):
            # Delay the lower-MID querier (deadlock-avoidance ordering).
            yield from api.enqueue(
                self.delayed, (event.asker, event.arg, event.put_size)
            )
            return True
        yield from api.reject()
        return True

    def _matching_input(self, asker_mid: int, msg_type: int) -> Optional[CspGuard]:
        for guard in self._active_inputs:
            if guard.matches_arrival(asker_mid, msg_type):
                return guard
        return None

    # ------------------------------------------------------------------
    # task side
    # ------------------------------------------------------------------

    def alternative(self, api, guards: Sequence[CspGuard]) -> Generator:
        """Evaluate one alternative command; returns the executed guard's
        index, or None if every guard failed (§4.2.5.1)."""
        live = [g for g in guards if g.condition()]
        if not live:
            return None
        self.state = CspState.QUERYING
        self._matched = None
        self._active_inputs = [g for g in live if g.kind == "input"]
        try:
            for guard in live:
                if guard.kind == "pure":
                    self.state = CspState.ACTIVE
                    return guards.index(guard)
                if guard.kind != "output":
                    continue
                self.query_pending = True
                completion = yield from api.b_put(
                    guard.peer, arg=guard.msg_type, put=guard.value
                )
                self.query_pending = False
                if completion.status is RequestStatus.COMPLETED:
                    self.state = CspState.ACTIVE
                    self.rendezvous_count += 1
                    return guards.index(guard)
                if completion.status is RequestStatus.REJECTED:
                    # Partner unavailable or we lost an ordering race;
                    # first see whether someone we delayed can serve one
                    # of our input guards.
                    matched = yield from self._accept_delayed(api)
                    if matched is not None:
                        self.state = CspState.ACTIVE
                        self.rendezvous_count += 1
                        return guards.index(matched)
                    continue
                # CRASHED/UNADVERTISED: the partner terminated; the guard
                # fails (the CSP rule for terminated processes).
                live_inputs = [g for g in self._active_inputs if g is not guard]
                self._active_inputs = live_inputs
            if not self._active_inputs:
                self.state = CspState.ACTIVE
                return None
            # Nothing matched among output guards: wait for a query.
            self.state = CspState.WAITING
            matched = yield from self._await_match(api)
            self.rendezvous_count += 1
            return guards.index(matched)
        finally:
            self._active_inputs = []
            self.state = CspState.ACTIVE
            # Queries we delayed but never served would block their
            # senders until our next alternative; reject them so they can
            # retry (they may find us WAITING next time).
            yield from self._reject_unserved_delayed(api)

    def _reject_unserved_delayed(self, api) -> Generator:
        while not self.delayed.is_empty():
            asker, _msg_type, _put_size = yield from api.dequeue(self.delayed)
            yield from api.reject(asker)

    def _accept_delayed(self, api) -> Generator:
        while not self.delayed.is_empty():
            asker, msg_type, put_size = yield from api.dequeue(self.delayed)
            guard = self._matching_input(asker.mid, msg_type)
            if guard is None:
                # Cannot serve it; reject so the querier unblocks.
                yield from api.reject(asker)
                continue
            buf = Buffer(guard.capacity)
            yield from api.accept_put(asker, get=buf)
            guard.received = buf.data
            return guard
        return None

    def _await_match(self, api) -> Generator:
        # A delayed query may already satisfy an input guard.
        matched = yield from self._accept_delayed(api)
        if matched is not None:
            self.state = CspState.ACTIVE
            return matched
        yield from api.poll(lambda: self._matched is not None)
        matched, self._matched = self._matched, None
        return matched
