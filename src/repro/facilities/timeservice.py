"""The timeserver utility and timeout idioms (§4.3.2, §4.4.3).

SODA deliberately has no timeouts in its primitives (§6.5); instead a
client registers a wakeup REQUEST with a timeserver that owns a hardware
clock.  The request is a SIGNAL whose argument is the delay; the
timeserver ACCEPTs it when the delay expires, invoking the requester's
handler.  The requester may then CANCEL whatever it was waiting on.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Generator, List, Tuple

from repro.core.client import ClientProgram
from repro.core.patterns import Pattern, make_well_known_pattern
from repro.core.signatures import RequesterSignature, ServerSignature

#: Well-known alarm-clock pattern (the paper's ALARM_CLOCK).
ALARM_CLOCK: Pattern = make_well_known_pattern(0o500)

#: Delay units carried in the SIGNAL argument: one tick = 1 ms, so that
#: 16-bit arguments cover over a minute.
TICK_US = 1_000.0


class TimeServer(ClientProgram):
    """Accepts wakeup SIGNALs when their delay expires.

    The REQUEST argument is the delay in milliseconds.  The hardware
    clock is modelled by polling the simulator clock every ``tick_us``.
    """

    def __init__(self, pattern: Pattern = ALARM_CLOCK, tick_us: float = TICK_US):
        self.pattern = pattern
        self.tick_us = tick_us
        self._pending: List[Tuple[float, int, RequesterSignature]] = []
        self._tiebreak = itertools.count()
        self.alarms_served = 0

    def initialization(self, api, parent_mid):
        yield from api.advertise(self.pattern)

    def handler(self, api, event):
        if event.is_arrival and event.pattern == self.pattern:
            expiry = api.now + max(0, event.arg) * TICK_US
            heapq.heappush(
                self._pending, (expiry, next(self._tiebreak), event.asker)
            )
        return
        yield  # pragma: no cover

    def task(self, api):
        while True:
            # Sleep to the next interesting instant: the earliest pending
            # expiry, or a coarse idle tick when nothing is registered
            # (alarms that arrive mid-sleep are late by at most one
            # segment, like any real tick-driven clock).
            if self._pending:
                wait = max(self.tick_us, self._pending[0][0] - api.now)
            else:
                wait = 10 * self.tick_us
            yield api.compute(min(wait, 10 * self.tick_us))
            while self._pending and self._pending[0][0] <= api.now:
                _expiry, _n, asker = heapq.heappop(self._pending)
                yield from api.accept_signal(asker)
                self.alarms_served += 1


def set_alarm(api, timeserver: ServerSignature, delay_ms: int) -> Generator:
    """Register a wakeup; returns the TID (§4.3.2).

    Non-blocking: the completion arrives at the client's handler when
    the alarm expires.  The TID lets the handler recognize it (the
    COMPLETION case of §4.1.4.1) and lets the client CANCEL the alarm.
    """
    tid = yield from api.signal(timeserver, arg=delay_ms)
    return tid


def sleep_via(api, timeserver: ServerSignature, delay_ms: int) -> Generator:
    """Blocking sleep: a B_SIGNAL the timeserver accepts at expiry."""
    completion = yield from api.b_signal(timeserver, arg=delay_ms)
    return completion
