"""Input ports and priority queues (§4.2.1).

An input port is a queueing point for incoming messages: many writers,
one reader.  The server advertises the port pattern, its handler
enqueues requester signatures (closing the handler when the signature
queue fills — that is the port's flow control), and its task dequeues
and ACCEPTs.  "The faster port requests can be enqueued, the closer a
true FIFO ordering of incoming requests is approached."

A priority port orders pending requests by the REQUEST argument instead
of arrival order (§4.2.1: "the argument provided with the REQUEST is
used as a priority"; higher wins).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Generator, List, Tuple

from repro.core.buffers import Buffer
from repro.core.errors import AcceptStatus
from repro.core.patterns import Pattern
from repro.core.signatures import RequesterSignature, ServerSignature
from repro.sodal.queueing import Queue


class InputPort:
    """Server-side half of an input port.

    Usage inside a ClientProgram::

        def initialization(self, api, parent):
            self.port = InputPort(PORT_PATTERN, queue_capacity=8,
                                  item_capacity=128)
            yield from self.port.install(api)

        def handler(self, api, event):
            if event.is_arrival and event.pattern == self.port.pattern:
                yield from self.port.note_arrival(api, event)

        def task(self, api):
            while True:
                data = yield from self.port.read(api)
                ...
    """

    def __init__(
        self, pattern: Pattern, queue_capacity: int, item_capacity: int
    ) -> None:
        self.pattern = pattern
        self.item_capacity = item_capacity
        self.pending: Queue[Tuple[RequesterSignature, int]] = Queue(queue_capacity)
        self._closed_for_flow_control = False

    def install(self, api) -> Generator:
        yield from api.advertise(self.pattern)

    def note_arrival(self, api, event) -> Generator:
        """Handler-side: enqueue the signature; CLOSE when full."""
        yield from api.enqueue(self.pending, (event.asker, event.arg))
        if self.pending.is_full():
            self._closed_for_flow_control = True
            yield from api.close()

    def _next(self, api) -> Generator:
        yield from api.poll(lambda: not self.pending.is_empty())
        if self._closed_for_flow_control:
            # There is room again now that we are consuming.
            self._closed_for_flow_control = False
            yield from api.open()
        entry = yield from api.dequeue(self.pending)
        return entry

    def read(self, api) -> Generator:
        """Task-side: block until a write is available; returns bytes."""
        asker, _arg = yield from self._next(api)
        buf = Buffer(self.item_capacity)
        status = yield from api.accept_put(asker, get=buf)
        if status is not AcceptStatus.SUCCESS:
            # Writer crashed or cancelled; recurse for the next one.
            return (yield from self.read(api))
        return buf.data

    def __len__(self) -> int:
        return len(self.pending)


class PriorityPort(InputPort):
    """An input port whose reads return the highest-priority write first.

    Priority is the REQUEST argument; ties break by arrival order.
    """

    def __init__(
        self, pattern: Pattern, queue_capacity: int, item_capacity: int
    ) -> None:
        super().__init__(pattern, queue_capacity, item_capacity)
        self._heap: List[tuple] = []
        self._tiebreak = itertools.count()
        self._capacity = queue_capacity

    def note_arrival(self, api, event) -> Generator:
        yield api.tm.queue_op_us
        heapq.heappush(
            self._heap, (-event.arg, next(self._tiebreak), event.asker)
        )
        if len(self._heap) >= self._capacity:
            self._closed_for_flow_control = True
            yield from api.close()

    def _next(self, api) -> Generator:
        yield from api.poll(lambda: bool(self._heap))
        if self._closed_for_flow_control:
            self._closed_for_flow_control = False
            yield from api.open()
        yield api.tm.queue_op_us
        neg_priority, _, asker = heapq.heappop(self._heap)
        return (asker, -neg_priority)

    def __len__(self) -> int:
        return len(self._heap)


def port_write(api, port_sig: ServerSignature, data, priority: int = 0) -> Generator:
    """Client-side port write: a blocking PUT (§4.2.1)."""
    completion = yield from api.b_put(port_sig, arg=priority, put=data)
    return completion
