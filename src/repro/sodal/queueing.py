"""The SODAL QUEUE type (§4.1.4).

A bounded FIFO with the six operations the paper defines: EnQueue,
DeQueue, isEmpty, isFull, AlmostEmpty, AlmostFull.  Servers use queues of
REQUESTER SIGNATURES to schedule ACCEPTs, and queues of buffers for data
(two-way bounded buffer, ports, file server).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, Iterable, List, Optional, TypeVar

T = TypeVar("T")


class QueueFullError(Exception):
    """EnQueue on a full queue."""


class QueueEmptyError(Exception):
    """DeQueue on an empty queue."""


class Queue(Generic[T]):
    """``var q : QUEUE [capacity] of T``."""

    def __init__(self, capacity: int, items: Optional[Iterable[T]] = None) -> None:
        if capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        self.capacity = capacity
        self._items: Deque[T] = deque()
        if items is not None:
            for item in items:
                self.enqueue(item)

    def enqueue(self, item: T) -> None:
        """Insert at the end; raises QueueFullError when full."""
        if self.is_full():
            raise QueueFullError(f"queue of {self.capacity} is full")
        self._items.append(item)

    def dequeue(self) -> T:
        """Remove and return the head; raises QueueEmptyError when empty."""
        if not self._items:
            raise QueueEmptyError("queue is empty")
        return self._items.popleft()

    def peek(self) -> T:
        if not self._items:
            raise QueueEmptyError("queue is empty")
        return self._items[0]

    def is_empty(self) -> bool:
        return not self._items

    def is_full(self) -> bool:
        return len(self._items) >= self.capacity

    def almost_empty(self) -> bool:
        """True if the queue has a single element left (§4.1.4)."""
        return len(self._items) == 1

    def almost_full(self) -> bool:
        """True if the queue can hold exactly one more item (§4.1.4)."""
        return len(self._items) == self.capacity - 1

    def remove(self, item: T) -> bool:
        """Remove the first occurrence of ``item``; True if found."""
        try:
            self._items.remove(item)
            return True
        except ValueError:
            return False

    def items(self) -> List[T]:
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item: T) -> bool:
        return item in self._items

    def __repr__(self) -> str:
        return f"<Queue {len(self._items)}/{self.capacity}>"
