"""SODAL: the programming layer over the raw SODA primitives (§4.1).

SODAL in the paper is a small language; here it is an API object handed
to every client program.  It contributes exactly what the paper's
compiler contributed:

* the PUT/GET/EXCHANGE/SIGNAL spellings of REQUEST and ACCEPT;
* blocking variants (B_PUT, ...) built from the non-blocking REQUEST plus
  a hidden completion handler — including the saved-PC trick that makes
  them legal inside the handler;
* ACCEPT_CURRENT_* and REJECT;
* a blocking DISCOVER wrapper;
* the bounded QUEUE type with the six paper operations.
"""

from repro.sodal.api import OK, Completion, SodalApi
from repro.sodal.dispatch import HandlerDispatcher
from repro.sodal.queueing import Queue, QueueEmptyError, QueueFullError

__all__ = [
    "OK",
    "Completion",
    "HandlerDispatcher",
    "Queue",
    "QueueEmptyError",
    "QueueFullError",
    "SodalApi",
]
