"""ENTRY / COMPLETION dispatch (§4.1.4.1).

SODAL lets handlers switch on the invoked pattern (ENTRY) for arrivals
and on the TID (COMPLETION) for completions::

    case ENTRY of
       pattern_1: ...
    case COMPLETION of
       tid_1: ...

:class:`HandlerDispatcher` provides the same structure declaratively: a
program registers entry handlers per pattern (plus an OTHERWISE default)
and completion handlers per TID, then routes every event through
:meth:`dispatch`.  Completion routes are one-shot, like the paper's
``tid`` case labels that match a specific outstanding request.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, Optional

from repro.core.client import HandlerEvent
from repro.core.patterns import Pattern


class HandlerDispatcher:
    """Routes handler events to registered entry/completion handlers.

    Handlers are generator functions ``fn(api, event)``; entry handlers
    persist, completion handlers fire once.  ``dispatch`` returns True
    if a route consumed the event.
    """

    def __init__(self) -> None:
        self._entries: Dict[Pattern, Callable] = {}
        self._otherwise: Optional[Callable] = None
        self._completions: Dict[int, Callable] = {}
        self._completion_default: Optional[Callable] = None

    # -- registration -------------------------------------------------------

    def on_entry(self, pattern: Pattern, fn: Callable) -> None:
        """``case ENTRY of pattern: fn``."""
        self._entries[pattern] = fn

    def otherwise(self, fn: Callable) -> None:
        """The OTHERWISE arm of the ENTRY case (§4.2.1 uses one)."""
        self._otherwise = fn

    def on_completion(self, tid: int, fn: Callable) -> None:
        """``case COMPLETION of tid: fn`` — fires once, then unregisters."""
        self._completions[tid] = fn

    def on_any_completion(self, fn: Callable) -> None:
        """Fallback for completions of unregistered TIDs."""
        self._completion_default = fn

    def cancel_completion(self, tid: int) -> None:
        self._completions.pop(tid, None)

    # -- routing ---------------------------------------------------------------

    def dispatch(self, api, event: HandlerEvent) -> Generator:
        """Route one handler event; returns True if handled."""
        if event.is_arrival:
            fn = self._entries.get(event.pattern, self._otherwise)
            if fn is None:
                return False
            yield from _as_gen(fn(api, event))
            return True
        if event.is_completion and event.asker is not None:
            fn = self._completions.pop(event.asker.tid, None)
            if fn is None:
                fn = self._completion_default
            if fn is None:
                return False
            yield from _as_gen(fn(api, event))
            return True
        return False

    @property
    def pending_completions(self) -> int:
        return len(self._completions)


def _as_gen(value) -> Generator:
    if value is None:
        return
        yield  # pragma: no cover
    yield from value
