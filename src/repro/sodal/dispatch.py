"""ENTRY / COMPLETION dispatch (§4.1.4.1).

SODAL lets handlers switch on the invoked pattern (ENTRY) for arrivals
and on the TID (COMPLETION) for completions::

    case ENTRY of
       pattern_1: ...
    case COMPLETION of
       tid_1: ...

:class:`HandlerDispatcher` provides the same structure declaratively: a
program registers entry handlers per pattern (plus an OTHERWISE default)
and completion handlers per TID, then routes every event through
:meth:`dispatch`.  Completion routes are one-shot, like the paper's
``tid`` case labels that match a specific outstanding request.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, Generator, Optional

from repro.core.client import HandlerEvent
from repro.core.patterns import Pattern


class HandlerDispatcher:
    """Routes handler events to registered entry/completion handlers.

    Handlers are generator functions ``fn(api, event)``; entry handlers
    persist, completion handlers fire once.  ``dispatch`` returns True
    if a route consumed the event.

    :attr:`stats` counts how each event was routed (``entry_matched``,
    ``entry_otherwise``, ``completion_matched``, ``completion_default``,
    ``unrouted``) — the sodal-layer numbers the observability docs
    describe (docs/OBSERVABILITY.md).
    """

    def __init__(self) -> None:
        self._entries: Dict[Pattern, Callable] = {}
        self._otherwise: Optional[Callable] = None
        self._completions: Dict[int, Callable] = {}
        self._completion_default: Optional[Callable] = None
        self.stats: Counter = Counter()

    # -- registration -------------------------------------------------------

    def on_entry(self, pattern: Pattern, fn: Callable) -> None:
        """``case ENTRY of pattern: fn``."""
        self._entries[pattern] = fn

    def otherwise(self, fn: Callable) -> None:
        """The OTHERWISE arm of the ENTRY case (§4.2.1 uses one)."""
        self._otherwise = fn

    def on_completion(self, tid: int, fn: Callable) -> None:
        """``case COMPLETION of tid: fn`` — fires once, then unregisters."""
        self._completions[tid] = fn

    def on_any_completion(self, fn: Callable) -> None:
        """Fallback for completions of unregistered TIDs."""
        self._completion_default = fn

    def cancel_completion(self, tid: int) -> None:
        self._completions.pop(tid, None)

    # -- routing ---------------------------------------------------------------

    def dispatch(self, api, event: HandlerEvent) -> Generator:
        """Route one handler event; returns True if handled."""
        if event.is_arrival:
            fn = self._entries.get(event.pattern)
            if fn is not None:
                self.stats["entry_matched"] += 1
            elif self._otherwise is not None:
                fn = self._otherwise
                self.stats["entry_otherwise"] += 1
            else:
                self.stats["unrouted"] += 1
                return False
            yield from _as_gen(fn(api, event))
            return True
        if event.is_completion and event.asker is not None:
            fn = self._completions.pop(event.asker.tid, None)
            if fn is not None:
                self.stats["completion_matched"] += 1
            elif self._completion_default is not None:
                fn = self._completion_default
                self.stats["completion_default"] += 1
            else:
                self.stats["unrouted"] += 1
                return False
            yield from _as_gen(fn(api, event))
            return True
        self.stats["unrouted"] += 1
        return False

    @property
    def pending_completions(self) -> int:
        return len(self._completions)


def _as_gen(value) -> Generator:
    if value is None:
        return
        yield  # pragma: no cover
    yield from value
