"""The SODAL API object handed to client programs (§4.1).

Every method that does work is a generator and must be invoked as
``yield from api.method(...)``; pure time costs are plain values for
``yield api.compute(us)``.  This mirrors the paper's split between SODAL
statements (which compile to kernel traps plus bookkeeping code) and
plain computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional, Union

from repro.core.boot import mids_from_bytes
from repro.core.buffers import Buffer
from repro.core.errors import NotInHandlerError, RequestStatus, SodaError
from repro.core.patterns import BROADCAST, Pattern
from repro.core.signatures import RequesterSignature, ServerSignature

#: The default argument used when the client does not care (§4.1).
OK = 0

#: The ACCEPT argument that spells REJECT (§4.1.2).
REJECT_ARG = -1

PutData = Union[bytes, bytearray, str, Buffer, None]
GetBuf = Union[Buffer, int, None]


@dataclass
class Completion:
    """Result of a blocking request (B_PUT and friends).

    ``status`` folds in the SODAL REJECTED convention: a completion whose
    ACCEPT argument is -1 reads as REJECTED (§4.1.2).
    """

    status: RequestStatus
    arg: int = 0
    taken_put: int = 0
    taken_get: int = 0
    tid: int = 0
    #: True when a failure provably never executed server-side (safe to
    #: re-issue); None when ambiguous or on success (docs/RECOVERY.md).
    not_executed: Optional[bool] = None

    @property
    def rejected(self) -> bool:
        return self.status is RequestStatus.REJECTED

    @property
    def completed(self) -> bool:
        return self.status is RequestStatus.COMPLETED


def _coerce_put(data: PutData) -> bytes:
    """Objects are coerced into BUFFERS as necessary (§4.1.1)."""
    if data is None:
        return b""
    if isinstance(data, Buffer):
        return data.data
    if isinstance(data, str):
        return data.encode("utf-8")
    return bytes(data)


def _coerce_get(buf: GetBuf) -> Buffer:
    if buf is None:
        return Buffer.nil()
    if isinstance(buf, int):
        return Buffer(buf)
    return buf


class SodalApi:
    """Kernel primitives plus the SODAL conveniences, bound to one client."""

    def __init__(self, processor) -> None:
        self._processor = processor
        self.kernel = processor.kernel
        self.sim = processor.sim

    # ------------------------------------------------------------------
    # environment
    # ------------------------------------------------------------------

    @property
    def my_mid(self) -> int:
        """MY_MID from the communications region (§3.7.3)."""
        return self.kernel.mid

    @property
    def tm(self):
        return self.kernel.config.timing

    @property
    def node_disk(self):
        """This node's durable :class:`~repro.durability.disk.Disk`.

        ``None`` on diskless nodes — the SODA default, where a reboot
        is amnesiac (§3.5.2) and programs must tolerate it.
        """
        return getattr(getattr(self.kernel, "node", None), "disk", None)

    @property
    def now(self) -> float:
        return self.sim.now

    def server_sig(self, mid: int, pattern: Pattern) -> ServerSignature:
        """The <mid, pattern> cast (§4.1.3)."""
        return ServerSignature(mid, pattern)

    def requester_sig(self, mid: int, tid: int) -> RequesterSignature:
        """The <mid, tid> cast (§4.1.3)."""
        return RequesterSignature(mid, tid)

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------

    def compute(self, us: float) -> float:
        """Burn client CPU time: ``yield api.compute(us)``."""
        return us

    def idle(self) -> float:
        """One pass of the idle() busy-wait loop (§5.2.1)."""
        return self.tm.idle_poll_us

    def poll(self, predicate) -> Generator:
        """``while not predicate() do idle()`` (§4.1.1).

        Models the IDLE/WAIT instruction (§5.2.1): each pass sleeps at
        most an exponentially-growing quantum but is woken immediately
        by any completed handler invocation, so the task reacts to fresh
        interrupts at idle-poll granularity without burning simulated
        cycles while nothing is going on.
        """
        delay = self.idle()
        processor = self._processor
        while not predicate():
            seen = processor.activity_counter
            yield from processor.wait_activity(delay)
            if processor.activity_counter != seen:
                delay = self.idle()
            else:
                delay = min(delay * 2.0, 10_000.0)

    def serve_forever(self) -> Generator:
        """Suspend the task indefinitely; all work happens in the handler.

        Models the IDLE instruction of §5.2.1: the client waits for
        interrupts without touching shared memory.
        """
        yield self.sim.new_future()

    def _overhead(self) -> float:
        """Client-side cost of a primitive invocation (trap+descriptor)."""
        us = self.tm.client_overhead_us()
        self.kernel.ledger.charge("client_overhead", us)
        return us

    # ------------------------------------------------------------------
    # naming primitives
    # ------------------------------------------------------------------

    def advertise(self, pattern: Pattern) -> Generator:
        yield self._overhead()
        self.kernel.client_advertise(pattern)

    def unadvertise(self, pattern: Pattern) -> Generator:
        yield self._overhead()
        self.kernel.client_unadvertise(pattern)

    def getuniqueid(self) -> Generator:
        yield self._overhead()
        return self.kernel.client_getuniqueid()

    # ------------------------------------------------------------------
    # handler control
    # ------------------------------------------------------------------

    def open(self) -> Generator:
        yield self.tm.trap_us
        self.kernel.client_open()

    def close(self) -> Generator:
        yield self.tm.trap_us
        self.kernel.client_close()

    # ------------------------------------------------------------------
    # process control
    # ------------------------------------------------------------------

    def die(self) -> Generator:
        yield self.tm.trap_us
        self.kernel.client_die()
        # The client never executes past DIE; the process was killed.
        yield self.sim.new_future()  # pragma: no cover

    # ------------------------------------------------------------------
    # non-blocking REQUEST variants (§4.1.1)
    # ------------------------------------------------------------------

    def request(
        self,
        server: ServerSignature,
        arg: int = OK,
        put: PutData = None,
        get: GetBuf = None,
    ) -> Generator:
        """REQUEST; returns the TID."""
        yield self._overhead()
        return self.kernel.client_request(
            server, arg, _coerce_put(put), _coerce_get(get)
        )

    def signal(self, server: ServerSignature, arg: int = OK) -> Generator:
        return self.request(server, arg)

    def put(
        self, server: ServerSignature, arg: int = OK, put: PutData = None
    ) -> Generator:
        return self.request(server, arg, put=put)

    def get(
        self, server: ServerSignature, arg: int = OK, get: GetBuf = None
    ) -> Generator:
        return self.request(server, arg, get=get)

    def exchange(
        self,
        server: ServerSignature,
        arg: int = OK,
        put: PutData = None,
        get: GetBuf = None,
    ) -> Generator:
        return self.request(server, arg, put=put, get=get)

    # ------------------------------------------------------------------
    # ACCEPT variants
    # ------------------------------------------------------------------

    def accept(
        self,
        requester: RequesterSignature,
        arg: int = OK,
        get: GetBuf = None,
        put: PutData = None,
    ) -> Generator:
        """Blocking ACCEPT; returns an AcceptStatus."""
        yield self._overhead()
        future = self.kernel.client_accept(
            requester, arg, _coerce_get(get), _coerce_put(put)
        )
        self._processor.in_blocking_primitive = True
        try:
            status = yield future
        finally:
            self._processor.in_blocking_primitive = False
        self.kernel.poll_handler()
        return status

    def accept_signal(
        self, requester: RequesterSignature, arg: int = OK
    ) -> Generator:
        return self.accept(requester, arg)

    def accept_put(
        self, requester: RequesterSignature, arg: int = OK, get: GetBuf = None
    ) -> Generator:
        """Complete a PUT: receive the requester's data into ``get``."""
        return self.accept(requester, arg, get=get)

    def accept_get(
        self, requester: RequesterSignature, arg: int = OK, put: PutData = None
    ) -> Generator:
        """Complete a GET: send ``put`` back to the requester."""
        return self.accept(requester, arg, put=put)

    def accept_exchange(
        self,
        requester: RequesterSignature,
        arg: int = OK,
        get: GetBuf = None,
        put: PutData = None,
    ) -> Generator:
        return self.accept(requester, arg, get=get, put=put)

    # -- ACCEPT_CURRENT (§4.1.2) -------------------------------------------

    def _current_asker(self) -> RequesterSignature:
        event = self._processor.current_event
        if event is None or not event.is_arrival or event.asker is None:
            raise NotInHandlerError(
                "ACCEPT_CURRENT is only legal inside a request-arrival handler"
            )
        return event.asker

    def accept_current(
        self, arg: int = OK, get: GetBuf = None, put: PutData = None
    ) -> Generator:
        return self.accept(self._current_asker(), arg, get=get, put=put)

    def accept_current_signal(self, arg: int = OK) -> Generator:
        return self.accept_current(arg)

    def accept_current_put(self, arg: int = OK, get: GetBuf = None) -> Generator:
        return self.accept_current(arg, get=get)

    def accept_current_get(self, arg: int = OK, put: PutData = None) -> Generator:
        return self.accept_current(arg, put=put)

    def accept_current_exchange(
        self, arg: int = OK, get: GetBuf = None, put: PutData = None
    ) -> Generator:
        return self.accept_current(arg, get=get, put=put)

    def reject(self, requester: Optional[RequesterSignature] = None) -> Generator:
        """REJECT: ACCEPT with no data and an argument of -1 (§4.1.2)."""
        if requester is None:
            requester = self._current_asker()
        return self.accept(requester, REJECT_ARG)

    # ------------------------------------------------------------------
    # CANCEL
    # ------------------------------------------------------------------

    def cancel(self, tid: int) -> Generator:
        """Blocking CANCEL of one of our own requests."""
        yield self._overhead()
        future = self.kernel.client_cancel(RequesterSignature(self.my_mid, tid))
        self._processor.in_blocking_primitive = True
        try:
            status = yield future
        finally:
            self._processor.in_blocking_primitive = False
        self.kernel.poll_handler()
        return status

    # ------------------------------------------------------------------
    # blocking requests (§4.1.1)
    # ------------------------------------------------------------------

    def b_request(
        self,
        server: ServerSignature,
        arg: int = OK,
        put: PutData = None,
        get: GetBuf = None,
        image=None,
    ) -> Generator:
        """B_PUT/B_GET/B_EXCHANGE/B_SIGNAL core; returns a Completion.

        Legal in the task; inside the handler it performs the paper's
        saved-PC maneuver: the handler invocation ends here and the rest
        of the calling code continues at task level (§4.1.1).
        """
        if self._processor.executing_handler:
            self._processor.detach_handler_for_blocking()
        # The blocking wrapper's bookkeeping (§4.1.1): save the return
        # point and prepare the hidden completion handler...
        yield self.tm.blocking_wrapper_half_us
        yield self._overhead()
        tid = self.kernel.client_request(
            server, arg, _coerce_put(put), _coerce_get(get), image=image
        )
        future = self.sim.new_future()
        self._processor.awaited_completions[tid] = future
        event = yield future
        # ...and restore it when the completion unblocks us.
        yield self.tm.blocking_wrapper_half_us
        status = event.status
        if status is RequestStatus.COMPLETED and event.arg == REJECT_ARG:
            status = RequestStatus.REJECTED
        return Completion(
            status=status,
            arg=event.arg,
            taken_put=event.taken_put,
            taken_get=event.taken_get,
            tid=tid,
            not_executed=event.not_executed,
        )

    def watch_completion(self, tid: int):
        """Register interest in a request's completion *right now*.

        Returns a future for :meth:`wait_completion`.  The completion
        event will be intercepted by the hidden SODAL handler instead of
        reaching the user handler.  Register before any completion could
        arrive; then wait whenever convenient (pipelined sends do this).
        """
        future = self.sim.new_future()
        self._processor.awaited_completions[tid] = future
        return future

    def wait_completion(self, tid: int, future) -> Generator:
        """Block until a watched completion arrives; returns a Completion."""
        event = yield future
        status = event.status
        if status is RequestStatus.COMPLETED and event.arg == REJECT_ARG:
            status = RequestStatus.REJECTED
        return Completion(
            status=status,
            arg=event.arg,
            taken_put=event.taken_put,
            taken_get=event.taken_get,
            tid=tid,
            not_executed=event.not_executed,
        )

    def await_completion(self, tid: int) -> Generator:
        """watch + wait in one step (safe only when the completion cannot
        arrive before this call runs)."""
        future = self.watch_completion(tid)
        event = yield future
        status = event.status
        if status is RequestStatus.COMPLETED and event.arg == REJECT_ARG:
            status = RequestStatus.REJECTED
        return Completion(
            status=status,
            arg=event.arg,
            taken_put=event.taken_put,
            taken_get=event.taken_get,
            tid=tid,
            not_executed=event.not_executed,
        )

    def b_signal(self, server: ServerSignature, arg: int = OK) -> Generator:
        return self.b_request(server, arg)

    def b_put(
        self, server: ServerSignature, arg: int = OK, put: PutData = None
    ) -> Generator:
        return self.b_request(server, arg, put=put)

    def b_get(
        self, server: ServerSignature, arg: int = OK, get: GetBuf = None
    ) -> Generator:
        return self.b_request(server, arg, get=get)

    def b_exchange(
        self,
        server: ServerSignature,
        arg: int = OK,
        put: PutData = None,
        get: GetBuf = None,
    ) -> Generator:
        return self.b_request(server, arg, put=put, get=get)

    # ------------------------------------------------------------------
    # DISCOVER (§4.1.3)
    # ------------------------------------------------------------------

    def discover_all(
        self, pattern: Pattern, max_replies: int = 16
    ) -> Generator:
        """One broadcast round; returns the list of matching MIDs."""
        buffer = Buffer(2 * max_replies)
        completion = yield from self.b_get(
            ServerSignature(BROADCAST, pattern), OK, get=buffer
        )
        if completion.status is not RequestStatus.COMPLETED:
            return []
        return mids_from_bytes(buffer.data)

    def discover(self, pattern: Pattern) -> Generator:
        """Blocking DISCOVER: retries until a server answers; returns a
        ServerSignature for one matching server (§4.1.3)."""
        while True:
            mids = yield from self.discover_all(pattern, max_replies=1)
            if mids:
                return ServerSignature(mids[0], pattern)

    # ------------------------------------------------------------------
    # booting (§3.5.2)
    # ------------------------------------------------------------------

    def boot_node(
        self, target: ServerSignature, image, start: bool = True
    ) -> Generator:
        """Run the boot protocol against a bare node (§3.5.2).

        ``target`` is <mid, BOOT_PATTERN> (typically from a DISCOVER on
        the machine-type boot pattern); ``image`` is a ProgramImage.
        Returns the LOAD pattern's server signature, usable later to
        kill the child (a second SIGNAL on it).  Raises SodaError if the
        node refused the boot (already claimed or occupied).

        With ``start=False`` the image is loaded but not started; issue
        the start SIGNAL later with :meth:`boot_start` — connectors use
        this to load a whole application before any module runs.
        """
        from repro.core.boot import pattern_from_bytes

        buf = Buffer(6)
        completion = yield from self.b_get(target, get=buf)
        if completion.status is not RequestStatus.COMPLETED:
            raise SodaError(
                f"boot refused by MID {target.mid}: {completion.status.value}"
            )
        load_sig = ServerSignature(target.mid, pattern_from_bytes(buf.data))
        first = True
        for offset, nbytes in image.chunks():
            completion = yield from self.b_request(
                load_sig,
                arg=offset,
                put=bytes(nbytes),
                image=image if first else None,
            )
            if completion.status is not RequestStatus.COMPLETED:
                raise SodaError(f"image load failed: {completion.status.value}")
            first = False
        if start:
            yield from self.boot_start(load_sig)
        return load_sig

    def boot_start(self, load_sig: ServerSignature) -> Generator:
        """Start a previously-loaded client (the first LOAD SIGNAL)."""
        completion = yield from self.b_signal(load_sig)
        if completion.status is not RequestStatus.COMPLETED:
            raise SodaError(f"boot start failed: {completion.status.value}")

    # ------------------------------------------------------------------
    # queue helpers (charge the paper's queueing overhead, §5.5)
    # ------------------------------------------------------------------

    def enqueue(self, queue, item) -> Generator:
        yield self.tm.queue_op_us
        queue.enqueue(item)

    def dequeue(self, queue) -> Generator:
        yield self.tm.queue_op_us
        return queue.dequeue()
