"""Per-peer connection machinery (§5.2.2-§5.2.3).

Each kernel keeps one :class:`Connection` per remote machine it talks to.
A connection bundles:

* the **send direction**: an alternating-bit stop-and-wait channel — at
  most one outstanding sequenced message, a FIFO outbox behind it,
  bounded retransmission with random backoff, and the *slower* unbounded
  retry regime for REQUESTs rejected by a BUSY handler;
* the **receive direction**: a Delta-t record that decides whether an
  incoming sequence number is new or a duplicate;
* **acknowledgement deferral**: an ACK owed to the peer is briefly
  withheld so it can piggyback on the next outgoing sequenced message
  (typically the ACCEPT answering a REQUEST, or the next REQUEST
  answering an ACCEPT); a pure ACK goes out only if the deferral timer
  expires first.

The connection is transport policy only; what the messages *mean* is the
kernel's business, expressed through the callbacks on each
:class:`OutboundMessage`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Deque, Optional, Tuple

from repro.transport.deltat import DeltaTRecord
from repro.transport.packet import NackCode, Packet, PacketType

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.kernel import SodaKernel


@dataclass
class OutboundMessage:
    """A sequenced message queued for reliable delivery."""

    packet: Packet
    kind: str  # "request" | "accept" | "data" | "cancel"
    #: REQUEST data rides only on the first transmission (§5.2.3).
    data_once: bool = False
    #: BUSY NACKs trigger the unbounded slow-retry regime (requests only).
    busy_retryable: bool = False
    on_acked: Optional[Callable[[], None]] = None
    #: Called when the peer is declared dead (retransmissions exhausted).
    on_dead: Optional[Callable[[], None]] = None
    #: Called at the first transmission (kernel "noted" the command).
    on_transmit: Optional[Callable[[], None]] = None
    #: If provided and true at pump time, the message is silently dropped
    #: (a REQUEST cancelled before it was ever transmitted).
    void_check: Optional[Callable[[], bool]] = None
    attempts: int = 0
    busy_attempts: int = 0
    #: Simulated time of the most recent transmission (RTT accounting).
    last_tx_us: float = 0.0
    #: Set once the first transmission (with data, if any) happened.
    transmitted_with_data: bool = field(default=False)
    #: Head-of-line priority: may displace a busy-parked REQUEST (the
    #: DATA reply to an ACCEPT's pull must not deadlock behind new
    #: REQUESTs to the same, currently-blocked, server).
    priority: bool = False


class Connection:
    """State for one kernel's conversation with one peer."""

    def __init__(self, kernel: "SodaKernel", peer_mid: int) -> None:
        self.kernel = kernel
        self.sim = kernel.sim
        self.peer_mid = peer_mid
        self.send_seq = 0
        self.outstanding: Optional[OutboundMessage] = None
        self.outbox: Deque[OutboundMessage] = deque()
        self.recv_record = DeltaTRecord(kernel.config.deltat)
        #: Per-connection estimator state (None under the static policy).
        self.estimator = kernel.config.retransmit.make_estimator()
        self.owed_ack: Optional[int] = None
        #: Transmission timestamp of the message the owed ack answers,
        #: echoed back so the sender can spot spurious retransmissions.
        self.owed_ack_tx_us: Optional[float] = None
        self._ack_timer = None
        self._retransmit_timer = None
        self._busy_timer = None
        #: Have we ever heard anything from this peer?  Distinguishes
        #: "server crashed" from "no such machine" on retry exhaustion.
        self.heard_from_peer = False
        self.declared_dead = False
        #: After declaring the peer dead, the next sequenced message
        #: opens a *new* connection (Delta-t's connection_open header
        #: bit cleared): the receiver must not judge its alternating bit
        #: against the dead conversation's record.
        self.resync_next = False
        #: Receive side of the same mechanism: the packet identity whose
        #: cleared open-bit we already honored.  Retransmissions keep
        #: their packet_id, so a redelivered first-message copy cannot
        #: reset the record a second time (at-most-once).
        self._resync_pid: Optional[int] = None

    # ------------------------------------------------------------------
    # send direction
    # ------------------------------------------------------------------

    def enqueue(self, message: OutboundMessage) -> None:
        """Queue a sequenced message; transmits when the channel is free."""
        self.outbox.append(message)
        self._pump()

    def enqueue_priority(self, message: OutboundMessage) -> None:
        """Queue at the head of the line, displacing a busy-parked
        message if necessary (see OutboundMessage.priority)."""
        message.priority = True
        self.outbox.appendleft(message)
        if self.outstanding is None:
            self._pump()
        elif self._busy_timer is not None:
            # The outstanding message is parked awaiting a BUSY retry;
            # its sequence number was never consumed by the peer, so the
            # priority message may take over the channel.
            self._swap_in_priority()

    def _swap_in_priority(self) -> None:
        parked = self.outstanding
        assert parked is not None
        self._cancel_timer("_busy_timer")
        self._cancel_timer("_retransmit_timer")
        # The invariant checker must know the parked message gave its
        # sequence bit away: its next transmission is a fresh send, not
        # a retransmission, and the taker legitimately reuses the bit.
        self.sim.trace.record(
            self.sim.now,
            "conn.seq_swap",
            mid=self.kernel.mid,
            peer=self.peer_mid,
            parked_pid=parked.packet.packet_id,
            taker_pid=self.outbox[0].packet.packet_id,
            seq=self.send_seq,
        )
        parked.packet.seq = None
        parked.busy_attempts = 0
        message = self.outbox.popleft()
        self.outbox.appendleft(parked)
        self.outstanding = message
        message.packet.seq = self.send_seq
        self._mark_resync(message)
        if message.on_transmit is not None:
            message.on_transmit()
        self._transmit(message, first=True)

    def _pump(self) -> None:
        while self.outstanding is None and self.outbox:
            message = self.outbox.popleft()
            if message.void_check is not None and message.void_check():
                continue
            self.outstanding = message
            message.packet.seq = self.send_seq
            self._mark_resync(message)
            if message.on_transmit is not None:
                message.on_transmit()
            # Defer the actual transmission one event: when the pump runs
            # from within inbound-packet processing (a piggybacked ack
            # freed the channel), the rest of that packet — whose own
            # sequence number we will owe an ack for — must be processed
            # first so the ack can piggyback on this transmission.
            self.sim.schedule(0.0, self._transmit_fresh, message)

    def _mark_resync(self, message: OutboundMessage) -> None:
        """Clear the open bit on the first message after a peer death."""
        if self.resync_next:
            message.packet.connection_open = False
            self.resync_next = False

    def _transmit_fresh(self, message: OutboundMessage) -> None:
        if self.outstanding is not message:
            return
        self._transmit(message, first=True)

    def _transmit(self, message: OutboundMessage, first: bool) -> None:
        packet = message.packet
        include_data = packet.data is not None and (
            not message.data_once or not message.transmitted_with_data
        )
        # Retransmissions always go out as a fresh copy: an earlier copy
        # may still sit un-processed in the receiver's input queue, and
        # mutating a shared object would rewrite its tx_us/ack fields in
        # flight.  The first transmission has no earlier copy.
        if first and include_data:
            send_packet = packet
        else:
            send_packet = replace(
                packet,
                data=packet.data if include_data else None,
                packet_id=packet.packet_id,
            )
        if include_data and packet.data is not None:
            message.transmitted_with_data = True
        message.attempts += 1
        message.last_tx_us = self.sim.now
        send_packet.tx_us = self.sim.now
        # Piggyback any owed acknowledgement.
        self.attach_piggyback(send_packet)
        copy_bytes = send_packet.data_bytes if first and include_data else 0
        self.kernel.transmit_packet(
            self.peer_mid, send_packet, copy_bytes=copy_bytes, sequenced=True
        )
        self._arm_retransmit(message)

    def _arm_retransmit(self, message: OutboundMessage) -> None:
        self._cancel_timer("_retransmit_timer")
        policy = self.kernel.config.retransmit
        delay = policy.ack_retry_delay(
            message.attempts,
            self.sim.rng.stream(f"rexmit.{self.kernel.mid}"),
            data_bytes=message.packet.data_bytes,
            estimator=self.estimator,
        )
        self._retransmit_timer = self.sim.schedule(
            delay, self._retransmit_fire, message
        )

    def _retransmit_fire(self, message: OutboundMessage) -> None:
        self._retransmit_timer = None
        if self.outstanding is not message:
            return
        policy = self.kernel.config.retransmit
        if policy.exhausted(message.attempts):
            self._declare_dead(message)
            return
        self.sim.trace.record(
            self.sim.now,
            "conn.retransmit",
            mid=self.kernel.mid,
            peer=self.peer_mid,
            kind=message.kind,
            attempt=message.attempts,
            # Realized recovery wait: how long this copy went unacked
            # before the RTO fired.  The sim-vs-real bench compares the
            # mean across policies (static 60ms+backoff vs adaptive's
            # estimated RTO), which is the structural claim a wall
            # clock can't blur.
            waited_us=self.sim.now - message.last_tx_us,
        )
        if self.estimator is not None:
            self.estimator.back_off(
                getattr(policy, "backoff_growth", 2.0)
            )
        self._transmit(message, first=False)

    def _declare_dead(self, message: OutboundMessage) -> None:
        self.declared_dead = True
        # The conversation is over; whatever we send next must not be
        # judged against its alternating-bit state at the receiver
        # (which, under a long Delta-t R, can outlive the death).
        self.resync_next = True
        self.sim.trace.record(
            self.sim.now,
            "conn.peer_dead",
            mid=self.kernel.mid,
            peer=self.peer_mid,
            kind=message.kind,
        )
        self.outstanding = None
        self._cancel_timer("_retransmit_timer")
        self._cancel_timer("_busy_timer")
        if message.on_dead is not None:
            message.on_dead()
        # Everything queued behind the dead message dies with the peer.
        while self.outbox:
            queued = self.outbox.popleft()
            if queued.on_dead is not None:
                queued.on_dead()

    # -- acknowledgements -------------------------------------------------

    def handle_ack(
        self,
        ack_seq: int,
        echo_tx_us: Optional[float] = None,
        implicit: bool = False,
    ) -> None:
        """Process an acknowledgement (pure or piggybacked).

        ``echo_tx_us`` is the transmission timestamp the receiver echoed
        back (the copy this ack answers); ``implicit`` marks a
        synthesized ack (an ACCEPT proving delivery), whose timing says
        nothing about the wire and must not feed the estimator.
        """
        message = self.outstanding
        if message is None or message.packet.seq != ack_seq:
            return  # stale or duplicate ack
        self.outstanding = None
        self._cancel_timer("_retransmit_timer")
        self._cancel_timer("_busy_timer")
        self.send_seq = 1 - self.send_seq
        rtt_us = self.sim.now - message.last_tx_us
        # Eifel-style spurious-retransmit detection: the echoed
        # timestamp names the copy the receiver acknowledged; an echo
        # older than our last transmission means that retransmission
        # answered nothing — the original (or its ack) was merely slow.
        if (
            message.attempts > 1
            and echo_tx_us is not None
            and echo_tx_us < message.last_tx_us
        ):
            self.sim.trace.record(
                self.sim.now,
                "conn.spurious_retransmit",
                mid=self.kernel.mid,
                peer=self.peer_mid,
                kind=message.kind,
                attempts=message.attempts,
            )
        # Karn's rule: only a message that was never retransmitted
        # yields an unambiguous RTT sample.
        sampled = (
            not implicit and message.attempts == 1 and self.estimator is not None
        )
        if sampled:
            self.estimator.sample(rtt_us)
        # The obs layer's per-message RTT sample: time from the last
        # (re)transmission to the acknowledgement that released the
        # channel, including kernel-CPU queueing at both ends.
        self.sim.trace.record(
            self.sim.now,
            "conn.acked",
            mid=self.kernel.mid,
            peer=self.peer_mid,
            kind=message.kind,
            attempts=message.attempts,
            rtt_us=rtt_us,
            policy=self.kernel.config.retransmit.kind,
            sampled=sampled,
            srtt_us=(
                self.estimator.srtt_us if self.estimator is not None else None
            ),
            rttvar_us=(
                self.estimator.rttvar_us
                if self.estimator is not None
                else None
            ),
        )
        if message.on_acked is not None:
            message.on_acked()
        self._pump()

    def handle_busy_nack(
        self, nacked_seq: int, retry_hint_us: Optional[float] = None
    ) -> None:
        """The peer's handler was BUSY; retry at the decaying slow rate.

        ``retry_hint_us`` is the server's hint: never retry sooner than
        this (an overloaded kernel widens it to shed load).
        """
        message = self.outstanding
        if message is None or message.packet.seq != nacked_seq:
            return
        if not message.busy_retryable:
            # A non-request met BUSY -- should not happen; treat as a
            # normal retransmission trigger.
            return
        # The peer answered: it is alive.  BUSY retries are unbounded
        # (§5.2.2: a client looping in its handler is not crashed), so
        # they must not count toward the dead-peer exhaustion limit.
        message.attempts = 0
        message.busy_attempts += 1
        self._cancel_timer("_retransmit_timer")
        self._cancel_timer("_busy_timer")
        policy = self.kernel.config.retransmit
        delay = policy.busy_retry_delay(
            message.busy_attempts, self.sim.rng.stream(f"busy.{self.kernel.mid}")
        )
        if retry_hint_us is not None:
            delay = max(delay, retry_hint_us)
        self._busy_timer = self.sim.schedule(delay, self._busy_fire, message)
        if self.outbox and self.outbox[0].priority:
            # A priority message (ACCEPT data pull) is waiting behind this
            # parked REQUEST; let it take the channel now.
            self._swap_in_priority()

    def _busy_fire(self, message: OutboundMessage) -> None:
        self._busy_timer = None
        if self.outstanding is not message:
            return
        self.sim.trace.record(
            self.sim.now,
            "conn.busy_retry",
            mid=self.kernel.mid,
            peer=self.peer_mid,
            attempt=message.busy_attempts,
        )
        self._transmit(message, first=False)

    # ------------------------------------------------------------------
    # receive direction
    # ------------------------------------------------------------------

    def note_heard(self) -> None:
        self.heard_from_peer = True
        self.declared_dead = False
        self.recv_record.heard(self.sim.now)

    def _resync_applies(self, packet: Packet) -> bool:
        return (
            not packet.connection_open
            and packet.packet_id != self._resync_pid
        )

    def classify_sequenced(self, packet: Packet) -> str:
        """'new' or 'duplicate' under the Delta-t record."""
        assert packet.seq is not None
        if self._resync_applies(packet):
            # First message of a new connection (sender declared us, or
            # a conversation with us, dead and gave up on the old one):
            # the old record's alternating-bit state no longer applies.
            self._resync_pid = packet.packet_id
            self.recv_record.destroy()
            self.sim.trace.record(
                self.sim.now,
                "conn.resync",
                mid=self.kernel.mid,
                peer=self.peer_mid,
                pid=packet.packet_id,
                seq=packet.seq,
            )
        return self.recv_record.classify(packet.seq, self.sim.now)

    def peek_sequenced(self, packet: Packet) -> str:
        """Verdict without consuming the sequence number."""
        assert packet.seq is not None
        if self._resync_applies(packet):
            return "new"
        return self.recv_record.peek(packet.seq, self.sim.now)

    def rollback_sequenced(self, packet: Packet) -> None:
        """Un-consume a sequence number (pipelined hold that expired)."""
        assert packet.seq is not None
        self.recv_record.expected_seq = packet.seq

    def note_owed_ack(self, seq: int, tx_us: Optional[float] = None) -> None:
        """We owe the peer an ack for ``seq``; defer hoping to piggyback.

        ``tx_us`` is the transmission timestamp the acknowledged copy
        carried; it is echoed back on the ack (see ``Packet.echo_tx_us``).
        """
        self.owed_ack = seq
        self.owed_ack_tx_us = tx_us
        self._cancel_timer("_ack_timer")
        self._ack_timer = self.sim.schedule(
            self.kernel.config.timing.ack_defer_us, self._ack_timer_fire
        )

    def suspend_owed_ack(self) -> None:
        """Stop the pure-ack timer without forgetting the owed ack.

        Used by the pipelined kernel while a REQUEST is held in the input
        buffer: the ack must not go out until the held REQUEST is either
        delivered (ack piggybacks on the ACCEPT) or rolled back.
        """
        self._cancel_timer("_ack_timer")

    def take_piggyback_ack(self) -> Optional[Tuple[int, Optional[float]]]:
        """Claim the owed ack (and its echo timestamp), if any."""
        if self.owed_ack is None:
            return None
        ack, self.owed_ack = self.owed_ack, None
        tx_us, self.owed_ack_tx_us = self.owed_ack_tx_us, None
        self._cancel_timer("_ack_timer")
        return ack, tx_us

    def attach_piggyback(self, packet: Packet) -> None:
        """Attach the owed ack (if any) to an outgoing packet."""
        owed = self.take_piggyback_ack()
        if owed is not None:
            packet.ack, packet.echo_tx_us = owed

    def forget_owed_ack(self, seq: int) -> None:
        if self.owed_ack == seq:
            self.owed_ack = None
            self.owed_ack_tx_us = None
            self._cancel_timer("_ack_timer")

    def _ack_timer_fire(self) -> None:
        self._ack_timer = None
        if self.owed_ack is None:
            return
        ack, self.owed_ack = self.owed_ack, None
        tx_us, self.owed_ack_tx_us = self.owed_ack_tx_us, None
        self.kernel.transmit_packet(
            self.peer_mid,
            Packet(PacketType.ACK, ack=ack, echo_tx_us=tx_us),
            sequenced=False,
        )

    def send_immediate_ack(
        self, seq: int, echo_tx_us: Optional[float] = None
    ) -> None:
        """Re-acknowledge a duplicate right away (no deferral)."""
        self.kernel.transmit_packet(
            self.peer_mid,
            Packet(PacketType.ACK, ack=seq, echo_tx_us=echo_tx_us),
            sequenced=False,
        )

    def send_nack(
        self,
        code: NackCode,
        *,
        tid: Optional[int] = None,
        nacked_seq: Optional[int] = None,
        ack: Optional[int] = None,
        retry_hint_us: Optional[float] = None,
    ) -> None:
        packet = Packet(
            PacketType.NACK,
            nack_code=code,
            tid=tid,
            nacked_seq=nacked_seq,
            retry_hint_us=retry_hint_us,
        )
        if ack is not None:
            packet.ack = ack
        else:
            self.attach_piggyback(packet)
        self.kernel.transmit_packet(self.peer_mid, packet, sequenced=False)

    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Drop all connection state (node crash)."""
        for name in ("_ack_timer", "_retransmit_timer", "_busy_timer"):
            self._cancel_timer(name)
        self.outstanding = None
        self.outbox.clear()
        self.owed_ack = None
        self.owed_ack_tx_us = None
        self.estimator = self.kernel.config.retransmit.make_estimator()
        self.recv_record.destroy()
        self.send_seq = 0
        self.declared_dead = False
        self.heard_from_peer = False
        self.resync_next = False
        self._resync_pid = None

    def _cancel_timer(self, name: str) -> None:
        timer = getattr(self, name)
        if timer is not None:
            timer.cancel()
            setattr(self, name, None)
