"""Nodes and networks: wiring kernels, clients, and the bus together.

:class:`Network` is the top-level convenience for building a SODA network
(the "Typical SODA Network" of §1.3): it owns the simulator, the broadcast
bus, and a shared cost ledger; :meth:`Network.add_node` attaches a node
with an optional client program that boots at simulation start.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.core.boot import ProgramImage
from repro.core.client import ClientProcessor, ClientProgram
from repro.core.config import KernelConfig
from repro.core.errors import SodaError
from repro.core.kernel import SodaKernel
from repro.net.errors import FaultPlan
from repro.net.medium import BroadcastBus
from repro.net.nic import NetworkInterface
from repro.sim.engine import Simulator
from repro.sim.tracing import CostLedger


class SodaNode:
    """One network node: a SODA kernel plus (at most) one client."""

    def __init__(
        self,
        network: "Network",
        mid: int,
        machine_type: str = "generic",
        config: Optional[KernelConfig] = None,
        name: Optional[str] = None,
        nic: Optional[NetworkInterface] = None,
    ) -> None:
        self.network = network
        self.mid = mid
        self.name = name or f"node{mid}"
        # An injected interface lets alternative backends (the UDP NIC
        # of repro.netreal) host an unmodified kernel; the default wires
        # up the simulated bus as always.
        self.nic = nic or NetworkInterface(network.bus, mid)
        self.kernel = SodaKernel(
            network.sim,
            self.nic,
            config=config or network.config,
            machine_type=machine_type,
            ledger=network.ledger,
            node=self,
        )
        self.client: Optional[ClientProcessor] = None
        # Optional durable storage (repro.durability).  SODA machines
        # are diskless by default — §3.5.2 reboots are amnesiac — so
        # this stays None unless the workload attaches a Disk.
        self.disk = None

    def install_program(
        self,
        program: ClientProgram,
        name: Optional[str] = None,
        boot_at_us: float = 0.0,
        parent_mid: Optional[int] = None,
        api_factory: Optional[Callable] = None,
    ) -> ClientProcessor:
        """Pre-load a client program, booting at ``boot_at_us``.

        This stands in for a node whose client was already resident when
        the network came up (ROM bootstrap, §3.5.3); clients loaded over
        the network use the boot protocol instead.
        """
        processor = ClientProcessor(
            self.network.sim,
            self.kernel,
            program,
            name=name or f"{self.name}.client",
            api_factory=api_factory,
        )
        self.client = processor
        boot_at = max(boot_at_us, self.network.sim.now)
        self.network.sim.at(boot_at, processor.boot, parent_mid)
        return processor

    def start_booted_client(
        self, image: Optional[ProgramImage], parent_mid: int
    ) -> ClientProcessor:
        """Start a client from a network-loaded core image (§3.5.2)."""
        if image is None:
            raise SodaError(f"{self.name}: boot SIGNAL without a loaded image")
        program = image.program_factory()
        processor = ClientProcessor(
            self.network.sim,
            self.kernel,
            program,
            name=f"{self.name}.{image.name}",
        )
        self.client = processor
        processor.boot(parent_mid)
        return processor

    def crash(self) -> None:
        """Power-fail the whole node (client and kernel state lost).

        A power failure hits the disk too: buffered-but-unsynced writes
        vanish (possibly mid-write — a torn tail) before RAM does.
        """
        if self.disk is not None:
            power_loss = getattr(self.disk, "power_loss", None)
            if power_loss is not None:
                power_loss()
        self.kernel.crash_node()

    def crash_client(self) -> None:
        """Crash just the client processor (kernel detects it; §3.6.1)."""
        self.kernel.client_die()

    def __repr__(self) -> str:
        return f"<SodaNode {self.name} mid={self.mid}>"


class Network:
    """A complete simulated SODA network."""

    def __init__(
        self,
        seed: int = 0,
        config: Optional[KernelConfig] = None,
        bandwidth_bps: int = 1_000_000,
        propagation_us: float = 5.0,
        faults: Optional[FaultPlan] = None,
        keep_trace: bool = True,
        max_trace_records: Optional[int] = None,
    ) -> None:
        self.sim = Simulator(
            seed=seed,
            keep_trace=keep_trace,
            max_trace_records=max_trace_records,
        )
        self.config = config or KernelConfig()
        self.faults = faults or FaultPlan()
        self.bus = BroadcastBus(
            self.sim,
            bandwidth_bps=bandwidth_bps,
            propagation_us=propagation_us,
            faults=self.faults,
        )
        self.ledger = CostLedger()
        self.nodes: Dict[int, SodaNode] = {}
        self._next_mid = 0

    def add_node(
        self,
        mid: Optional[int] = None,
        program: Optional[ClientProgram] = None,
        machine_type: str = "generic",
        config: Optional[KernelConfig] = None,
        name: Optional[str] = None,
        boot_at_us: float = 0.0,
    ) -> SodaNode:
        """Create a node; if ``program`` is given it boots at start."""
        if mid is None:
            mid = self._next_mid
        if mid in self.nodes:
            raise ValueError(f"MID {mid} already in use")
        self._next_mid = max(self._next_mid, mid + 1)
        node = SodaNode(self, mid, machine_type=machine_type, config=config, name=name)
        self.nodes[mid] = node
        if program is not None:
            node.install_program(program, boot_at_us=boot_at_us)
        return node

    def node(self, mid: int) -> SodaNode:
        return self.nodes[mid]

    # -- convenience passthroughs -------------------------------------------

    @property
    def now(self) -> float:
        return self.sim.now

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> int:
        return self.sim.run(until=until, max_events=max_events)

    def run_until(self, predicate, timeout: float) -> bool:
        return self.sim.run_until(predicate, timeout)
