"""Buffers and kernel input-side occupancy (§3.1, §5.2.3).

A SODA BUFFER is "a descriptor that indicates the size and location of a
contiguous region of shared memory".  In the simulation a buffer owns its
bytes; the kernel writes into GET buffers on completion and reads PUT
bytes at REQUEST/ACCEPT time.  A zero-capacity buffer (``Buffer.nil()``)
inhibits transfer in that direction, turning a REQUEST into a PUT, GET,
EXCHANGE, or SIGNAL (§3.3.2).

This module also hosts the kernel's **overload controller**: the paper's
only admission mechanism is the single-message BUSY NACK, which protects
the *handler* but not the *kernel* — a machine whose input side is
saturated (deep CPU backlog, a full completion queue, a held REQUEST)
keeps paying full protocol cost per arrival.  :class:`OverloadController`
watches that occupancy and, above a watermark, (a) widens the BUSY
retry hint so clients decay their retry rate faster, and (b) directs the
kernel to reject *new* REQUESTs outright with an ``OVERLOAD`` NACK — a
proof of non-execution the requester may retry safely (docs/TRANSPORT.md,
docs/RECOVERY.md).  Hysteresis (distinct shed/resume watermarks) keeps
the controller from oscillating at the boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class OverloadConfig:
    """Knobs for the kernel-side overload controller, in microseconds."""

    #: Master switch; disabled keeps the paper-faithful behavior where
    #: admission control is the BUSY NACK alone.
    enabled: bool = True
    #: Shed when CPU backlog (work already accepted but not yet run)
    #: exceeds this...
    shed_backlog_us: float = 12_000.0
    #: ...and resume admitting only once it has drained below this
    #: (hysteresis: resume < shed).
    resume_backlog_us: float = 4_000.0
    #: Queue contribution: each queued completion interrupt / held
    #: REQUEST counts as this much equivalent backlog.
    queue_item_cost_us: float = 3_000.0
    #: Start widening BUSY retry hints once occupancy exceeds this —
    #: well below the shed point, so hint-based load spreading engages
    #: before admission control has to.
    hint_backlog_us: float = 2_000.0
    #: BUSY retry-hint widening under load: hint = busy_retry_base *
    #: hint_widen * (1 + backlog/shed_backlog), capped at max_hint_us.
    hint_widen_factor: float = 4.0
    max_hint_us: float = 50_000.0


class OverloadController:
    """Tracks input-side occupancy and decides shed/admit per arrival."""

    __slots__ = ("config", "shedding", "sheds", "last_occupancy_us")

    def __init__(self, config: OverloadConfig) -> None:
        self.config = config
        self.shedding = False
        self.sheds = 0
        self.last_occupancy_us = 0.0

    def observe(self, occupancy_us: float) -> bool:
        """Feed the current occupancy; returns True while shedding."""
        self.last_occupancy_us = occupancy_us
        if not self.config.enabled:
            self.shedding = False
        elif self.shedding:
            self.shedding = occupancy_us > self.config.resume_backlog_us
        else:
            self.shedding = occupancy_us > self.config.shed_backlog_us
        return self.shedding

    def retry_hint_us(self, busy_retry_base_us: float) -> Optional[float]:
        """Widened BUSY retry hint, or None when the kernel is calm."""
        if not self.config.enabled or self.last_occupancy_us <= 0.0:
            return None
        if (
            not self.shedding
            and self.last_occupancy_us <= self.config.hint_backlog_us
        ):
            # Calm enough: let the client's own decaying rate govern.
            return None
        widen = 1.0 + self.last_occupancy_us / self.config.shed_backlog_us
        hint = busy_retry_base_us * self.config.hint_widen_factor * widen
        return min(hint, self.config.max_hint_us)


class Buffer:
    """A bounded byte region shared between client and kernel."""

    __slots__ = ("capacity", "data")

    def __init__(self, capacity: int, data: bytes = b"") -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        if len(data) > capacity:
            raise ValueError("initial data exceeds capacity")
        self.capacity = capacity
        self.data = data

    @classmethod
    def nil(cls) -> "Buffer":
        """The zero-length buffer that inhibits transfer."""
        return cls(0)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Buffer":
        """A full buffer sized exactly to its contents."""
        return cls(len(data), data)

    @classmethod
    def for_words(cls, words: int, word_bytes: int = 2) -> "Buffer":
        """An empty buffer sized in PDP-11 words."""
        return cls(words * word_bytes)

    def write(self, data: bytes) -> int:
        """Store up to capacity bytes; returns the number stored.

        The kernel truncates rather than overruns: a server may ACCEPT
        with a smaller buffer than REQUESTed (§4.1.2), in which case the
        requester learns the transferred size from its handler arguments.
        """
        stored = data[: self.capacity]
        self.data = stored
        return len(stored)

    def clear(self) -> None:
        self.data = b""

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        return f"<Buffer {len(self.data)}/{self.capacity}B>"


def buffer_or_nil(buffer: Optional[Buffer]) -> Buffer:
    return buffer if buffer is not None else Buffer.nil()
