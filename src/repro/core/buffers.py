"""Buffers: descriptors for regions of client memory (§3.1).

A SODA BUFFER is "a descriptor that indicates the size and location of a
contiguous region of shared memory".  In the simulation a buffer owns its
bytes; the kernel writes into GET buffers on completion and reads PUT
bytes at REQUEST/ACCEPT time.  A zero-capacity buffer (``Buffer.nil()``)
inhibits transfer in that direction, turning a REQUEST into a PUT, GET,
EXCHANGE, or SIGNAL (§3.3.2).
"""

from __future__ import annotations

from typing import Optional


class Buffer:
    """A bounded byte region shared between client and kernel."""

    __slots__ = ("capacity", "data")

    def __init__(self, capacity: int, data: bytes = b"") -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        if len(data) > capacity:
            raise ValueError("initial data exceeds capacity")
        self.capacity = capacity
        self.data = data

    @classmethod
    def nil(cls) -> "Buffer":
        """The zero-length buffer that inhibits transfer."""
        return cls(0)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Buffer":
        """A full buffer sized exactly to its contents."""
        return cls(len(data), data)

    @classmethod
    def for_words(cls, words: int, word_bytes: int = 2) -> "Buffer":
        """An empty buffer sized in PDP-11 words."""
        return cls(words * word_bytes)

    def write(self, data: bytes) -> int:
        """Store up to capacity bytes; returns the number stored.

        The kernel truncates rather than overruns: a server may ACCEPT
        with a smaller buffer than REQUESTed (§4.1.2), in which case the
        requester learns the transferred size from its handler arguments.
        """
        stored = data[: self.capacity]
        self.data = stored
        return len(stored)

    def clear(self) -> None:
        self.data = b""

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        return f"<Buffer {len(self.data)}/{self.capacity}B>"


def buffer_or_nil(buffer: Optional[Buffer]) -> Buffer:
    return buffer if buffer is not None else Buffer.nil()
