"""The uniprogrammed client processor (§3.1-§3.2, §6.2).

Each node runs exactly one client: a **task** (the main locus of control)
and a **handler** (client code invoked by kernel interrupt, which never
nests).  Both are Python generators driven as simulator processes; while
the handler runs, the task is paused — the paper's "temporary suspension
of the task activity".

Client programs subclass :class:`ClientProgram` and receive an *api*
object (:class:`repro.sodal.api.SodalApi` by default) exposing the kernel
primitives plus the SODAL conveniences.  Generator yields model client
CPU time: ``yield api.compute(us)`` burns time, ``yield from
api.accept_put(...)`` blocks in a kernel primitive.

**Blocking requests inside the handler.**  SODAL implements B_PUT et al.
from handler context by ending the handler invocation early and splicing
the remainder of the handler code into the task's place (the saved-PC
trick of §4.1.1).  We reproduce this with a *context stack*: the
suspended generator is detached from the handler role and pushed as the
active task-level context; the real task resumes only when the
continuation finishes.  Handler invocations always pause whatever context
is active.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, Generator, List, Optional

from repro.core.errors import HandlerReason, RequestStatus
from repro.core.signatures import RequesterSignature

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.kernel import SodaKernel
    from repro.sim.engine import Simulator
    from repro.sim.process import Process, SimFuture


@dataclass
class HandlerEvent:
    """Arguments supplied to a handler invocation (§3.7.6)."""

    reason: HandlerReason
    #: REQUESTER SIGNATURE: the asker on arrivals, the completed request
    #: on completions.
    asker: Optional[RequesterSignature] = None
    #: Pattern part of the SERVER SIGNATURE the REQUEST used (arrivals).
    pattern: Optional[int] = None
    #: REQUEST argument on arrivals; ACCEPT argument on completions.
    arg: int = 0
    #: Completion status (completions only).
    status: Optional[RequestStatus] = None
    #: Buffer sizes offered by the REQUEST (arrivals).
    put_size: int = 0
    get_size: int = 0
    #: Data actually transferred each way (completions).
    taken_put: int = 0
    taken_get: int = 0
    #: MID of the booting parent (BOOTING only).
    parent_mid: Optional[int] = None
    #: On failed completions: True when the failure *proves* the server
    #: handler never executed (safe to retry), None when ambiguous
    #: (docs/RECOVERY.md).  Always None on successful completions.
    not_executed: Optional[bool] = None

    @property
    def is_arrival(self) -> bool:
        return self.reason is HandlerReason.REQUEST_ARRIVAL

    @property
    def is_completion(self) -> bool:
        return self.reason is HandlerReason.REQUEST_COMPLETE


class ClientProgram:
    """Base class for SODAL-style client programs (§4.1).

    Override any of the three sections; each is a generator.  The
    Initialization section is the handler invocation with BOOTING status;
    EndHandler is implicit at the end of Initialization and Handler, and
    Die is implicit at the end of Task.
    """

    def initialization(self, api, parent_mid: Optional[int]) -> Generator:
        """Booting handler; runs before the task starts."""
        return
        yield  # pragma: no cover

    def handler(self, api, event: HandlerEvent) -> Generator:
        """Client interrupt handler."""
        return
        yield  # pragma: no cover

    def task(self, api) -> Generator:
        """The main program.

        The default is a pure server: the task idles forever and all work
        happens in the handler.  A program that overrides ``task`` and
        returns from it dies (Die is implicit at the end of Task, §4.1).
        """
        yield from api.serve_forever()


class ClientProcessor:
    """Executes one client program against a kernel."""

    def __init__(
        self,
        sim: "Simulator",
        kernel: "SodaKernel",
        program: ClientProgram,
        name: str = "client",
        api_factory: Optional[Callable[["ClientProcessor"], Any]] = None,
    ) -> None:
        self.sim = sim
        self.kernel = kernel
        self.program = program
        self.name = name
        if api_factory is None:
            from repro.sodal.api import SodalApi

            api_factory = SodalApi
        self.api = api_factory(self)
        self.task_process: Optional["Process"] = None
        #: Task-level contexts: [task, detached handler continuations...].
        self._contexts: List["Process"] = []
        self.handler_process: Optional["Process"] = None
        self.in_blocking_primitive = False
        self.dead = False
        self.booted = False
        self._booting = False
        #: The event of the currently-executing handler invocation
        #: (ACCEPT_CURRENT needs the arrival's requester signature).
        self.current_event: Optional[HandlerEvent] = None
        #: Completions awaited by SODAL blocking requests, intercepted
        #: before the user handler sees them: tid -> future.
        self.awaited_completions: Dict[int, "SimFuture"] = {}
        #: Bumped after every handler invocation; polling loops use it to
        #: stay responsive right after interrupts while backing off
        #: during true idleness (the WAIT-instruction behaviour, §5.2.1).
        self.activity_counter = 0
        self._activity_waiters: List["SimFuture"] = []
        kernel.attach_client(self)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def boot(self, parent_mid: Optional[int] = None) -> None:
        """Start the client: Initialization (as a BOOTING handler), then Task."""
        if self.booted:
            raise RuntimeError(f"{self.name} already booted")
        self.booted = True
        self._booting = True
        event = HandlerEvent(reason=HandlerReason.BOOTING, parent_mid=parent_mid)
        self.kernel.note_boot_started()
        body = _as_generator(self.program.initialization(self.api, parent_mid))
        self._run_invocation(body, event)

    def _start_task(self) -> None:
        if self.dead:
            return

        def body() -> Generator:
            yield from _as_generator(self.program.task(self.api))
            # Implicit Die at the end of the Task procedure (§4.1).
            yield from self.api.die()

        self.task_process = self.sim.spawn(body(), name=f"{self.name}.task")
        self._contexts.append(self.task_process)

    # ------------------------------------------------------------------
    # handler execution (called by the kernel)
    # ------------------------------------------------------------------

    def run_handler(self, event: HandlerEvent) -> None:
        """Execute one handler invocation; kernel guarantees eligibility."""
        if self.dead:
            return
        interceptor = None
        if event.is_completion and event.asker is not None:
            interceptor = self.awaited_completions.pop(event.asker.tid, None)
        if interceptor is not None:
            body = self._interception_body(event, interceptor)
        else:
            body = _as_generator(self.program.handler(self.api, event))
        self._run_invocation(body, event)

    def _interception_body(self, event: HandlerEvent, future) -> Generator:
        # The hidden SODAL handler code that completes a blocking request
        # (§4.1.1): note the completion and return to the waiting context.
        yield self.kernel.config.timing.queue_op_us / 2
        future.resolve(event)

    def _run_invocation(self, body: Generator, event: HandlerEvent) -> None:
        context = self._current_context()
        if context is not None and context.alive:
            context.pause()
        self.current_event = event

        def wrapper() -> Generator:
            yield self.kernel.config.timing.context_switch_us
            yield from body

        process = self.sim.spawn(wrapper(), name=f"{self.name}.handler")
        self.handler_process = process
        process.done_future.add_callback(
            lambda _future: self._invocation_done(process)
        )

    def _invocation_done(self, process: "Process") -> None:
        self.activity_counter += 1
        waiters, self._activity_waiters = self._activity_waiters, []
        for waiter in waiters:
            if not waiter.resolved:
                waiter.resolve(None)
        if self.dead:
            return
        if process is not self.handler_process:
            # A detached continuation (blocking request in handler) ended:
            # it was living as a task-level context.
            if process in self._contexts:
                self._contexts.remove(process)
                self._resume_context()
            return
        self.handler_process = None
        self.current_event = None
        next_event = self.kernel.client_endhandler()
        if next_event is not None:
            self._run_invocation_for(next_event)
        elif self._booting:
            self._booting = False
            self._start_task()
        else:
            self._resume_context()

    def _run_invocation_for(self, event: HandlerEvent) -> None:
        """Immediate re-invocation out of the kernel's completion queue."""
        self.run_handler(event)

    def detach_handler_for_blocking(self) -> None:
        """SODAL's saved-PC trick: the current handler invocation ends
        now; the caller's generator continues as a task-level context."""
        process = self.handler_process
        if process is None:
            raise RuntimeError("not in a handler invocation")
        self.handler_process = None
        self.current_event = None
        self._contexts.append(process)
        if self._booting:
            # The continuation of Initialization still runs before the
            # task starts; the task will start when it finishes.
            self._booting = False
            self._start_task_paused()
        next_event = self.kernel.client_endhandler()
        if next_event is not None:
            self._run_invocation_for(next_event)

    def _start_task_paused(self) -> None:
        self._start_task()
        if self.task_process is not None:
            self.task_process.pause()
            # Keep the continuation on top of the stack.
            self._contexts.remove(self.task_process)
            self._contexts.insert(0, self.task_process)

    def _current_context(self) -> Optional["Process"]:
        return self._contexts[-1] if self._contexts else None

    def _resume_context(self) -> None:
        context = self._current_context()
        if context is not None and context.alive:
            context.resume()

    def wait_activity(self, max_us: float):
        """Suspend until the next handler invocation finishes, or for
        ``max_us`` at most (the WAIT instruction: wake on interrupt).

        A generator for client code: ``yield from processor.wait_activity(t)``.
        """
        future = self.sim.new_future()
        self._activity_waiters.append(future)
        timer = self.sim.schedule(
            max_us,
            lambda: None if future.resolved else future.resolve(None),
        )
        yield future
        timer.cancel()

    # ------------------------------------------------------------------
    # state queries used by the kernel
    # ------------------------------------------------------------------

    @property
    def executing_handler(self) -> bool:
        return self.handler_process is not None

    @property
    def can_take_interrupt(self) -> bool:
        """Is the client CPU able to enter the handler right now?

        While the client is suspended inside a blocking kernel primitive
        no client code can run, so interrupts pend (§5.2.1).
        """
        return (
            not self.dead
            and self.booted
            and not self.executing_handler
            and not self.in_blocking_primitive
        )

    # ------------------------------------------------------------------
    # death
    # ------------------------------------------------------------------

    def kill(self) -> None:
        """Terminate the client (DIE, KILL pattern, or crash)."""
        if self.dead:
            return
        self.dead = True
        self.current_event = None
        for future in self.awaited_completions.values():
            if not future.resolved:
                future.fail(_client_died_error())
        self.awaited_completions.clear()
        processes = list(self._contexts)
        if self.handler_process is not None:
            processes.append(self.handler_process)
        self._contexts.clear()
        self.handler_process = None
        self.task_process = None
        for process in processes:
            if process.alive:
                process.kill()

    def __repr__(self) -> str:
        state = (
            "dead"
            if self.dead
            else ("handler" if self.executing_handler else "task")
        )
        return f"<ClientProcessor {self.name} ({state})>"


def _client_died_error() -> BaseException:
    from repro.sim.process import ProcessKilled

    return ProcessKilled()


def _as_generator(value) -> Generator:
    """Allow program sections to be plain functions returning None."""
    if value is None:

        def empty() -> Generator:
            return
            yield  # pragma: no cover

        return empty()
    return value
