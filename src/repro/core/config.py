"""Timing model and kernel configuration.

The :class:`TimingModel` is the bridge between the paper's PDP-11/23 +
Megalink testbed and our simulator.  Defaults are calibrated from the
"Breakdown of Communications Overhead" table (§5.5): a 2-packet SIGNAL
costs 7.1 ms, split as 2.0 protocol + 1.0 connection timers + 0.7
retransmit timers + 0.8 context switch + 0.4 wire + 2.2 client overhead.
Per-word data cost is ~40 µs: 16 µs of wire (2 bytes at 1 Mbit/s) plus
two 12 µs memory copies (client↔kernel buffer at each end).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.buffers import OverloadConfig
from repro.transport.deltat import DeltaTConfig
from repro.transport.retransmit import RetransmitPolicy


@dataclass(frozen=True)
class TimingModel:
    """Cost constants in microseconds; see module docstring for origin."""

    #: Message payloads are measured in PDP-11 words.
    word_bytes: int = 2

    # -- client-side costs (the table's "client overhead") ---------------
    #: TRAP entry/exit for one kernel-primitive invocation.
    trap_us: float = 550.0
    #: Descriptor-pool management (lock with CLOSE/OPEN, alloc, fill).
    descriptor_us: float = 550.0
    #: One polling pass of an idle() loop in the task.
    idle_poll_us: float = 100.0
    #: SODAL queueing constructs: one EnQueue or DeQueue (§5.5 measured
    #: 0.7 ms of queueing overhead per queued transaction, i.e. two ops).
    queue_op_us: float = 350.0
    #: SODAL blocking-request machinery (§4.1.1): saving the return PC,
    #: cleaning the stack, and restoring on completion.  Charged half at
    #: call entry and half at resumption; explains why a B_SIGNAL costs
    #: more than a SIGNAL's completion plus client overhead.
    blocking_wrapper_us: float = 1_200.0

    # -- kernel-side per-packet costs ------------------------------------
    #: Protocol processing to send one packet (compose, checksum, start).
    protocol_send_us: float = 500.0
    #: Protocol processing to receive one packet (screen, parse, dispatch).
    protocol_recv_us: float = 500.0
    #: Delta-t connection record bookkeeping, charged per packet handled.
    connection_timer_us: float = 250.0
    #: Retransmission timer arm/disarm, charged per sequenced packet sent.
    retransmit_timer_us: float = 350.0

    # -- interrupt costs ---------------------------------------------------
    #: Software interrupt into the client handler (entry or queued-entry).
    context_switch_us: float = 400.0
    #: ENDHANDLER processing.
    endhandler_us: float = 50.0

    # -- data movement ------------------------------------------------------
    #: One memory copy between client memory and a kernel buffer, per byte
    #: (12 us/word / 2 bytes).
    copy_byte_us: float = 6.0

    # -- protocol pacing ------------------------------------------------------
    #: How long a receiving kernel delays an ACK hoping to piggyback it on
    #: an imminent ACCEPT (§5.2.3 "the acknowledgement is delayed
    #: momentarily").  Must cover a handler entry plus one primitive
    #: invocation (~2 ms); this is the protocol's "A" bound in practice.
    ack_defer_us: float = 2_600.0
    #: How long the pipelined kernel holds a REQUEST that met a BUSY
    #: handler in the input buffer before giving up and BUSY-NACKing.
    #: Must cover an in-progress ACCEPT's data exchange at the maximum
    #: message size, or pipelining degrades for large transfers.
    input_buffer_hold_us: float = 40_000.0

    def __post_init__(self) -> None:
        # Derived costs are precomputed once per (frozen) model instance:
        # these sit on the kernel's per-packet and per-primitive hot
        # paths, where re-deriving them per event is measurable at
        # sim-bench scale (docs/SIM.md).
        object.__setattr__(
            self, "_client_overhead_us", self.trap_us + self.descriptor_us
        )
        object.__setattr__(
            self,
            "blocking_wrapper_half_us",
            self.blocking_wrapper_us / 2.0,
        )

    def copy_cost_us(self, nbytes: int) -> float:
        return self.copy_byte_us * nbytes

    def client_overhead_us(self) -> float:
        """Client-side cost of one primitive invocation (precomputed)."""
        return self._client_overhead_us  # type: ignore[attr-defined]

    def scaled(self, cpu_factor: float) -> "TimingModel":
        """A model whose CPU-bound costs run ``cpu_factor`` times faster.

        §5.5.1 projects a real (non-simulated) SODA processor: all
        software costs shrink; wire time does not (it scales with the
        bus, configured separately on the Network).
        """
        if cpu_factor <= 0:
            raise ValueError("cpu_factor must be positive")
        import dataclasses

        cpu_fields = (
            "trap_us",
            "descriptor_us",
            "idle_poll_us",
            "queue_op_us",
            "blocking_wrapper_us",
            "protocol_send_us",
            "protocol_recv_us",
            "connection_timer_us",
            "retransmit_timer_us",
            "context_switch_us",
            "endhandler_us",
            "copy_byte_us",
        )
        changes = {
            name: getattr(self, name) / cpu_factor for name in cpu_fields
        }
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class KernelConfig:
    """Everything configurable about a SODA kernel."""

    #: Pipelined kernels hold a REQUEST arriving at a BUSY handler in the
    #: input buffer instead of BUSY-NACKing it (§5.2.3).
    pipelined: bool = False
    #: Maximum uncompleted REQUESTs per requester (§3.3.2 rule 5).
    max_requests: int = 3
    #: Fixed maximum message size (§3.3: "zero bytes up to a fixed max").
    max_message_bytes: int = 4096
    #: True reproduces §5.4's 256-slot direct-index pattern table (second
    #: advertise with the same low byte overwrites the first); False gives
    #: the ideal exact-match semantics of §3.4.
    direct_index_patterns: bool = False
    #: Ablation knob: False stops REQUESTs from carrying put data on
    #: their first transmission (§5.2.3's optimization), forcing every
    #: PUT/EXCHANGE through the ACCEPT-time data pull.
    data_with_request: bool = True
    #: §6.17.2 extension: the kernel itself services PEEK/POKE REQUESTs
    #: on the reserved RMR pattern against client-registered memory,
    #: skipping handler invocation entirely.  CLOSE gates it (the
    #: paper's suggested synchronization), unlike other reserved
    #: patterns.
    kernel_rmr: bool = False
    #: How long a DISCOVER collects staggered replies before completing.
    discover_window_us: float = 8_000.0
    #: Stagger unit: reply delay is ``mid * discover_stagger_us`` (§5.3).
    discover_stagger_us: float = 200.0
    #: Probing of delivered-but-unaccepted REQUESTs (§3.6.2).  "If
    #: several successive probes fail, a crash is reported" — the
    #: threshold must make false positives negligible at realistic
    #: transient-loss rates (at 10% frame loss, five successive lost
    #: probe exchanges are a ~0.02% event per round).
    probe_interval_us: float = 250_000.0
    probe_failures_to_crash: int = 5

    timing: TimingModel = field(default_factory=TimingModel)
    deltat: DeltaTConfig = field(default_factory=DeltaTConfig)
    retransmit: RetransmitPolicy = field(default_factory=RetransmitPolicy)
    overload: OverloadConfig = field(default_factory=OverloadConfig)

    def __post_init__(self) -> None:
        if self.max_requests < 1:
            raise ValueError("max_requests must be >= 1")
        if self.max_message_bytes < 0:
            raise ValueError("max_message_bytes must be >= 0")
