"""Status codes and exceptions of the SODA kernel interface (§3.7)."""

from __future__ import annotations

import enum


class RequestStatus(enum.Enum):
    """Completion status delivered to the requester's handler."""

    COMPLETED = "completed"        # the server ACCEPTed
    CRASHED = "crashed"            # server crashed / died before ACCEPT
    UNADVERTISED = "unadvertised"  # pattern not advertised (or no such node)
    OVERLOADED = "overloaded"      # server kernel shed the REQUEST before
                                   # delivery (proof of non-execution)
    REJECTED = "rejected"          # SODAL-level: ACCEPT with arg = -1, no data


class AcceptStatus(enum.Enum):
    """Return value of ACCEPT (§3.7.4)."""

    SUCCESS = "success"
    CANCELLED = "cancelled"   # request cancelled, already completed, or forged
    CRASHED = "crashed"       # requester crashed (stale TID) before ACCEPT


class CancelStatus(enum.Enum):
    """Return value of CANCEL."""

    SUCCESS = "success"
    FAIL = "fail"             # the request had already completed (any way)


class HandlerReason(enum.Enum):
    """Why the client handler was invoked (§3.7.6)."""

    REQUEST_ARRIVAL = "request_arrival"
    REQUEST_COMPLETE = "request_complete"
    BOOTING = "booting"


class SodaError(Exception):
    """Base class for kernel-interface misuse."""


class TooManyRequestsError(SodaError):
    """More than MAXREQUESTS uncompleted REQUESTs (§3.3.2 rule 5).

    The paper's kernel silently ignores the excess REQUEST and makes
    counting the client's responsibility; our kernel surfaces the
    condition as an exception so buggy clients fail loudly.  The SODAL
    layer offers a paper-faithful ``ignore`` mode as well.
    """


class NotInHandlerError(SodaError):
    """ACCEPT_CURRENT used outside the handler (§4.1.2)."""


class ClientDeadError(SodaError):
    """A primitive was invoked by a dead client."""
