"""Patterns and the pattern table (§3.4, §5.4).

A pattern is a PATTERNSIZE-bit string.  Two class bits partition the
space:

* bit 47 — RESERVED: bound to kernel routines (BOOT/LOAD/KILL/SYSTEM);
  clients can neither ADVERTISE nor UNADVERTISE these.
* bit 46 — WELL-KNOWN: preassigned names with defined fields.

GETUNIQUEID returns 40-bit values (``serial(8) ‖ counter(32)``), so bits
40-47 are zero and unique ids can never collide with either class above —
this is the paper's "reserving a bit in the pattern" protocol.

The experimental kernel (§5.4) lacked associative hardware and used the
pattern's low byte as a direct index into a 256-slot table, with the
documented quirk that advertising two patterns sharing that byte makes the
second overwrite the first.  (The paper says "first eight bits"; we index
by the *low* byte because GETUNIQUEID values vary there — indexing by the
high byte would put every unique id in one slot, which cannot have been
the intent.)  :class:`PatternTable` implements both the ideal exact-match
semantics and the direct-index variant.
"""

from __future__ import annotations

from typing import List, Optional

#: Number of bits in a pattern.
PATTERNSIZE = 48

#: Bits returned by GETUNIQUEID ("less than PATTERNSIZE", §3.4.2).
UNIQUEID_BITS = 40

#: Address wildcard for DISCOVER (mirrors repro.net.BROADCAST_MID).
BROADCAST = -1

_RESERVED_BIT = 1 << 47
_WELL_KNOWN_BIT = 1 << 46
_PATTERN_MASK = (1 << PATTERNSIZE) - 1

#: A pattern is represented as a plain int in [0, 2**48).
Pattern = int


def make_well_known_pattern(value: int) -> Pattern:
    """A preassigned, publishable client pattern (bit 46 set)."""
    if not 0 <= value < _WELL_KNOWN_BIT:
        raise ValueError(f"well-known value out of range: {value}")
    return _WELL_KNOWN_BIT | value


def make_reserved_pattern(value: int) -> Pattern:
    """A kernel-interpreted pattern (bit 47 set)."""
    if not 0 <= value < _RESERVED_BIT:
        raise ValueError(f"reserved value out of range: {value}")
    return (_RESERVED_BIT | value) & _PATTERN_MASK


def is_reserved(pattern: Pattern) -> bool:
    return bool(pattern & _RESERVED_BIT)


def is_well_known(pattern: Pattern) -> bool:
    return bool(pattern & _WELL_KNOWN_BIT) and not is_reserved(pattern)


def is_unique_id(pattern: Pattern) -> bool:
    return 0 <= pattern < (1 << UNIQUEID_BITS)


class UniqueIdGenerator:
    """Network-wide unique 40-bit patterns (§5.4).

    Concatenates an 8-bit machine serial number with a 32-bit counter.
    The counter's initial value is set at each kernel boot from a
    monotonic clock so that ids never repeat across reboots; the boot
    marker doubles as the stale-TID watermark used to detect ACCEPTs of
    requests issued before a crash.
    """

    COUNTER_BITS = 32

    def __init__(self, serial: int, boot_counter: int = 0) -> None:
        if not 0 <= serial < 256:
            raise ValueError("serial must fit in 8 bits")
        if not 0 <= boot_counter < (1 << self.COUNTER_BITS):
            raise ValueError("boot_counter must fit in 32 bits")
        self.serial = serial
        self._counter = boot_counter
        self.boot_counter = boot_counter

    def reboot(self, boot_counter: int) -> None:
        """Restart the counter at a fresh monotonic value."""
        if boot_counter < self._counter:
            raise ValueError("boot counter must be monotonic")
        self._counter = boot_counter
        self.boot_counter = boot_counter

    def next_pattern(self) -> Pattern:
        if self._counter >= (1 << self.COUNTER_BITS):
            raise OverflowError("unique-id counter exhausted")
        pattern = (self.serial << self.COUNTER_BITS) | self._counter
        self._counter += 1
        return pattern

    def next_tid(self) -> int:
        """TIDs come from the same counter as patterns (§5.4)."""
        if self._counter >= (1 << self.COUNTER_BITS):
            raise OverflowError("tid counter exhausted")
        tid = self._counter
        self._counter += 1
        return tid

    @property
    def counter(self) -> int:
        return self._counter


class PatternTable:
    """Advertised client patterns for one kernel."""

    SLOTS = 256

    def __init__(self, direct_index: bool = False) -> None:
        self.direct_index = direct_index
        self._exact: set = set()
        self._slots: List[Optional[Pattern]] = [None] * self.SLOTS

    @staticmethod
    def _slot_of(pattern: Pattern) -> int:
        return pattern & 0xFF

    def advertise(self, pattern: Pattern) -> None:
        if is_reserved(pattern):
            raise ValueError("clients may not advertise RESERVED patterns")
        if not 0 <= pattern <= _PATTERN_MASK:
            raise ValueError(f"pattern out of range: {pattern}")
        if self.direct_index:
            self._slots[self._slot_of(pattern)] = pattern
        else:
            self._exact.add(pattern)

    def unadvertise(self, pattern: Pattern) -> None:
        if is_reserved(pattern):
            raise ValueError("clients may not unadvertise RESERVED patterns")
        if self.direct_index:
            slot = self._slot_of(pattern)
            if self._slots[slot] == pattern:
                self._slots[slot] = None
        else:
            self._exact.discard(pattern)

    def matches(self, pattern: Pattern) -> bool:
        if self.direct_index:
            return self._slots[self._slot_of(pattern)] == pattern
        return pattern in self._exact

    def clear(self) -> None:
        """Drop all client patterns (DIE / crash)."""
        self._exact.clear()
        self._slots = [None] * self.SLOTS

    def advertised(self) -> List[Pattern]:
        if self.direct_index:
            return sorted(p for p in self._slots if p is not None)
        return sorted(self._exact)
