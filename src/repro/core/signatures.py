"""Naming: server and requester signatures (§3.7.2).

* A **SERVER SIGNATURE** ``<MID, PATTERN>`` names an entry point.
* A **REQUESTER SIGNATURE** ``<MID, TID>`` uniquely identifies one request
  across all time throughout the network and is the "return address" an
  ACCEPT must present.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.patterns import Pattern


@dataclass(frozen=True, order=True)
class ServerSignature:
    """<MID, PATTERN>: the destination named in a REQUEST."""

    mid: int
    pattern: Pattern

    def __repr__(self) -> str:
        return f"<{self.mid},%{self.pattern:o}>"


@dataclass(frozen=True, order=True)
class RequesterSignature:
    """<MID, TID>: the network-unique identity of one REQUEST."""

    mid: int
    tid: int

    def __repr__(self) -> str:
        return f"<{self.mid},#{self.tid}>"
