"""The SODA kernel: the paper's primary contribution.

Each network node pairs a :class:`~repro.core.kernel.SodaKernel` (the
communications adaptor) with a :class:`~repro.core.client.ClientProcessor`
(the uniprogrammed client).  The kernel exposes exactly the ten primitives
of §3.7 plus the kernel-interpreted reserved patterns (BOOT/LOAD/KILL/
SYSTEM) and broadcast DISCOVER.
"""

from repro.core.buffers import Buffer
from repro.core.client import ClientProcessor, ClientProgram, HandlerEvent
from repro.core.config import KernelConfig, TimingModel
from repro.core.errors import (
    AcceptStatus,
    CancelStatus,
    HandlerReason,
    RequestStatus,
    SodaError,
    TooManyRequestsError,
)
from repro.core.kernel import SodaKernel
from repro.core.node import Network, SodaNode
from repro.core.patterns import (
    BROADCAST,
    PATTERNSIZE,
    Pattern,
    PatternTable,
    UniqueIdGenerator,
    is_reserved,
    make_reserved_pattern,
    make_well_known_pattern,
)
from repro.core.signatures import RequesterSignature, ServerSignature

__all__ = [
    "AcceptStatus",
    "BROADCAST",
    "Buffer",
    "CancelStatus",
    "ClientProcessor",
    "ClientProgram",
    "HandlerEvent",
    "HandlerReason",
    "KernelConfig",
    "Network",
    "PATTERNSIZE",
    "Pattern",
    "PatternTable",
    "RequestStatus",
    "RequesterSignature",
    "ServerSignature",
    "SodaError",
    "SodaKernel",
    "SodaNode",
    "TimingModel",
    "TooManyRequestsError",
    "UniqueIdGenerator",
    "is_reserved",
    "make_reserved_pattern",
    "make_well_known_pattern",
]
