"""Booting, killing, and the reserved patterns (§3.5).

A bare node's kernel advertises one or more BOOT PATTERNS describing the
machine type.  A parent client DISCOVERs such nodes, GETs the boot
pattern to obtain a freshly-minted LOAD PATTERN, PUTs the core image in
chunks against the load pattern, and SIGNALs it to start the new client.
A second SIGNAL on the load pattern — or a SIGNAL on the well-known KILL
PATTERN — terminates the client.  The SYSTEM pattern lets machine 0 alter
the reserved patterns network-wide.

In the simulation a "core image" is a :class:`ProgramImage`: a factory
for a :class:`~repro.core.client.ClientProgram` plus a nominal byte size
so the boot transfer costs realistic wire time.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.patterns import Pattern, make_reserved_pattern

#: Well-known reserved patterns, bound at SODA creation time (§3.7.7.1).
DEFAULT_KILL_PATTERN: Pattern = make_reserved_pattern(0x4B494C4C)  # "KILL"
SYSTEM_PATTERN: Pattern = make_reserved_pattern(0x535953)          # "SYS"
#: Kernel-level remote-memory-reference entry point (the §6.17.2
#: extension; active only with KernelConfig(kernel_rmr=True)).
KERNEL_RMR_PATTERN: Pattern = make_reserved_pattern(0x524D52)      # "RMR"

#: Arguments understood by the SYSTEM handler (§3.5.4).
SYSTEM_ADD_BOOT = 1
SYSTEM_DELETE_BOOT = 2
SYSTEM_REPLACE_KILL = 3


def boot_pattern_for(machine_type: str) -> Pattern:
    """The reserved BOOT PATTERN advertised by bare nodes of a type.

    Boot patterns are "indicative of the type of client processor and
    attached peripherals" (§3.5.2); we derive one deterministically from
    the type string.
    """
    digest = hashlib.sha256(f"boot:{machine_type}".encode("utf-8")).digest()
    value = int.from_bytes(digest[:5], "big")  # 40 bits < reserved space
    return make_reserved_pattern(value)


def pattern_to_bytes(pattern: Pattern) -> bytes:
    """Wire encoding of a 48-bit pattern (6 bytes, big-endian)."""
    return int(pattern).to_bytes(6, "big")


def pattern_from_bytes(data: bytes) -> Pattern:
    if len(data) < 6:
        raise ValueError("pattern encoding requires 6 bytes")
    return int.from_bytes(data[:6], "big")


def mids_to_bytes(mids) -> bytes:
    """Wire encoding of a DISCOVER reply list (2 bytes per MID)."""
    return b"".join(int(mid).to_bytes(2, "big") for mid in mids)


def mids_from_bytes(data: bytes) -> list:
    if len(data) % 2 != 0:
        data = data[: len(data) - 1]
    return [
        int.from_bytes(data[i : i + 2], "big") for i in range(0, len(data), 2)
    ]


@dataclass
class ProgramImage:
    """A bootable client program.

    ``size_bytes`` stands in for the core-image size so that booting a
    client over the network consumes realistic transfer time; the image
    is typically shipped in several PUT chunks of ``chunk_bytes`` each.
    """

    name: str
    program_factory: Callable[[], object]
    size_bytes: int = 8192
    chunk_bytes: int = 1024

    def chunks(self):
        """Yield (offset, nbytes) pairs covering the image."""
        offset = 0
        while offset < self.size_bytes:
            nbytes = min(self.chunk_bytes, self.size_bytes - offset)
            yield offset, nbytes
            offset += nbytes


@dataclass
class LoadState:
    """Kernel-side state of an in-progress boot (§3.5.2)."""

    load_pattern: Pattern
    parent_mid: int
    image: Optional[ProgramImage] = None
    bytes_received: int = 0
    started: bool = False
