"""The SODA kernel (Chapter 3, implemented per Chapter 5).

One :class:`SodaKernel` is the communications-adaptor processor of one
node.  It exposes the ten client primitives, runs the reliable transport
(alternating-bit + Delta-t, with the piggybacking strategies of §5.2.3),
interprets the reserved patterns (BOOT/LOAD/KILL/SYSTEM), answers
DISCOVER broadcasts, probes delivered-but-unaccepted requests, and
enforces the crash semantics of §3.6.

Simulated kernel CPU time is serialized through ``_busy_until`` and every
microsecond is charged to a :class:`~repro.sim.tracing.CostLedger`
category, which is how the paper's overhead-breakdown table is
regenerated.
"""

from __future__ import annotations

import enum
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Set

from repro.core.boot import (
    DEFAULT_KILL_PATTERN,
    KERNEL_RMR_PATTERN,
    SYSTEM_ADD_BOOT,
    SYSTEM_DELETE_BOOT,
    SYSTEM_PATTERN,
    SYSTEM_REPLACE_KILL,
    LoadState,
    ProgramImage,
    boot_pattern_for,
    mids_to_bytes,
    pattern_from_bytes,
    pattern_to_bytes,
)
from repro.core.buffers import Buffer, OverloadController
from repro.core.client import ClientProcessor, HandlerEvent
from repro.core.config import KernelConfig
from repro.core.connection import Connection, OutboundMessage
from repro.core.errors import (
    AcceptStatus,
    CancelStatus,
    HandlerReason,
    RequestStatus,
    SodaError,
    TooManyRequestsError,
)
from repro.core.patterns import (
    BROADCAST,
    Pattern,
    PatternTable,
    UniqueIdGenerator,
    is_reserved,
)
from repro.core.signatures import RequesterSignature, ServerSignature
from repro.net.frame import BROADCAST_MID, Frame
from repro.net.nic import NetworkInterface
from repro.sim.tracing import CostLedger
from repro.transport.packet import NackCode, Packet, PacketType

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.node import SodaNode
    from repro.sim.engine import Simulator
    from repro.sim.process import SimFuture


class RequestState(enum.Enum):
    QUEUED = "queued"        # accepted by the kernel, not yet transmitted
    INFLIGHT = "inflight"    # transmitted, not yet acknowledged
    DELIVERED = "delivered"  # at the server handler, being probed
    COMPLETED = "completed"  # handler told (success or failure)
    CANCELLED = "cancelled"


class DeliveredState(enum.Enum):
    DELIVERED = "delivered"  # available for ACCEPT
    ACCEPTED = "accepted"    # ACCEPT issued; exchange under way
    DONE = "done"            # exchange finished
    CANCELLED = "cancelled"  # withdrawn by the requester


@dataclass
class RequestRecord:
    """Requester-side bookkeeping for one REQUEST."""

    tid: int
    server_sig: ServerSignature
    arg: int
    put_data: bytes
    get_buffer: Buffer
    state: RequestState = RequestState.QUEUED
    outbound: Optional[OutboundMessage] = None
    is_discover: bool = False
    completion_status: Optional[RequestStatus] = None
    probe_timer: object = None
    probe_deadline: object = None
    probe_failures: int = 0
    pending_cancel: Optional["SimFuture"] = None

    @property
    def open(self) -> bool:
        return self.state not in (RequestState.COMPLETED, RequestState.CANCELLED)


@dataclass
class DeliveredRequest:
    """Server-side record of a REQUEST that reached the handler."""

    sig: RequesterSignature
    pattern: Pattern
    arg: int
    put_size: int
    get_size: int
    put_data: Optional[bytes]
    state: DeliveredState = DeliveredState.DELIVERED
    #: The ACCEPT that would have informed the requester exhausted its
    #: retransmissions (peer declared dead).  The outcome can no longer
    #: be delivered, so probe replies must stop vouching for this
    #: transaction — else a requester behind a healed partition probes
    #: an answer that will never come, forever.
    reply_dead: bool = False


@dataclass
class PendingAccept:
    """Server-side state of a blocking ACCEPT in progress."""

    sig: RequesterSignature
    future: "SimFuture"
    get_buffer: Buffer
    #: "none": return after the ACCEPT is noted and sent.
    #: "ack": block until the data-carrying ACCEPT is acknowledged.
    #: "data": block until the pulled put-direction data arrives.
    wait_for: str = "none"
    resolved: bool = False

    def resolve(self, status: AcceptStatus) -> None:
        if not self.resolved:
            self.resolved = True
            self.future.resolve(status)


@dataclass
class HeldRequest:
    """The pipelined kernel's occupied input buffer (§5.2.3)."""

    src: int
    packet: Packet
    timer: object = None


@dataclass
class DiscoverState:
    record: RequestRecord
    mids: Set[int] = field(default_factory=set)
    timer: object = None


class SodaKernel:
    """One node's SODA processor."""

    def __init__(
        self,
        sim: "Simulator",
        nic: NetworkInterface,
        config: Optional[KernelConfig] = None,
        machine_type: str = "generic",
        ledger: Optional[CostLedger] = None,
        node: Optional["SodaNode"] = None,
    ) -> None:
        self.sim = sim
        self.nic = nic
        self.config = config or KernelConfig()
        self.machine_type = machine_type
        self.ledger = ledger or CostLedger()
        self.node = node
        self.mid = nic.mid
        nic.on_frame = self.on_frame

        self.uidgen = UniqueIdGenerator(serial=self.mid & 0xFF)
        self.patterns = PatternTable(direct_index=self.config.direct_index_patterns)
        self.connections: Dict[int, Connection] = {}

        # requester side
        self.requests: Dict[int, RequestRecord] = {}
        self._discovers: Dict[int, DiscoverState] = {}
        self._discover_tokens = itertools.count(1)

        # server side
        self.delivered: Dict[RequesterSignature, DeliveredRequest] = {}
        # Signatures the last dead incarnation left DELIVERED but never
        # ACCEPTed: their handlers provably never executed, so a PROBE
        # naming one is answered with arg=2 ("crashed before ACCEPT") and
        # the requester may safely re-issue the REQUEST (§3.6.1).
        self.crashed_unaccepted: set[RequesterSignature] = set()
        self.pending_accepts: Dict[RequesterSignature, PendingAccept] = {}
        self.completion_queue: Deque[HandlerEvent] = deque()
        self.held: Optional[HeldRequest] = None

        # handler state (the kernel owns OPEN/CLOSED/BUSY; §3.3.4)
        self.handler_open = False
        self._handler_busy = False
        self._pending_handler_open: Optional[bool] = None

        # client & boot state
        self.client: Optional[ClientProcessor] = None
        self._tid_watermark = 0
        # Incarnation counter: bumped on every client reset (DIE, KILL,
        # crash) so trace records and probe replies can name which life
        # of this node an event belongs to (repro.analysis.causal).
        self.epoch = 0
        self.kill_pattern: Pattern = DEFAULT_KILL_PATTERN
        self.boot_patterns: List[Pattern] = [boot_pattern_for(machine_type)]
        self._boot_active = True  # boot patterns advertised (no client)
        self._load: Optional[LoadState] = None

        # §6.17.2 extension: client memory served by the kernel RMR
        # handler (set via client_register_rmr_memory).
        self.rmr_memory: Optional[bytearray] = None

        # node liveness
        self.offline_until: Optional[float] = None
        self._busy_until = 0.0

        # input-side admission control (docs/TRANSPORT.md)
        self.overload = OverloadController(self.config.overload)
        self._arrival_backlog_us = 0.0

    # ==================================================================
    # small helpers
    # ==================================================================

    def _conn(self, mid: int) -> Connection:
        conn = self.connections.get(mid)
        if conn is None:
            conn = Connection(self, mid)
            self.connections[mid] = conn
        return conn

    def _set_delivered_state(
        self, delivered: DeliveredRequest, state: DeliveredState
    ) -> None:
        """Transition a delivered request, tracing the change.

        The ``kernel.delivered_state`` records drive the post-run leak
        check (every DELIVERED request must reach DONE or CANCELLED);
        no-op transitions are not recorded.
        """
        if delivered.state is state:
            return
        delivered.state = state
        self.sim.trace.record(
            self.sim.now,
            "kernel.delivered_state",
            mid=self.mid,
            src=delivered.sig.mid,
            tid=delivered.sig.tid,
            state=state.value,
        )

    def _note_delivered(self, delivered: DeliveredRequest) -> None:
        self.delivered[delivered.sig] = delivered
        self.sim.trace.record(
            self.sim.now,
            "kernel.delivered_state",
            mid=self.mid,
            src=delivered.sig.mid,
            tid=delivered.sig.tid,
            state=delivered.state.value,
        )

    def _outstanding_count(self) -> int:
        return sum(1 for record in self.requests.values() if record.open)

    def _kernel_work(self, charges: Dict[str, float], fn=None, *args) -> None:
        """Charge ledger categories and serialize work on the kernel CPU."""
        total = 0.0
        for category, us in charges.items():
            if us:
                self.ledger.charge(category, us)
                total += us
        start = max(self.sim.now, self._busy_until)
        self._busy_until = start + total
        if fn is not None:
            self.sim.at(self._busy_until, fn, *args)

    # ==================================================================
    # wire I/O
    # ==================================================================

    def transmit_packet(
        self,
        dst: int,
        packet: Packet,
        copy_bytes: int = 0,
        sequenced: bool = False,
    ) -> None:
        """Send one packet, charging kernel and wire costs."""
        if self.offline_until is not None:
            return
        tm = self.config.timing
        charges = {
            "protocol": tm.protocol_send_us + tm.copy_cost_us(copy_bytes),
            "connection_timers": tm.connection_timer_us,
        }
        if sequenced:
            charges["retransmit_timers"] = tm.retransmit_timer_us
        self._kernel_work(charges, self._do_send, dst, packet)

    def _do_send(self, dst: int, packet: Packet) -> None:
        if self.offline_until is not None:
            return
        frame = self.nic.send(dst, packet, payload_bytes=packet.wire_payload_bytes())
        self.ledger.charge("transmission", self.nic.bus.serialization_us(frame))
        fields = dict(
            mid=self.mid,
            dst=dst,
            ptype=packet.ptype.value,
            desc=packet.describe(),
            bytes=packet.data_bytes,
            # Fields consumed by the trace invariant checker
            # (repro.analysis.invariants): alternating bit, packet
            # identity (stable across retransmissions), piggybacked ack.
            seq=packet.seq,
            pid=packet.packet_id,
            tid=packet.tid,
            ack=packet.ack,
            # Send/receive correlation for the causal analysis engine
            # (repro.analysis.causal): every transmission is a fresh
            # frame, so the frame id pairs this tx with its rx(s).
            fid=frame.frame_id,
        )
        if packet.epoch is not None:
            fields["epoch"] = packet.epoch
        self.sim.trace.record(self.sim.now, "kernel.tx", **fields)

    def on_frame(self, frame: Frame) -> None:
        if self.offline_until is not None:
            return
        packet: Packet = frame.payload
        tm = self.config.timing
        charges = {
            "protocol": tm.protocol_recv_us + tm.copy_cost_us(packet.data_bytes),
            "connection_timers": tm.connection_timer_us,
        }
        # Input-buffer occupancy is judged at *arrival*: the backlog
        # this frame is about to wait behind.  By processing time that
        # backlog has drained by definition, which would blind the
        # overload controller to exactly the congestion it exists for.
        backlog = max(0.0, self._busy_until - self.sim.now)
        self._kernel_work(
            charges,
            self._process_packet,
            frame.src,
            packet,
            backlog,
            frame.frame_id,
        )

    # ==================================================================
    # packet dispatch
    # ==================================================================

    def _process_packet(
        self,
        src: int,
        packet: Packet,
        arrival_backlog_us: float = 0.0,
        fid: Optional[int] = None,
    ) -> None:
        if self.offline_until is not None:
            return
        self._arrival_backlog_us = arrival_backlog_us
        fields = dict(
            mid=self.mid,
            src=src,
            ptype=packet.ptype.value,
            desc=packet.describe(),
            seq=packet.seq,
            tid=packet.tid,
            ack=packet.ack,
            nack=packet.nack_code.value if packet.nack_code else None,
            # Retry hint as *received* — sodalint rule SODA007 binds a
            # client only to hints that actually reached it.
            hint=packet.retry_hint_us,
            # Frame id pairs this rx with its kernel.tx (causal edge);
            # None for traces replayed without NIC correlation.
            fid=fid,
        )
        if packet.epoch is not None:
            fields["epoch"] = packet.epoch
        self.sim.trace.record(self.sim.now, "kernel.rx", **fields)
        conn = self._conn(src)
        conn.note_heard()
        ptype = packet.ptype
        if ptype is PacketType.NACK and packet.nack_code is not NackCode.BUSY:
            # An error NACK both rejects the message at the application
            # level and acknowledges it at the transport level; the
            # rejection must win (a blocked ACCEPT resolves CANCELLED or
            # CRASHED, not SUCCESS-by-ack).
            self._handle_nack(src, packet, conn)
            if packet.ack is not None:
                conn.handle_ack(packet.ack, echo_tx_us=packet.echo_tx_us)
            return
        if packet.ack is not None:
            conn.handle_ack(packet.ack, echo_tx_us=packet.echo_tx_us)

        if ptype is PacketType.ACK:
            return
        if ptype is PacketType.NACK:
            self._handle_nack(src, packet, conn)
        elif ptype is PacketType.REQUEST:
            self._handle_request_packet(src, packet, conn)
        elif ptype is PacketType.ACCEPT:
            self._handle_accept_packet(src, packet, conn)
        elif ptype is PacketType.DATA:
            self._handle_data_packet(src, packet, conn)
        elif ptype is PacketType.CANCEL:
            self._handle_cancel_packet(src, packet, conn)
        elif ptype is PacketType.CANCEL_REPLY:
            self._handle_cancel_reply(src, packet)
        elif ptype is PacketType.PROBE:
            self._handle_probe(src, packet, conn)
        elif ptype is PacketType.PROBE_REPLY:
            self._handle_probe_reply(src, packet)
        elif ptype is PacketType.DISCOVER_QUERY:
            self._handle_discover_query(src, packet)
        elif ptype is PacketType.DISCOVER_REPLY:
            self._handle_discover_reply(src, packet)

    def _accept_sequenced(self, conn: Connection, packet: Packet) -> bool:
        """Consume a sequenced packet; False for duplicates (re-acked)."""
        verdict = conn.classify_sequenced(packet)
        if verdict == "duplicate":
            conn.send_immediate_ack(packet.seq, echo_tx_us=packet.tx_us)
            return False
        conn.note_owed_ack(packet.seq, tx_us=packet.tx_us)
        return True

    # ------------------------------------------------------------------
    # NACKs
    # ------------------------------------------------------------------

    def _handle_nack(self, src: int, packet: Packet, conn: Connection) -> None:
        code = packet.nack_code
        if code is NackCode.BUSY:
            conn.handle_busy_nack(
                packet.nacked_seq, retry_hint_us=packet.retry_hint_us
            )
            return
        if code is NackCode.OVERLOAD:
            # The server's kernel shed the REQUEST before delivery: a
            # proof of non-execution, so recovery's retry wrapper may
            # re-issue it without the MAYBE path.  Not a crash — no
            # kernel.crash_report — the peer is alive, just saturated.
            record = self.requests.get(packet.tid)
            if record is not None and record.open:
                self._complete_request_failure(
                    record,
                    RequestStatus.OVERLOADED,
                    reason="nack_overload",
                    not_executed=True,
                    crash_report=False,
                )
            return
        if code is NackCode.UNADVERTISED:
            record = self.requests.get(packet.tid)
            if record is not None and record.open:
                self._complete_request_failure(
                    record,
                    RequestStatus.UNADVERTISED,
                    reason="nack_unadvertised",
                    not_executed=True,
                )
            return
        if code in (NackCode.CANCELLED, NackCode.CRASHED):
            sig = RequesterSignature(src, packet.tid)
            pending = self.pending_accepts.pop(sig, None)
            if pending is not None:
                status = (
                    AcceptStatus.CANCELLED
                    if code is NackCode.CANCELLED
                    else AcceptStatus.CRASHED
                )
                pending.resolve(status)
            delivered = self.delivered.get(sig)
            if delivered is not None:
                self._set_delivered_state(delivered, DeliveredState.DONE)

    # ------------------------------------------------------------------
    # REQUEST arrival (server side)
    # ------------------------------------------------------------------

    def _handle_request_packet(
        self, src: int, packet: Packet, conn: Connection
    ) -> None:
        # A duplicate of an already-delivered REQUEST must be
        # re-acknowledged no matter what the handler is doing; BUSY-
        # NACKing it would convince the requester its (delivered!)
        # request never arrived and wedge the channel.
        if conn.peek_sequenced(packet) == "duplicate":
            conn.send_immediate_ack(packet.seq, echo_tx_us=packet.tx_us)
            return
        pattern = packet.pattern
        if is_reserved(pattern):
            if self._accept_sequenced(conn, packet):
                self._handle_reserved_request(src, packet, conn)
            return
        if not self.patterns.matches(pattern):
            if self._accept_sequenced(conn, packet):
                conn.send_nack(NackCode.UNADVERTISED, tid=packet.tid)
            return
        # Overload admission: the BUSY NACK protects the *handler*; the
        # overload controller protects the *kernel*.  Reserved patterns
        # (BOOT/LOAD/KILL/SYSTEM) were dispatched above and are exempt —
        # shedding the recovery path under load would be self-defeating.
        if self.overload.observe(self._input_occupancy_us()):
            if self._accept_sequenced(conn, packet):
                self.sim.trace.record(
                    self.sim.now,
                    "kernel.shed",
                    mid=self.mid,
                    src=src,
                    tid=packet.tid,
                    occupancy_us=self.overload.last_occupancy_us,
                )
                self.overload.sheds += 1
                conn.send_nack(NackCode.OVERLOAD, tid=packet.tid)
            return
        # A client pattern: delivery depends on the handler state.
        if self._handler_eligible_for_arrival():
            if self._accept_sequenced(conn, packet):
                self._deliver_arrival(src, packet)
            return
        # Handler BUSY or CLOSED.
        if self.config.pipelined and self.held is None:
            if not self._accept_sequenced(conn, packet):
                return
            conn.suspend_owed_ack()
            timer = self.sim.schedule(
                self.config.timing.input_buffer_hold_us, self._held_expired
            )
            self.held = HeldRequest(src, packet, timer)
            self.sim.trace.record(
                self.sim.now, "kernel.hold", mid=self.mid, src=src, tid=packet.tid
            )
        else:
            hint = self.overload.retry_hint_us(
                self.config.retransmit.busy_retry_base_us
            )
            conn.send_nack(
                NackCode.BUSY,
                tid=packet.tid,
                nacked_seq=packet.seq,
                retry_hint_us=hint,
            )
            self.sim.trace.record(
                self.sim.now, "kernel.busy_nack", mid=self.mid, src=src,
                tid=packet.tid,
                hint_us=hint,
            )

    def _input_occupancy_us(self) -> float:
        """Input-side occupancy: the kernel-CPU backlog the packet being
        processed waited behind in the input buffer, plus queued
        interrupts, in equivalent microseconds."""
        queued = len(self.completion_queue) + (1 if self.held is not None else 0)
        return (
            self._arrival_backlog_us
            + queued * self.config.overload.queue_item_cost_us
        )

    def _held_expired(self) -> None:
        held = self.held
        if held is None:
            return
        self.held = None
        conn = self._conn(held.src)
        conn.rollback_sequenced(held.packet)
        conn.forget_owed_ack(held.packet.seq)
        hint = self.overload.retry_hint_us(
            self.config.retransmit.busy_retry_base_us
        )
        conn.send_nack(
            NackCode.BUSY,
            tid=held.packet.tid,
            nacked_seq=held.packet.seq,
            ack=None,
            retry_hint_us=hint,
        )
        self.sim.trace.record(
            self.sim.now,
            "kernel.busy_nack",
            mid=self.mid,
            src=held.src,
            tid=held.packet.tid,
            hold_expired=True,
            hint_us=hint,
        )

    def _deliver_arrival(self, src: int, packet: Packet) -> None:
        sig = RequesterSignature(src, packet.tid)
        self._note_delivered(
            DeliveredRequest(
                sig=sig,
                pattern=packet.pattern,
                arg=packet.arg,
                put_size=packet.put_size,
                get_size=packet.get_size,
                put_data=packet.data,
            )
        )
        event = HandlerEvent(
            reason=HandlerReason.REQUEST_ARRIVAL,
            asker=sig,
            pattern=packet.pattern,
            arg=packet.arg,
            put_size=packet.put_size,
            get_size=packet.get_size,
        )
        self._invoke_handler(event)

    # ------------------------------------------------------------------
    # handler invocation machinery
    # ------------------------------------------------------------------

    def _handler_eligible(self) -> bool:
        return (
            self.handler_open
            and not self._handler_busy
            and self.client is not None
            and self.client.can_take_interrupt
        )

    def _handler_eligible_for_arrival(self) -> bool:
        # Queued completion interrupts make the handler BUSY to arrivals
        # (§3.7.5), and a held REQUEST is already first in line.
        return (
            self._handler_eligible()
            and not self.completion_queue
            and self.held is None
        )

    def _invoke_handler(self, event: HandlerEvent) -> None:
        self._handler_busy = True
        self.ledger.charge(
            "context_switch", self.config.timing.context_switch_us
        )
        self.sim.trace.record(
            self.sim.now,
            "kernel.interrupt",
            mid=self.mid,
            reason=event.reason.value,
        )
        assert self.client is not None
        self.client.run_handler(event)

    def _deliver_completion(self, event: HandlerEvent) -> None:
        if self.client is None or self.client.dead:
            return
        if self._handler_eligible():
            self._invoke_handler(event)
        else:
            self.completion_queue.append(event)

    def note_boot_started(self) -> None:
        """The boot handler (Initialization) is about to run.

        Traced so handler entries/exits balance: Initialization runs as
        a handler and ends with a normal ``kernel.endhandler``, but
        never passes through :meth:`_invoke_handler`.
        """
        self.handler_open = True
        self._handler_busy = True
        self.sim.trace.record(self.sim.now, "kernel.boot_handler", mid=self.mid)

    def client_endhandler(self) -> Optional[HandlerEvent]:
        """ENDHANDLER: returns an event to run immediately, if any."""
        self.ledger.charge("context_switch", self.config.timing.endhandler_us)
        self.sim.trace.record(self.sim.now, "kernel.endhandler", mid=self.mid)
        self._handler_busy = False
        if self._pending_handler_open is not None:
            self.handler_open = self._pending_handler_open
            self._pending_handler_open = None
        return self._next_immediate_event()

    def _next_immediate_event(self) -> Optional[HandlerEvent]:
        if not self._handler_eligible():
            return None
        if self.completion_queue:
            event = self.completion_queue.popleft()
            self._handler_busy = True
            self.ledger.charge(
                "context_switch", self.config.timing.context_switch_us
            )
            return event
        if self.held is not None:
            held = self.held
            self.held = None
            if held.timer is not None:
                held.timer.cancel()
            # Becomes a normal arrival; its ack is still owed and will
            # piggyback on whatever the handler sends back.
            src, packet = held.src, held.packet
            self._handler_busy = True
            sig = RequesterSignature(src, packet.tid)
            self._note_delivered(
                DeliveredRequest(
                    sig=sig,
                    pattern=packet.pattern,
                    arg=packet.arg,
                    put_size=packet.put_size,
                    get_size=packet.get_size,
                    put_data=packet.data,
                )
            )
            self.ledger.charge(
                "context_switch", self.config.timing.context_switch_us
            )
            return HandlerEvent(
                reason=HandlerReason.REQUEST_ARRIVAL,
                asker=sig,
                pattern=packet.pattern,
                arg=packet.arg,
                put_size=packet.put_size,
                get_size=packet.get_size,
            )
        return None

    def poll_handler(self) -> None:
        """Deliver pending interrupts if the handler just became eligible
        (after OPEN, or after the client leaves a blocking primitive)."""
        event = self._next_immediate_event()
        if event is not None:
            assert self.client is not None
            self.client.run_handler(event)

    # ==================================================================
    # client primitives (§3.7)
    # ==================================================================

    # -- naming ----------------------------------------------------------

    def client_advertise(self, pattern: Pattern) -> None:
        self.patterns.advertise(pattern)
        # Advertisement-table writes are traced so the causal race
        # detector can watch the shared cell (repro.analysis.causal).
        self.sim.trace.record(
            self.sim.now, "kernel.advertise", mid=self.mid, pattern=pattern
        )

    def client_unadvertise(self, pattern: Pattern) -> None:
        self.patterns.unadvertise(pattern)
        self.sim.trace.record(
            self.sim.now, "kernel.unadvertise", mid=self.mid, pattern=pattern
        )

    def client_getuniqueid(self) -> Pattern:
        return self.uidgen.next_pattern()

    # -- handler control ---------------------------------------------------

    def client_open(self) -> None:
        if self.client is not None and self.client.executing_handler:
            self._pending_handler_open = True
        else:
            self.handler_open = True
            self.poll_handler()

    def client_close(self) -> None:
        if self.client is not None and self.client.executing_handler:
            self._pending_handler_open = False
        else:
            self.handler_open = False

    # -- REQUEST -------------------------------------------------------------

    def client_request(
        self,
        server_sig: ServerSignature,
        arg: int,
        put_data: bytes = b"",
        get_buffer: Optional[Buffer] = None,
        image: Optional[ProgramImage] = None,
    ) -> int:
        """Non-blocking REQUEST; returns the TID immediately.

        ``image`` rides along with put data during booting: the paper
        PUTs raw core-image bytes; in the simulation the executable part
        is a ProgramImage object (§3.5.2).
        """
        get_buffer = get_buffer if get_buffer is not None else Buffer.nil()
        limit = self.config.max_message_bytes
        if len(put_data) > limit or get_buffer.capacity > limit:
            raise SodaError(
                f"message exceeds the fixed maximum of {limit} bytes"
            )
        if self._outstanding_count() >= self.config.max_requests:
            raise TooManyRequestsError(
                f"MAXREQUESTS={self.config.max_requests} already uncompleted"
            )
        tid = self.uidgen.next_tid()
        record = RequestRecord(
            tid=tid,
            server_sig=server_sig,
            arg=arg,
            put_data=put_data,
            get_buffer=get_buffer,
        )
        self.requests[tid] = record
        self.sim.trace.record(
            self.sim.now,
            "kernel.request",
            mid=self.mid,
            tid=tid,
            dst=server_sig.mid,
            pattern=server_sig.pattern,
            put=len(put_data),
            get=get_buffer.capacity,
        )
        if server_sig.mid == BROADCAST:
            record.is_discover = True
            self._start_discover(record)
            return tid
        conn = self._conn(server_sig.mid)
        packet = Packet(
            PacketType.REQUEST,
            pattern=server_sig.pattern,
            tid=tid,
            requester_mid=self.mid,
            arg=arg,
            put_size=len(put_data),
            get_size=get_buffer.capacity,
            data=(
                put_data
                if put_data and self.config.data_with_request
                else None
            ),
            image=image,
        )
        message = OutboundMessage(
            packet,
            "request",
            data_once=True,
            busy_retryable=True,
            on_acked=lambda: self._request_acked(record),
            on_dead=lambda: self._request_peer_dead(record, conn),
            on_transmit=lambda: self._request_transmitted(record),
            void_check=lambda: not record.open,
        )
        record.outbound = message
        conn.enqueue(message)
        return tid

    def _request_transmitted(self, record: RequestRecord) -> None:
        if record.state is RequestState.QUEUED:
            record.state = RequestState.INFLIGHT

    def _request_acked(self, record: RequestRecord) -> None:
        if record.state is not RequestState.INFLIGHT:
            return
        record.state = RequestState.DELIVERED
        self._schedule_probe(record)
        if record.pending_cancel is not None:
            self._send_cancel_packet(record)

    def _request_peer_dead(self, record: RequestRecord, conn: Connection) -> None:
        if not record.open:
            return
        status = (
            RequestStatus.CRASHED
            if conn.heard_from_peer
            else RequestStatus.UNADVERTISED
        )
        # A REQUEST still QUEUED behind the dead head of the outbox was
        # never transmitted, so it provably never executed.  One that was
        # transmitted but never acked is ambiguous: the *ack* may be what
        # was lost, with the server alive and executing behind a
        # partition (docs/RECOVERY.md, retry-safety table).
        not_executed: Optional[bool]
        if status is RequestStatus.UNADVERTISED:
            not_executed = True  # never heard from the peer at all
        elif record.state is RequestState.QUEUED:
            not_executed = True
        else:
            not_executed = None
        self._complete_request_failure(
            record, status, reason="retransmit_exhausted", not_executed=not_executed
        )

    def _complete_request_failure(
        self,
        record: RequestRecord,
        status: RequestStatus,
        *,
        reason: str = "",
        not_executed: Optional[bool] = None,
        crash_report: bool = True,
    ) -> None:
        if not record.open:
            return
        record.state = RequestState.COMPLETED
        record.completion_status = status
        self._stop_probing(record)
        if record.pending_cancel is not None:
            record.pending_cancel.resolve(CancelStatus.FAIL)
            record.pending_cancel = None
        self.sim.trace.record(
            self.sim.now,
            "kernel.complete",
            mid=self.mid,
            tid=record.tid,
            status=status.value,
            arg=0,
            taken_put=0,
            taken_get=0,
            reason=reason,
            not_executed=not_executed,
        )
        # Crash-report hook (§3.6 → repro.recovery): every failed
        # transaction names the peer it gave up on, why, and whether the
        # failure proves non-execution.  An OVERLOAD rejection is not a
        # crash — the peer answered — so it must not feed the failure
        # detector's suspicion counters.
        if crash_report:
            self.sim.trace.record(
                self.sim.now,
                "kernel.crash_report",
                mid=self.mid,
                peer=record.server_sig.mid,
                tid=record.tid,
                status=status.value,
                reason=reason,
                not_executed=not_executed,
            )
        event = HandlerEvent(
            reason=HandlerReason.REQUEST_COMPLETE,
            asker=RequesterSignature(self.mid, record.tid),
            status=status,
            arg=0,
            not_executed=not_executed,
        )
        self._deliver_completion(event)

    # -- ACCEPT (inbound, requester side) --------------------------------

    def _handle_accept_packet(
        self, src: int, packet: Packet, conn: Connection
    ) -> None:
        if not self._accept_sequenced(conn, packet):
            return
        record = self.requests.get(packet.tid)
        # An ACCEPT proves the REQUEST was delivered: treat it as an
        # implicit transport acknowledgement if ours is still pending
        # (its explicit ack may have been lost or deferred).
        if (
            record is not None
            and record.outbound is not None
            and conn.outstanding is record.outbound
        ):
            # Synthesized from the ACCEPT's arrival, not a wire ack: the
            # interval includes server think time, so it must not feed
            # the RTT estimator (implicit=True).
            conn.handle_ack(record.outbound.packet.seq, implicit=True)
        if record is None:
            code = (
                NackCode.CRASHED
                if packet.tid < self._tid_watermark
                else NackCode.CANCELLED
            )
            conn.send_nack(code, tid=packet.tid)
            return
        if not record.open:
            conn.send_nack(NackCode.CANCELLED, tid=packet.tid)
            return
        # Normal completion.
        record.state = RequestState.COMPLETED
        record.completion_status = RequestStatus.COMPLETED
        self._stop_probing(record)
        if record.pending_cancel is not None:
            record.pending_cancel.resolve(CancelStatus.FAIL)
            record.pending_cancel = None
        taken_get = 0
        if packet.data is not None:
            taken_get = record.get_buffer.write(packet.data)
        if packet.pull_data:
            # The server never saw our put data (it was stripped from a
            # retransmission); ship it now, reliably.
            data = record.put_data[: packet.taken_put]
            pull_packet = Packet(
                PacketType.DATA, tid=record.tid, data=data if data else None
            )
            conn.enqueue_priority(OutboundMessage(pull_packet, "data"))
        event = HandlerEvent(
            reason=HandlerReason.REQUEST_COMPLETE,
            asker=RequesterSignature(self.mid, record.tid),
            status=RequestStatus.COMPLETED,
            arg=packet.arg,
            taken_put=packet.taken_put,
            taken_get=taken_get,
        )
        self.sim.trace.record(
            self.sim.now,
            "kernel.complete",
            mid=self.mid,
            tid=record.tid,
            status=RequestStatus.COMPLETED.value,
            arg=packet.arg,
            taken_put=packet.taken_put,
            taken_get=taken_get,
        )
        self._deliver_completion(event)

    # -- ACCEPT (outbound, server side) -------------------------------------

    def client_accept(
        self,
        req_sig: RequesterSignature,
        arg: int,
        get_buffer: Optional[Buffer] = None,
        put_data: bytes = b"",
    ) -> "SimFuture":
        """Blocking ACCEPT; resolves to an AcceptStatus."""
        get_buffer = get_buffer if get_buffer is not None else Buffer.nil()
        future = self.sim.new_future()
        delivered = self.delivered.get(req_sig)
        conn = self.connections.get(req_sig.mid)
        if (
            delivered is None
            or delivered.state is not DeliveredState.DELIVERED
        ):
            # Completed, cancelled, never delivered here, or forged
            # (§3.3.2 rule 6); a requester already known to have crashed
            # is reported as CRASHED immediately (§3.3.2).
            if conn is not None and conn.declared_dead:
                status = AcceptStatus.CRASHED
            elif (
                delivered is not None
                and delivered.state is DeliveredState.CANCELLED
            ):
                status = AcceptStatus.CANCELLED
            else:
                status = AcceptStatus.CANCELLED
            self.sim.schedule(
                self.config.timing.protocol_send_us, future.resolve, status
            )
            return future
        conn = self._conn(req_sig.mid)
        if conn.declared_dead:
            self.sim.schedule(
                self.config.timing.protocol_send_us,
                future.resolve,
                AcceptStatus.CRASHED,
            )
            return future
        self._set_delivered_state(delivered, DeliveredState.ACCEPTED)
        taken_put = min(delivered.put_size, get_buffer.capacity)
        taken_get = min(len(put_data), delivered.get_size)
        pull = delivered.put_data is None and taken_put > 0
        copy_bytes = 0
        if delivered.put_data is not None and taken_put > 0:
            get_buffer.write(delivered.put_data[:taken_put])
            copy_bytes = taken_put
        data = put_data[:taken_get] if taken_get > 0 else None
        packet = Packet(
            PacketType.ACCEPT,
            tid=req_sig.tid,
            arg=arg,
            data=data,
            pull_data=pull,
            taken_put=taken_put,
            taken_get=taken_get,
        )
        if pull:
            wait_for = "data"
        elif data is not None:
            wait_for = "ack"
        else:
            wait_for = "none"
        pending = PendingAccept(
            sig=req_sig,
            future=future,
            get_buffer=get_buffer,
            wait_for=wait_for,
        )
        self.pending_accepts[req_sig] = pending
        if copy_bytes:
            self.ledger.charge(
                "protocol", self.config.timing.copy_cost_us(copy_bytes)
            )
        message = OutboundMessage(
            packet,
            "accept",
            on_acked=lambda: self._accept_acked(pending, delivered),
            on_dead=lambda: self._accept_peer_dead(pending, delivered),
            on_transmit=(
                (lambda: self._accept_noted(pending, delivered))
                if wait_for == "none"
                else None
            ),
        )
        conn.enqueue(message)
        self.sim.trace.record(
            self.sim.now,
            "kernel.accept",
            mid=self.mid,
            sig=str(req_sig),
            src=req_sig.mid,
            tid=req_sig.tid,
            wait=wait_for,
            taken_put=taken_put,
            taken_get=taken_get,
        )
        return future

    def _accept_stale(
        self, pending: PendingAccept, delivered: DeliveredRequest
    ) -> bool:
        """True if this ACCEPT's transport callback outlived its
        incarnation: a DIE/BOOT (or crash) cleared ``self.delivered``
        while the ACCEPT was still in the connection's outbox, so the
        late ack/death must not resurrect the dead incarnation's state
        (it would emit an illegal ``delivered_state`` transition)."""
        return self.delivered.get(pending.sig) is not delivered

    def _accept_noted(
        self, pending: PendingAccept, delivered: DeliveredRequest
    ) -> None:
        if self._accept_stale(pending, delivered):
            return
        # Dataless ACCEPT: the exchange was local; unblock the server as
        # soon as the kernel has noted and dispatched the command.
        self._set_delivered_state(delivered, DeliveredState.DONE)
        pending.resolve(AcceptStatus.SUCCESS)

    def _accept_acked(
        self, pending: PendingAccept, delivered: DeliveredRequest
    ) -> None:
        if self._accept_stale(pending, delivered):
            return
        if pending.wait_for == "ack":
            self._set_delivered_state(delivered, DeliveredState.DONE)
            self.pending_accepts.pop(pending.sig, None)
            pending.resolve(AcceptStatus.SUCCESS)
        # wait_for == "data": resolution happens when the DATA arrives.

    def _accept_peer_dead(
        self, pending: PendingAccept, delivered: DeliveredRequest
    ) -> None:
        if self._accept_stale(pending, delivered):
            return
        delivered.reply_dead = True
        self._set_delivered_state(delivered, DeliveredState.DONE)
        self.pending_accepts.pop(pending.sig, None)
        pending.resolve(AcceptStatus.CRASHED)

    def _handle_data_packet(
        self, src: int, packet: Packet, conn: Connection
    ) -> None:
        if not self._accept_sequenced(conn, packet):
            return
        sig = RequesterSignature(src, packet.tid)
        pending = self.pending_accepts.pop(sig, None)
        if pending is None:
            return
        if packet.data is not None:
            pending.get_buffer.write(packet.data)
        delivered = self.delivered.get(sig)
        if delivered is not None:
            self._set_delivered_state(delivered, DeliveredState.DONE)
        pending.resolve(AcceptStatus.SUCCESS)

    # -- CANCEL ----------------------------------------------------------

    def client_cancel(self, req_sig: RequesterSignature) -> "SimFuture":
        """Blocking CANCEL; resolves to a CancelStatus."""
        future = self.sim.new_future()
        small = self.config.timing.protocol_send_us
        record = self.requests.get(req_sig.tid)
        if req_sig.mid != self.mid or record is None:
            self.sim.schedule(small, future.resolve, CancelStatus.FAIL)
            return future
        if record.state is RequestState.COMPLETED:
            self.sim.schedule(small, future.resolve, CancelStatus.FAIL)
            return future
        if record.state is RequestState.CANCELLED:
            self.sim.schedule(small, future.resolve, CancelStatus.SUCCESS)
            return future
        if record.state is RequestState.QUEUED:
            record.state = RequestState.CANCELLED
            self.sim.trace.record(
                self.sim.now, "kernel.cancelled", mid=self.mid, tid=record.tid
            )
            self.sim.schedule(small, future.resolve, CancelStatus.SUCCESS)
            return future
        record.pending_cancel = future
        if record.state is RequestState.DELIVERED:
            self._send_cancel_packet(record)
        # INFLIGHT: wait for the ack (then _request_acked sends the
        # cancel) or for a failure completion (then FAIL).
        return future

    def _send_cancel_packet(self, record: RequestRecord) -> None:
        conn = self._conn(record.server_sig.mid)
        packet = Packet(PacketType.CANCEL, tid=record.tid)
        conn.enqueue(
            OutboundMessage(
                packet,
                "cancel",
                on_dead=lambda: self._cancel_peer_dead(record),
            )
        )

    def _cancel_peer_dead(self, record: RequestRecord) -> None:
        # Server unreachable: the request will complete CRASHED through
        # its own machinery; report the cancel as failed.
        if record.pending_cancel is not None:
            record.pending_cancel.resolve(CancelStatus.FAIL)
            record.pending_cancel = None

    def _handle_cancel_packet(
        self, src: int, packet: Packet, conn: Connection
    ) -> None:
        if not self._accept_sequenced(conn, packet):
            return
        sig = RequesterSignature(src, packet.tid)
        delivered = self.delivered.get(sig)
        ok = delivered is not None and delivered.state is DeliveredState.DELIVERED
        if ok:
            self._set_delivered_state(delivered, DeliveredState.CANCELLED)
        reply = Packet(
            PacketType.CANCEL_REPLY,
            tid=packet.tid,
            arg=1 if ok else 0,
        )
        conn.attach_piggyback(reply)
        self.transmit_packet(src, reply, sequenced=False)

    def _handle_cancel_reply(self, src: int, packet: Packet) -> None:
        record = self.requests.get(packet.tid)
        if record is None or record.pending_cancel is None:
            return
        future, record.pending_cancel = record.pending_cancel, None
        if packet.arg == 1 and record.open:
            record.state = RequestState.CANCELLED
            self._stop_probing(record)
            self.sim.trace.record(
                self.sim.now, "kernel.cancelled", mid=self.mid, tid=record.tid
            )
            future.resolve(CancelStatus.SUCCESS)
        else:
            future.resolve(CancelStatus.FAIL)

    # -- probes (§3.6.2) ---------------------------------------------------

    def _schedule_probe(self, record: RequestRecord) -> None:
        self._stop_probing(record)
        record.probe_timer = self.sim.schedule(
            self.config.probe_interval_us, self._probe_fire, record
        )

    def _stop_probing(self, record: RequestRecord) -> None:
        for attr in ("probe_timer", "probe_deadline"):
            timer = getattr(record, attr)
            if timer is not None:
                timer.cancel()
                setattr(record, attr, None)

    def _probe_fire(self, record: RequestRecord) -> None:
        record.probe_timer = None
        if record.state is not RequestState.DELIVERED:
            return
        packet = Packet(PacketType.PROBE, tid=record.tid)
        self.transmit_packet(record.server_sig.mid, packet, sequenced=False)
        record.probe_deadline = self.sim.schedule(
            self.config.retransmit.ack_timeout_us, self._probe_timeout, record
        )

    def _probe_timeout(self, record: RequestRecord) -> None:
        record.probe_deadline = None
        if record.state is not RequestState.DELIVERED:
            return
        record.probe_failures += 1
        if record.probe_failures >= self.config.probe_failures_to_crash:
            self._complete_request_failure(
                record, RequestStatus.CRASHED, reason="probe_timeout"
            )
        else:
            self._probe_fire(record)

    def _handle_probe(self, src: int, packet: Packet, conn: Connection) -> None:
        sig = RequesterSignature(src, packet.tid)
        delivered = self.delivered.get(sig)
        alive = (
            delivered is not None
            and not delivered.reply_dead
            and delivered.state
            in (
                DeliveredState.DELIVERED,
                DeliveredState.ACCEPTED,
                DeliveredState.DONE,
            )
        )
        if alive:
            arg = 1
        elif sig in self.crashed_unaccepted:
            # The previous incarnation died holding this REQUEST
            # DELIVERED but never ACCEPTed: the handler provably never
            # ran, so tell the requester a retry is safe.
            arg = 2
        else:
            arg = 0
        reply = Packet(
            PacketType.PROBE_REPLY,
            tid=packet.tid,
            arg=arg,
            # Which incarnation is vouching: a reply carrying a newer
            # epoch than the delivery proves the answering kernel is not
            # the one that holds the REQUEST (repro.analysis.causal).
            epoch=self.epoch,
        )
        conn.attach_piggyback(reply)
        self.transmit_packet(src, reply, sequenced=False)

    def _handle_probe_reply(self, src: int, packet: Packet) -> None:
        record = self.requests.get(packet.tid)
        if record is None or record.state is not RequestState.DELIVERED:
            return
        if record.probe_deadline is not None:
            record.probe_deadline.cancel()
            record.probe_deadline = None
        if packet.arg == 1:
            record.probe_failures = 0
            self._schedule_probe(record)
        elif packet.arg == 2:
            self._complete_request_failure(
                record,
                RequestStatus.CRASHED,
                reason="probe_crashed_unaccepted",
                not_executed=True,
            )
        else:
            self._complete_request_failure(
                record, RequestStatus.CRASHED, reason="probe_denied"
            )

    # -- DISCOVER (§3.4.4, §5.3) ------------------------------------------

    def _start_discover(self, record: RequestRecord) -> None:
        token = next(self._discover_tokens)
        state = DiscoverState(record=record)
        state.timer = self.sim.schedule(
            self.config.discover_window_us, self._discover_done, token
        )
        self._discovers[token] = state
        packet = Packet(
            PacketType.DISCOVER_QUERY,
            pattern=record.server_sig.pattern,
            query_token=token,
            requester_mid=self.mid,
        )
        record.state = RequestState.INFLIGHT
        self.transmit_packet(BROADCAST_MID, packet, sequenced=False)

    def _handle_discover_query(self, src: int, packet: Packet) -> None:
        pattern = packet.pattern
        matched = self.patterns.matches(pattern) or (
            is_reserved(pattern) and self._reserved_discoverable(pattern)
        )
        if not matched:
            return
        # Staggered replies avoid a response collision storm (§5.3).
        delay = self.mid * self.config.discover_stagger_us
        reply = Packet(
            PacketType.DISCOVER_REPLY,
            reply_mid=self.mid,
            query_token=packet.query_token,
        )
        self.sim.schedule(
            delay, self.transmit_packet, src, reply, 0, False
        )

    def _reserved_discoverable(self, pattern: Pattern) -> bool:
        if self._boot_active and pattern in self.boot_patterns:
            return True
        return False

    def _handle_discover_reply(self, src: int, packet: Packet) -> None:
        state = self._discovers.get(packet.query_token)
        if state is None:
            return
        state.mids.add(packet.reply_mid)

    def _discover_done(self, token: int) -> None:
        state = self._discovers.pop(token, None)
        if state is None:
            return
        record = state.record
        if not record.open:
            return
        record.state = RequestState.COMPLETED
        record.completion_status = RequestStatus.COMPLETED
        data = mids_to_bytes(sorted(state.mids))
        taken = record.get_buffer.write(data)
        self.sim.trace.record(
            self.sim.now,
            "kernel.complete",
            mid=self.mid,
            tid=record.tid,
            status=RequestStatus.COMPLETED.value,
            arg=0,
            taken_put=0,
            taken_get=taken,
        )
        event = HandlerEvent(
            reason=HandlerReason.REQUEST_COMPLETE,
            asker=RequesterSignature(self.mid, record.tid),
            status=RequestStatus.COMPLETED,
            arg=0,
            taken_get=taken,
        )
        self._deliver_completion(event)

    # ==================================================================
    # reserved patterns: boot / load / kill / system (§3.5)
    # ==================================================================

    def _handle_reserved_request(
        self, src: int, packet: Packet, conn: Connection
    ) -> None:
        pattern = packet.pattern
        if pattern == self.kill_pattern:
            self._kernel_accept(src, packet)
            self._kill_client()
            return
        if pattern in self.boot_patterns:
            if not self._boot_active:
                conn.send_nack(NackCode.UNADVERTISED, tid=packet.tid)
                return
            self._begin_load(src, packet)
            return
        if self._load is not None and pattern == self._load.load_pattern:
            self._handle_load_request(src, packet)
            return
        if pattern == SYSTEM_PATTERN:
            self._handle_system_request(src, packet, conn)
            return
        if (
            pattern == KERNEL_RMR_PATTERN
            and self.config.kernel_rmr
            and self.rmr_memory is not None
        ):
            self._handle_kernel_rmr(src, packet, conn)
            return
        conn.send_nack(NackCode.UNADVERTISED, tid=packet.tid)

    def _handle_kernel_rmr(self, src: int, packet: Packet, conn: Connection) -> None:
        """§6.17.2: PEEK (GET) / POKE (PUT) served by the kernel.

        Unlike other reserved patterns, CLOSE gates access — that is the
        synchronization mechanism the paper proposes for protecting
        critical sections against remote references.
        """
        if not self.handler_open:
            # CLOSEd: REJECT so the requester retries with a fresh
            # REQUEST (carrying its data again); a transport-level BUSY
            # here would strip POKE data from the retransmission.
            self._kernel_reject(src, packet)
            return
        memory = self.rmr_memory
        address = packet.arg
        if address < 0 or address > len(memory):
            self._kernel_reject(src, packet)
            return
        if packet.put_size > 0:
            # POKE: install the bytes (they rode with the REQUEST).
            data = packet.data or b""
            nbytes = min(len(data), len(memory) - address)
            memory[address : address + nbytes] = data[:nbytes]
            self.ledger.charge(
                "protocol", self.config.timing.copy_cost_us(nbytes)
            )
            self._kernel_accept(src, packet)
        else:
            nbytes = min(packet.get_size, len(memory) - address)
            chunk = bytes(memory[address : address + nbytes])
            self.ledger.charge(
                "protocol", self.config.timing.copy_cost_us(nbytes)
            )
            self._kernel_accept(src, packet, data=chunk)

    def client_register_rmr_memory(self, memory: bytearray) -> None:
        """Expose client memory to the kernel RMR handler (§6.17.2)."""
        if not self.config.kernel_rmr:
            raise SodaError("kernel_rmr is disabled in this configuration")
        self.rmr_memory = memory

    def _begin_load(self, src: int, packet: Packet) -> None:
        # GET on a boot pattern: mint a LOAD pattern, make it reserved,
        # retire the boot patterns, and hand the load pattern back.
        load_pattern = (
            self.uidgen.next_pattern() | (1 << 47)
        )  # convert to a RESERVED pattern (§3.5.2)
        self._load = LoadState(load_pattern=load_pattern, parent_mid=src)
        self._boot_active = False
        self.sim.trace.record(
            self.sim.now, "kernel.boot_granted", mid=self.mid, parent=src
        )
        self._kernel_accept(src, packet, data=pattern_to_bytes(load_pattern))

    def _handle_load_request(self, src: int, packet: Packet) -> None:
        load = self._load
        assert load is not None
        if packet.put_size > 0:
            # A PUT of core-image bytes (possibly carrying the simulated
            # ProgramImage object).
            if packet.image is not None:
                load.image = packet.image
            load.bytes_received += packet.put_size
            self._kernel_accept(src, packet)
            return
        # A SIGNAL: first one starts the client, the second kills it.
        if not load.started:
            if self.client is not None and not self.client.dead:
                # The boot was superseded: another parent installed a
                # client while this load was in flight (e.g. a chaos
                # Reboot racing a supervisor reboot).  REJECT instead of
                # starting a second client on a live node.
                self._load = None
                self._kernel_reject(src, packet)
                return
            load.started = True
            self._kernel_accept(src, packet)
            self._start_loaded_client(load)
        else:
            self._kernel_accept(src, packet)
            self._kill_client()

    def _start_loaded_client(self, load: LoadState) -> None:
        if self.node is None:
            raise SodaError("kernel has no node; cannot start booted clients")
        self.sim.trace.record(
            self.sim.now, "kernel.boot_start", mid=self.mid, parent=load.parent_mid
        )
        self.node.start_booted_client(load.image, load.parent_mid)

    def _handle_system_request(
        self, src: int, packet: Packet, conn: Connection
    ) -> None:
        # Only machine 0 may alter reserved patterns (§3.5.4).
        if src != 0:
            conn.send_nack(NackCode.UNADVERTISED, tid=packet.tid)
            return
        action = packet.arg
        if action == SYSTEM_ADD_BOOT and packet.data:
            pattern = pattern_from_bytes(packet.data)
            if pattern not in self.boot_patterns:
                self.boot_patterns.append(pattern)
        elif action == SYSTEM_DELETE_BOOT and packet.data:
            pattern = pattern_from_bytes(packet.data)
            if pattern in self.boot_patterns:
                self.boot_patterns.remove(pattern)
        elif action == SYSTEM_REPLACE_KILL and packet.data:
            self.kill_pattern = pattern_from_bytes(packet.data)
        else:
            self._kernel_reject(src, packet)
            return
        self._kernel_accept(src, packet)

    def _kernel_accept(
        self, src: int, packet: Packet, arg: int = 0, data: Optional[bytes] = None
    ) -> None:
        """Complete a REQUEST kernel-side (reserved patterns)."""
        conn = self._conn(src)
        taken_get = min(len(data) if data else 0, packet.get_size)
        reply = Packet(
            PacketType.ACCEPT,
            tid=packet.tid,
            arg=arg,
            data=data[:taken_get] if data and taken_get else None,
            taken_put=packet.put_size,
            taken_get=taken_get,
        )
        conn.enqueue(OutboundMessage(reply, "accept"))

    def _kernel_reject(self, src: int, packet: Packet) -> None:
        self._kernel_accept(src, packet, arg=-1)

    # ==================================================================
    # client lifecycle
    # ==================================================================

    def attach_client(self, client: ClientProcessor) -> None:
        if self.client is not None and not self.client.dead:
            raise SodaError("node already has a live client")
        self.client = client
        self._boot_active = False
        self._tid_watermark = self.uidgen.counter
        self.handler_open = False
        self._handler_busy = False
        self._pending_handler_open = None

    def note_client_started(self) -> None:
        self.handler_open = True

    def client_die(self) -> None:
        """DIE: reset kernel state; the node becomes bootable again."""
        self.sim.trace.record(self.sim.now, "kernel.die", mid=self.mid)
        self._kill_client()

    def _kill_client(self) -> None:
        if self.client is not None:
            self.client.kill()
        self.client = None
        self._reset_client_state()

    def _reset_client_state(self) -> None:
        # Every TID issued so far belongs to the dead incarnation; an
        # ACCEPT naming one must be answered CRASHED, not CANCELLED
        # (§3.6.1 "stale" ACCEPTs).
        self.epoch += 1
        self.sim.trace.record(
            self.sim.now, "kernel.client_reset", mid=self.mid, epoch=self.epoch
        )
        self._tid_watermark = self.uidgen.counter
        self.patterns.clear()
        self.completion_queue.clear()
        for record in list(self.requests.values()):
            self._stop_probing(record)
            if record.open:
                # Trace the withdrawal so span reconstruction (and the
                # chaos liveness check) sees a terminal state for every
                # REQUEST the dead incarnation left in flight.
                self.sim.trace.record(
                    self.sim.now,
                    "kernel.cancelled",
                    mid=self.mid,
                    tid=record.tid,
                )
            record.state = RequestState.CANCELLED
        self.requests.clear()
        # Remember which exchanges died DELIVERED-but-unACCEPTed: their
        # handlers never ran, and probes answer arg=2 for them so the
        # requester learns the failure proves non-execution.  Only the
        # latest incarnation is remembered; older signatures fall back to
        # the ambiguous arg=0 answer, which is the safe direction.
        self.crashed_unaccepted = {
            sig
            for sig, delivered in self.delivered.items()
            if delivered.state is DeliveredState.DELIVERED
        }
        self.delivered.clear()
        # Open DISCOVER windows belong to the dead incarnation: cancel
        # their timers so late DISCOVER_REPLYs cannot touch dead state.
        for state in self._discovers.values():
            if state.timer is not None:
                state.timer.cancel()
        self._discovers.clear()
        for pending in list(self.pending_accepts.values()):
            if not pending.resolved:
                pending.resolved = True  # futures belong to the dead client
        self.pending_accepts.clear()
        if self.held is not None:
            held = self.held
            self.held = None
            if held.timer is not None:
                held.timer.cancel()
            self._conn(held.src).rollback_sequenced(held.packet)
            self._conn(held.src).forget_owed_ack(held.packet.seq)
        self.handler_open = False
        self._handler_busy = False
        self._pending_handler_open = None
        self._load = None
        self._boot_active = True
        self.rmr_memory = None

    # -- full node crash -----------------------------------------------------

    def crash_node(self) -> None:
        """Power failure: client and kernel state are lost; after the
        Delta-t quiet period the node may rejoin (§5.2.2)."""
        self._kill_client()
        # A power failure loses kernel memory too: the crashed-unaccepted
        # set does not survive, so post-recovery probes answer arg=0
        # (ambiguous), never a false "provably unexecuted".
        self.crashed_unaccepted.clear()
        for conn in self.connections.values():
            conn.reset()
        self.connections.clear()
        self._discovers.clear()
        quiet = self.config.deltat.crash_quiet_us
        self.offline_until = self.sim.now + quiet
        self.sim.trace.record(
            self.sim.now, "kernel.crash", mid=self.mid, quiet_us=quiet
        )
        self.sim.schedule(quiet, self._recover)

    def _recover(self) -> None:
        self.offline_until = None
        self.uidgen.reboot(self.uidgen.counter + 1)
        self._boot_active = self.client is None
        self.sim.trace.record(self.sim.now, "kernel.recovered", mid=self.mid)

    def __repr__(self) -> str:
        return f"<SodaKernel mid={self.mid} {self.machine_type}>"
