"""Arg-packed wire encodings for the replicated KV store.

SODA's ACCEPT moves data *and* completes the request in one atomic
step (§4.1.2): a server cannot read a request's payload before fixing
its reply.  Every decision a replica makes at arrival time must
therefore be computable from the 64-bit REQUEST argument plus local
state alone.  This module packs the whole client operation — opcode,
key, token, CAS expectation — and the whole replication protocol
header — message type, epochs, log offsets — into that argument
(the wire codec carries ``arg`` as a signed 64-bit ``!q``, leaving 63
usable bits for non-negative values).

Log *entries* do travel as payload (APPEND put-data, FETCH get-data),
but only on paths where the receiver can fix its reply argument from
the header first and parse the bytes after the transfer completes.

Tokens are the at-most-once identity of a write: ``(client MID,
client sequence number)`` packed into 28 bits.  A token doubles as the
stored *value*, so GET replies also fit in the argument — the KV
analogue of the §3.6.1 tid-watermark discipline, where identity, not
payload, is what retry safety hangs on.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Tuple

from repro.core.patterns import Pattern, make_well_known_pattern

#: Clients find the current primary here; only the primary advertises it.
KV_PATTERN: Pattern = make_well_known_pattern(0o353)
#: Every live replica advertises this: replication, votes, supervision.
REPL_PATTERN: Pattern = make_well_known_pattern(0o354)

# -- client operations --------------------------------------------------

OP_NOOP = 0  # epoch barrier entries only; never issued by clients
OP_GET = 1
OP_PUT = 2
OP_CAS = 3

OP_NAMES = {OP_NOOP: "noop", OP_GET: "get", OP_PUT: "put", OP_CAS: "cas"}

#: ACCEPT argument for "CAS expectation did not match" (distinct from
#: the SODAL REJECT of -1, which means "not applied, retry elsewhere").
REPLY_CAS_FAIL = -2

_TOKEN_BITS = 28
_TOKEN_MASK = (1 << _TOKEN_BITS) - 1
_SEQ_BITS = 20
_SEQ_MASK = (1 << _SEQ_BITS) - 1


def make_token(mid: int, seq: int) -> int:
    """The write's at-most-once identity: 8-bit MID | 20-bit sequence."""
    return ((mid & 0xFF) << _SEQ_BITS) | (seq & _SEQ_MASK)


def token_mid(token: int) -> int:
    return (token >> _SEQ_BITS) & 0xFF


def token_seq(token: int) -> int:
    return token & _SEQ_MASK


def pack_op(op: int, key: int, token: int = 0, expected: int = 0) -> int:
    """Client request argument: op(3) | key(4) | token(28) | expected(28)."""
    return (
        (op & 0x7) << 60
        | (key & 0xF) << 56
        | (token & _TOKEN_MASK) << _TOKEN_BITS
        | (expected & _TOKEN_MASK)
    )


def unpack_op(arg: int) -> Tuple[int, int, int, int]:
    """Returns ``(op, key, token, expected)``."""
    return (
        (arg >> 60) & 0x7,
        (arg >> 56) & 0xF,
        (arg >> _TOKEN_BITS) & _TOKEN_MASK,
        arg & _TOKEN_MASK,
    )


def pack_result(version: int, token: int) -> int:
    """Reply argument for a served op: version(≥0) | value token(28)."""
    return (version << _TOKEN_BITS) | (token & _TOKEN_MASK)


def unpack_result(arg: int) -> Tuple[int, int]:
    """Returns ``(version, token)``."""
    return arg >> _TOKEN_BITS, arg & _TOKEN_MASK


# -- replication messages (REPL_PATTERN) --------------------------------

MSG_APPEND = 1
MSG_CONFIRM = 2
MSG_VOTE = 3
MSG_FETCH = 4
MSG_TAKEOVER = 5

_EPOCH_MASK = (1 << 14) - 1
_INDEX_MASK = (1 << 24) - 1


@dataclass(frozen=True)
class ReplHeader:
    """Decoded replication-message argument."""

    msg: int
    epoch: int = 0
    prev_epoch: int = 0
    from_index: int = 0
    count: int = 0


def pack_repl(
    msg: int,
    epoch: int = 0,
    prev_epoch: int = 0,
    from_index: int = 0,
    count: int = 0,
) -> int:
    """msg(3) | epoch(14) | prev_epoch(14) | from_index(24) | count(8)."""
    return (
        (msg & 0x7) << 60
        | (epoch & _EPOCH_MASK) << 46
        | (prev_epoch & _EPOCH_MASK) << 32
        | (from_index & _INDEX_MASK) << 8
        | (count & 0xFF)
    )


def unpack_repl(arg: int) -> ReplHeader:
    return ReplHeader(
        msg=(arg >> 60) & 0x7,
        epoch=(arg >> 46) & _EPOCH_MASK,
        prev_epoch=(arg >> 32) & _EPOCH_MASK,
        from_index=(arg >> 8) & _INDEX_MASK,
        count=arg & 0xFF,
    )


# APPEND acknowledgements (the ACCEPT argument, fixed at arrival):
ACK_OK = 0  # header consistent; payload taken (applied post-transfer)
ACK_GAP = 1  # from_index beyond my log; value = my log length
ACK_FENCED = 2  # your epoch is stale; value = my epoch
ACK_MISMATCH = 3  # prev_epoch conflicts; value = my commit (safe restart)


def pack_ack(code: int, value: int = 0) -> int:
    return (code & 0x3) << 32 | (value & 0xFFFFFFFF)


def unpack_ack(arg: int) -> Tuple[int, int]:
    return (arg >> 32) & 0x3, arg & 0xFFFFFFFF


@dataclass(frozen=True)
class Status:
    """Decoded CONFIRM/VOTE reply: a replica's log fingerprint.

    ``granted`` means the replica adopted the message's epoch (a vote
    grant, or a confirm under a current primary).  ``last_epoch`` +
    ``length`` are the Raft-style up-to-date comparison and — because
    same-(index, epoch) entries are unique — a *fingerprint*: a primary
    counts ``length`` as replicated only if its own entry at
    ``length - 1`` carries ``last_epoch``.
    """

    granted: bool
    epoch: int
    last_epoch: int
    length: int


def pack_status(granted: bool, epoch: int, last_epoch: int, length: int) -> int:
    return (
        (1 if granted else 0) << 52
        | (epoch & _EPOCH_MASK) << 38
        | (last_epoch & _EPOCH_MASK) << 24
        | (length & _INDEX_MASK)
    )


def unpack_status(arg: int) -> Status:
    return Status(
        granted=bool((arg >> 52) & 0x1),
        epoch=(arg >> 38) & _EPOCH_MASK,
        last_epoch=(arg >> 24) & _EPOCH_MASK,
        length=arg & _INDEX_MASK,
    )


# -- log entries (payload codec) ----------------------------------------


@dataclass(frozen=True)
class Entry:
    """One replicated log entry.  ``token`` identifies the write."""

    epoch: int
    op: int
    key: int
    token: int
    expected: int = 0


_ENTRY = struct.Struct("!HBBII")  # epoch, op, key, token, expected
_HEADER = struct.Struct("!I")  # sender's commit index

ENTRY_BYTES = _ENTRY.size
#: Entries per APPEND/FETCH batch; bounds the payload at ~0.5 KiB.
BATCH_ENTRIES = 40


def encode_entries(commit: int, entries: List[Entry]) -> bytes:
    out = [_HEADER.pack(commit)]
    for e in entries:
        out.append(_ENTRY.pack(e.epoch, e.op, e.key, e.token, e.expected))
    return b"".join(out)


def decode_entries(data: bytes) -> Tuple[int, List[Entry]]:
    """Returns ``(sender_commit, entries)``; tolerant of a short tail
    (a truncated transfer yields the entries that fully arrived)."""
    if len(data) < _HEADER.size:
        return 0, []
    (commit,) = _HEADER.unpack_from(data, 0)
    entries = []
    offset = _HEADER.size
    while offset + ENTRY_BYTES <= len(data):
        epoch, op, key, token, expected = _ENTRY.unpack_from(data, offset)
        entries.append(Entry(epoch, op, key, token, expected))
        offset += ENTRY_BYTES
    return commit, entries
