"""The KV consistency verdict: replay acknowledged operations.

The KV analogue of the at-most-once ledger: replicas record every
committed application (``kv.apply``) and clients record every
operation and its definitive outcome (``kv.invoke`` / ``kv.result``).
This checker replays the merged trace — it works identically on a sim
trace and on the netreal runner's epoch-merged multi-process trace —
and fails the run on:

* **divergent commit** — two replicas applied different entries at the
  same log index (the replication safety property itself);
* **lost acknowledged write** — a client was told ``ok`` for a write
  whose token no replica ever committed, or committed under a
  different version than acknowledged;
* **double-applied write** — one token applied at two log indexes
  (an at-most-once violation: some retry path re-executed);
* **CAS liveness lies** — a CAS acknowledged as failed that actually
  mutated state;
* **stale read** — a GET invoked after a write's acknowledgement that
  returned an older version of the key, or a value token that never
  was the committed value at the returned version;
* **acked write lost to total state loss** — every replica that ever
  applied an acknowledged write lost its state afterwards
  (``kernel.crash`` / ``kernel.die``) and the write was never applied
  again, while the cluster demonstrably kept running.  This is the
  silent-empty-store-after-full-cluster-crash case: before durable
  storage (repro.durability) a simultaneous power loss of all replicas
  erased acknowledged history with nobody left to contradict, and every
  other rule here passed vacuously.  Recovery replay re-emits
  ``kv.apply`` for everything it restores, so a durably rebooted node
  counts as holding its writes again.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

__all__ = ["check_kv_consistency", "kv_summary"]


def check_kv_consistency(records) -> List[str]:
    """Replay ``kv.*`` trace records; returns violation strings."""
    problems: List[str] = []
    apply_by_index: Dict[int, Tuple] = {}
    applied_sites: Dict[int, Set[int]] = {}
    #: token -> {mid: latest kv.apply time} — who holds each write.
    apply_holders: Dict[int, Dict[int, float]] = {}
    #: mid -> times its state was erased (power loss or client death).
    state_loss: Dict[int, List[float]] = {}
    apply_times: List[float] = []
    write_results = []
    read_results = []
    for rec in records:
        category = rec.category
        if category == "kv.apply":
            index = rec["index"]
            info = (
                rec["epoch"], rec["op"], rec["key"], rec["token"],
                rec["version"], rec["applied"],
            )
            previous = apply_by_index.get(index)
            if previous is None:
                apply_by_index[index] = info
            elif previous != info:
                problems.append(
                    f"divergent commit at log index {index}: "
                    f"{previous} vs {info}"
                )
            apply_times.append(rec.time)
            if rec["applied"] and rec["op"] in ("put", "cas"):
                applied_sites.setdefault(rec["token"], set()).add(index)
                holders = apply_holders.setdefault(rec["token"], {})
                holders[rec["mid"]] = rec.time
        elif category in ("kernel.crash", "kernel.die"):
            state_loss.setdefault(rec["mid"], []).append(rec.time)
        elif category == "kv.result":
            entry = (
                rec.time, rec.get("invoked_at", rec.time), rec["mid"],
                rec["seq"], rec["op"], rec["key"], rec["status"],
                rec["version"], rec["token"], rec.get("wtoken", 0),
            )
            if rec["op"] == "get":
                read_results.append(entry)
            else:
                write_results.append(entry)

    for token, sites in applied_sites.items():
        if len(sites) > 1:
            problems.append(
                f"write token {token} applied at log indexes "
                f"{sorted(sites)} (at-most-once violation)"
            )

    #: version -> (key, token) over applied writes; versions are log
    #: positions, so each maps to exactly one committed value.
    value_at_version: Dict[int, Tuple[int, int]] = {}
    for index, info in sorted(apply_by_index.items()):
        _epoch, op, key, token, version, applied = info
        if applied and op in ("put", "cas"):
            value_at_version[version] = (key, token)

    #: per key: (ack time, version) of definitively acknowledged writes.
    acked_versions: Dict[int, List[Tuple[float, int]]] = {}
    for (t_ack, _t0, mid, seq, op, key, status, version, _vtok, wtoken) in (
        write_results
    ):
        where = f"{op} (mid={mid}, seq={seq}, key={key})"
        if status == "ok":
            sites = applied_sites.get(wtoken, set())
            if not sites:
                problems.append(
                    f"lost acknowledged write: {where} acked at "
                    f"version {version} but never committed"
                )
            elif value_at_version.get(version) != (key, wtoken):
                problems.append(
                    f"acknowledged write {where} reports version "
                    f"{version}, but the commit there is "
                    f"{value_at_version.get(version)}"
                )
            acked_versions.setdefault(key, []).append((t_ack, version))
        elif status == "cas_fail" and wtoken in applied_sites:
            problems.append(
                f"CAS acked as failed but applied: {where} at log "
                f"indexes {sorted(applied_sites[wtoken])}"
            )

    # Post-total-crash durability: every acked write must still have a
    # *holder* — a replica whose latest application of it was not
    # followed by a state-loss event.  If all holders died and any
    # replica applied anything afterwards (the cluster came back and
    # ran on without the write), the write was silently lost.  A dark
    # cluster (no applies after the loss) is unavailability, not loss,
    # and is judged by the liveness/availability checks instead.
    last_apply = max(apply_times) if apply_times else float("-inf")
    reported_lost: Set[int] = set()
    for (_t_ack, _t0, mid, seq, op, key, status, _v, _vtok, wtoken) in (
        write_results
    ):
        if status != "ok" or wtoken in reported_lost:
            continue
        holders = apply_holders.get(wtoken)
        if not holders:
            continue  # already reported as lost-acknowledged-write
        loss_time = float("-inf")
        held = False
        for site, applied_at in holders.items():
            erased_at = next(
                (t for t in state_loss.get(site, ()) if t > applied_at),
                None,
            )
            if erased_at is None:
                held = True
                break
            loss_time = max(loss_time, erased_at)
        if held or last_apply <= loss_time:
            continue
        reported_lost.add(wtoken)
        problems.append(
            f"acknowledged write lost to total state loss: {op} "
            f"(mid={mid}, seq={seq}, key={key}) was applied only on "
            f"replicas that all lost state by t={loss_time:.0f}, and "
            f"the cluster kept running without it"
        )

    for (_t_ack, t0, mid, seq, _op, key, status, version, vtok, _w) in (
        read_results
    ):
        if status != "ok":
            continue
        floor = 0
        for t_w, v_w in acked_versions.get(key, ()):
            if t_w <= t0 and v_w > floor:
                floor = v_w
        if version < floor:
            problems.append(
                f"stale read: get (mid={mid}, seq={seq}, key={key}) "
                f"invoked at t={t0:.0f} returned version {version} "
                f"after version {floor} was acknowledged"
            )
        if version > 0 and value_at_version.get(version) != (key, vtok):
            problems.append(
                f"phantom read: get (mid={mid}, seq={seq}, key={key}) "
                f"returned (version={version}, token={vtok}) but the "
                f"commit there is {value_at_version.get(version)}"
            )
    return problems


def kv_summary(records) -> Dict[str, object]:
    """Operation accounting for reports and the kv bench."""
    invoked = 0
    outcomes: Dict[str, int] = {}
    commits = 0
    promotions = 0
    for rec in records:
        if rec.category == "kv.invoke":
            invoked += 1
        elif rec.category == "kv.result":
            status = rec["status"]
            outcomes[status] = outcomes.get(status, 0) + 1
        elif rec.category == "kv.apply":
            commits += 1
        elif rec.category == "kv.promote":
            promotions += 1
    definitive = outcomes.get("ok", 0) + outcomes.get("cas_fail", 0)
    return {
        "ops_invoked": invoked,
        "outcomes": dict(sorted(outcomes.items())),
        "ops_definitive": definitive,
        "availability": (definitive / invoked) if invoked else 1.0,
        "entries_applied": commits,
        "promotions": promotions,
    }
