"""The replicated key-value replica program.

Primary-backup replication with epoch fencing over unreliable
broadcast, built only from SODA primitives:

* Clients REQUEST against :data:`~repro.replication.wire.KV_PATTERN`
  (advertised by the primary alone); the whole operation rides in the
  request argument (see :mod:`repro.replication.wire`), so the handler
  decides everything at arrival and never needs the payload.
* Writes append to an epoch-stamped in-memory log.  The handler only
  queues; the task replicates (APPEND), collects log *fingerprints*
  (CONFIRM), and acknowledges a write once a quorum of replicas holds
  it — the paper's handler/task split (§4.4.5).
* Commitment is fenced the Raft way: a CONFIRM reply claims the
  replica's current epoch, and an epoch is granted away (VOTE) before
  any rival can be promoted, so a deposed primary can never assemble a
  quorum of current-epoch confirmations for an unreplicated write.
  Commit only advances onto an entry of the primary's own epoch (each
  promotion appends a no-op barrier entry to make that live).
* Reads are linearizable via the read-index discipline: a GET parks at
  arrival and is served from committed state only after a quorum
  confirmation round that *started* after the read arrived.
* A rebooted or deposed replica rejoins by anti-entropy: APPEND
  carries a ``prev_epoch`` consistency check, conflicts truncate the
  uncommitted suffix, and gaps walk the sender back — the log-matching
  property keeps committed prefixes identical everywhere.

At-most-once: every write carries a client token; a token lives in the
log at most once (the dedup table is exactly the log's token index and
is rebuilt by replay wherever the log goes), so client retries across
failovers — including retries of MAYBE outcomes — are always safe.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.buffers import Buffer
from repro.core.client import ClientProgram
from repro.core.errors import RequestStatus, SodaError
from repro.core.signatures import ServerSignature
from repro.durability.state import ReplicaStorage
from repro.replication.wire import (
    ACK_FENCED,
    ACK_GAP,
    ACK_MISMATCH,
    ACK_OK,
    BATCH_ENTRIES,
    ENTRY_BYTES,
    KV_PATTERN,
    MSG_APPEND,
    MSG_CONFIRM,
    MSG_FETCH,
    MSG_TAKEOVER,
    MSG_VOTE,
    OP_CAS,
    OP_GET,
    OP_NOOP,
    OP_NAMES,
    REPL_PATTERN,
    REPLY_CAS_FAIL,
    Entry,
    decode_entries,
    encode_entries,
    pack_ack,
    pack_repl,
    pack_result,
    pack_status,
    unpack_ack,
    unpack_op,
    unpack_repl,
    unpack_status,
)

__all__ = ["KvReplica"]


class KvReplica(ClientProgram):
    """One replica of the primary-backup KV store.

    ``peer_mids`` are the other replicas; ``quorum`` counts *replicas
    including self* that must hold a write before it is acknowledged.
    ``claim_primary`` runs the takeover protocol at boot (the seed
    primary, and the self-promotion path after an amnesiac reboot —
    the claim only succeeds against a vote quorum, so a stale image
    can never split the brain).
    """

    def __init__(
        self,
        index: int,
        peer_mids: Tuple[int, ...],
        quorum: int = 2,
        claim_primary: bool = False,
        repl_interval_us: float = 20_000.0,
        write_deadline_us: float = 2_500_000.0,
        read_deadline_us: float = 1_200_000.0,
        snapshot_interval: int = 64,
        fsync_policy: str = "batch",
    ) -> None:
        self.index = index
        self.peer_mids = tuple(peer_mids)
        self.quorum = quorum
        self.claim_primary = claim_primary
        self.repl_interval_us = repl_interval_us
        self.write_deadline_us = write_deadline_us
        self.read_deadline_us = read_deadline_us
        self.snapshot_interval = snapshot_interval
        self.fsync_policy = fsync_policy
        #: Durable storage, bound at initialization when the node has a
        #: disk; None on diskless nodes (the amnesiac SODA default).
        self.storage: Optional[ReplicaStorage] = None

        self.epoch = 0
        self.primary = False
        self.log: List[Entry] = []
        self.commit = 0
        #: key -> (version, value token) of committed state.
        self.values: Dict[int, Tuple[int, int]] = {}
        #: token -> log index, over the whole log (committed or not).
        self.dedup: Dict[int, int] = {}
        #: log index -> (status, version, token), committed entries only.
        self.results: Dict[int, Tuple[str, int, int]] = {}
        #: peer -> fingerprint-verified replicated length.
        self.matched: Dict[int, int] = {}
        #: peer -> next log index to APPEND from.
        self.next_index: Dict[int, int] = {}
        #: parked writes: (asker, log index, token, arrival time).
        self.waiters: List[Tuple[object, int, int, float]] = []
        #: parked reads: (asker, key, arrival time).
        self.pending_reads: List[Tuple[object, int, float]] = []
        self._takeover_requested = False
        self._quorum_confirmed_at = float("-inf")
        self._round_in_progress = False

    # -- program -------------------------------------------------------

    def initialization(self, api, parent_mid):
        disk = api.node_disk
        if disk is not None:
            self.storage = ReplicaStorage(
                disk,
                snapshot_interval=self.snapshot_interval,
                fsync_policy=self.fsync_policy,
            )
            recovered = self.storage.recover()
            if recovered is not None:
                # WAL-over-snapshot replay: rejoin with everything we
                # ever attested to holding, instead of §3.5.2 amnesia.
                self.epoch = recovered.epoch
                self.log = [Entry(*fields) for fields in recovered.log]
                self.dedup = {
                    entry.token: i
                    for i, entry in enumerate(self.log)
                    if entry.token
                }
                self._advance_commit_to(api, recovered.commit)
                self._trace(
                    api, "kv.recover",
                    epoch=self.epoch, entries=len(self.log),
                    commit=self.commit, clean=recovered.clean,
                    source=recovered.source,
                )
            else:
                self._trace(
                    api, "kv.recover",
                    epoch=0, entries=0, commit=0, clean=True,
                    source="amnesia",
                )
        yield from api.advertise(REPL_PATTERN)

    def handler(self, api, event):
        if not event.is_arrival:
            return
        if event.pattern == KV_PATTERN:
            yield from self._handle_kv(api, event)
        elif event.pattern == REPL_PATTERN:
            yield from self._handle_repl(api, event)

    def task(self, api):
        if self.claim_primary:
            yield from self._takeover(api)
        while True:
            if self._takeover_requested:
                self._takeover_requested = False
                if not self.primary:
                    yield from self._takeover(api)
            if self.primary:
                yield from self._replicate_round(api)
            yield from self._serve(api)
            yield api.compute(self.repl_interval_us)

    # -- client operations (KV_PATTERN) --------------------------------

    def _handle_kv(self, api, event):
        op, key, token, _expected = unpack_op(event.arg)
        asker = event.asker
        if op == OP_GET:
            if not self.primary:
                yield from self._reject(api, asker)
            else:
                self.pending_reads.append((asker, key, api.now))
            return
        if token in self.dedup:
            # A retry of a write already in the log: at-most-once means
            # we answer from the log, never append again.
            idx = self.dedup[token]
            if idx < self.commit:
                yield from self._reply_result(api, asker, idx)
            else:
                self.waiters.append((asker, idx, token, api.now))
            return
        if not self.primary:
            yield from self._reject(api, asker)
            return
        idx = len(self.log)
        entry = Entry(self.epoch, op, key, token, _expected)
        self.log.append(entry)
        self._persist_entry(idx, entry)
        self.dedup[token] = idx
        self.waiters.append((asker, idx, token, api.now))

    # -- replication traffic (REPL_PATTERN) ----------------------------

    def _handle_repl(self, api, event):
        header = unpack_repl(event.arg)
        asker = event.asker
        if header.msg == MSG_APPEND:
            yield from self._handle_append(api, asker, header, event.put_size)
        elif header.msg in (MSG_CONFIRM, MSG_VOTE):
            granted = False
            if header.msg == MSG_VOTE:
                # A vote grant *fences*: adopting the epoch here is what
                # stops a deposed primary from ever again assembling a
                # current-epoch confirmation quorum.
                if header.epoch > self.epoch:
                    yield from self._adopt(api, header.epoch)
                    granted = True
            elif header.epoch >= self.epoch:
                yield from self._adopt(api, header.epoch)
                granted = not (self.primary and header.epoch == self.epoch)
            # The reply below *attests* our state (a grant is a fencing
            # promise; a CONFIRM claims log possession) — everything it
            # claims must be durable before it leaves the node.
            self._persist_sync()
            last_epoch = self.log[-1].epoch if self.log else 0
            yield from self._accept_arg(
                api,
                asker,
                pack_status(granted, self.epoch, last_epoch, len(self.log)),
            )
        elif header.msg == MSG_FETCH:
            start = header.from_index
            entries = (
                self.log[start : start + BATCH_ENTRIES]
                if start <= len(self.log)
                else []
            )
            try:
                yield from api.accept_get(
                    asker,
                    arg=pack_ack(ACK_OK, len(self.log)),
                    put=encode_entries(self.commit, entries),
                )
            except SodaError:
                pass
        elif header.msg == MSG_TAKEOVER:
            self._takeover_requested = True
            yield from self._accept_arg(api, asker, 0)

    def _handle_append(self, api, asker, header, put_size):
        if header.epoch < self.epoch:
            yield from self._accept_arg(
                api, asker, pack_ack(ACK_FENCED, self.epoch)
            )
            return
        yield from self._adopt(api, header.epoch)
        if header.from_index > len(self.log):
            yield from self._accept_arg(
                api, asker, pack_ack(ACK_GAP, len(self.log))
            )
            return
        if (
            header.from_index > 0
            and self.log[header.from_index - 1].epoch != header.prev_epoch
        ):
            # Conflicting history at the join point: tell the sender to
            # restart from our commit, below which logs always agree.
            yield from self._accept_arg(
                api, asker, pack_ack(ACK_MISMATCH, self.commit)
            )
            return
        buf = Buffer(put_size)
        try:
            yield from api.accept_put(
                asker, arg=pack_ack(ACK_OK, len(self.log)), get=buf
            )
        except SodaError:
            return
        # The transfer blocked; a vote or a higher-epoch APPEND may have
        # fenced us meanwhile.  The ACK promised nothing about
        # application — commitment rides on CONFIRM fingerprints — so
        # dropping the batch here is always safe.
        if header.epoch < self.epoch or header.from_index > len(self.log):
            return
        if (
            header.from_index > 0
            and self.log[header.from_index - 1].epoch != header.prev_epoch
        ):
            return
        sender_commit, entries = decode_entries(buf.data)
        if self._append_entries(api, header.from_index, entries):
            self._advance_commit_to(api, min(sender_commit, len(self.log)))

    # -- log machinery -------------------------------------------------

    def _append_entries(self, api, from_index: int, entries: List[Entry]) -> bool:
        """Graft ``entries`` at ``from_index``; truncate conflicts.

        Same-(index, epoch) entries are unique (one writer per epoch),
        so an epoch match means the entry is already present.
        """
        i = from_index
        appended = 0
        for entry in entries:
            if i < len(self.log):
                if self.log[i].epoch == entry.epoch:
                    i += 1
                    continue
                if i < self.commit:
                    self._trace(api, "kv.error", reason="truncate_below_commit",
                                index=i, commit=self.commit)
                    return False
                self._truncate_to(api, i)
            self.log.append(entry)
            self._persist_entry(i, entry)
            if entry.token:
                self.dedup[entry.token] = i
            appended += 1
            i += 1
        if appended:
            self._trace(
                api, "kv.sync",
                from_index=from_index, appended=appended, length=len(self.log),
            )
        return True

    def _truncate_to(self, api, index: int) -> None:
        for entry in self.log[index:]:
            if entry.token and self.dedup.get(entry.token, -1) >= index:
                del self.dedup[entry.token]
        del self.log[index:]
        if self.storage is not None:
            self.storage.log_truncate(index)

    def _advance_commit_to(self, api, target: int) -> None:
        advanced = self.commit < target
        while self.commit < target:
            self._apply(api, self.commit)
            self.commit += 1
        if advanced and self.storage is not None:
            self.storage.log_commit(self.commit)
            self.storage.maybe_snapshot(self.epoch, self.commit, self.log)

    def _apply(self, api, index: int) -> None:
        entry = self.log[index]
        applied = False
        if entry.op == OP_NOOP:
            status, version, token = "ok", 0, 0
        elif entry.op == OP_CAS and (
            self.values.get(entry.key, (0, 0))[1] != entry.expected
        ):
            version, token = self.values.get(entry.key, (0, 0))
            status = "cas_fail"
        else:
            applied = True
            version, token = index + 1, entry.token
            self.values[entry.key] = (version, token)
            status = "ok"
        self.results[index] = (status, version, token)
        self._trace(
            api, "kv.apply",
            index=index, epoch=entry.epoch, op=OP_NAMES[entry.op],
            key=entry.key, token=entry.token, version=version,
            applied=applied,
        )

    # -- primary duty: replicate, confirm, commit ----------------------

    def _replicate_round(self, api):
        round_start = api.now
        epoch0 = self.epoch
        sends = []
        for mid in self.peer_mids:
            from_i = min(self.next_index.get(mid, 0), len(self.log))
            entries = self.log[from_i : from_i + BATCH_ENTRIES]
            prev_epoch = self.log[from_i - 1].epoch if from_i > 0 else 0
            tid = yield from api.request(
                ServerSignature(mid, REPL_PATTERN),
                arg=pack_repl(
                    MSG_APPEND, self.epoch, prev_epoch, from_i, len(entries)
                ),
                put=encode_entries(self.commit, entries),
            )
            sends.append((mid, from_i, len(entries), tid, api.watch_completion(tid)))
        for mid, from_i, count, tid, future in sends:
            completion = yield from api.wait_completion(tid, future)
            if self.epoch != epoch0 or not self.primary:
                return
            if (
                completion.status is not RequestStatus.COMPLETED
                or completion.arg < 0
            ):
                continue
            code, value = unpack_ack(completion.arg)
            if code == ACK_OK:
                self.next_index[mid] = from_i + count
            elif code in (ACK_GAP, ACK_MISMATCH):
                self.next_index[mid] = min(value, len(self.log))
            elif code == ACK_FENCED:
                yield from self._adopt(api, value)
                return
        # The quorum count below includes our own log length: make it
        # durable before counting ourselves, same as peers do before
        # their CONFIRM replies.
        self._persist_sync()
        confirms = []
        for mid in self.peer_mids:
            tid = yield from api.request(
                ServerSignature(mid, REPL_PATTERN),
                arg=pack_repl(MSG_CONFIRM, self.epoch),
            )
            confirms.append((mid, tid, api.watch_completion(tid)))
        granted = 0
        for mid, tid, future in confirms:
            completion = yield from api.wait_completion(tid, future)
            if self.epoch != epoch0 or not self.primary:
                return
            if (
                completion.status is not RequestStatus.COMPLETED
                or completion.arg < 0
            ):
                continue
            status = unpack_status(completion.arg)
            if status.epoch > self.epoch:
                yield from self._adopt(api, status.epoch)
                return
            if not status.granted or status.epoch != self.epoch:
                continue
            granted += 1
            length = status.length
            if length <= len(self.log) and (
                length == 0 or self.log[length - 1].epoch == status.last_epoch
            ):
                self.matched[mid] = length
                if self.next_index.get(mid, 0) < length:
                    self.next_index[mid] = length
            else:
                # Fingerprint disagrees: walk the peer back to commit.
                self.next_index[mid] = min(
                    self.next_index.get(mid, length), self.commit
                )
        if granted >= self.quorum - 1:
            self._quorum_confirmed_at = round_start
            lengths = sorted(
                [len(self.log)]
                + [self.matched.get(mid, 0) for mid in self.peer_mids],
                reverse=True,
            )
            candidate = lengths[self.quorum - 1]
            if (
                candidate > self.commit
                and self.log[candidate - 1].epoch == self.epoch
            ):
                self._advance_commit_to(api, candidate)

    # -- serving parked clients ----------------------------------------

    def _serve(self, api):
        now = api.now
        keep = []
        for waiter in self.waiters:
            asker, idx, token, arrived = waiter
            if idx < len(self.log) and self.log[idx].token != token:
                yield from self._reject(api, asker)  # entry was truncated
            elif idx < self.commit:
                yield from self._reply_result(api, asker, idx)
            elif (
                not self.primary
                or now - arrived > self.write_deadline_us
                or idx >= len(self.log)
            ):
                yield from self._reject(api, asker)
            else:
                keep.append(waiter)
        self.waiters = keep
        keep = []
        for read in self.pending_reads:
            asker, key, arrived = read
            if not self.primary or now - arrived > self.read_deadline_us:
                yield from self._reject(api, asker)
            elif self._quorum_confirmed_at >= arrived:
                version, token = self.values.get(key, (0, 0))
                yield from self._accept_arg(api, asker, pack_result(version, token))
            else:
                keep.append(read)
        self.pending_reads = keep

    def _reply_result(self, api, asker, index: int):
        status, version, token = self.results[index]
        arg = REPLY_CAS_FAIL if status == "cas_fail" else pack_result(version, token)
        yield from self._accept_arg(api, asker, arg)

    # -- takeover (vote, pull, claim) ----------------------------------

    def _takeover(self, api, attempts: int = 8):
        self._trace(api, "kv.takeover", epoch=self.epoch)
        for attempt in range(attempts):
            if self.primary:
                return True
            base = self.epoch
            proposed = base + 1
            votes = []
            for mid in self.peer_mids:
                tid = yield from api.request(
                    ServerSignature(mid, REPL_PATTERN),
                    arg=pack_repl(MSG_VOTE, proposed),
                )
                votes.append((mid, tid, api.watch_completion(tid)))
            granters = []
            seen_epoch = self.epoch
            statuses = {}
            for mid, tid, future in votes:
                completion = yield from api.wait_completion(tid, future)
                if (
                    completion.status is not RequestStatus.COMPLETED
                    or completion.arg < 0
                ):
                    continue
                status = unpack_status(completion.arg)
                statuses[mid] = status
                seen_epoch = max(seen_epoch, status.epoch)
                if status.granted and status.epoch == proposed:
                    granters.append(mid)
            if self.epoch != base:
                continue  # granted a rival (or got fenced) mid-round
            if len(granters) < self.quorum - 1:
                if seen_epoch > self.epoch:
                    self.epoch = seen_epoch
                    self._persist_epoch()
                yield api.compute(
                    50_000.0 * (attempt + 1) * (1.0 + 0.17 * self.index)
                )
                continue
            self.epoch = proposed
            self._persist_epoch()
            own_last = self.log[-1].epoch if self.log else 0
            best: Optional[int] = None
            best_key = (own_last, len(self.log))
            for mid in granters:
                status = statuses[mid]
                if (status.last_epoch, status.length) > best_key:
                    best, best_key = mid, (status.last_epoch, status.length)
            if best is not None:
                pulled = yield from self._pull_log(api, best, best_key[1])
                if not pulled or self.epoch != proposed:
                    continue
            self.primary = True
            self.matched = {}
            self.next_index = {mid: self.commit for mid in self.peer_mids}
            self._quorum_confirmed_at = float("-inf")
            # The barrier no-op: commit can only advance onto an entry
            # of the current epoch, and this guarantees there is one.
            barrier = Entry(self.epoch, OP_NOOP, 0, 0, 0)
            self.log.append(barrier)
            self._persist_entry(len(self.log) - 1, barrier)
            self._persist_sync()
            self._trace(api, "kv.promote", epoch=self.epoch, length=len(self.log))
            yield from api.advertise(KV_PATTERN)
            return True
        return False

    def _pull_log(self, api, mid: int, target_length: int):
        """Anti-entropy catch-up from a longer-logged granter."""
        start = self.commit
        epoch0 = self.epoch
        while start < target_length:
            buf = Buffer(ENTRY_BYTES * BATCH_ENTRIES + 8)
            completion = yield from api.b_exchange(
                ServerSignature(mid, REPL_PATTERN),
                arg=pack_repl(MSG_FETCH, from_index=start),
                get=buf,
            )
            if self.epoch != epoch0:
                return False
            if (
                completion.status is not RequestStatus.COMPLETED
                or completion.arg < 0
            ):
                return False
            _code, peer_length = unpack_ack(completion.arg)
            sender_commit, entries = decode_entries(buf.data)
            if not entries:
                return start >= peer_length
            if not self._append_entries(api, start, entries):
                return False
            self._advance_commit_to(api, min(sender_commit, len(self.log)))
            start += len(entries)
            target_length = min(target_length, peer_length)
        return True

    # -- durability hooks ----------------------------------------------
    #
    # All no-ops on a diskless node; on a full disk the storage flips
    # to degraded and they become no-ops again (availability over
    # durability — the replica keeps serving from memory).

    def _persist_entry(self, index: int, entry: Entry) -> None:
        if self.storage is not None:
            self.storage.log_entry(index, entry)

    def _persist_epoch(self) -> None:
        if self.storage is not None:
            self.storage.log_epoch(self.epoch)

    def _persist_sync(self) -> None:
        if self.storage is not None:
            self.storage.sync()

    # -- small helpers -------------------------------------------------

    def _adopt(self, api, epoch: int):
        """Adopt a (weakly) newer epoch; step down if we led an older one."""
        if epoch > self.epoch:
            self.epoch = epoch
            self._persist_epoch()
            self.matched = {}
            if self.primary:
                self.primary = False
                self._trace(api, "kv.demote", epoch=epoch)
                yield from api.unadvertise(KV_PATTERN)
        return
        yield  # pragma: no cover - keeps this a generator when epoch is old

    def _accept_arg(self, api, asker, arg: int):
        try:
            yield from api.accept_signal(asker, arg=arg)
        except SodaError:
            pass

    def _reject(self, api, asker):
        try:
            yield from api.reject(asker)
        except SodaError:
            pass

    def _trace(self, api, category: str, **fields) -> None:
        api.sim.trace.record(api.now, category, mid=api.my_mid, **fields)
