"""Supervision-driven failover for the replicated KV store.

:class:`KvFailoverSupervisor` extends the PR-4
:class:`~repro.recovery.supervisor.SupervisorProgram` — replicas are
ordinary supervised services (health-polled through their advertised
``REPL_PATTERN``, rebooted via BOOT/LOAD when their node dies) — with
one extra duty: watching ``KV_PATTERN`` for a live *primary*.  When the
primary stays undiscoverable for ``misses_to_promote`` consecutive
polls, the supervisor surveys the surviving replicas' log fingerprints
and nominates the most up-to-date one for takeover.

The supervisor nominates; it does not elect.  The nominee still has to
win a vote quorum (:meth:`KvReplica._takeover`), so a confused or
partitioned supervisor — or two supervisors — can never create two
primaries for one epoch: epoch grants are exclusive, and the fencing
they install is what deposes a stale primary resurfacing later.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.errors import RequestStatus
from repro.core.signatures import ServerSignature
from repro.recovery.supervisor import SupervisorProgram
from repro.replication.wire import (
    MSG_CONFIRM,
    MSG_TAKEOVER,
    KV_PATTERN,
    REPL_PATTERN,
    pack_repl,
    unpack_status,
)

__all__ = ["KvFailoverSupervisor"]


class KvFailoverSupervisor(SupervisorProgram):
    """Reboots dead replicas and nominates takeover candidates."""

    def __init__(
        self,
        services,
        replica_mids: Tuple[int, ...],
        quorum: int = 2,
        misses_to_promote: int = 3,
        **kwargs,
    ) -> None:
        super().__init__(services, **kwargs)
        self.replica_mids = tuple(replica_mids)
        self.quorum = quorum
        self.misses_to_promote = misses_to_promote
        self.promotions_sent = 0
        self._primary_misses = 0

    def task(self, api):
        while True:
            for service in self.services:
                yield from self._poll(api, service)
            yield from self._check_primary(api)
            yield api.compute(self.poll_interval_us)

    def _check_primary(self, api):
        mids = yield from api.discover_all(KV_PATTERN, max_replies=8)
        if mids:
            self._primary_misses = 0
            return
        self._primary_misses += 1
        if self._primary_misses < self.misses_to_promote:
            return
        self._primary_misses = 0
        # Survey fingerprints; a probe CONFIRM at epoch 0 is never a
        # grant, it just reads (epoch, last_epoch, length) back.
        statuses = {}
        for mid in self.replica_mids:
            completion = yield from api.b_signal(
                ServerSignature(mid, REPL_PATTERN),
                arg=pack_repl(MSG_CONFIRM, 0),
            )
            if (
                completion.status is RequestStatus.COMPLETED
                and completion.arg >= 0
            ):
                statuses[mid] = unpack_status(completion.arg)
        if len(statuses) < self.quorum:
            return  # too little of the cluster visible to elect safely
        best = max(
            statuses,
            key=lambda mid: (statuses[mid].last_epoch, statuses[mid].length),
        )
        api.sim.trace.record(
            api.now, "kv.takeover_sent",
            mid=api.my_mid, target=best,
            candidates=len(statuses),
        )
        self.promotions_sent += 1
        yield from api.b_signal(
            ServerSignature(best, REPL_PATTERN), arg=pack_repl(MSG_TAKEOVER)
        )
