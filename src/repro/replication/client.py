"""The KV store's client program: a paced stream of PUT/GET/CAS.

Retry discipline: every write carries a token minted once per
operation, so re-issuing it — against the same primary or a freshly
promoted one — is always safe; the replica log holds a token at most
once and answers retries from its result table.  A definitive outcome
is an ACCEPT argument (version/value, or the CAS-failed code); REJECT
and transport-level failures mean "not (visibly) applied here" and
drive re-discovery of the current primary.

Every operation leaves a ``kv.invoke`` record and exactly one
``kv.result`` record; the consistency checker
(:mod:`repro.replication.consistency`) replays them against the
replicas' ``kv.apply`` records.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.client import ClientProgram
from repro.core.errors import RequestStatus
from repro.core.signatures import ServerSignature
from repro.replication.wire import (
    KV_PATTERN,
    OP_CAS,
    OP_GET,
    OP_PUT,
    OP_NAMES,
    REPLY_CAS_FAIL,
    make_token,
    pack_op,
    unpack_result,
)

__all__ = ["KvClient"]


class KvClient(ClientProgram):
    """Issues ``total`` operations round-robin over a small key space."""

    def __init__(
        self,
        total: int = 30,
        gap_us: float = 120_000.0,
        keys: int = 4,
        op_deadline_us: float = 8_000_000.0,
        max_attempts: int = 12,
    ) -> None:
        self.total = total
        self.gap_us = gap_us
        self.keys = keys
        self.op_deadline_us = op_deadline_us
        self.max_attempts = max_attempts
        #: op index -> definitive outcome status, for tests.
        self.outcomes: Dict[int, str] = {}
        self._primary: Optional[int] = None

    def task(self, api):
        last_token: Dict[int, int] = {}
        for i in range(self.total):
            key = i % self.keys
            kind = i % 3
            token = make_token(api.my_mid, i)
            if kind == 1:
                op, arg = OP_GET, pack_op(OP_GET, key)
                token = 0
            elif kind == 2:
                expected = last_token.get(key, 0)
                op, arg = OP_CAS, pack_op(OP_CAS, key, token, expected)
            else:
                op, arg = OP_PUT, pack_op(OP_PUT, key, token)
            invoked_at = api.now
            api.sim.trace.record(
                invoked_at, "kv.invoke",
                mid=api.my_mid, seq=i, op=OP_NAMES[op], key=key, token=token,
            )
            status, version, value_token = yield from self._issue(api, arg)
            api.sim.trace.record(
                api.now, "kv.result",
                mid=api.my_mid, seq=i, op=OP_NAMES[op], key=key,
                status=status, version=version, token=value_token,
                wtoken=token, invoked_at=invoked_at,
            )
            self.outcomes[i] = status
            if status == "ok":
                if op == OP_GET:
                    last_token[key] = value_token
                else:
                    last_token[key] = token
            yield api.compute(self.gap_us)
        yield from api.serve_forever()

    def _issue(self, api, arg: int):
        """One operation to a definitive outcome (or ``unavail``)."""
        deadline = api.now + self.op_deadline_us
        attempt = 0
        while attempt < self.max_attempts and api.now < deadline:
            attempt += 1
            if self._primary is None:
                mids = yield from api.discover_all(KV_PATTERN, max_replies=4)
                if not mids:
                    yield api.compute(90_000.0)
                    continue
                self._primary = mids[0]
            completion = yield from api.b_signal(
                ServerSignature(self._primary, KV_PATTERN), arg=arg
            )
            if completion.status is RequestStatus.COMPLETED:
                if completion.arg >= 0:
                    version, value_token = unpack_result(completion.arg)
                    return "ok", version, value_token
                if completion.arg == REPLY_CAS_FAIL:
                    return "cas_fail", 0, 0
            # REJECTED: fenced, demoted, or overloaded — provably not
            # applied by that replica.  FAILED/CRASHED/MAYBE: ambiguous,
            # but the token makes a blind retry safe.
            self._primary = None
            yield api.compute(40_000.0 * min(attempt, 5))
        return "unavail", 0, 0
