"""A replicated key-value store over SODA primitives (ISSUE 9).

Primary-backup replication with an epoch-fenced failover protocol,
running unchanged over the sim and netreal backends.  See
``docs/REPLICATION.md`` for the protocol and its safety argument.
"""

from repro.replication.client import KvClient
from repro.replication.consistency import check_kv_consistency, kv_summary
from repro.replication.failover import KvFailoverSupervisor
from repro.replication.store import KvReplica
from repro.replication.wire import (
    KV_PATTERN,
    REPL_PATTERN,
    Entry,
    make_token,
    pack_op,
    pack_result,
    unpack_op,
    unpack_result,
)

__all__ = [
    "KV_PATTERN",
    "REPL_PATTERN",
    "Entry",
    "KvClient",
    "KvFailoverSupervisor",
    "KvReplica",
    "check_kv_consistency",
    "kv_summary",
    "make_token",
    "pack_op",
    "pack_result",
    "unpack_op",
    "unpack_result",
]
