"""A \\*MOD-style port-based message runtime (the §5.5 baseline).

\\*MOD (LeBlanc) is a distributed programming language whose non-local
processes communicate via **ports** with kernel-side message buffering;
ports offer either asynchronous sends or extended-rendezvous (remote
port call) semantics.  On the same PDP-11/Megalink hardware as SODA, its
synchronous remote port call cost 20.7 ms and its asynchronous port call
11.1 ms.

Why it is slower than SODA — and what this model reproduces:

* **kernel buffering**: every message is copied into a kernel queue at
  the receiver and out again when a process receives it (two extra
  copies and queue management on the critical path; SODA is bufferless);
* **process scheduling**: the receiving *process* must be scheduled to
  pick the message up — a language-level scheduler wakeup on each hop,
  where SODA jumps straight into the client handler;
* **a heavier protocol stack**: the language runtime, OS layer, and
  transport are separate modules, roughly doubling per-packet software
  cost (§6.17.3's layering observation).

The wire protocol is deliberately simple and reliable: every message is
individually acknowledged (no piggybacking — \\*MOD predates SODA's
aggressive piggyback strategy), so a sync call costs 4 packets
(CALL, ACK, REPLY, ACK) and an async send 2 (MSG, ACK).
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Generator, Optional, Tuple

from repro.net.frame import Frame
from repro.net.medium import BroadcastBus
from repro.net.nic import NetworkInterface
from repro.sim.engine import Simulator
from repro.sim.process import SimFuture


@dataclass(frozen=True)
class StarModConfig:
    """Cost model, in microseconds.

    Calibrated so that on the default 1 Mbit/s bus a one-word synchronous
    remote port call lands near the published 20.7 ms and an
    asynchronous port call near 11.1 ms.
    """

    #: Per-packet software cost on each side (runtime + OS + transport
    #: layers); roughly 2x SODA's 1.1 ms of send-side kernel work.
    protocol_us: float = 2_300.0
    #: Copying a message into/out of the kernel buffer pool, per byte,
    #: plus fixed queue management.
    copy_byte_us: float = 6.0
    buffer_mgmt_us: float = 450.0
    #: Scheduler wakeup to run the receiving process.
    wakeup_us: float = 900.0
    #: Caller-side call overhead (stub, marshalling, trap).
    call_overhead_us: float = 1_200.0
    #: Acknowledgement timeout for the stop-and-wait reliability.
    ack_timeout_us: float = 30_000.0


@dataclass
class _Message:
    kind: str  # "call" | "reply" | "async" | "ack"
    port: str = ""
    data: bytes = b""
    msg_id: int = 0
    ack_of: int = 0


_msg_ids = itertools.count(1)


class StarModNode:
    """One \\*MOD machine: a kernel with ports plus one server process."""

    def __init__(
        self, sim: Simulator, bus: BroadcastBus, mid: int,
        config: Optional[StarModConfig] = None,
    ) -> None:
        self.sim = sim
        self.config = config or StarModConfig()
        self.nic = NetworkInterface(bus, mid)
        self.nic.on_frame = self._on_frame
        self.mid = mid
        #: port name -> queue of (src, data, msg_id or None-for-async)
        self.ports: Dict[str, Deque[Tuple[int, bytes, Optional[int]]]] = {}
        #: port name -> handler fn(data) -> reply bytes (sync ports)
        self._handlers: Dict[str, Callable[[bytes], bytes]] = {}
        self._port_waiters: Dict[str, SimFuture] = {}
        self._pending_acks: Dict[int, Any] = {}
        self._ack_futures: Dict[int, SimFuture] = {}
        self._pending_replies: Dict[int, SimFuture] = {}
        self._busy_until = 0.0
        self.packets_sent = 0

    # -- kernel work ------------------------------------------------------

    def _work(self, us: float, fn=None, *args) -> float:
        start = max(self.sim.now, self._busy_until)
        self._busy_until = start + us
        if fn is not None:
            self.sim.at(self._busy_until, fn, *args)
        return self._busy_until

    def _send(self, dst: int, message: _Message) -> None:
        cfg = self.config
        cost = cfg.protocol_us
        if message.kind != "ack":
            cost += cfg.copy_byte_us * len(message.data) + cfg.buffer_mgmt_us
        self._work(cost, self._put_on_wire, dst, message)

    def _put_on_wire(self, dst: int, message: _Message) -> None:
        self.packets_sent += 1
        self.nic.send(dst, message, payload_bytes=len(message.data))
        if message.kind != "ack":
            timer = self.sim.schedule(
                self.config.ack_timeout_us, self._retransmit, dst, message
            )
            self._pending_acks[message.msg_id] = timer

    def _retransmit(self, dst: int, message: _Message) -> None:
        if message.msg_id in self._pending_acks:
            self._put_on_wire(dst, message)

    # -- receive path -----------------------------------------------------

    def _on_frame(self, frame: Frame) -> None:
        message: _Message = frame.payload
        cfg = self.config
        cost = cfg.protocol_us
        if message.kind != "ack":
            cost += cfg.copy_byte_us * len(message.data) + cfg.buffer_mgmt_us
        self._work(cost, self._dispatch, frame.src, message)

    def _dispatch(self, src: int, message: _Message) -> None:
        if message.kind == "ack":
            timer = self._pending_acks.pop(message.ack_of, None)
            if timer is not None:
                timer.cancel()
            future = self._ack_futures.pop(message.ack_of, None)
            if future is not None:
                future.resolve(None)
            return
        # Reliable receipt: acknowledge everything else.
        self._send(src, _Message(kind="ack", ack_of=message.msg_id))
        if message.kind == "reply":
            future = self._pending_replies.pop(message.msg_id, None)
            if future is not None:
                # The caller process must be rescheduled to continue.
                self._work(self.config.wakeup_us, future.resolve, message.data)
            return
        # call/async: enqueue on the port; wake the receiving process.
        queue = self.ports.setdefault(message.port, deque())
        msg_id = message.msg_id if message.kind == "call" else None
        queue.append((src, message.data, msg_id))
        waiter = self._port_waiters.pop(message.port, None)
        if waiter is not None:
            self._work(self.config.wakeup_us, waiter.resolve, None)

    # -- process-level API ---------------------------------------------------

    def serve_port(self, port: str, handler: Callable[[bytes], bytes]) -> None:
        """Run a server process that answers calls on ``port``."""
        self._handlers[port] = handler
        self.sim.spawn(self._server_loop(port), name=f"starmod{self.mid}.{port}")

    def _server_loop(self, port: str) -> Generator:
        queue = self.ports.setdefault(port, deque())
        while True:
            if not queue:
                future = self.sim.new_future()
                self._port_waiters[port] = future
                yield future
            src, data, msg_id = queue.popleft()
            # Copy out of the kernel buffer into the process.
            yield self.config.copy_byte_us * len(data) + self.config.buffer_mgmt_us
            reply = self._handlers[port](data)
            if msg_id is not None:
                self._send(src, _Message(kind="reply", data=reply, msg_id=msg_id))
                # The reply's retransmission bookkeeping ties up the
                # server briefly (no piggybacking in this runtime).
                yield self.config.protocol_us / 2

    def sync_call(self, dst: int, port: str, data: bytes) -> Generator:
        """Synchronous remote port call (extended rendezvous)."""
        yield self.config.call_overhead_us
        message = _Message(kind="call", port=port, data=data, msg_id=next(_msg_ids))
        future = self.sim.new_future()
        self._pending_replies[message.msg_id] = future
        self._send(dst, message)
        reply = yield future
        yield self.config.call_overhead_us / 2  # unmarshal
        return reply

    def async_send(self, dst: int, port: str, data: bytes) -> Generator:
        """Asynchronous port call.

        Asynchronous with respect to the *server process* (no
        rendezvous), but the call returns only when the remote kernel
        acknowledges that the message is safely buffered — \\*MOD's
        kernels have finite buffer pools and cannot fire-and-forget.
        """
        yield self.config.call_overhead_us
        message = _Message(kind="async", port=port, data=data, msg_id=next(_msg_ids))
        future = self.sim.new_future()
        self._ack_futures[message.msg_id] = future
        self._send(dst, message)
        yield future
        return message.msg_id


class StarModNetwork:
    """Convenience: a simulator + bus + N \\*MOD nodes."""

    def __init__(
        self, n_nodes: int = 2, seed: int = 0,
        config: Optional[StarModConfig] = None,
        bandwidth_bps: int = 1_000_000,
    ) -> None:
        self.sim = Simulator(seed=seed)
        self.bus = BroadcastBus(self.sim, bandwidth_bps=bandwidth_bps)
        self.nodes = [
            StarModNode(self.sim, self.bus, mid, config=config)
            for mid in range(n_nodes)
        ]

    def run(self, until: Optional[float] = None) -> None:
        self.sim.run(until=until)
