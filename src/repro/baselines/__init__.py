"""Baselines the paper compares against.

LeBlanc's \\*MOD message-passing primitives, measured on identical
PDP-11/23 + Megalink hardware (§5.5): a synchronous remote port call
took 20.7 ms and an asynchronous port call 11.1 ms, versus SODA's
8.5/10.0 ms (blocking) and 4.9/5.8 ms (non-blocking) SIGNALs.
"""

from repro.baselines.starmod import (
    StarModConfig,
    StarModNetwork,
    StarModNode,
)

__all__ = ["StarModConfig", "StarModNetwork", "StarModNode"]
