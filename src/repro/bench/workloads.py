"""Measurement workloads (§5.5).

The paper's numbers come from streams of requests between one requester
and one server on otherwise-idle hardware:

* the **server** ACCEPTs each arrival either immediately in its handler
  or — in the "queued" variants — from a task polling a queue of
  requester signatures (the port pattern of §4.2.1);
* the **streaming requester** keeps MAXREQUESTS non-blocking REQUESTs
  outstanding, reissuing from its completion handler;
* the **blocking requester** issues B_SIGNALs one at a time and measures
  each call's elapsed time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.buffers import Buffer
from repro.core.client import ClientProgram
from repro.core.config import KernelConfig
from repro.core.node import Network
from repro.core.patterns import make_well_known_pattern
from repro.sodal.queueing import Queue

BENCH_PATTERN = make_well_known_pattern(0o300)

#: Requests kept outstanding by the streaming requester (§5.5 used
#: MAXREQUESTS = 3 and notes any value > 1 behaves the same).
OUTSTANDING = 3


@dataclass
class StreamResult:
    """Steady-state measurements of one workload run."""

    per_txn_ms: float
    packets_per_txn: float
    txns: int
    #: Per-call times (blocking workloads only).
    call_times_ms: List[float] = field(default_factory=list)
    #: Cost-ledger delta over the measured window (µs per category).
    breakdown_us: Dict[str, float] = field(default_factory=dict)
    #: Steady-state completion-to-completion gaps (streaming workloads).
    txn_times_ms: List[float] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        """Machine-readable form for ``BENCH_*.json`` snapshots."""
        return {
            "per_txn_ms": self.per_txn_ms,
            "packets_per_txn": self.packets_per_txn,
            "txns": self.txns,
            "call_times_ms": list(self.call_times_ms),
            "txn_times_ms": list(self.txn_times_ms),
            "breakdown_us": {
                key: self.breakdown_us[key]
                for key in sorted(self.breakdown_us)
            },
        }


class AcceptingServer(ClientProgram):
    """Accepts every arrival in the handler (the fast path)."""

    def __init__(self, reply_bytes: int = 0):
        self.reply = bytes(reply_bytes)

    def initialization(self, api, parent_mid):
        yield from api.advertise(BENCH_PATTERN)

    def handler(self, api, event):
        if event.is_arrival:
            buf = Buffer(event.put_size)
            yield from api.accept_current_exchange(
                get=buf, put=self.reply[: event.get_size]
            )


class QueuedServer(ClientProgram):
    """Enqueues signatures in the handler; the task ACCEPTs (§4.2.1)."""

    def __init__(self, reply_bytes: int = 0, queue_size: int = 16):
        self.reply = bytes(reply_bytes)
        self.queue_size = queue_size

    def initialization(self, api, parent_mid):
        self.pending = Queue(self.queue_size)
        yield from api.advertise(BENCH_PATTERN)

    def handler(self, api, event):
        if event.is_arrival:
            yield from api.enqueue(self.pending, (event.asker, event.put_size, event.get_size))

    def task(self, api):
        while True:
            yield from api.poll(lambda: not self.pending.is_empty())
            asker, put_size, get_size = yield from api.dequeue(self.pending)
            buf = Buffer(put_size)
            yield from api.accept_exchange(
                asker, get=buf, put=self.reply[:get_size]
            )


class StreamingRequester(ClientProgram):
    """Keeps OUTSTANDING requests in flight; marks each completion."""

    def __init__(self, put_bytes: int, get_bytes: int, total: int):
        self.put_bytes = put_bytes
        self.get_bytes = get_bytes
        self.total = total
        self.issued = 0
        self.marks: List[tuple] = []

    def _issue(self, api):
        self.issued += 1
        yield from api.request(
            api.server_sig(0, BENCH_PATTERN),
            put=bytes(self.put_bytes),
            get=Buffer(self.get_bytes),
        )

    def task(self, api):
        for _ in range(min(OUTSTANDING, self.total)):
            yield from self._issue(api)
        yield from api.serve_forever()

    def handler(self, api, event):
        if event.is_completion:
            self.marks.append((api.now, api.kernel.nic.bus.frames_sent))
            if self.issued < self.total:
                yield from self._issue(api)


class BlockingSignaler(ClientProgram):
    """Issues B_SIGNALs back to back, timing each call."""

    def __init__(self, total: int):
        self.total = total
        self.call_times_us: List[float] = []

    def task(self, api):
        sig = api.server_sig(0, BENCH_PATTERN)
        for _ in range(self.total):
            t0 = api.now
            yield from api.b_signal(sig)
            self.call_times_us.append(api.now - t0)
        yield from api.serve_forever()


def _build(
    pipelined: bool,
    queued_accept: bool,
    reply_bytes: int,
    seed: int,
) -> Network:
    net = Network(
        seed=seed,
        config=KernelConfig(pipelined=pipelined),
        keep_trace=False,
    )
    server = (
        QueuedServer(reply_bytes=reply_bytes)
        if queued_accept
        else AcceptingServer(reply_bytes=reply_bytes)
    )
    net.add_node(program=server)
    return net


def run_stream(
    put_words: int,
    get_words: int,
    pipelined: bool = False,
    queued_accept: bool = False,
    txns: int = 14,
    warmup: int = 5,
    seed: int = 5,
    word_bytes: int = 2,
) -> StreamResult:
    """Steady-state per-transaction latency and packet count (T1-T3)."""
    put_bytes = put_words * word_bytes
    get_bytes = get_words * word_bytes
    net = _build(pipelined, queued_accept, get_bytes, seed)
    client = StreamingRequester(put_bytes, get_bytes, total=txns)
    net.add_node(program=client, boot_at_us=100.0)
    net.run(until=600_000_000.0)
    if len(client.marks) != txns:
        raise RuntimeError(
            f"stream did not complete: {len(client.marks)}/{txns}"
        )
    times = [t for t, _ in client.marks]
    frames = [f for _, f in client.marks]
    n = txns - warmup - 1
    per_txn_ms = (times[-1] - times[warmup]) / n / 1000.0
    packets = (frames[-1] - frames[warmup]) / n
    steady_gaps_ms = [
        (later - earlier) / 1000.0
        for earlier, later in zip(times[warmup:], times[warmup + 1 :])
    ]
    return StreamResult(
        per_txn_ms=per_txn_ms,
        packets_per_txn=packets,
        txns=txns,
        txn_times_ms=steady_gaps_ms,
        breakdown_us=net.ledger.snapshot(),
    )


def run_blocking_signals(
    pipelined: bool = False,
    queued_accept: bool = False,
    txns: int = 10,
    warmup: int = 2,
    seed: int = 5,
) -> StreamResult:
    """Per-call B_SIGNAL latency (the §5.5 8.5 ms / 10.0 ms numbers)."""
    net = _build(pipelined, queued_accept, 0, seed)
    client = BlockingSignaler(total=txns)
    net.add_node(program=client, boot_at_us=100.0)
    net.run(until=600_000_000.0)
    if len(client.call_times_us) != txns:
        raise RuntimeError(
            f"blocking run incomplete: {len(client.call_times_us)}/{txns}"
        )
    steady = client.call_times_us[warmup:]
    mean_ms = sum(steady) / len(steady) / 1000.0
    return StreamResult(
        per_txn_ms=mean_ms,
        packets_per_txn=0.0,
        txns=txns,
        call_times_ms=[t / 1000.0 for t in steady],
        breakdown_us=net.ledger.snapshot(),
    )
