"""Raw engine speed: the ``python -m repro sim-bench`` microbenchmark.

Every other benchmark in the repo measures *simulated* time; this one
measures the simulator itself — wall-clock events per second through
``Simulator.run`` — so hot-path regressions show up PR over PR in the
committed ``BENCH_sim.json`` even when virtual-time results stay
byte-identical.

Four scenarios cover the engine's distinct cost centres:

* ``timer_churn`` — arm-and-cancel storms (the retransmission-timer
  pattern: almost every timer armed is cancelled before it fires),
  exercising the event queue's O(1) live counter and heap compaction;
* ``message_storm`` — long causal chains plus same-instant fanout
  bursts, exercising raw heap push/pop and ordering;
* ``chaos_replay`` — one full chaos cell (echo × sustained_loss), the
  end-to-end mix of kernel work, tracing, and timer churn a sweep cell
  really runs;
* ``trace_overhead`` — one workload run traced and again in the
  tracer's counters-only fast mode (``keep_trace=False``), pricing
  per-event `TraceRecord` retention.

Event *counts* per scenario are deterministic; only the wall-clock
rates vary run to run, so CI validates the snapshot's schema without
pinning values (unlike the virtual-time ``BENCH_*`` files, which are
drift-checked byte-for-byte).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Tuple

from repro.sim.engine import Simulator

__all__ = ["run_sim_bench"]

#: Workload priced by the ``trace_overhead`` scenario (streamed
#: non-blocking requests: trace-heavy but short enough to repeat).
TRACE_WORKLOAD = "stream"


def _measure(
    build_and_run: Callable[[], int], repeats: int
) -> Tuple[int, float]:
    """Best-of-``repeats`` wall clock for one scenario.

    ``build_and_run`` constructs a fresh simulator and returns the
    number of events it processed; the event count must not vary
    between repeats (asserted — a scenario whose work drifts between
    repeats is mis-measuring).
    """
    best = float("inf")
    events = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        processed = build_and_run()
        elapsed = time.perf_counter() - start
        if events is None:
            events = processed
        elif events != processed:
            raise RuntimeError(
                f"non-deterministic scenario: {events} != {processed}"
            )
        best = min(best, elapsed)
    assert events is not None
    return events, best


def _timer_churn(n_events: int) -> int:
    """Arm K timers per driver tick, cancel all but one, repeat.

    Mirrors the transport's retransmission pattern: the ACK almost
    always wins the race, so the armed timer dies cancelled.  With a
    lazy-only heap the dead entries pile up; this scenario regresses
    badly without compaction.
    """
    sim = Simulator(seed=1, keep_trace=False)
    fanout = 16

    def tick(remaining: int) -> None:
        if remaining <= 0:
            return
        armed = [
            sim.schedule(10_000.0 + i, _noop) for i in range(fanout)
        ]
        for event in armed[1:]:
            event.cancel()
        armed[0].cancel()
        sim.schedule(1.0, tick, remaining - 1)

    sim.schedule(0.0, tick, n_events)
    sim.run()
    return sim.events_processed


def _noop() -> None:
    return None


def _message_storm(n_events: int) -> int:
    """Causal chains with periodic same-instant fanout bursts."""
    sim = Simulator(seed=1, keep_trace=False)
    chains = 64
    state = {"left": n_events}

    def hop(chain: int) -> None:
        if state["left"] <= 0:
            return
        state["left"] -= 1
        if state["left"] % 97 == 0:
            # A burst at one instant: heap ordering under seq ties.
            for _ in range(8):
                if state["left"] > 0:
                    state["left"] -= 1
                    sim.schedule(5.0, _noop)
        sim.schedule(1.0 + (chain % 7), hop, chain)

    for chain in range(chains):
        sim.schedule(float(chain), hop, chain)
    sim.run()
    return sim.events_processed


def _chaos_replay(iterations: int) -> int:
    """Real sweep cells, end to end (echo × sustained_loss × seed 1).

    One cell is only a few milliseconds of wall clock, so the scenario
    replays it ``iterations`` times per measurement to rise above timer
    noise; every replay is an independent, identically-seeded network.
    """
    from repro.analysis.workloads import build_workload
    from repro.chaos.runner import chaos_config, make_schedule
    from repro.chaos.scenario import GRACE_US

    events = 0
    for _ in range(iterations):
        built = build_workload("echo", seed=1, config=chaos_config())
        scenario = make_schedule("sustained_loss", built.spec)
        scenario.apply(built)
        horizon = max(
            built.spec.until_us, scenario.last_action_us + 2 * GRACE_US
        )
        built.net.run(until=horizon)
        events += built.net.sim.events_processed
    return events


def _traced_workload(keep_trace: bool, iterations: int) -> int:
    from repro.analysis.workloads import build_workload

    events = 0
    for _ in range(iterations):
        built = build_workload(TRACE_WORKLOAD, keep_trace=keep_trace)
        built.net.run(until=built.spec.until_us)
        events += built.net.sim.events_processed
    return events


def _scenario_body(events: int, elapsed_s: float) -> Dict[str, object]:
    return {
        "events": events,
        "elapsed_s": round(elapsed_s, 6),
        "events_per_sec": round(events / elapsed_s) if elapsed_s else 0,
    }


def run_sim_bench(
    repeats: int = 3, scale: float = 1.0
) -> Dict[str, object]:
    """The ``BENCH_sim.json`` body.

    ``scale`` shrinks the per-scenario event budgets (tests run at
    ``scale=0.01`` so the whole bench finishes in well under a second).
    """
    scenarios: Dict[str, object] = {}
    budgets = {
        "timer_churn": max(50, int(20_000 * scale)),
        "message_storm": max(500, int(200_000 * scale)),
        "chaos_replay": max(1, int(25 * scale)),
        # The traced-vs-fast verdict needs enough wall clock to rise
        # above scheduler noise even at test scales; never below 10
        # workload iterations (~50 ms per side).
        "trace_overhead": max(10, int(25 * scale)),
    }
    runners: Dict[str, Callable[[], int]] = {
        "timer_churn": lambda: _timer_churn(budgets["timer_churn"]),
        "message_storm": lambda: _message_storm(
            budgets["message_storm"]
        ),
        "chaos_replay": lambda: _chaos_replay(
            budgets["chaos_replay"]
        ),
    }
    for name, runner in runners.items():
        events, elapsed = _measure(runner, repeats)
        scenarios[name] = _scenario_body(events, elapsed)

    trace_iters = budgets["trace_overhead"]
    trace_repeats = max(3, repeats)
    traced_events, traced_s = _measure(
        lambda: _traced_workload(True, trace_iters), trace_repeats
    )
    fast_events, fast_s = _measure(
        lambda: _traced_workload(False, trace_iters), trace_repeats
    )
    traced = _scenario_body(traced_events, traced_s)
    fast = _scenario_body(fast_events, fast_s)
    speedup = (
        round(traced_s / fast_s, 3) if fast_s else float("inf")
    )
    scenarios["trace_overhead"] = {
        "workload": TRACE_WORKLOAD,
        "traced": traced,
        "no_trace": fast,
        "fast_mode_speedup": speedup,
    }
    return {
        "scenarios": scenarios,
        "comparison": {
            "no_trace_faster_than_traced": fast_s < traced_s,
        },
        "repeats": repeats,
    }
