"""Adaptive-vs-static transport benchmark (ISSUE 5 acceptance).

Runs the chaos workloads under the ``sustained_loss`` schedule twice —
once with the paper-faithful :class:`~repro.transport.retransmit.StaticPolicy`
and once with :class:`~repro.transport.adaptive.AdaptivePolicy` — and
pools spurious-retransmit counts and end-to-end latencies across the
whole sweep.  The exported ``BENCH_transport.json`` (``soda.bench/1``)
carries the per-policy aggregates plus a ``comparison`` verdict: the
adaptive policy must beat the static one on *both* the pooled
spurious-retransmit count and the pooled p99 transaction latency.

Everything is seed-deterministic, so the snapshot can be diffed commit
to commit like the other ``BENCH_*`` files.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.workloads import build_workload
from repro.chaos.liveness import percentile
from repro.chaos.runner import chaos_config, make_schedule
from repro.chaos.scenario import GRACE_US
from repro.obs.spans import build_spans
from repro.transport.adaptive import AdaptivePolicy
from repro.transport.retransmit import RetransmitPolicy, StaticPolicy

#: Workloads pooled into the comparison.  ``cancel`` is omitted: its
#: only judged span is a withdrawal, contributing no latency signal.
BENCH_WORKLOADS = (
    "echo",
    "stream",
    "queued",
    "busy",
    "signal",
    "supervised",
)

BENCH_SCHEDULE = "sustained_loss"


def _run_one(
    policy: RetransmitPolicy, workload: str, seed: int
) -> Dict[str, object]:
    built = build_workload(
        workload, seed=seed, config=chaos_config(policy)
    )
    scenario = make_schedule(BENCH_SCHEDULE, built.spec)
    scenario.apply(built)
    horizon = max(
        built.spec.until_us, scenario.last_action_us + 2 * GRACE_US
    )
    built.net.run(until=horizon)
    records = built.net.sim.trace.records
    spans = build_spans(records)
    latencies = [
        span.latency_us
        for span in spans
        if span.completed
        and span.latency_us is not None
        and not span.is_discover
    ]
    return {
        "workload": workload,
        "seed": seed,
        "spurious_retransmits": sum(
            1
            for rec in records
            if rec.category == "conn.spurious_retransmit"
        ),
        "retransmits": sum(
            1 for rec in records if rec.category == "conn.retransmit"
        ),
        "sheds": sum(
            1 for rec in records if rec.category == "kernel.shed"
        ),
        "completed": len(latencies),
        "latencies_us": latencies,
    }


def _run_one_packed(args) -> Dict[str, object]:
    """Module-level trampoline for ProcessPoolExecutor workers.

    Policies travel by name, not instance, so the worker constructs a
    fresh default-configured policy — exactly what the serial path does.
    """
    policy_name, workload, seed = args
    policy: RetransmitPolicy = (
        StaticPolicy() if policy_name == "static" else AdaptivePolicy()
    )
    return _run_one(policy, workload, seed)


def _aggregate(cells: List[Dict[str, object]]) -> Dict[str, object]:
    latencies: List[float] = []
    for cell in cells:
        latencies.extend(cell["latencies_us"])  # type: ignore[arg-type]
    summary: Dict[str, object] = {
        "spurious_retransmits": sum(
            cell["spurious_retransmits"] for cell in cells
        ),
        "retransmits": sum(cell["retransmits"] for cell in cells),
        "sheds": sum(cell["sheds"] for cell in cells),
        "completed": len(latencies),
        "p50_latency_us": (
            percentile(latencies, 0.50) if latencies else None
        ),
        "p99_latency_us": (
            percentile(latencies, 0.99) if latencies else None
        ),
    }
    return summary


def run_transport_bench(
    seeds: Sequence[int] = (1,),
    workloads: Optional[Sequence[str]] = None,
    parallel: Optional[int] = None,
) -> Dict[str, object]:
    """The ``BENCH_transport.json`` body: per-policy sweeps + verdict.

    ``parallel=N`` farms the (policy × seed × workload) cells out to N
    worker processes; every cell is seed-deterministic, so the merged
    body is byte-identical to a serial run.
    """
    workload_names = tuple(workloads) if workloads else BENCH_WORKLOADS
    policy_names = ("static", "adaptive")
    body: Dict[str, object] = {
        "schedule": BENCH_SCHEDULE,
        "workloads": list(workload_names),
        "seeds": list(seeds),
    }
    jobs = [
        (name, workload, seed)
        for name in policy_names
        for seed in seeds
        for workload in workload_names
    ]
    if parallel is not None and parallel > 1 and len(jobs) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(
            max_workers=min(parallel, len(jobs))
        ) as pool:
            # map() yields in submission order: the serial enumeration.
            all_cells = list(pool.map(_run_one_packed, jobs))
    else:
        all_cells = [_run_one_packed(job) for job in jobs]
    per_policy = len(seeds) * len(workload_names)
    aggregates: Dict[str, Dict[str, object]] = {}
    for index, name in enumerate(policy_names):
        cells = all_cells[index * per_policy : (index + 1) * per_policy]
        aggregates[name] = _aggregate(cells)
        for cell in cells:
            # Raw latency lists are bulky and derivable; keep the
            # per-cell summary slim.
            cell.pop("latencies_us")
        body[name] = {"cells": cells, "summary": aggregates[name]}
    static, adaptive = aggregates["static"], aggregates["adaptive"]
    body["comparison"] = {
        "adaptive_beats_static_spurious": (
            adaptive["spurious_retransmits"]
            < static["spurious_retransmits"]
        ),
        "adaptive_beats_static_p99": (
            static["p99_latency_us"] is not None
            and adaptive["p99_latency_us"] is not None
            and adaptive["p99_latency_us"] < static["p99_latency_us"]
        ),
        "policy_knobs": {
            "static": StaticPolicy().as_dict(),
            "adaptive": AdaptivePolicy().as_dict(),
        },
    }
    return body
