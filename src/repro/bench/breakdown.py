"""The "Breakdown of Communications Overhead" table (p. 116): T4.

The paper decomposes one 2-packet SIGNAL's 7.1 ms into connection-timer,
retransmit-timer, context-switch, transmission, client-overhead, and
protocol time.  We run the identical scenario — a single blocking SIGNAL
ACCEPTed in the server handler — with the cost ledger armed only for the
measured window, and report simulated microseconds per category.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.bench.workloads import BENCH_PATTERN, AcceptingServer
from repro.core.client import ClientProgram
from repro.core.config import KernelConfig
from repro.core.node import Network

#: Published values in milliseconds (§5.5).
BREAKDOWN_PAPER_MS: Dict[str, float] = {
    "connection_timers": 1.0,
    "retransmit_timers": 0.7,
    "context_switch": 0.8,
    "transmission": 0.4,
    "client_overhead": 2.2,
    "protocol": 2.0,
}

BREAKDOWN_TOTAL_PAPER_MS = 7.1


@dataclass
class BreakdownResult:
    measured_ms: Dict[str, float]
    paper_ms: Dict[str, float]
    total_measured_ms: float
    total_paper_ms: float
    elapsed_call_ms: float

    def to_dict(self) -> Dict[str, object]:
        """Machine-readable form for ``BENCH_*.json`` snapshots."""
        return {
            "measured_ms": {
                key: self.measured_ms[key] for key in sorted(self.measured_ms)
            },
            "paper_ms": {
                key: self.paper_ms[key] for key in sorted(self.paper_ms)
            },
            "total_measured_ms": self.total_measured_ms,
            "total_paper_ms": self.total_paper_ms,
            "elapsed_call_ms": self.elapsed_call_ms,
        }


class _OneSignal(ClientProgram):
    def __init__(self):
        self.window = None
        self.elapsed_us = None

    def task(self, api):
        sig = api.server_sig(0, BENCH_PATTERN)
        # One warmup SIGNAL so both kernels are past any cold-start work.
        yield from api.b_signal(sig)
        yield api.compute(20_000)
        ledger = api.kernel.ledger
        before = ledger.snapshot()
        t0 = api.now
        yield from api.b_signal(sig)
        self.elapsed_us = api.now - t0
        self.window = ledger.diff(before)
        yield from api.serve_forever()


def measure_signal_breakdown(seed: int = 5) -> BreakdownResult:
    net = Network(seed=seed, config=KernelConfig(), keep_trace=False)
    net.add_node(program=AcceptingServer())
    client = _OneSignal()
    net.add_node(program=client, boot_at_us=100.0)
    net.run(until=60_000_000.0)
    if client.window is None:
        raise RuntimeError("breakdown scenario did not finish")
    measured_ms = {
        key: client.window.get(key, 0.0) / 1000.0 for key in BREAKDOWN_PAPER_MS
    }
    return BreakdownResult(
        measured_ms=measured_ms,
        paper_ms=dict(BREAKDOWN_PAPER_MS),
        total_measured_ms=sum(measured_ms.values()),
        total_paper_ms=BREAKDOWN_TOTAL_PAPER_MS,
        elapsed_call_ms=client.elapsed_us / 1000.0,
    )
